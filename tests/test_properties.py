"""Property-based tests across the runtime layers (hypothesis).

Invariants checked on randomly generated workloads:

* **DLB core conservation** — at every instant, own + pooled + borrowed
  cores on a node sum to the node's base allocation; after the run all
  loans are settled.
* **DLB liveness/benefit** — runs always complete; DLB never makes a
  random bulk-synchronous workload slower.
* **Collective semantics** — simulated MPI collectives agree with plain
  Python reference reductions for arbitrary payloads.
* **Determinism** — identical inputs give bit-identical simulated times.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DLB, Team, build_parallel_for_graph
from repro.machine import CoreModel, marenostrum4
from repro.sim import Engine
from repro.smpi import World

CORE = CoreModel(name="unit", freq_ghz=1.0, base_ipc=1.0, out_of_order=True,
                 atomic_stall_cycles=0.0, mem_stall_cycles=0.0)

workload_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=3),
    min_size=2, max_size=5)


def run_random_workload(phases_per_rank, dlb_enabled, threads=2,
                        check_conservation=True):
    """Each rank runs its list of phases (task counts) with barriers."""
    nranks = len(phases_per_rank)
    nphases = max(len(p) for p in phases_per_rank)
    engine = Engine()
    cluster = marenostrum4(num_nodes=1)
    world = World(engine, cluster, nranks)
    dlb = DLB(world, enabled=dlb_enabled)
    teams = {}
    for r in range(nranks):
        teams[r] = Team(engine, CORE, threads, rank=r)
        dlb.attach_team(r, teams[r])
    base_total = nranks * threads
    violations = []

    if check_conservation:
        def probe():
            while True:
                total = sum(t.capacity for t in teams.values()) \
                    + dlb.pool_size(0)
                if total != base_total:
                    violations.append((engine.now, total))
                yield engine.timeout(0.25)

        engine.process(probe())

    def program(comm):
        my = phases_per_rank[comm.rank]
        for i in range(nphases):
            n = my[i] if i < len(my) else 0
            graph = build_parallel_for_graph(
                np.full(n, 1e9), threads, min_chunks=max(1, n))
            yield from teams[comm.rank].run(graph)
            yield from comm.barrier()

    procs = world.launch(program)
    engine.run(until=10_000.0)
    for p in procs:
        assert p.triggered and p.ok, "workload must complete"
    return engine.now, dlb, violations


class TestDLBProperties:
    @given(workload_strategy)
    @settings(max_examples=30, deadline=None)
    def test_core_conservation_invariant(self, phases):
        _, dlb, violations = run_random_workload(phases, dlb_enabled=True)
        assert violations == []
        # all loans settled at the end
        assert dlb.pool_size(0) == 0
        for r in range(len(phases)):
            assert dlb.borrowed_by(r) == 0

    @given(workload_strategy)
    @settings(max_examples=20, deadline=None)
    def test_dlb_never_slower(self, phases):
        t_off, _, _ = run_random_workload(phases, dlb_enabled=False,
                                          check_conservation=False)
        t_on, _, _ = run_random_workload(phases, dlb_enabled=True,
                                         check_conservation=False)
        assert t_on <= t_off + 1e-9

    @given(workload_strategy)
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, phases):
        a = run_random_workload(phases, dlb_enabled=True,
                                check_conservation=False)[0]
        b = run_random_workload(phases, dlb_enabled=True,
                                check_conservation=False)[0]
        assert a == b

    @given(workload_strategy)
    @settings(max_examples=10, deadline=None)
    def test_work_conserving(self, phases):
        """Makespan is never below the critical-path lower bound:
        max(total work / cores, longest single phase on one rank)."""
        threads = 2
        t_on, _, _ = run_random_workload(phases, dlb_enabled=True,
                                         threads=threads,
                                         check_conservation=False)
        nranks = len(phases)
        nphases = max(len(p) for p in phases)
        lower = 0.0
        for i in range(nphases):
            counts = [p[i] if i < len(p) else 0 for p in phases]
            # each phase ends with a barrier: at best all cores share it
            lower += sum(counts) / (nranks * threads)
        assert t_on >= lower - 1e-9


class TestCollectiveSemantics:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=2, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_allreduce_matches_python_sum(self, values):
        engine = Engine()
        world = World(engine, marenostrum4(), len(values))

        def program(comm):
            return (yield from comm.allreduce(values[comm.rank]))

        results = world.run(world.launch(program))
        assert results == [sum(values)] * len(values)

    @given(st.lists(st.integers(), min_size=2, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_allgather_matches_list(self, values):
        engine = Engine()
        world = World(engine, marenostrum4(), len(values))

        def program(comm):
            return (yield from comm.allgather(values[comm.rank]))

        results = world.run(world.launch(program))
        assert all(r == values for r in results)

    @given(st.integers(min_value=2, max_value=6), st.data())
    @settings(max_examples=20, deadline=None)
    def test_alltoall_is_transpose(self, n, data):
        matrix = [[data.draw(st.integers(0, 99)) for _ in range(n)]
                  for _ in range(n)]
        engine = Engine()
        world = World(engine, marenostrum4(), n)

        def program(comm):
            return (yield from comm.alltoall(matrix[comm.rank]))

        results = world.run(world.launch(program))
        for i in range(n):
            assert results[i] == [matrix[j][i] for j in range(n)]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6),
                    min_size=2, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_reduce_max_matches(self, values):
        engine = Engine()
        world = World(engine, marenostrum4(), len(values))

        def program(comm):
            return (yield from comm.allreduce(values[comm.rank], op=max))

        results = world.run(world.launch(program))
        assert results == [max(values)] * len(values)
