"""Unit tests for the tracing/metrics layer (PhaseLog, Tracer, timeline)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.trace import (
    Interval,
    PhaseLog,
    Tracer,
    load_balance,
    render_timeline,
    timeline_rows,
)


class TestLoadBalanceMetric:
    def test_perfectly_balanced(self):
        assert load_balance([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_paper_formula(self):
        # L_n = sum t_i / (n * max t_i)
        times = [1.0, 2.0, 4.0, 1.0]
        assert load_balance(times) == pytest.approx(8.0 / (4 * 4.0))

    def test_single_worker_dominates(self):
        """The particles-phase case: one rank holds ~all the work."""
        times = [0.0] * 95 + [1.0]
        assert load_balance(times) == pytest.approx(1.0 / 96.0)

    def test_empty_and_zero(self):
        assert load_balance([]) == 1.0
        assert load_balance([0.0, 0.0]) == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=64))
    def test_bounds(self, times):
        ln = load_balance(times)
        assert 0.0 < ln <= 1.0 + 1e-12

    @given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=2,
                    max_size=32), st.floats(min_value=0.1, max_value=10.0))
    def test_scale_invariant(self, times, factor):
        a = load_balance(times)
        b = load_balance([t * factor for t in times])
        assert a == pytest.approx(b, rel=1e-9)


def small_log():
    log = PhaseLog(nranks=3)
    # step 0: assembly unbalanced, solver balanced
    log.add(0, "assembly", 0, 0.0, 1.0, busy=1.0, instructions=100.0)
    log.add(0, "assembly", 1, 0.0, 2.0, busy=2.0, instructions=200.0)
    log.add(0, "assembly", 2, 0.0, 4.0, busy=4.0, instructions=400.0)
    log.add(0, "solver", 0, 4.0, 6.0, busy=2.0, instructions=300.0)
    log.add(0, "solver", 1, 4.0, 6.0, busy=2.0, instructions=300.0)
    log.add(0, "solver", 2, 4.0, 6.0, busy=2.0, instructions=300.0)
    return log


class TestPhaseLog:
    def test_phases_in_order(self):
        assert small_log().phases() == ["assembly", "solver"]

    def test_busy_by_rank(self):
        log = small_log()
        np.testing.assert_allclose(log.busy_by_rank("assembly"),
                                   [1.0, 2.0, 4.0])

    def test_load_balance(self):
        log = small_log()
        assert log.load_balance("assembly") == pytest.approx(7.0 / 12.0)
        assert log.load_balance("solver") == pytest.approx(1.0)

    def test_load_balance_restricted_ranks(self):
        log = small_log()
        assert log.load_balance("assembly", ranks=[0, 1]) == pytest.approx(
            3.0 / 4.0)

    def test_elapsed_and_percent(self):
        log = small_log()
        assert log.elapsed("assembly") == pytest.approx(4.0)
        assert log.elapsed("solver") == pytest.approx(2.0)
        assert log.total_elapsed() == pytest.approx(6.0)
        assert log.percent_time("assembly") == pytest.approx(100 * 4 / 6)

    def test_elapsed_sums_over_steps(self):
        log = small_log()
        log.add(1, "assembly", 0, 10.0, 11.5, busy=1.5)
        assert log.elapsed("assembly") == pytest.approx(4.0 + 1.5)

    def test_ipc(self):
        log = small_log()
        # assembly: 700 instructions over 7 busy seconds at 1 GHz
        assert log.ipc("assembly", freq_ghz=1e-9 * 1) == pytest.approx(
            700.0 / 7.0, rel=1e-9)

    def test_summary_rows(self):
        rows = small_log().summary()
        assert [r["phase"] for r in rows] == ["assembly", "solver"]
        assert rows[0]["load_balance"] == pytest.approx(7.0 / 12.0)

    def test_invalid_interval_rejected(self):
        log = PhaseLog(2)
        with pytest.raises(ValueError):
            log.add(0, "x", 0, 5.0, 4.0, busy=1.0)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            PhaseLog(0)

    def test_empty_log(self):
        log = PhaseLog(4)
        assert log.phases() == []
        assert log.total_elapsed() == 0.0
        assert log.percent_time("nope") == 0.0
        assert log.ipc("nope", 2.0) == 0.0


class TestTracer:
    def test_record_and_filter(self):
        tr = Tracer()
        tr.record(0, "mpi", "recv", 0.0, 1.0)
        tr.record(1, "task", "assembly", 0.5, 2.0)
        tr.record(0, "mpi", "send", 2.0, 2.5)
        assert len(tr) == 3
        assert len(tr.by_rank(0)) == 2
        assert len(tr.by_category("task")) == 1
        assert tr.total_time(0) == pytest.approx(1.5)
        assert tr.total_time(0, "mpi") == pytest.approx(1.5)
        assert tr.total_time(1, "mpi") == 0.0

    def test_interval_duration(self):
        iv = Interval(0, "mpi", "recv", 1.0, 3.5)
        assert iv.duration == pytest.approx(2.5)

    def test_plugs_into_world(self):
        from repro.machine import marenostrum4
        from repro.sim import Engine
        from repro.smpi import World

        eng = Engine()
        world = World(eng, marenostrum4(), 2)
        tracer = Tracer()
        world.recorder = tracer

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(1.0)
                yield from comm.send("x", dest=1)
            else:
                yield from comm.recv(source=0)

        world.run(world.launch(program))
        cats = {iv.category for iv in tracer.intervals}
        assert "mpi" in cats and "compute" in cats


class TestTimeline:
    def test_rows_sorted(self):
        log = small_log()
        rows = timeline_rows(log, 0)
        assert rows[0][0] == 0
        assert all(rows[i][0] <= rows[i + 1][0] for i in range(len(rows) - 1))

    def test_render_contains_all_ranks(self):
        log = small_log()
        art = render_timeline(log, 0, width=40)
        for rank in range(3):
            assert f"rank {rank:4d}" in art

    def test_render_uses_phase_glyphs(self):
        art = render_timeline(small_log(), 0, width=40,
                              glyphs={"assembly": "A", "solver": "S"})
        assert "A" in art and "S" in art

    def test_render_empty_step(self):
        art = render_timeline(small_log(), step=9)
        assert "no samples" in art

    def test_rank_subsampling(self):
        log = PhaseLog(nranks=100)
        for r in range(100):
            log.add(0, "assembly", r, 0.0, 1.0, busy=1.0)
        art = render_timeline(log, 0, max_ranks=10)
        assert art.count("rank ") == 10


class TestLoadBalanceByStep:
    def test_one_value_per_step(self):
        log = PhaseLog(2)
        log.add(0, "p", 0, 0.0, 1.0, busy=1.0)
        log.add(0, "p", 1, 0.0, 1.0, busy=1.0)
        log.add(1, "p", 0, 2.0, 3.0, busy=1.0)
        log.add(1, "p", 1, 2.0, 5.0, busy=3.0)
        series = log.load_balance_by_step("p")
        assert len(series) == 2
        assert series[0] == pytest.approx(1.0)
        assert series[1] == pytest.approx(4.0 / (2 * 3.0))

    def test_empty_phase(self):
        assert PhaseLog(2).load_balance_by_step("nope") == []
