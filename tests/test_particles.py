"""Unit tests for particle forces, flow field, and tracking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import AirwayConfig, MeshResolution, build_airway_mesh
from repro.partition import decompose_mesh
from repro.particles import (
    AirwayFlow,
    ElementLocator,
    FluidProperties,
    NewmarkTracker,
    ParticleProperties,
    ParticleState,
    STATUS_ACTIVE,
    STATUS_DEPOSITED,
    drag_force,
    ganser_cd,
    gravity_buoyancy_acceleration,
    inject_at_inlet,
    reynolds,
)


FLUID = FluidProperties()
PART = ParticleProperties()


class TestForces:
    def test_stokes_limit(self):
        """At tiny Re, F_D -> 3 pi mu d (u_f - u_p)."""
        u_f = np.array([[1e-6, 0.0, 0.0]])
        u_p = np.zeros((1, 3))
        f = drag_force(u_f, u_p, PART, FLUID)
        stokes = 3.0 * np.pi * FLUID.viscosity * PART.diameter * u_f
        np.testing.assert_allclose(f, stokes, rtol=1e-3)

    def test_ganser_cd_reference_values(self):
        """Hand-evaluated values of Ganser's Eq. 8 (spherical limit)."""
        assert ganser_cd(np.array([1.0]))[0] == pytest.approx(26.68, rel=0.01)
        assert ganser_cd(np.array([100.0]))[0] == pytest.approx(0.806,
                                                                rel=0.02)

    def test_cd_monotone_decreasing_at_low_re(self):
        re = np.logspace(-3, 2, 50)
        cd = ganser_cd(re)
        assert (np.diff(cd) < 0).all()

    def test_drag_opposes_relative_motion(self):
        u_f = np.zeros((1, 3))
        u_p = np.array([[2.0, 0.0, 0.0]])
        f = drag_force(u_f, u_p, PART, FLUID)
        assert f[0, 0] < 0.0

    def test_drag_zero_at_equal_velocity(self):
        u = np.array([[1.0, 2.0, 3.0]])
        f = drag_force(u, u, PART, FLUID)
        np.testing.assert_allclose(f, 0.0)

    def test_gravity_buoyancy_reduced_by_density_ratio(self):
        acc = gravity_buoyancy_acceleration(PART, FLUID)
        assert acc[2] == pytest.approx(-9.81 * (1 - FLUID.density
                                                / PART.density))

    def test_reynolds_definition(self):
        re = reynolds(np.array([1.0]), PART, FLUID)
        expected = FLUID.density * PART.diameter / FLUID.viscosity
        assert re[0] == pytest.approx(expected)

    def test_relaxation_time_order_of_magnitude(self):
        # 4 um water droplet in air: tau ~ 5e-5 s
        tau = PART.relaxation_time(FLUID)
        assert 1e-5 < tau < 1e-4

    def test_property_validation(self):
        with pytest.raises(ValueError):
            ParticleProperties(diameter=-1e-6)
        with pytest.raises(ValueError):
            FluidProperties(density=0.0)


@pytest.fixture(scope="module")
def airway():
    return build_airway_mesh(AirwayConfig(generations=3),
                             MeshResolution(points_per_ring=6))


@pytest.fixture(scope="module")
def flow(airway):
    return AirwayFlow(airway.segments, inlet_flow_rate=1e-3)


class TestFlowField:
    def test_flow_rate_conserved_across_bifurcations(self, flow):
        children: dict = {}
        for seg in flow.segments:
            if seg.parent >= 0:
                children.setdefault(seg.parent, []).append(seg.sid)
        for parent, kids in children.items():
            q_kids = sum(flow.flow_rates[k] for k in kids)
            assert q_kids == pytest.approx(flow.flow_rates[parent])

    def test_centerline_velocity_is_peak(self, flow):
        seg = flow.segments[2]  # trachea
        mid = seg.start + seg.direction * seg.length * 0.5
        u = flow.velocity(mid[None, :])[0]
        expected = 2.0 * flow.flow_rates[seg.sid] / (np.pi * seg.radius ** 2)
        assert np.linalg.norm(u) == pytest.approx(expected, rel=1e-6)
        np.testing.assert_allclose(u / np.linalg.norm(u), seg.direction,
                                   atol=1e-9)

    def test_velocity_vanishes_at_wall(self, flow):
        seg = flow.segments[2]
        mid = seg.start + seg.direction * seg.length * 0.5
        perp = np.array([1.0, 0.0, 0.0])
        wall_pt = mid + perp * seg.radius * 0.9999
        u = flow.velocity(wall_pt[None, :])[0]
        center_u = flow.velocity(mid[None, :])[0]
        assert np.linalg.norm(u) < 0.01 * np.linalg.norm(center_u)

    def test_velocity_speeds_up_downstream(self, flow):
        """Total cross-section area grows slower than 2x per generation at
        the first generations, so mean velocity changes; just check finite
        positive flow everywhere along the tree."""
        for seg in flow.segments:
            mid = seg.start + seg.direction * seg.length * 0.5
            u = flow.velocity(mid[None, :])[0]
            assert np.dot(u, seg.direction) > 0.0

    def test_locate_identifies_segment(self, flow):
        seg = flow.segments[2]
        mid = seg.start + seg.direction * seg.length * 0.5
        sidx, axial, radial = flow.locate(mid[None, :])
        assert sidx[0] == 2
        assert axial[0] == pytest.approx(0.5, abs=0.01)
        assert radial[0] == pytest.approx(0.0, abs=1e-9)

    def test_wall_gap_sign(self, flow):
        seg = flow.segments[2]
        mid = seg.start + seg.direction * seg.length * 0.5
        inside = mid
        outside = mid + np.array([1.0, 0.0, 0.0]) * seg.radius * 2.0
        gaps = flow.wall_gap(np.stack([inside, outside]))
        assert gaps[0] > 0 and gaps[1] < 0

    def test_invalid_flow_rate(self, airway):
        with pytest.raises(ValueError):
            AirwayFlow(airway.segments, inlet_flow_rate=0.0)


class TestInjection:
    def test_particles_inside_inlet_disk(self, airway):
        state = inject_at_inlet(airway, 500, seed=1)
        center, axis, radius = airway.inlet_disk()
        rel = state.x - center
        radial = np.linalg.norm(rel - np.outer(rel @ axis, axis), axis=1)
        assert (radial <= radius).all()

    def test_all_active_initially(self, airway):
        state = inject_at_inlet(airway, 100)
        assert state.n_active == 100

    def test_deterministic_for_seed(self, airway):
        a = inject_at_inlet(airway, 50, seed=9)
        b = inject_at_inlet(airway, 50, seed=9)
        np.testing.assert_array_equal(a.x, b.x)

    def test_empty_injection(self, airway):
        state = inject_at_inlet(airway, 0)
        assert state.n == 0


class TestTracking:
    def test_particles_move_downstream(self, airway, flow):
        state = inject_at_inlet(airway, 200, seed=0)
        tracker = NewmarkTracker(flow)
        z0 = state.x[:, 2].mean()
        for _ in range(50):
            tracker.step(state, dt=1e-4)
        # airway axis points -z: particles must advance downward
        assert state.x[state.active][:, 2].mean() < z0 if state.n_active \
            else True
        moved = state.x[:, 2].mean()
        assert moved < z0

    def test_velocity_relaxes_to_fluid(self, airway, flow):
        """A particle with small relaxation time approaches the local fluid
        velocity within a few time steps."""
        state = inject_at_inlet(airway, 50, seed=2, speed_fraction=0.0)
        tracker = NewmarkTracker(flow)
        for _ in range(30):
            tracker.step(state, dt=1e-4)
        act = state.active
        if act.sum() == 0:
            pytest.skip("all particles deposited too quickly")
        u_f = flow.velocity(state.x[act])
        rel = np.linalg.norm(state.v[act] - u_f, axis=1)
        mag = np.linalg.norm(u_f, axis=1) + 1e-12
        assert np.median(rel / mag) < 0.3

    def test_some_particles_deposit_over_time(self, airway, flow):
        state = inject_at_inlet(airway, 300, seed=3)
        tracker = NewmarkTracker(flow)
        for _ in range(300):
            tracker.step(state, dt=1e-4)
            if (state.status == STATUS_DEPOSITED).any():
                break
        counts = state.counts()
        assert counts[STATUS_DEPOSITED] + counts[STATUS_ACTIVE] > 0

    def test_deposited_particles_stop(self, airway, flow):
        state = inject_at_inlet(airway, 300, seed=3)
        tracker = NewmarkTracker(flow)
        for _ in range(200):
            tracker.step(state, dt=1e-4)
        dep = state.status == STATUS_DEPOSITED
        if dep.any():
            np.testing.assert_allclose(state.v[dep], 0.0)

    def test_step_with_no_active_particles(self, flow):
        state = ParticleState.empty()
        tracker = NewmarkTracker(flow)
        tracker.step(state, dt=1e-4)  # must not raise
        assert state.n == 0

    def test_finite_state_always(self, airway, flow):
        state = inject_at_inlet(airway, 100, seed=5)
        tracker = NewmarkTracker(flow)
        for _ in range(100):
            tracker.step(state, dt=1e-4)
            assert np.isfinite(state.x).all()
            assert np.isfinite(state.v).all()


class TestLocatorAndImbalance:
    def test_owner_histogram_sums_to_population(self, airway):
        dec = decompose_mesh(airway, 8, method="rcb")
        locator = ElementLocator(airway, dec.labels)
        state = inject_at_inlet(airway, 400, seed=0)
        hist = locator.rank_histogram(state.x, 8)
        assert hist.sum() == 400

    def test_injection_concentrated_in_few_ranks(self, airway):
        """The paper's key imbalance: at injection, particles live in one or
        few MPI subdomains (L96 = 0.02)."""
        dec = decompose_mesh(airway, 16, method="rcb")
        locator = ElementLocator(airway, dec.labels)
        state = inject_at_inlet(airway, 1000, seed=0)
        hist = locator.rank_histogram(state.x, 16)
        # load balance L_n = mean / max must be tiny
        ln = hist.mean() / hist.max()
        assert ln < 0.3
        assert (hist > 0).sum() <= 6  # few ranks hold everything

    def test_particles_spread_over_time(self, airway, flow):
        dec = decompose_mesh(airway, 16, method="rcb")
        locator = ElementLocator(airway, dec.labels)
        state = inject_at_inlet(airway, 1000, seed=0)
        h0 = locator.rank_histogram(state.x, 16)
        tracker = NewmarkTracker(flow)
        for _ in range(400):
            tracker.step(state, dt=1e-4)
        h1 = locator.rank_histogram(state.x, 16)
        assert (h1 > 0).sum() >= (h0 > 0).sum()

    def test_locator_requires_labels_for_owners(self, airway):
        locator = ElementLocator(airway)
        with pytest.raises(ValueError):
            locator.owners_of(np.zeros((1, 3)))


class TestParticleStateExtend:
    def test_polydisperse_remnant_then_monodisperse(self):
        """A zero-length polydisperse extend must not poison a later
        monodisperse append (diameter fell out of sync with status)."""
        state = ParticleState.empty()
        poly = ParticleState(x=np.zeros((0, 3)), v=np.zeros((0, 3)),
                             a=np.zeros((0, 3)),
                             status=np.zeros(0, dtype=np.int8),
                             diameter=np.zeros(0))
        state.extend(poly)
        mono = ParticleState(x=np.zeros((5, 3)), v=np.zeros((5, 3)),
                             a=np.zeros((5, 3)),
                             status=np.zeros(5, dtype=np.int8))
        state.extend(mono)
        assert state.n == 5
        assert state.diameter is None
        state.check_invariants()

    def test_mixing_nonempty_populations_raises(self):
        mono = ParticleState(x=np.zeros((2, 3)), v=np.zeros((2, 3)),
                             a=np.zeros((2, 3)),
                             status=np.zeros(2, dtype=np.int8))
        poly = ParticleState(x=np.zeros((2, 3)), v=np.zeros((2, 3)),
                             a=np.zeros((2, 3)),
                             status=np.zeros(2, dtype=np.int8),
                             diameter=np.full(2, 1e-6))
        with pytest.raises(ValueError, match="mix"):
            mono.extend(poly)

    def test_check_invariants_catches_length_mismatch(self):
        state = ParticleState(x=np.zeros((3, 3)), v=np.zeros((3, 3)),
                              a=np.zeros((3, 3)),
                              status=np.zeros(3, dtype=np.int8),
                              diameter=np.zeros(2))
        with pytest.raises(ValueError, match="diameter"):
            state.check_invariants()

    def test_extend_empty_with_polydisperse_adopts_diameters(self):
        state = ParticleState.empty()
        poly = ParticleState(x=np.zeros((3, 3)), v=np.zeros((3, 3)),
                             a=np.zeros((3, 3)),
                             status=np.zeros(3, dtype=np.int8),
                             diameter=np.full(3, 2e-6))
        state.extend(poly)
        assert state.diameter is not None and len(state.diameter) == 3
        state.check_invariants()
