"""Tests for trace export (CSV / Paraver) and mesh I/O (legacy VTK)."""

import io

import numpy as np
import pytest

from repro.mesh import ElementType, MeshResolution, Segment, build_tube_mesh
from repro.mesh.io import read_vtk, write_vtk
from repro.trace import PhaseLog, read_csv, write_csv, write_prv


def sample_log():
    log = PhaseLog(nranks=2)
    log.add(0, "assembly", 0, 0.0, 1.5e-3, busy=1.4e-3, instructions=1e6)
    log.add(0, "assembly", 1, 0.0, 2.0e-3, busy=1.9e-3, instructions=2e6)
    log.add(0, "particles", 0, 2.0e-3, 2.1e-3, busy=0.1e-3,
            instructions=5e4)
    log.add(1, "assembly", 0, 3.0e-3, 4.0e-3, busy=0.9e-3, instructions=9e5)
    return log


class TestCSVRoundTrip:
    def test_lossless(self):
        log = sample_log()
        buf = io.StringIO()
        write_csv(log, buf)
        buf.seek(0)
        back = read_csv(buf, nranks=2)
        assert len(back.samples) == len(log.samples)
        for a, b in zip(log.samples, back.samples):
            assert a == b

    def test_metrics_survive(self):
        log = sample_log()
        buf = io.StringIO()
        write_csv(log, buf)
        buf.seek(0)
        back = read_csv(buf, nranks=2)
        assert back.load_balance("assembly") == pytest.approx(
            log.load_balance("assembly"))
        assert back.percent_time("particles") == pytest.approx(
            log.percent_time("particles"))

    def test_file_paths(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        write_csv(sample_log(), path)
        back = read_csv(path, nranks=2)
        assert len(back.samples) == 4

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            read_csv(io.StringIO("nope\n"), nranks=2)


class TestPrvExport:
    def test_structure(self):
        log = sample_log()
        buf = io.StringIO()
        states = write_prv(log, buf)
        assert states == {"assembly": 1, "particles": 2}
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("#Paraver")
        records = [ln for ln in lines if not ln.startswith("#")]
        assert len(records) == 4
        # record fields: 1:cpu:appl:task:thread:begin:end:state
        first = records[0].split(":")
        assert first[0] == "1"
        assert int(first[5]) <= int(first[6])

    def test_states_match_phases(self):
        log = sample_log()
        buf = io.StringIO()
        states = write_prv(log, buf)
        for line in buf.getvalue().splitlines():
            if line.startswith("#"):
                continue
            state = int(line.split(":")[-1])
            assert state in states.values()

    def test_times_in_nanoseconds(self):
        log = sample_log()
        buf = io.StringIO()
        write_prv(log, buf)
        records = [ln for ln in buf.getvalue().splitlines()
                   if not ln.startswith("#")]
        ends = [int(r.split(":")[6]) for r in records]
        assert max(ends) == int(round(4.0e-3 * 1e9))


@pytest.fixture(scope="module")
def tube():
    seg = Segment(sid=3, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.03,
                  radius=0.008)
    return build_tube_mesh(seg, MeshResolution(points_per_ring=6))


class TestVTKRoundTrip:
    def test_mesh_survives(self, tube, tmp_path):
        path = str(tmp_path / "tube.vtk")
        write_vtk(tube, path)
        back, data = read_vtk(path)
        assert back.nnodes == tube.nnodes
        assert back.nelem == tube.nelem
        np.testing.assert_allclose(back.coords, tube.coords)
        np.testing.assert_array_equal(back.elem_types, tube.elem_types)
        np.testing.assert_array_equal(back.elem_nodes, tube.elem_nodes)
        np.testing.assert_array_equal(back.regions, tube.regions)

    def test_volumes_preserved(self, tube):
        buf = io.StringIO()
        write_vtk(tube, buf)
        buf.seek(0)
        back, _ = read_vtk(buf)
        assert back.volumes().sum() == pytest.approx(tube.volumes().sum())

    def test_extra_cell_data(self, tube):
        buf = io.StringIO()
        partition = np.arange(tube.nelem) % 4
        write_vtk(tube, buf, cell_data={"part": partition})
        buf.seek(0)
        _, data = read_vtk(buf)
        np.testing.assert_array_equal(data["part"], partition)
        assert "region" in data

    def test_wrong_cell_data_shape_rejected(self, tube):
        with pytest.raises(ValueError):
            write_vtk(tube, io.StringIO(), cell_data={"x": np.zeros(3)})

    def test_cell_type_ids(self, tube):
        buf = io.StringIO()
        write_vtk(tube, buf)
        text = buf.getvalue()
        assert "10" in text.split("CELL_TYPES")[1]  # tets present
        assert "13" in text.split("CELL_TYPES")[1]  # prisms present

    def test_rejects_non_vtk(self):
        with pytest.raises(ValueError):
            read_vtk(io.StringIO("hello\nworld\n"))
