"""Bit-identicality and unit tests for the PR 8 numeric fluid fast paths.

The three fluid toggles — ``fluid_operator_recycle``,
``deflation_setup_cache``, ``krylov_buffers`` — are wall-clock-only: every
combination must reproduce the naive paths' velocity/pressure fields and
Krylov iteration counts bit for bit, for both pressure solvers.
"""

import itertools

import numpy as np
import pytest
from scipy import sparse

from repro.fem import (FlowBC, FractionalStepSolver, apply_dirichlet,
                       assemble_operator, vector_operator)
from repro.fem.dirichlet import DirichletSlots
from repro.fem.fractional_step import FLUID_COUNTERS
from repro.fem.vector import vector_expansion_perm
from repro.mesh.airway import Segment
from repro.mesh.generator import MeshResolution, build_tube_mesh
from repro.perf.toggles import configured

FLUID_TOGGLES = ("fluid_operator_recycle", "deflation_setup_cache",
                 "krylov_buffers")


@pytest.fixture(scope="module")
def tube():
    seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                  radius=0.01)
    mesh = build_tube_mesh(seg, MeshResolution(points_per_ring=8,
                                               max_sections=6))
    z = mesh.coords[:, 2]
    r = np.linalg.norm(mesh.coords[:, :2], axis=1)
    inlet = np.nonzero(np.isclose(z, 0.0) & (r < 0.0099))[0]
    outlet = np.nonzero(np.isclose(z, -0.04))[0]
    wall = np.nonzero(np.isclose(r, 0.01))[0]
    u_in = np.zeros((len(inlet), 3))
    u_in[:, 2] = -1.0 * (1.0 - (r[inlet] / 0.01) ** 2)
    bc = FlowBC(inlet_nodes=inlet, inlet_velocity=u_in, wall_nodes=wall,
                outlet_nodes=outlet)
    return mesh, bc


def _run_steps(mesh, bc, pressure_solver, n_steps=6):
    solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                  dt=2e-3, pressure_solver=pressure_solver)
    infos = solver.run(n_steps, tol=1e-6)
    iters = [(i.momentum_iterations, i.pressure_iterations) for i in infos]
    return solver.u.tobytes(), solver.p.tobytes(), iters


class TestFluidToggleMatrix:
    @pytest.mark.parametrize("pressure_solver", ["cg", "deflated"])
    def test_all_toggle_combinations_bit_identical(self, tube,
                                                   pressure_solver):
        """Every subset of the fluid toggles reproduces the all-off
        reference exactly (fields and iteration counts)."""
        mesh, bc = tube
        with configured(**{t: False for t in FLUID_TOGGLES}):
            ref = _run_steps(mesh, bc, pressure_solver)
        for combo in itertools.product([False, True], repeat=3):
            state = dict(zip(FLUID_TOGGLES, combo))
            with configured(**state):
                got = _run_steps(mesh, bc, pressure_solver)
            assert got == ref, f"fluid digest depends on toggles {state}"

    def test_counters_track_the_active_path(self, tube):
        mesh, bc = tube
        with configured(fluid_operator_recycle=True,
                        deflation_setup_cache=True):
            before = dict(FLUID_COUNTERS)
            solver = FractionalStepSolver(mesh, bc, viscosity=1e-3,
                                          density=1.0, dt=2e-3,
                                          pressure_solver="deflated")
            solver.run(2, tol=1e-6)
            assert FLUID_COUNTERS["momentum_recycled"] \
                == before["momentum_recycled"] + 2
            assert FLUID_COUNTERS["deflation_setups_built"] \
                == before["deflation_setups_built"] + 1
            assert FLUID_COUNTERS["deflation_setups_reused"] \
                == before["deflation_setups_reused"] + 2
            assert FLUID_COUNTERS["pressure_deflated_solves"] \
                == before["pressure_deflated_solves"] + 2
        with configured(fluid_operator_recycle=False):
            before = dict(FLUID_COUNTERS)
            solver = FractionalStepSolver(mesh, bc, viscosity=1e-3,
                                          density=1.0, dt=2e-3)
            solver.run(2, tol=1e-6)
            assert FLUID_COUNTERS["momentum_rebuilt"] \
                == before["momentum_rebuilt"] + 2

    def test_stale_pattern_raises(self, tube):
        """The recycler refuses to gather through a pattern that no longer
        matches the scalar assembly (static-mesh contract)."""
        mesh, bc = tube
        with configured(fluid_operator_recycle=True):
            solver = FractionalStepSolver(mesh, bc, viscosity=1e-3,
                                          density=1.0, dt=2e-3)
            solver._scalar_nnz += 1
            with pytest.raises(ValueError, match="stale"):
                solver.step(tol=1e-6)

    def test_lumped_mass_cached(self, tube):
        mesh, bc = tube
        solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=2e-3)
        np.testing.assert_array_equal(
            solver._lumped, np.asarray(solver.M.sum(axis=1)).ravel())
        nodes = bc.outlet_nodes
        normal = np.array([0.0, 0.0, -1.0])
        u_n = solver.u[nodes] @ normal
        w = np.asarray(solver.M.sum(axis=1)).ravel()[nodes]
        expected = float((u_n * w).sum() / w.sum())
        assert solver.flow_rate_through(nodes, normal) == expected


class TestVectorExpansionPerm:
    def test_reproduces_vector_operator_bitwise(self, tube):
        mesh, _ = tube
        scalar = assemble_operator(mesh, kappa=1e-3, mass_coeff=500.0,
                                   velocity=np.ones((mesh.nnodes, 3))).matrix
        perm, indices, indptr = vector_expansion_perm(scalar, mesh.nnodes)
        naive = vector_operator(mesh, kappa=1e-3, mass_coeff=500.0,
                                velocity=np.ones((mesh.nnodes, 3)))
        np.testing.assert_array_equal(indices, naive.indices)
        np.testing.assert_array_equal(indptr, naive.indptr)
        np.testing.assert_array_equal(scalar.data[perm], naive.data)


class TestDirichletSlots:
    def _system(self, n=40, seed=4):
        rng = np.random.default_rng(seed)
        A = sparse.random(n, n, density=0.15, random_state=rng).tocsr()
        A = A + sparse.identity(n)  # stored diagonal
        dofs = np.array([0, 5, 17, n - 1])
        values = np.array([1.0, -2.0, 0.5, 3.0])
        return A.tocsr(), dofs, values

    def test_apply_matches_apply_dirichlet_bitwise(self):
        A, dofs, values = self._system()
        slots = DirichletSlots(A, dofs, values)
        rng = np.random.default_rng(7)
        for _ in range(3):
            data = rng.normal(size=A.nnz)
            B = sparse.csr_matrix((data, A.indices, A.indptr), shape=A.shape)
            b = rng.normal(size=A.shape[0])
            ref_A, ref_b = apply_dirichlet(B, b.copy(), dofs, values)
            got_A, got_b = slots.apply(data, b.copy())
            np.testing.assert_array_equal(got_A.indptr, ref_A.indptr)
            np.testing.assert_array_equal(got_A.indices, ref_A.indices)
            np.testing.assert_array_equal(got_A.data, ref_A.data)
            np.testing.assert_array_equal(got_b, ref_b)

    def test_diag_slots_view_the_diagonal(self):
        A, dofs, values = self._system()
        slots = DirichletSlots(A, dofs, values)
        assert slots.diag_slots is not None
        data = np.arange(1.0, A.nnz + 1)
        got_A, _ = slots.apply(data, np.zeros(A.shape[0]))
        np.testing.assert_array_equal(
            got_A.data[slots.diag_slots], got_A.diagonal())

    def test_stale_data_length_raises(self):
        A, dofs, values = self._system()
        slots = DirichletSlots(A, dofs, values)
        with pytest.raises(ValueError, match="stale"):
            slots.apply(np.zeros(A.nnz + 3), np.zeros(A.shape[0]))
