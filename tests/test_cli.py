"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import EXIT_KILLED, main


class TestCLI:
    def test_run_subcommand(self, capsys):
        rc = main(["run", "--generations", "3", "--steps", "2",
                   "--nranks", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total simulated time" in out
        assert "assembly" in out

    def test_run_with_dlb_and_coupled(self, capsys):
        rc = main(["run", "--generations", "3", "--steps", "2",
                   "--nranks", "8", "--mode", "coupled",
                   "--fluid-ranks", "5", "--dlb"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DLB:" in out
        assert "5+3 +DLB" in out

    def test_table1_subcommand(self, capsys):
        rc = main(["table1", "--generations", "3", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L96" in out and "assembly" in out

    def test_fig2_subcommand(self, capsys):
        rc = main(["fig2", "--generations", "3", "--steps", "2",
                   "--width", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legend" in out and "rank" in out

    def test_mesh_subcommand(self, capsys, tmp_path):
        vtk = str(tmp_path / "m.vtk")
        rc = main(["mesh", "--generations", "2", "--vtk", vtk])
        assert rc == 0
        out = capsys.readouterr().out
        assert "segments" in out
        with open(vtk) as fh:
            assert fh.readline().startswith("# vtk")

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--assembly", "magic"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestJSONOutput:
    def test_run_json_is_a_job_record(self, capsys):
        rc = main(["run", "--generations", "3", "--steps", "2",
                   "--nranks", "8", "--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == "repro-campaign-job-v1"
        assert record["config"]["nranks"] == 8
        assert record["metrics"]["total_time"] > 0

    def test_table1_json_rows(self, capsys):
        rc = main(["table1", "--generations", "3", "--steps", "2",
                   "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert {"assembly", "particles"} <= {r["phase"] for r in rows}
        assert all("paper_load_balance" in r for r in rows)

    def test_fig2_json_rows(self, capsys):
        rc = main(["fig2", "--generations", "3", "--steps", "2", "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and {"step", "rank", "phase", "t0", "t1"} <= \
            set(rows[0])


class TestCampaignCLI:
    def test_run_status_report_roundtrip(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        rc = main(["campaign", "run", "--name", "ci-smoke",
                   "--store", store, "--generations", "2", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "executed" in out

        rc = main(["campaign", "status", "--store", store])
        assert rc == 0
        out = capsys.readouterr().out
        assert "finished" in out and "objects" in out

        rc = main(["campaign", "report", "--name", "ci-smoke",
                   "--store", store, "--generations", "2", "--steps", "2"])
        assert rc == 0
        assert "cells complete" in capsys.readouterr().out

    def test_rerun_is_cached_json(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        args = ["campaign", "run", "--name", "ci-smoke", "--store", store,
                "--generations", "2", "--steps", "2", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["stats"]["executed"] == 4
        assert main(args) == 0
        again = json.loads(capsys.readouterr().out)
        assert again["stats"]["executed"] == 0
        assert again["stats"]["cached"] == 4
        assert again["digests"] == first["digests"]

    def test_kill_then_resume(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        rc = main(["campaign", "run", "--name", "ci-smoke",
                   "--store", store, "--generations", "2", "--steps", "2",
                   "--kill-after", "2"])
        assert rc == EXIT_KILLED
        assert "resume" in capsys.readouterr().err

        rc = main(["campaign", "resume", "--name", "ci-smoke",
                   "--store", store, "--generations", "2", "--steps", "2",
                   "--json"])
        assert rc == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["stats"]["cached"] == 2
        assert resumed["stats"]["executed"] == 2

    def test_spec_file_run(self, capsys, tmp_path):
        from repro.app import RunConfig, WorkloadSpec
        from repro.campaign import CampaignSpec

        spec_path = str(tmp_path / "c.json")
        CampaignSpec(
            name="from-file",
            base_config=RunConfig(cluster="thunder", num_nodes=1, nranks=2,
                                  threads_per_rank=1),
            base_spec=WorkloadSpec(generations=2, points_per_ring=6,
                                   n_steps=2),
            grid=[("config.dlb", [False, True])]).to_file(spec_path)
        rc = main(["campaign", "run", "--spec-file", spec_path,
                   "--store", str(tmp_path / "store"), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"] == "from-file"
        assert payload["stats"]["jobs"] == 2

    def test_worker_chaos_run_converges_and_reports(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        rc = main(["campaign", "run", "--name", "ci-smoke",
                   "--store", store, "--generations", "2", "--steps", "2",
                   "--workers", "2", "--kill-worker-at", "1", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["executed"] == 4
        sup = payload["stats"]["supervision"]
        assert sup["worker_losses"] == 1
        assert sup["lease_grants"] == 5

    def test_doctor_clean_store_exits_zero(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--name", "ci-smoke",
                     "--store", store, "--generations", "2",
                     "--steps", "2", "--json"]) == 0
        capsys.readouterr()
        rc = main(["campaign", "doctor", "--store", store])
        assert rc == 0
        assert "verdict: clean" in capsys.readouterr().out

    def test_doctor_flags_damage_exits_one(self, capsys, tmp_path):
        from repro.campaign import ResultStore

        store = str(tmp_path / "store")
        assert main(["campaign", "run", "--name", "ci-smoke",
                     "--store", store, "--generations", "2",
                     "--steps", "2", "--json"]) == 0
        capsys.readouterr()
        rs = ResultStore(store)
        fp = next(rs.fingerprints())
        with open(rs._path(fp), "w") as fh:
            fh.write("{ torn")
        rc = main(["campaign", "doctor", "--store", store, "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any("corrupt" in p for p in payload["problems"])

    def test_campaign_requires_name_or_spec_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--store", str(tmp_path / "s")])

    def test_unknown_builtin_campaign(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--name", "nope",
                  "--store", str(tmp_path / "s")])
