"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_run_subcommand(self, capsys):
        rc = main(["run", "--generations", "3", "--steps", "2",
                   "--nranks", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total simulated time" in out
        assert "assembly" in out

    def test_run_with_dlb_and_coupled(self, capsys):
        rc = main(["run", "--generations", "3", "--steps", "2",
                   "--nranks", "8", "--mode", "coupled",
                   "--fluid-ranks", "5", "--dlb"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DLB:" in out
        assert "5+3 +DLB" in out

    def test_table1_subcommand(self, capsys):
        rc = main(["table1", "--generations", "3", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L96" in out and "assembly" in out

    def test_fig2_subcommand(self, capsys):
        rc = main(["fig2", "--generations", "3", "--steps", "2",
                   "--width", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legend" in out and "rank" in out

    def test_mesh_subcommand(self, capsys, tmp_path):
        vtk = str(tmp_path / "m.vtk")
        rc = main(["mesh", "--generations", "2", "--vtk", vtk])
        assert rc == 0
        out = capsys.readouterr().out
        assert "segments" in out
        with open(vtk) as fh:
            assert fh.readline().startswith("# vtk")

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--assembly", "magic"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
