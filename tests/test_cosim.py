"""Tests for the PR 10 co-simulation stack (`repro.cosim` + coupling).

Covers the 0D lung/ventilator model (eager validation, closed-form
phases, conservation of the Euler trace), the buffered co-simulation hub
(receive/transform/forward, hold vs interp staleness policies, cyclic
queries, pure transfer summaries, hub caching), the `WorkloadSpec`
breathing waveform family (validation satellites, `waveform_scale` edge
cases at exact phase boundaries / beyond `t_end` / on the clipped
off-ladder final step, inhale-gated injection), the tracker's carrier
`flow_scale`, the fluid solver's hub-driven inlet rescale, the driver's
`cosim_diag`, bit-identical ventilator runs across reruns /
`engine_batch` / every fluid fast-path toggle, and the breathing
deposition campaign end to end.
"""

import hashlib
import math

import numpy as np
import pytest

from repro.app import BREATHING_WAVEFORMS, INLET_WAVEFORMS
from repro.app.driver import RunConfig, run_cfpd
from repro.app.workload import WorkloadSpec, get_workload
from repro.campaign import get_campaign
from repro.cosim import (
    BREATHING_PHASES,
    SCALE_FLOOR,
    VENTILATION_PATTERNS,
    BreathingPattern,
    CosimHub,
    HubPolicy,
    LungModel,
    VentilatorSettings,
    hub_for,
    simulate_breathing,
)
from repro.fem import FlowBC, FractionalStepSolver
from repro.fem.fractional_step import FLUID_COUNTERS
from repro.mesh.airway import Segment
from repro.mesh.generator import MeshResolution, build_tube_mesh
from repro.particles import (
    FluidProperties,
    NewmarkTracker,
    ParticleProperties,
    ParticleState,
    inject_at_inlet,
)
from repro.perf.toggles import configured

FLUID_TOGGLES = ("fluid_operator_recycle", "deflation_setup_cache",
                 "krylov_buffers")

#: a small ventilator-coupled spec exercising every cosim path: hub
#: forwarding, inhale-gated injection, the CFL ladder on the transient
VENT_SPEC = WorkloadSpec(generations=2, points_per_ring=6, n_steps=16,
                         inlet_waveform="ventilator",
                         injection_phase="inhale", injection_interval=4,
                         adaptive="global", dt_ladder_rungs=2)


# -- 0D model ----------------------------------------------------------------

class TestLungModel:
    def test_derived_quantities(self):
        lung = LungModel(r_aw=3.0, c_rs=60.0)
        assert lung.resistance == pytest.approx(0.003)
        assert lung.time_constant == pytest.approx(0.18)

    def test_validation(self):
        with pytest.raises(ValueError):
            LungModel(r_aw=0.0)
        with pytest.raises(ValueError):
            LungModel(c_rs=-1.0)


class TestVentilatorSettings:
    def test_derived_quantities(self):
        vent = VentilatorSettings(tidal_volume=350.0, respiratory_rate=15.0,
                                  inspiratory_time=1.0,
                                  inspiratory_pause=0.25)
        assert vent.cycle_time == pytest.approx(4.0)
        assert vent.expiratory_time == pytest.approx(2.75)
        assert vent.inspiratory_flow == pytest.approx(350.0)

    @pytest.mark.parametrize("kwargs", [
        {"tidal_volume": 0.0},
        {"tidal_volume": -10.0},
        {"respiratory_rate": 0.0},
        {"respiratory_rate": -5.0},
        {"inspiratory_time": 0.0},
        {"inspiratory_time": -1.0},
        {"inspiratory_pause": -0.1},
        {"peep": -1.0},
        {"cpap": -0.5},
        # inhale + pause fill the whole 60/20=3 s cycle: no room to exhale
        {"respiratory_rate": 20.0, "inspiratory_time": 2.5,
         "inspiratory_pause": 0.5},
    ])
    def test_eager_validation(self, kwargs):
        with pytest.raises(ValueError):
            VentilatorSettings(**kwargs)


class TestBreathingPattern:
    def test_phase_at_exact_boundaries(self):
        p = BreathingPattern()
        t_i = p.ventilator.inspiratory_time
        t_ip = p.ventilator.inspiratory_pause
        cycle = p.ventilator.cycle_time
        assert p.phase_at(0.0) == ("inhale", 0.0)
        assert p.phase_at(t_i) == ("pause", 0.0)
        assert p.phase_at(t_i + t_ip) == ("exhale", 0.0)
        # exact cycle boundary wraps back to inhale start
        name, s = p.phase_at(cycle)
        assert name == "inhale" and s == pytest.approx(0.0, abs=1e-12)
        # negative times wrap too
        assert p.phase_at(-0.5 * cycle)[0] == p.phase_at(0.5 * cycle)[0]

    def test_flow_shape(self):
        p = BreathingPattern()
        t_i = p.ventilator.inspiratory_time
        t_ip = p.ventilator.inspiratory_pause
        assert p.flow_at(0.5 * t_i) == pytest.approx(p.inhale_flow)
        assert p.flow_at(t_i + 0.5 * t_ip) == 0.0
        # exhale: negative, decaying toward zero
        q0 = p.flow_at(t_i + t_ip)
        q1 = p.flow_at(t_i + t_ip + 3 * p.lung.time_constant)
        assert q0 == pytest.approx(-p.exhale_flow0)
        assert q0 < q1 < 0.0

    def test_volume_continuity(self):
        p = BreathingPattern()
        t_i = p.ventilator.inspiratory_time
        t_ip = p.ventilator.inspiratory_pause
        assert p.volume_at(t_i) == pytest.approx(p.end_volume)
        assert p.volume_at(t_i + t_ip) == pytest.approx(p.end_volume)
        # the residual at end-expiration is exp(-t_e/tau) of V_end: tiny
        residual = p.volume_at(p.ventilator.cycle_time - 1e-12)
        assert residual < 1e-4 * p.end_volume

    def test_scale_floor_and_peak(self):
        p = BreathingPattern()
        # defaults: passive exhalation peaks above the driver flow
        assert p.peak_flow == pytest.approx(p.exhale_flow0)
        assert p.scale_at(0.0) == pytest.approx(p.inhale_flow / p.peak_flow)
        # late exhale decays below the floor: clamped
        t_late = p.ventilator.cycle_time - 1e-6
        assert p.scale_at(t_late) == SCALE_FLOOR
        # pause has zero flow: floored too
        assert p.scale_at(p.ventilator.inspiratory_time) == SCALE_FLOOR

    def test_next_inhale_start(self):
        p = BreathingPattern()
        cycle = p.ventilator.cycle_time
        assert p.next_inhale_start(0.3) == 0.3          # already inhaling
        assert p.next_inhale_start(2.0) == pytest.approx(cycle)
        assert p.next_inhale_start(cycle + 2.0) == pytest.approx(2 * cycle)

    def test_cpap_defeating_exhalation_rejected(self):
        # with t_i < tau the CPAP support flow cannot build enough recoil
        # volume during inspiration: V_end/C stays below CPAP and there
        # is no pressure gradient to exhale against
        with pytest.raises(ValueError, match="cpap"):
            BreathingPattern(ventilator=VentilatorSettings(
                inspiratory_time=0.1, cpap=20.0))


class TestSimulateBreathing:
    def test_deterministic_and_shapes(self):
        p = BreathingPattern()
        a = simulate_breathing(p, n_cycles=2, samples_per_cycle=128)
        b = simulate_breathing(p, n_cycles=2, samples_per_cycle=128)
        assert a.duration == pytest.approx(2 * p.ventilator.cycle_time)
        assert len(a.flow) == 256
        for name in ("t", "flow", "volume", "pressure", "phase"):
            assert (getattr(a, name) == getattr(b, name)).all()

    def test_trace_tracks_analytic_model(self):
        p = BreathingPattern()
        trace = simulate_breathing(p, samples_per_cycle=2048)
        exact = np.array([p.volume_at(t) for t in trace.t])
        err = np.abs(trace.volume - exact).max()
        assert err < 0.01 * p.end_volume
        assert trace.peak_flow == pytest.approx(p.peak_flow, rel=0.05)
        # phase indices follow the cycle order
        assert trace.phase[0] == BREATHING_PHASES.index("inhale")
        assert trace.phase[-1] == BREATHING_PHASES.index("exhale")

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_breathing(BreathingPattern(), n_cycles=0)
        with pytest.raises(ValueError):
            simulate_breathing(BreathingPattern(), samples_per_cycle=4)


# -- hub ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def trace():
    return simulate_breathing(BreathingPattern(), n_cycles=2,
                              samples_per_cycle=512)


class TestHubPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HubPolicy(window=0)
        with pytest.raises(ValueError):
            HubPolicy(mode="extrapolate")
        with pytest.raises(ValueError):
            HubPolicy(floor=1.0)
        with pytest.raises(ValueError):
            HubPolicy(floor=-0.1)


class TestCosimHub:
    def test_receive_transform(self, trace):
        hub = CosimHub(trace, HubPolicy(window=16))
        assert hub.n_windows == math.ceil(len(trace.flow) / 16)
        assert hub.window_dt == pytest.approx(16 * trace.dt)
        assert (hub.scales >= SCALE_FLOOR).all()
        assert (hub.scales <= 1.0 + 1e-12).all()

    def test_hold_forwards_last_completed_window(self, trace):
        hub = CosimHub(trace, HubPolicy(window=16, mode="hold"))
        # mid window k: the forwarded value is window k-1's scale
        t = 2.5 * hub.window_dt
        assert hub.scale_at(t) == pytest.approx(float(hub.scales[1]))
        # the first window bootstraps itself
        assert hub.scale_at(0.0) == pytest.approx(float(hub.scales[0]))

    def test_interp_between_centers(self, trace):
        hub = CosimHub(trace, HubPolicy(window=16, mode="interp"))
        # exactly at a window center the interpolant hits the window scale
        t = float(hub._centers[3])
        assert hub.scale_at(t) == pytest.approx(float(hub.scales[3]))
        mid = 0.5 * float(hub._centers[3] + hub._centers[4])
        expected = 0.5 * float(hub.scales[3] + hub.scales[4])
        assert hub.scale_at(mid) == pytest.approx(expected)

    def test_cyclic_queries(self, trace):
        for mode in ("hold", "interp"):
            hub = CosimHub(trace, HubPolicy(mode=mode))
            for t in (0.1, 1.7, 3.9):
                assert hub.scale_at(t + hub.duration) == \
                    pytest.approx(hub.scale_at(t))
                assert hub.scale_at(t) > 0.0

    def test_time_scale_maps_solver_time(self, trace):
        hub1 = CosimHub(trace, time_scale=1.0)
        hub100 = CosimHub(trace, time_scale=100.0)
        assert hub100.scale_at(0.01) == pytest.approx(hub1.scale_at(1.0))
        with pytest.raises(ValueError):
            CosimHub(trace, time_scale=0.0)

    def test_staleness(self, trace):
        hold = CosimHub(trace, HubPolicy(window=16, mode="hold"))
        # hold: age grows within a window, resets at the next boundary
        t0 = 2.0 * hold.window_dt
        assert hold.staleness(t0) == pytest.approx(0.0, abs=1e-12)
        assert hold.staleness(t0 + 0.5 * hold.window_dt) == \
            pytest.approx(0.5 * hold.window_dt)
        interp = CosimHub(trace, HubPolicy(window=16, mode="interp"))
        times = np.linspace(0.0, interp.duration * 0.99, 37)
        assert max(interp.staleness(t) for t in times) <= \
            0.5 * interp.window_dt + 1e-12

    def test_transfer_summary_is_pure(self, trace):
        hub = CosimHub(trace)
        times = [0.0, 0.5, 1.0, 2.5]
        a = hub.transfer_summary(times)
        b = hub.transfer_summary(times)
        assert a == b
        assert a["forwards"] == 4
        assert a["windows"] == hub.n_windows
        assert a["forward_scale_min"] >= SCALE_FLOOR
        assert a["staleness_max"] >= a["staleness_mean"] >= 0.0
        # the summary is a schedule property: extra live queries between
        # the two calls must not change it (no hidden counters)
        hub.scale_at(1.23)
        assert hub.transfer_summary(times) == a

    def test_hub_for_caches_by_value(self):
        p = BreathingPattern()
        a = hub_for(p, n_cycles=1, horizon=2e-3)
        b = hub_for(BreathingPattern(), n_cycles=1, horizon=2e-3)
        assert a is b                     # frozen pattern: value-keyed hit
        c = hub_for(p, n_cycles=1, horizon=4e-3)
        assert c is not a
        assert a.time_scale == pytest.approx(
            p.ventilator.cycle_time / 2e-3)
        with pytest.raises(ValueError):
            hub_for(p, n_cycles=1, horizon=0.0)


# -- WorkloadSpec: breathing family -----------------------------------------

class TestSpecValidation:
    def test_waveform_error_enumerates_all_modes(self):
        with pytest.raises(ValueError) as err:
            WorkloadSpec(inlet_waveform="square")
        message = str(err.value)
        for mode in INLET_WAVEFORMS:
            assert f"'{mode}'" in message
        assert "square" in message

    @pytest.mark.parametrize("kwargs", [
        {"respiratory_rate": 0.0},
        {"respiratory_rate": -12.0},
        {"tidal_volume": 0.0},
        {"tidal_volume": -400.0},
        {"inspiratory_time": 0.0},
        {"inspiratory_time": -1.0},
        {"inspiratory_pause": -0.1},
        {"cpap": -1.0},
        {"breathing_cycles": 0},
        {"injection_phase": "exhale"},
        {"particle_diameter": 0.0},
    ])
    def test_eager_field_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)

    def test_gating_requires_breathing_waveform(self):
        with pytest.raises(ValueError, match="injection_phase"):
            WorkloadSpec(injection_phase="inhale")
        for wf in BREATHING_WAVEFORMS:
            WorkloadSpec(inlet_waveform=wf, injection_phase="inhale")

    def test_cross_field_validation_is_eager_for_breathing(self):
        # inconsistent ventilator timing only matters once a breathing
        # waveform asks for the pattern — then it fails at spec build
        bad = {"respiratory_rate": 20.0, "inspiratory_time": 2.5,
               "inspiratory_pause": 0.5}
        WorkloadSpec(**bad)               # steady: fields are inert
        with pytest.raises(ValueError):
            WorkloadSpec(inlet_waveform="breathing", **bad)


class TestWaveformScale:
    def test_exact_phase_boundaries(self):
        spec = WorkloadSpec(inlet_waveform="breathing", n_steps=16)
        pattern = spec.breathing_pattern()
        ts = spec.breathing_time_scale
        t_i = pattern.ventilator.inspiratory_time
        # inhale start and interior: the constant inspiratory scale
        inhale_scale = pattern.inhale_flow / pattern.peak_flow
        assert spec.waveform_scale(0.0) == pytest.approx(inhale_scale)
        assert spec.waveform_scale(0.5 * t_i / ts) == \
            pytest.approx(inhale_scale)
        # pause start (exact boundary): zero flow, floored
        assert spec.waveform_scale(t_i / ts) == SCALE_FLOOR

    @pytest.mark.parametrize("waveform", BREATHING_WAVEFORMS)
    def test_beyond_t_end_wraps_cyclically(self, waveform):
        spec = WorkloadSpec(inlet_waveform=waveform, n_steps=16)
        for t in (0.2 * spec.t_end, 0.7 * spec.t_end):
            assert spec.waveform_scale(spec.t_end + t) == \
                pytest.approx(spec.waveform_scale(t))

    def test_scale_bounded(self):
        for waveform in BREATHING_WAVEFORMS:
            spec = WorkloadSpec(inlet_waveform=waveform, n_steps=16)
            scales = [spec.waveform_scale(t)
                      for t in np.linspace(0.0, spec.t_end, 50)]
            assert min(scales) >= SCALE_FLOOR
            assert max(scales) <= 1.0 + 1e-12

    def test_clipped_final_step_with_time_varying_waveform(self):
        wl = get_workload(VENT_SPEC)
        plans = wl.dt_schedule()
        spec = wl.spec
        # the schedule lands exactly on t_end
        assert sum(p.dt for p in plans) == pytest.approx(spec.t_end,
                                                         rel=1e-12)
        assert plans[-1].t + plans[-1].dt == pytest.approx(spec.t_end,
                                                           rel=1e-12)
        # every step's scale — including the clipped off-ladder final one
        # — is the waveform evaluated at the step start
        for plan in plans:
            assert plan.scale == pytest.approx(spec.waveform_scale(plan.t))
        rungs = {p.rung for p in plans}
        assert rungs - {-1}, "transient should keep some steps on-ladder"


class TestInjectionGating:
    def test_ungated_off_mode_unchanged(self):
        spec = WorkloadSpec(generations=2, points_per_ring=6, n_steps=8,
                            injection_interval=2)
        wl = get_workload(spec)
        assert wl.injection_step_set() == set(spec.injection_steps())

    def test_gated_injections_land_in_inhale_windows(self):
        spec = WorkloadSpec(generations=2, points_per_ring=6, n_steps=16,
                            inlet_waveform="breathing",
                            injection_phase="inhale", injection_interval=2,
                            breathing_cycles=2)
        wl = get_workload(spec)
        pattern = spec.breathing_pattern()
        steps = wl.injection_step_set()
        assert steps, "gating must keep at least the t=0 injection"
        # fewer injections than nominal: late-cycle ones were dropped
        assert len(steps) < len(spec.injection_steps())
        plans = wl.dt_schedule()
        eps = 1e-9 * pattern.ventilator.cycle_time
        for s in steps:
            tb = spec.breathing_time(plans[s].t)
            name, _ = pattern.phase_at(tb + eps)
            assert name == "inhale"

    def test_gated_drops_windows_beyond_t_end(self):
        # one cycle, one late nominal injection: its next inhale start is
        # t_end itself, so it must be dropped, not wrapped
        spec = WorkloadSpec(generations=2, points_per_ring=6, n_steps=16,
                            inlet_waveform="breathing",
                            injection_phase="inhale",
                            injection_interval=12)
        wl = get_workload(spec)
        assert wl.injection_step_set() == {0}


# -- carrier-flow coupling ---------------------------------------------------

class TestTrackerFlowScale:
    @pytest.fixture(scope="class")
    def setup(self):
        wl = get_workload(WorkloadSpec(generations=2, points_per_ring=6))
        tracker = NewmarkTracker(wl.flow, particles=ParticleProperties(),
                                 fluid=FluidProperties())
        return wl, tracker

    def _stepped(self, setup, n=5, **kwargs):
        wl, tracker = setup
        state = ParticleState.empty()
        state.extend(inject_at_inlet(wl.airway, 32, seed=7))
        for _ in range(n):
            tracker.step(state, 1e-4, **kwargs)
        return state

    def test_unit_scale_is_the_default_path(self, setup):
        a = self._stepped(setup)
        b = self._stepped(setup, flow_scale=1.0)
        assert (a.x == b.x).all() and (a.v == b.v).all()

    def test_scaled_carrier_changes_transport(self, setup):
        a = self._stepped(setup)
        b = self._stepped(setup, flow_scale=0.2)
        assert not (a.x == b.x).all()
        # weaker carrier: particles travel less far from the inlet
        assert np.linalg.norm(b.v) < np.linalg.norm(a.v)


class TestInletRescale:
    @pytest.fixture(scope="class")
    def tube(self):
        seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                      direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                      radius=0.01)
        mesh = build_tube_mesh(seg, MeshResolution(points_per_ring=8,
                                                   max_sections=6))
        z = mesh.coords[:, 2]
        r = np.linalg.norm(mesh.coords[:, :2], axis=1)
        inlet = np.nonzero(np.isclose(z, 0.0) & (r < 0.0099))[0]
        outlet = np.nonzero(np.isclose(z, -0.04))[0]
        wall = np.nonzero(np.isclose(r, 0.01))[0]
        u_in = np.zeros((len(inlet), 3))
        u_in[:, 2] = -1.0 * (1.0 - (r[inlet] / 0.01) ** 2)
        bc = FlowBC(inlet_nodes=inlet, inlet_velocity=u_in,
                    wall_nodes=wall, outlet_nodes=outlet)
        return mesh, bc, inlet, u_in

    def _solver(self, tube):
        mesh, bc, _, _ = tube
        return FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                    dt=1e-3)

    def test_constant_scale_imposed_on_inlet_dofs(self, tube):
        mesh, bc, inlet, u_in = tube
        solver = self._solver(tube)
        rescales0 = FLUID_COUNTERS["inlet_rescales"]
        infos = solver.advance_to(3e-3, inlet_scale=lambda t: 0.5,
                                  tol=1e-6)
        assert [i.inlet_scale for i in infos] == [0.5] * len(infos)
        # an unchanged scale re-binds once, not per step
        assert FLUID_COUNTERS["inlet_rescales"] - rescales0 == 1
        u = solver.u.reshape(-1, 3)
        assert np.allclose(u[inlet], 0.5 * u_in)

    def test_hub_driven_scale_recorded_per_step(self, tube):
        pattern = BreathingPattern()
        hub = hub_for(pattern, n_cycles=1, horizon=4e-3)
        solver = self._solver(tube)
        infos = solver.advance_to(4e-3, inlet_scale=hub.scale_at, tol=1e-6)
        assert [i.inlet_scale for i in infos] == \
            [pytest.approx(hub.scale_at(t)) for t in
             np.cumsum([0.0] + [i.dt for i in infos[:-1]])]

    def test_set_inlet_scale_validation(self, tube):
        solver = self._solver(tube)
        with pytest.raises(ValueError):
            solver.set_inlet_scale(0.0)

    def test_rescaled_advance_identical_across_fluid_toggles(self, tube):
        pattern = BreathingPattern()
        hub = hub_for(pattern, n_cycles=1, horizon=4e-3)

        def digest():
            solver = self._solver(tube)
            infos = solver.advance_to(4e-3, inlet_scale=hub.scale_at,
                                      tol=1e-6)
            h = hashlib.sha256()
            h.update(solver.u.tobytes())
            h.update(solver.p.tobytes())
            h.update(repr([(i.momentum_iterations, i.pressure_iterations,
                            round(i.inlet_scale, 12))
                           for i in infos]).encode())
            return h.hexdigest()

        ref = digest()
        assert digest() == ref
        with configured(**{t: False for t in FLUID_TOGGLES}):
            assert digest() == ref


# -- driver / determinism matrix --------------------------------------------

def _run_digest(spec):
    cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=4)
    result = run_cfpd(cfg, spec=spec)
    h = hashlib.sha256()
    for s in result.phase_log.samples:
        h.update(repr((s.step, s.rank, s.phase, s.t0, s.t1,
                       s.busy, s.instructions)).encode())
    h.update(repr(result.total_time).encode())
    h.update(repr(result.deposition).encode())
    h.update(repr(sorted(result.cosim_diag)).encode())
    h.update(repr(result.cosim_diag.get("deposited_by_cycle")).encode())
    return h.hexdigest(), result


class TestDriverCosim:
    def test_cosim_diag_contents(self):
        _, result = _run_digest(VENT_SPEC)
        diag = result.cosim_diag
        assert diag["waveform"] == "ventilator"
        assert diag["pattern"]["cycle_time"] == pytest.approx(4.0)
        assert sum(diag["steps_by_phase"].values()) == diag["n_sim_steps"]
        assert set(diag["steps_by_phase"]) == set(BREATHING_PHASES)
        assert diag["injection_phase_policy"] == "inhale"
        assert set(diag["injection_phases"]) <= {"inhale"}
        assert diag["total_injected"] > 0
        assert diag["deposited"] + diag["escaped"] + diag["active"] == \
            diag["total_injected"]
        assert len(diag["deposited_by_cycle"]) == \
            VENT_SPEC.breathing_cycles
        hub = diag["hub"]
        assert hub["forwards"] == diag["n_sim_steps"]
        assert hub["staleness_max"] >= 0.0

    def test_steady_run_has_no_cosim_diag(self):
        _, result = _run_digest(WorkloadSpec(generations=2,
                                             points_per_ring=6, n_steps=2))
        assert result.cosim_diag == {}

    def test_ventilator_run_bit_identical_across_toggles(self):
        ref, _ = _run_digest(VENT_SPEC)
        again, _ = _run_digest(VENT_SPEC)
        assert again == ref
        with configured(engine_batch=False):
            unbatched, _ = _run_digest(VENT_SPEC)
        assert unbatched == ref
        with configured(**{t: False for t in FLUID_TOGGLES},
                        particle_compaction=False,
                        particle_fused_step=False):
            untoggled, _ = _run_digest(VENT_SPEC)
        assert untoggled == ref

    def test_cosim_summary_in_campaign_metrics(self):
        from repro.campaign import Job
        from repro.campaign.runner import run_job

        job = Job(index=0, campaign="t", config=RunConfig(
            cluster="thunder", num_nodes=1, nranks=4), spec=VENT_SPEC)
        record = run_job(job)
        cosim = record["metrics"]["cosim"]
        assert cosim["waveform"] == "ventilator"
        assert cosim["deposition_fraction"] >= 0.0
        # serialized cleanly (the record is store-ready plain data)
        import json

        json.dumps(record)


# -- campaign + experiment ---------------------------------------------------

class TestBreathingCampaign:
    def test_expansion(self):
        camp = get_campaign("breathing")
        jobs = camp.expand()
        patterns = {dict(j.tags)["pattern"] for j in jobs}
        assert patterns == set(VENTILATION_PATTERNS)
        assert len(jobs) == len(VENTILATION_PATTERNS) * 2 * 2
        cells = {(dict(j.tags)["pattern"], j.spec.cpap,
                  j.spec.particle_diameter) for j in jobs}
        assert len(cells) == len(jobs)
        for job in jobs:
            assert job.spec.inlet_waveform == "ventilator"
            assert job.spec.injection_phase == "inhale"
            assert job.spec.adaptive == "global"
            preset = VENTILATION_PATTERNS[dict(job.tags)["pattern"]]
            assert job.spec.respiratory_rate == \
                preset["respiratory_rate"]

    def test_run_breathing_end_to_end(self):
        from repro.experiments import run_breathing

        spec = WorkloadSpec(generations=2, points_per_ring=6, n_steps=16,
                            inlet_waveform="ventilator",
                            injection_phase="inhale",
                            injection_interval=4, adaptive="global",
                            dt_ladder_rungs=2)
        result = run_breathing(spec=spec, total=4,
                               patterns=("rest", "rapid"),
                               cpaps=(0.0,), diameters=(4e-6,))
        assert result.patterns() == ["rest", "rapid"]
        assert set(result.cells) == {("rest", 0.0, 4e-6),
                                     ("rapid", 0.0, 4e-6)}
        for cell in result.cells.values():
            assert cell["injected"] > 0
            assert 0.0 <= cell["deposition_fraction"] <= 1.0
            assert cell["staleness_max"] >= 0.0
        assert set(result.by_pattern()) == {"rest", "rapid"}
        assert "dep. frac" in result.format()
        assert "breathing pattern" in result.figure()
        rows = result.to_rows()
        assert len(rows) == 2
        assert {"pattern", "cpap", "diameter",
                "deposition_fraction"} <= set(rows[0])
