"""Unit tests for the atomics/coloring/multidep strategy builders."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Strategy,
    StrategyParams,
    Team,
    build_element_loop_graph,
    build_parallel_for_graph,
    chunk_sizes,
)
from repro.machine import marenostrum4
from repro.sim import Engine


def make_inputs(n=64, seed=0, nsub=8):
    rng = np.random.default_rng(seed)
    instr = rng.uniform(800, 4000, size=n)
    atomics = rng.uniform(10, 60, size=n)
    colors = rng.integers(0, 4, size=n)
    labels = np.sort(rng.integers(0, nsub, size=n))
    # ring adjacency among subdomains
    adjacency = [frozenset({(s - 1) % nsub, (s + 1) % nsub})
                 for s in range(nsub)]
    return instr, atomics, colors, labels, adjacency


class TestChunking:
    def test_chunk_sizes_sum(self):
        assert sum(chunk_sizes(100, 7)) == 100

    def test_chunk_sizes_near_equal(self):
        sizes = chunk_sizes(100, 7)
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        assert chunk_sizes(3, 10) == [1, 1, 1]

    def test_empty(self):
        assert chunk_sizes(0, 4) == []

    @given(st.integers(min_value=1, max_value=1000),
           st.integers(min_value=1, max_value=64))
    def test_chunk_invariants(self, n, k):
        sizes = chunk_sizes(n, k)
        assert sum(sizes) == n
        assert all(s > 0 for s in sizes)
        assert len(sizes) <= k


class TestWorkConservation:
    """All strategies must represent exactly the same total work."""

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_total_instructions_preserved(self, strategy):
        instr, atomics, colors, labels, adj = make_inputs()
        g = build_element_loop_graph(instr, atomics, strategy, nthreads=4,
                                     colors=colors, sub_labels=labels,
                                     sub_adjacency=adj)
        expected = instr.sum()
        if strategy is Strategy.MULTIDEP:
            # runtime bookkeeping is charged per task
            from repro.core import DEFAULT_PARAMS
            expected += len(g) * DEFAULT_PARAMS.multidep_task_overhead_instr
        assert g.total_instructions == pytest.approx(expected)

    def test_empty_element_list(self):
        g = build_element_loop_graph(np.array([]), np.array([]),
                                     Strategy.ATOMICS, nthreads=4)
        assert len(g) == 0


class TestStrategyStructure:
    def test_mpi_only_single_task(self):
        instr, atomics, *_ = make_inputs()
        g = build_element_loop_graph(instr, atomics, Strategy.MPI_ONLY,
                                     nthreads=1)
        assert len(g) == 1
        assert g.tasks[0].work.atomic_frac == 0.0

    def test_atomics_chunks_carry_atomic_frac(self):
        instr, atomics, *_ = make_inputs()
        g = build_element_loop_graph(instr, atomics, Strategy.ATOMICS,
                                     nthreads=4)
        fracs = [t.work.atomic_frac for t in g.tasks]
        assert all(f > 0 for f in fracs)
        # overall fraction matches the elementwise ratio
        total_atomic = sum(t.work.atomic_frac * t.work.instructions
                           for t in g.tasks)
        assert total_atomic == pytest.approx(atomics.sum(), rel=1e-9)

    def test_atomics_race_free_has_no_penalty(self):
        instr, atomics, *_ = make_inputs()
        g = build_element_loop_graph(instr, atomics, Strategy.ATOMICS,
                                     nthreads=4, race_free=True)
        assert all(t.work.atomic_frac == 0.0 for t in g.tasks)

    def test_coloring_requires_colors(self):
        instr, atomics, *_ = make_inputs()
        with pytest.raises(ValueError):
            build_element_loop_graph(instr, atomics, Strategy.COLORING,
                                     nthreads=4)

    def test_coloring_has_barriers_and_miss_penalty(self):
        instr, atomics, colors, *_ = make_inputs()
        g = build_element_loop_graph(instr, atomics, Strategy.COLORING,
                                     nthreads=2, colors=colors)
        work_tasks = [t for t in g.tasks if t.work.instructions > 0]
        barriers = [t for t in g.tasks if t.work.instructions == 0]
        assert len(barriers) == len(np.unique(colors))
        assert all(t.work.extra_miss_frac > 0 for t in work_tasks)
        assert all(t.work.atomic_frac == 0 for t in work_tasks)

    def test_coloring_colors_serialize(self):
        """Tasks of color c+1 must depend (transitively) on color c."""
        instr, atomics, colors, *_ = make_inputs()
        g = build_element_loop_graph(instr, atomics, Strategy.COLORING,
                                     nthreads=2, colors=colors)
        g.validate()
        # run it: concurrency never exceeds chunks of one color
        eng = Engine()
        team = Team(eng, marenostrum4().node.core, nthreads=64)

        def prog():
            return (yield from team.run(g))

        p = eng.process(prog())
        eng.run()
        stats = p.value
        per_color_chunks = max(
            len([t for t in g.tasks
                 if t.label.startswith(f"assembly:color{c}")])
            for c in np.unique(colors))
        assert stats.max_concurrency <= per_color_chunks

    def test_multidep_requires_subdomains(self):
        instr, atomics, *_ = make_inputs()
        with pytest.raises(ValueError):
            build_element_loop_graph(instr, atomics, Strategy.MULTIDEP,
                                     nthreads=4)

    def test_multidep_one_task_per_subdomain(self):
        instr, atomics, colors, labels, adj = make_inputs()
        g = build_element_loop_graph(instr, atomics, Strategy.MULTIDEP,
                                     nthreads=4, sub_labels=labels,
                                     sub_adjacency=adj)
        nsub_nonempty = len(np.unique(labels))
        assert len(g) == nsub_nonempty
        assert all(t.work.atomic_frac == 0 for t in g.tasks)
        assert all(t.work.ipc_factor == pytest.approx(0.95) for t in g.tasks)

    def test_multidep_adjacent_conflict_nonadjacent_dont(self):
        instr, atomics, colors, labels, adj = make_inputs()
        g = build_element_loop_graph(instr, atomics, Strategy.MULTIDEP,
                                     nthreads=4, sub_labels=labels,
                                     sub_adjacency=adj)
        by_sub = {int(t.label.rsplit("sub", 1)[1]): t for t in g.tasks}
        # ring: 0-1 adjacent, 0-4 not (and share no neighbour pair ref)
        assert g.conflicts(by_sub[0], by_sub[1])
        assert not g.conflicts(by_sub[0], by_sub[4])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_element_loop_graph(np.ones(4), np.ones(5),
                                     Strategy.ATOMICS, nthreads=1)


class TestPerformanceOrdering:
    """The headline result of Fig. 6, as a property of the builders + model:
    multidep beats coloring beats atomics on a threaded run."""

    def makespan(self, strategy, nthreads=4, cluster=None):
        # Realistic decomposition: many more subdomains than threads, as the
        # paper does (tasks must outnumber cores for the runtime to balance).
        instr, atomics, colors, labels, adj = make_inputs(n=2048, nsub=32)
        g = build_element_loop_graph(instr, atomics, strategy,
                                     nthreads=nthreads, colors=colors,
                                     sub_labels=labels, sub_adjacency=adj)
        eng = Engine()
        core = (cluster or marenostrum4()).node.core
        team = Team(eng, core, nthreads)

        def prog():
            return (yield from team.run(g))

        p = eng.process(prog())
        eng.run()
        return p.value.makespan

    def test_multidep_fastest_on_intel(self):
        t_atomics = self.makespan(Strategy.ATOMICS)
        t_coloring = self.makespan(Strategy.COLORING)
        t_multidep = self.makespan(Strategy.MULTIDEP)
        # Atomics is clearly worst; multidep at least matches coloring up to
        # scheduling slack (this synthetic ring input has random task sizes;
        # the airway-workload integration tests pin the strict ordering).
        assert t_coloring < t_atomics
        assert t_multidep < t_atomics
        assert t_multidep < t_coloring * 1.05

    def test_atomics_penalty_larger_on_intel_than_arm(self):
        from repro.machine import thunder
        ratios = {}
        for name, cluster in (("mn4", marenostrum4()), ("arm", thunder())):
            t_atomics = self.makespan(Strategy.ATOMICS, cluster=cluster)
            t_multidep = self.makespan(Strategy.MULTIDEP, cluster=cluster)
            ratios[name] = t_atomics / t_multidep
        assert ratios["mn4"] > ratios["arm"] > 1.0


class TestParallelFor:
    def test_work_preserved(self):
        items = np.arange(1, 100, dtype=float)
        g = build_parallel_for_graph(items, nthreads=4)
        assert g.total_instructions == pytest.approx(items.sum())

    def test_no_penalties(self):
        g = build_parallel_for_graph(np.ones(50), nthreads=2)
        assert all(t.work.atomic_frac == 0 and t.work.extra_miss_frac == 0
                   for t in g.tasks)

    def test_min_chunks_enables_borrowing(self):
        g = build_parallel_for_graph(np.ones(100), nthreads=1, min_chunks=16)
        assert len(g) == 16

    def test_empty(self):
        assert len(build_parallel_for_graph(np.array([]), nthreads=2)) == 0
