"""Tests for mesh quality metrics and deposition-physics validation."""

import numpy as np
import pytest

from repro.mesh import (
    AirwayConfig,
    ElementType,
    Mesh,
    MeshResolution,
    build_airway_mesh,
    edge_aspect_ratios,
    quality_report,
    tet_regularity,
)
from repro.particles import deposition_curve, impaction_parameter
from repro.particles.validation import DepositionPoint


def regular_tet_mesh(scale=1.0):
    """A single regular tetrahedron (all edges equal)."""
    coords = np.array([[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]],
                      dtype=float) * scale
    conn = np.array([[0, 1, 2, 3, -1, -1]], dtype=np.int32)
    return Mesh(coords, np.array([ElementType.TET], dtype=np.int8), conn)


def sliver_tet_mesh():
    """A nearly flat (degenerate) tetrahedron."""
    coords = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0.5, 0.5, 1e-4]])
    conn = np.array([[0, 1, 2, 3, -1, -1]], dtype=np.int32)
    return Mesh(coords, np.array([ElementType.TET], dtype=np.int8), conn)


class TestQualityMetrics:
    def test_regular_tet_regularity_is_one(self):
        reg = tet_regularity(regular_tet_mesh())
        assert reg[0] == pytest.approx(1.0, rel=1e-9)

    def test_regularity_scale_invariant(self):
        a = tet_regularity(regular_tet_mesh(1.0))[0]
        b = tet_regularity(regular_tet_mesh(7.3))[0]
        assert a == pytest.approx(b, rel=1e-9)

    def test_sliver_has_low_regularity(self):
        reg = tet_regularity(sliver_tet_mesh())
        assert reg[0] < 0.01

    def test_regular_tet_aspect_is_one(self):
        aspects = edge_aspect_ratios(regular_tet_mesh())
        assert aspects[0] == pytest.approx(1.0, rel=1e-9)

    def test_non_tet_regularity_is_nan(self):
        airway = build_airway_mesh(AirwayConfig(generations=1),
                                   MeshResolution(points_per_ring=6))
        reg = tet_regularity(airway.mesh)
        prisms = airway.mesh.elem_types == ElementType.PRISM
        assert np.isnan(reg[prisms]).all()
        tets = airway.mesh.elem_types == ElementType.TET
        assert not np.isnan(reg[tets]).any()

    def test_airway_mesh_passes_quality_gate(self):
        """The generated airway mesh must be usable: no inverted elements,
        bounded aspect ratios, no extreme slivers."""
        airway = build_airway_mesh(AirwayConfig(generations=3),
                                   MeshResolution(points_per_ring=6))
        report = quality_report(airway.mesh)
        assert report.ok
        assert report.inverted == 0
        assert report.min_volume > 0
        assert report.max_aspect < 30.0
        assert report.min_tet_regularity > 0.01
        assert "elements" in report.format()

    def test_report_totals(self):
        mesh = regular_tet_mesh()
        report = quality_report(mesh)
        assert report.n_elements == 1
        assert report.total_volume == pytest.approx(mesh.volumes().sum())


class TestDepositionValidation:
    @pytest.fixture(scope="class")
    def airway(self):
        return build_airway_mesh(AirwayConfig(generations=4),
                                 MeshResolution(points_per_ring=6))

    def test_impaction_parameter_definition(self):
        assert impaction_parameter(2e-6, 1e-3, 1000.0) == pytest.approx(
            1000.0 * 4e-12 * 1e-3)

    @pytest.fixture(scope="class")
    def curve(self, airway):
        return deposition_curve(airway, diameters_um=(1.0, 5.0, 20.0),
                                n_particles=250, n_steps=500, seed=3)

    def test_curve_structure(self, curve):
        assert len(curve) == 3
        assert all(isinstance(p, DepositionPoint) for p in curve)
        assert all(0.0 <= p.deposited_fraction <= 1.0 for p in curve)
        # impaction parameter grows with diameter at fixed Q
        imps = [p.impaction for p in curve]
        assert imps == sorted(imps)

    def test_deposition_grows_with_impaction(self, curve):
        """The classic validation: efficiency increases with rho d^2 Q
        (monotone within a small tolerance for sampling noise)."""
        fr = [p.deposited_fraction for p in curve]
        assert fr[-1] >= fr[0]
        assert all(b >= a - 0.08 for a, b in zip(fr, fr[1:]))

    def test_flow_rate_dependence(self, airway):
        """Higher inhalation rate => more impaction at equal size."""
        slow = deposition_curve(airway, diameters_um=(10.0,),
                                flow_rate=0.5e-3, n_particles=250,
                                n_steps=500, seed=4)[0]
        fast = deposition_curve(airway, diameters_um=(10.0,),
                                flow_rate=2.0e-3, n_particles=250,
                                n_steps=500, seed=4)[0]
        assert fast.impaction > slow.impaction
        assert fast.deposited_fraction >= slow.deposited_fraction - 0.08
