"""API-quality gates: docstring coverage and export consistency.

A release-grade library documents every public item.  These tests walk the
whole package and fail on any public module, class, function or method
without a docstring, and on any ``__all__`` entry that does not resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.sim", "repro.machine", "repro.smpi", "repro.core",
    "repro.mesh", "repro.partition", "repro.fem", "repro.solver",
    "repro.particles", "repro.app", "repro.trace", "repro.experiments",
]


def iter_modules():
    seen = set()
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__,
                                         prefix=pkg_name + "."):
            if info.name not in seen:
                seen.add(info.name)
                yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are checked where they are defined
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in iter_modules()
                        if not (m.__doc__ or "").strip()]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_methods_documented(self):
        missing = []
        for module in iter_modules():
            for cname, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for mname, meth in vars(cls).items():
                    if mname.startswith("_"):
                        continue
                    if isinstance(meth, property):
                        target = meth.fget
                    elif inspect.isfunction(meth):
                        target = meth
                    else:
                        continue
                    if not (target.__doc__ or "").strip():
                        missing.append(
                            f"{module.__name__}.{cname}.{mname}")
        assert missing == []


class TestExports:
    def test_all_entries_resolve(self):
        broken = []
        for module in iter_modules():
            for name in getattr(module, "__all__", []):
                if not hasattr(module, name):
                    broken.append(f"{module.__name__}.{name}")
        assert broken == []

    def test_top_level_all_sorted_unique(self):
        names = [n for n in repro.__all__]
        assert len(names) == len(set(names))

    def test_version(self):
        assert repro.__version__ == "1.0.0"
