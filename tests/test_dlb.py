"""Integration tests for DLB (LeWI) over simulated MPI + task teams.

The central scenario is the paper's Fig. 5: an unbalanced hybrid
MPI+OpenMP application in which the under-loaded rank reaches a blocking
MPI call and lends its cores to the overloaded rank on the same node.
"""

import numpy as np
import pytest

from repro.core import DLB, Team, build_parallel_for_graph
from repro.machine import CoreModel, marenostrum4
from repro.sim import Engine
from repro.smpi import World

#: 1 GHz, IPC 1 core: 1e9 instructions == 1 second.
CORE = CoreModel(name="unit", freq_ghz=1.0, base_ipc=1.0, out_of_order=True,
                 atomic_stall_cycles=0.0, mem_stall_cycles=0.0)
SEC = 1e9


def run_imbalanced(n_tasks_per_rank, threads_per_rank=2, dlb_enabled=True,
                   num_nodes=1, mapping="block"):
    """Each rank runs its task count of 1-second tasks, then a barrier."""
    eng = Engine()
    cluster = marenostrum4(num_nodes=num_nodes)
    nranks = len(n_tasks_per_rank)
    world = World(eng, cluster, nranks, mapping=mapping)
    dlb = DLB(world, enabled=dlb_enabled)
    teams = {}
    for r in range(nranks):
        teams[r] = Team(eng, CORE, threads_per_rank, rank=r)
        dlb.attach_team(r, teams[r])

    finish_times = {}

    def program(comm):
        n = n_tasks_per_rank[comm.rank]
        graph = build_parallel_for_graph(
            np.full(n, SEC), threads_per_rank, min_chunks=n)
        yield from teams[comm.rank].run(graph)
        yield from comm.barrier()
        finish_times[comm.rank] = comm.engine.now

    world.run(world.launch(program))
    return eng.now, dlb, finish_times


class TestFig5Scenario:
    """2 ranks x 2 threads, rank 1 has 4x the work of rank 0."""

    def test_without_dlb_limited_by_slow_rank(self):
        t, dlb, _ = run_imbalanced([2, 8], dlb_enabled=False)
        assert t == pytest.approx(4.0, abs=0.01)
        assert dlb.stats.lend_events == 0

    def test_with_dlb_lends_and_speeds_up(self):
        t, dlb, _ = run_imbalanced([2, 8], dlb_enabled=True)
        # rank 0 blocks at t=1, lends 2 cores; rank 1 finishes 6 remaining
        # tasks on 4 cores: done at t=3 (vs 4 without DLB).
        assert t == pytest.approx(3.0, abs=0.01)
        assert dlb.stats.lend_events >= 1
        assert dlb.stats.cores_borrowed_total >= 2

    def test_dlb_never_slower(self):
        for tasks in ([4, 4], [1, 8], [8, 1], [3, 5]):
            t_off, _, _ = run_imbalanced(list(tasks), dlb_enabled=False)
            t_on, _, _ = run_imbalanced(list(tasks), dlb_enabled=True)
            assert t_on <= t_off + 1e-9

    def test_balanced_load_unaffected(self):
        t_off, _, _ = run_imbalanced([4, 4], dlb_enabled=False)
        t_on, _, _ = run_imbalanced([4, 4], dlb_enabled=True)
        assert t_on == pytest.approx(t_off)


class TestLendReclaim:
    def test_capacity_restored_after_mpi(self):
        eng = Engine()
        world = World(eng, marenostrum4(num_nodes=1), 2)
        dlb = DLB(world)
        teams = {r: Team(eng, CORE, 2, rank=r) for r in range(2)}
        for r, tm in teams.items():
            dlb.attach_team(r, tm)
        capacities = {}

        def program(comm):
            g = build_parallel_for_graph(
                np.full(2 if comm.rank == 0 else 6, SEC), 2,
                chunks_per_thread=1)
            yield from teams[comm.rank].run(g)
            yield from comm.barrier()
            capacities[comm.rank] = teams[comm.rank].capacity
            # run again after the barrier: both teams must work normally
            g2 = build_parallel_for_graph(np.full(2, SEC), 2,
                                          chunks_per_thread=1)
            yield from teams[comm.rank].run(g2)

        world.run(world.launch(program))
        assert capacities == {0: 2, 1: 2}
        assert dlb.borrowed_by(0) == 0 and dlb.borrowed_by(1) == 0
        assert dlb.pool_size(0) == 0

    def test_borrowed_cores_returned_on_idle(self):
        """When the borrower finishes, pooled cores are freed again."""
        t, dlb, _ = run_imbalanced([2, 8, 2], dlb_enabled=True)
        assert dlb.pool_size(0) >= 0  # accounting consistent
        assert dlb.borrowed_by(1) == 0

    def test_three_way_redistribution(self):
        """Two idle ranks feed the single loaded one."""
        t_on, dlb, _ = run_imbalanced([1, 1, 12], dlb_enabled=True)
        t_off, _, _ = run_imbalanced([1, 1, 12], dlb_enabled=False)
        # loaded rank eventually runs with up to 6 cores
        assert dlb.stats.max_team_capacity >= 4
        assert t_on < t_off

    def test_stats_counters_consistent(self):
        _, dlb, _ = run_imbalanced([2, 8], dlb_enabled=True)
        s = dlb.stats
        assert s.lend_events >= 1
        assert s.reclaim_events >= 1
        assert s.cores_lent_total >= s.cores_borrowed_total >= 0


class TestNodeLocality:
    def test_no_lending_across_nodes(self):
        """Ranks on different nodes cannot share cores (DLB is
        shared-memory only)."""
        # 2 ranks over 2 nodes, block mapping: one rank per node.
        t_on, dlb, _ = run_imbalanced([2, 8], dlb_enabled=True, num_nodes=2)
        t_off, _, _ = run_imbalanced([2, 8], dlb_enabled=False, num_nodes=2)
        assert dlb.stats.cores_borrowed_total == 0
        assert t_on == pytest.approx(t_off)

    def test_cyclic_mapping_enables_lending_within_node(self):
        # 4 ranks, 2 nodes, cyclic: ranks 0,2 on node 0 and 1,3 on node 1.
        # make ranks 0,1 idle-ish and 2,3 loaded: each node pairs one idle
        # with one loaded rank -> lending possible on both nodes.
        t_on, dlb, _ = run_imbalanced([1, 1, 8, 8], dlb_enabled=True,
                                      num_nodes=2, mapping="cyclic")
        t_off, _, _ = run_imbalanced([1, 1, 8, 8], dlb_enabled=False,
                                     num_nodes=2, mapping="cyclic")
        assert dlb.stats.cores_borrowed_total > 0
        assert t_on < t_off


class TestManyRanks:
    def test_single_hot_rank_among_many(self):
        """The particle-phase pattern: one rank holds nearly all work."""
        tasks = [1] * 7 + [24]
        t_off, _, _ = run_imbalanced(tasks, threads_per_rank=1,
                                     dlb_enabled=False)
        t_on, dlb, _ = run_imbalanced(tasks, threads_per_rank=1,
                                      dlb_enabled=True)
        # without DLB: 24 s of serial work; with DLB the hot rank borrows
        # up to 7 extra cores.
        assert t_off == pytest.approx(24.0, abs=0.1)
        assert t_on < 0.5 * t_off
        assert dlb.stats.max_team_capacity >= 4
