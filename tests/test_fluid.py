"""Tests for the vector FEM operators and the fractional-step NS solver."""

import numpy as np
import pytest

from repro.fem import assemble_operator
from repro.fem.dirichlet import apply_dirichlet, apply_dirichlet_symmetric
from repro.fem.fractional_step import FlowBC, FractionalStepSolver
from repro.fem.vector import (
    deinterleave,
    divergence_operator,
    gradient_operator,
    interleave,
    vector_operator,
)
from repro.mesh import MeshResolution, Segment, build_tube_mesh
from tests.test_fem import unit_cube_tets


@pytest.fixture(scope="module")
def cube():
    return unit_cube_tets(2)


class TestInterleave:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(7, 3))
        np.testing.assert_array_equal(deinterleave(interleave(field)), field)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            interleave(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            deinterleave(np.zeros(7))


class TestVectorOperator:
    def test_block_diagonal_matches_scalar(self, cube):
        scalar = assemble_operator(cube, kappa=1.0).matrix
        vec = vector_operator(cube, kappa=1.0)
        assert vec.shape == (3 * cube.nnodes, 3 * cube.nnodes)
        # applying to a single-component field reproduces the scalar op
        rng = np.random.default_rng(1)
        f = rng.normal(size=cube.nnodes)
        field = np.zeros((cube.nnodes, 3))
        field[:, 1] = f
        out = deinterleave(vec @ interleave(field))
        np.testing.assert_allclose(out[:, 1], scalar @ f, atol=1e-12)
        np.testing.assert_allclose(out[:, 0], 0.0, atol=1e-12)

    def test_no_cross_component_coupling(self, cube):
        vec = vector_operator(cube, kappa=1.0, mass_coeff=2.0).tocoo()
        assert ((vec.row % 3) == (vec.col % 3)).all()


class TestDivergenceGradient:
    def test_divergence_of_constant_field_weakly_zero(self, cube):
        """For u = const, integral N_i div(u) = 0 on interior nodes."""
        D = divergence_operator(cube)
        u = np.tile([1.0, 2.0, -0.5], (cube.nnodes, 1))
        div = D @ interleave(u)
        # interior node of the 2^3 cube grid: index of (0.5, 0.5, 0.5)
        interior = np.nonzero(
            np.all(np.isclose(cube.coords, 0.5), axis=1))[0]
        np.testing.assert_allclose(div[interior], 0.0, atol=1e-12)

    def test_divergence_of_linear_field(self, cube):
        """u = (x, 0, 0): integral N_i div u = integral N_i -> lumped mass."""
        D = divergence_operator(cube)
        u = np.zeros((cube.nnodes, 3))
        u[:, 0] = cube.coords[:, 0]
        div = D @ interleave(u)
        M = assemble_operator(cube, kappa=0.0, mass_coeff=1.0).matrix
        np.testing.assert_allclose(div, np.asarray(M.sum(axis=1)).ravel(),
                                   atol=1e-12)

    def test_gradient_is_divergence_transpose(self, cube):
        D = divergence_operator(cube)
        G = gradient_operator(cube)
        assert abs(G - D.T).max() < 1e-14


class TestDirichlet:
    def test_row_replacement(self, cube):
        A = assemble_operator(cube, kappa=1.0, mass_coeff=1.0).matrix
        b = np.ones(cube.nnodes)
        A2, b2 = apply_dirichlet(A, b, np.array([0, 5]),
                                 np.array([7.0, -1.0]))
        x = np.linalg.solve(A2.toarray(), b2)
        assert x[0] == pytest.approx(7.0)
        assert x[5] == pytest.approx(-1.0)

    def test_symmetric_elimination_keeps_symmetry(self, cube):
        A = assemble_operator(cube, kappa=1.0, mass_coeff=1.0).matrix
        b = np.ones(cube.nnodes)
        A2, b2 = apply_dirichlet_symmetric(A, b, np.array([3]),
                                           np.array([2.0]))
        assert abs(A2 - A2.T).max() < 1e-12
        x = np.linalg.solve(A2.toarray(), b2)
        assert x[3] == pytest.approx(2.0)

    def test_symmetric_matches_row_replacement_solution(self, cube):
        A = assemble_operator(cube, kappa=1.0, mass_coeff=1.0).matrix
        rng = np.random.default_rng(2)
        b = rng.normal(size=cube.nnodes)
        dofs = np.array([0, 7, 11])
        vals = np.array([1.0, -2.0, 0.5])
        A1, b1 = apply_dirichlet(A, b, dofs, vals)
        A2, b2 = apply_dirichlet_symmetric(A, b, dofs, vals)
        x1 = np.linalg.solve(A1.toarray(), b1)
        x2 = np.linalg.solve(A2.toarray(), b2)
        np.testing.assert_allclose(x1, x2, atol=1e-9)


# ---------------------------------------------------------------------------
# fractional-step solver on a straight tube
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tube_flow():
    seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                  radius=0.01)
    mesh = build_tube_mesh(seg, MeshResolution(points_per_ring=8,
                                               max_sections=6))
    z = mesh.coords[:, 2]
    r = np.linalg.norm(mesh.coords[:, :2], axis=1)
    inlet = np.nonzero(np.isclose(z, 0.0) & (r < 0.0099))[0]
    inlet_all = np.nonzero(np.isclose(z, 0.0))[0]
    outlet = np.nonzero(np.isclose(z, -0.04))[0]
    wall = np.nonzero(np.isclose(r, 0.01))[0]  # incl. inlet rim
    u_in = np.zeros((len(inlet), 3))
    u_in[:, 2] = -1.0 * (1.0 - (r[inlet] / 0.01) ** 2)
    bc = FlowBC(inlet_nodes=inlet, inlet_velocity=u_in, wall_nodes=wall,
                outlet_nodes=outlet)
    solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                  dt=2e-3)
    infos = solver.run(80)
    return mesh, solver, infos, dict(inlet=inlet, outlet=outlet, wall=wall,
                                     z=z, r=r)


class TestFractionalStep:
    def test_divergence_stays_bounded(self, tube_flow):
        _, _, infos, _ = tube_flow
        divs = [i.div_after for i in infos]
        assert divs[-1] < 1e-4
        assert max(divs) < 1e-3

    def test_projection_never_increases_divergence(self, tube_flow):
        """Projection strictly reduces the transient divergence; at steady
        state it sits at the BC-reimposition floor (no material change)."""
        _, _, infos, _ = tube_flow
        assert all(i.div_after <= i.div_before * 1.01 for i in infos)
        assert infos[0].div_after < infos[0].div_before

    def test_flow_moves_downstream(self, tube_flow):
        mesh, solver, _, sets = tube_flow
        interior = (sets["z"] < -0.005) & (sets["z"] > -0.035) \
            & (sets["r"] < 0.008)
        assert solver.u[interior][:, 2].mean() < -0.1

    def test_velocity_bounded_by_inlet_scale(self, tube_flow):
        _, solver, _, _ = tube_flow
        assert np.abs(solver.u).max() < 2.0  # inlet peak is 1.0

    def test_no_slip_wall(self, tube_flow):
        _, solver, _, sets = tube_flow
        np.testing.assert_allclose(solver.u[sets["wall"]], 0.0, atol=1e-12)

    def test_mass_balance_on_matched_sections(self, tube_flow):
        """At quasi-steady state the mean axial velocity over the interior
        outlet nodes approaches the inlet's."""
        _, solver, _, sets = tube_flow
        normal = np.array([0.0, 0.0, -1.0])
        out_interior = np.nonzero(np.isclose(sets["z"], -0.04)
                                  & (sets["r"] < 0.0099))[0]
        q_in = solver.flow_rate_through(sets["inlet"], normal)
        q_out = solver.flow_rate_through(out_interior, normal)
        assert q_out > 0.4 * q_in

    def test_profile_faster_at_center(self, tube_flow):
        _, solver, _, sets = tube_flow
        mid = np.isclose(sets["z"], -0.04 * 2 / 3, atol=0.005)
        center = mid & (sets["r"] < 0.005)
        near_wall = mid & (sets["r"] > 0.006) & (sets["r"] < 0.0099)
        assert center.sum() and near_wall.sum()
        uc = -solver.u[center][:, 2].mean()
        uw = -solver.u[near_wall][:, 2].mean()
        assert uc > uw

    def test_solver_iterations_recorded(self, tube_flow):
        _, _, infos, _ = tube_flow
        assert all(i.momentum_iterations >= 1 for i in infos)
        assert all(i.pressure_iterations >= 1 for i in infos)

    def test_bc_validation(self, tube_flow):
        mesh, _, _, sets = tube_flow
        with pytest.raises(ValueError):
            FlowBC(inlet_nodes=sets["inlet"],
                   inlet_velocity=np.zeros((2, 3)),
                   wall_nodes=sets["wall"], outlet_nodes=sets["outlet"])
        with pytest.raises(ValueError):
            FlowBC(inlet_nodes=sets["inlet"],
                   inlet_velocity=np.zeros((len(sets["inlet"]), 3)),
                   wall_nodes=sets["wall"],
                   outlet_nodes=np.zeros(0, dtype=int))
