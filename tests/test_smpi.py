"""Unit tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro.machine import marenostrum4, thunder
from repro.sim import Engine
from repro.smpi import ANY_SOURCE, ANY_TAG, MPIError, World


def make_world(nranks=4, cluster=None, mapping="block"):
    eng = Engine()
    return World(eng, cluster or marenostrum4(), nranks, mapping=mapping)


class TestPointToPoint:
    def test_send_recv_pair(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send({"a": 7}, dest=1, tag=11)
                return None
            data = yield from comm.recv(source=0, tag=11)
            return data

        results = world.run(world.launch(program))
        assert results[1] == {"a": 7}

    def test_send_takes_simulated_time(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(1000), dest=1)
            else:
                yield from comm.recv(source=0)

        world.run(world.launch(program))
        assert world.engine.now > 0.0

    def test_internode_slower_than_intranode(self):
        # With 4 ranks over 2 nodes: block puts ranks 0,1 on node 0
        # (intranode transfer); cyclic puts them on different nodes.
        times = {}
        for mapping in ("block", "cyclic"):
            world = make_world(4, mapping=mapping)
            payload = np.zeros(100_000)

            def program(comm):
                if comm.rank == 0:
                    yield from comm.send(payload, dest=1)
                elif comm.rank == 1:
                    yield from comm.recv(source=0)
                else:
                    yield from comm.compute(0.0)

            world.run(world.launch(program))
            times[mapping] = world.engine.now
        assert times["cyclic"] > times["block"]

    def test_tag_matching(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send("first", dest=1, tag=1)
                yield from comm.send("second", dest=1, tag=2)
                return None
            second = yield from comm.recv(source=0, tag=2)
            first = yield from comm.recv(source=0, tag=1)
            return (first, second)

        results = world.run(world.launch(program))
        assert results[1] == ("first", "second")

    def test_any_source_any_tag(self):
        world = make_world(3)

        def program(comm):
            if comm.rank != 2:
                yield from comm.send(comm.rank, dest=2, tag=comm.rank + 10)
                return None
            got = []
            for _ in range(2):
                got.append((yield from comm.recv(source=ANY_SOURCE,
                                                 tag=ANY_TAG)))
            return sorted(got)

        results = world.run(world.launch(program))
        assert results[2] == [0, 1]

    def test_isend_wait(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(10), dest=1)
                yield from comm.wait(req)
                return None
            data = yield from comm.recv(source=0)
            return list(data)

        results = world.run(world.launch(program))
        assert results[1] == list(range(10))

    def test_irecv_waitall(self):
        world = make_world(3)

        def program(comm):
            if comm.rank != 0:
                yield from comm.send(comm.rank * 100, dest=0, tag=comm.rank)
                return None
            reqs = [comm.irecv(source=s, tag=s) for s in (1, 2)]
            msgs = yield from comm.waitall(reqs)
            return [m.payload for m in msgs]

        results = world.run(world.launch(program))
        assert results[0] == [100, 200]

    def test_recv_msg_envelope(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send("x", dest=1, tag=9)
                return None
            msg = yield from comm.recv_msg()
            return (msg.src, msg.tag, msg.payload)

        results = world.run(world.launch(program))
        assert results[1] == (0, 9, "x")

    def test_dest_out_of_range(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send("x", dest=5)

        with pytest.raises(MPIError):
            world.run(world.launch(program))

    def test_deadlock_detected(self):
        world = make_world(2)

        def program(comm):
            # both ranks receive, nobody sends
            yield from comm.recv()

        with pytest.raises(MPIError, match="deadlock"):
            world.run(world.launch(program))


class TestCollectives:
    def test_barrier_synchronizes(self):
        world = make_world(4)
        arrive, leave = {}, {}

        def program(comm):
            yield from comm.compute(comm.rank * 1.0)  # staggered arrival
            arrive[comm.rank] = comm.engine.now
            yield from comm.barrier()
            leave[comm.rank] = comm.engine.now

        world.run(world.launch(program))
        assert max(arrive.values()) == pytest.approx(3.0)
        assert all(t >= 3.0 for t in leave.values())
        assert len(set(round(t, 9) for t in leave.values())) == 1

    def test_allreduce_sum(self):
        world = make_world(4)

        def program(comm):
            total = yield from comm.allreduce(comm.rank + 1)
            return total

        results = world.run(world.launch(program))
        assert results == [10, 10, 10, 10]

    def test_allreduce_custom_op(self):
        world = make_world(4)

        def program(comm):
            result = yield from comm.allreduce(comm.rank, op=max)
            return result

        assert world.run(world.launch(program)) == [3, 3, 3, 3]

    def test_reduce_to_root(self):
        world = make_world(3)

        def program(comm):
            return (yield from comm.reduce(comm.rank + 1, root=1))

        assert world.run(world.launch(program)) == [None, 6, None]

    def test_bcast(self):
        world = make_world(4)

        def program(comm):
            value = {"k": [1, 2]} if comm.rank == 2 else None
            return (yield from comm.bcast(value, root=2))

        results = world.run(world.launch(program))
        assert all(r == {"k": [1, 2]} for r in results)

    def test_gather(self):
        world = make_world(3)

        def program(comm):
            return (yield from comm.gather(comm.rank ** 2, root=0))

        results = world.run(world.launch(program))
        assert results[0] == [0, 1, 4]
        assert results[1] is None and results[2] is None

    def test_allgather(self):
        world = make_world(3)

        def program(comm):
            return (yield from comm.allgather(comm.rank * 2))

        assert world.run(world.launch(program)) == [[0, 2, 4]] * 3

    def test_scatter(self):
        world = make_world(3)

        def program(comm):
            values = [10, 20, 30] if comm.rank == 0 else None
            return (yield from comm.scatter(values, root=0))

        assert world.run(world.launch(program)) == [10, 20, 30]

    def test_scatter_wrong_length_rejected(self):
        world = make_world(3)

        def program(comm):
            values = [1, 2] if comm.rank == 0 else None
            return (yield from comm.scatter(values, root=0))

        with pytest.raises(MPIError):
            world.run(world.launch(program))

    def test_alltoall(self):
        world = make_world(3)

        def program(comm):
            values = [f"{comm.rank}->{d}" for d in range(3)]
            return (yield from comm.alltoall(values))

        results = world.run(world.launch(program))
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_collective_mismatch_detected(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.barrier()
            else:
                yield from comm.allreduce(1)

        with pytest.raises(MPIError, match="mismatch"):
            world.run(world.launch(program))

    def test_collective_takes_time(self):
        world = make_world(4)

        def program(comm):
            yield from comm.allreduce(float(comm.rank))

        world.run(world.launch(program))
        assert world.engine.now > 0.0

    def test_repeated_collectives(self):
        world = make_world(3)

        def program(comm):
            totals = []
            for step in range(5):
                totals.append((yield from comm.allreduce(step + comm.rank)))
            return totals

        results = world.run(world.launch(program))
        # step s: sum over ranks of (s + r) = 3s + 3
        assert results[0] == [3 * s + 3 for s in range(5)]


class TestSubCommunicators:
    def test_split_disjoint_groups(self):
        world = make_world(6)
        (fluid, particles) = world.split([[0, 1, 2, 3], [4, 5]])
        assert fluid[0].size == 4 and particles[0].size == 2
        assert particles[1].world_rank == 5

    def test_overlapping_groups_rejected(self):
        world = make_world(4)
        with pytest.raises(MPIError):
            world.split([[0, 1], [1, 2]])

    def test_collectives_stay_within_group(self):
        world = make_world(4)
        (ga, gb) = world.split([[0, 1], [2, 3]])
        comms = {0: ga[0], 1: ga[1], 2: gb[0], 3: gb[1]}

        def program(comm):
            sub = comms[comm.rank]
            return (yield from sub.allreduce(comm.rank))

        results = world.run(world.launch(program))
        assert results == [1, 1, 5, 5]  # 0+1 and 2+3

    def test_p2p_between_groups_via_world(self):
        world = make_world(4)
        world.split([[0, 1], [2, 3]])  # groups exist but we use comm world

        def program(comm):
            if comm.rank == 0:
                yield from comm.send("cross", dest=3)
                return None
            if comm.rank == 3:
                return (yield from comm.recv(source=0))
            yield from comm.compute(0.0)
            return None

        results = world.run(world.launch(program))
        assert results[3] == "cross"


class TestAccounting:
    def test_mpi_time_accounted_for_waiting_rank(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(5.0)
                yield from comm.send("late", dest=1)
            else:
                yield from comm.recv(source=0)

        world.run(world.launch(program))
        assert world.mpi_seconds[1] >= 5.0
        assert world.compute_seconds[0] == pytest.approx(5.0)

    def test_hooks_see_blocking_calls(self):
        world = make_world(2)
        events = []

        class Spy:
            def on_mpi_enter(self, rank, call):
                events.append(("enter", rank, call))

            def on_mpi_exit(self, rank, call):
                events.append(("exit", rank, call))

        world.hooks.register(Spy())

        def program(comm):
            if comm.rank == 0:
                yield from comm.send("x", dest=1)
            else:
                yield from comm.recv(source=0)

        world.run(world.launch(program))
        calls = {(kind, call) for kind, _, call in events}
        assert ("enter", "send") in calls and ("exit", "send") in calls
        assert ("enter", "recv") in calls and ("exit", "recv") in calls

    def test_ranks_on_node(self):
        world = make_world(4, mapping="cyclic")
        assert world.ranks_on_node(0) == [0, 2]
        assert world.ranks_on_node(1) == [1, 3]


class TestScale:
    def test_96_rank_allreduce_on_thunder(self):
        eng = Engine()
        world = World(eng, thunder(), 96)

        def program(comm):
            return (yield from comm.allreduce(1))

        results = world.run(world.launch(program))
        assert results == [96] * 96
