"""Tests for scheduler policies, critical-path analysis, polydisperse
aerosols, and DLB lend policies."""

import numpy as np
import pytest

from repro.core import DepType, Team, TaskGraph
from repro.core.runtime import RuntimeError_
from repro.machine import CoreModel, WorkSpec
from repro.mesh import AirwayConfig, MeshResolution, build_airway_mesh
from repro.particles import (
    AirwayFlow,
    NewmarkTracker,
    ParticleState,
    STATUS_DEPOSITED,
    inject_at_inlet,
    lognormal_diameters,
    particle_mass,
)
from repro.sim import Engine

CORE = CoreModel(name="unit", freq_ghz=1.0, base_ipc=1.0, out_of_order=True,
                 atomic_stall_cycles=0.0, mem_stall_cycles=0.0)
SEC = 1e9


def run_graph(graph, nthreads, scheduler):
    eng = Engine()
    team = Team(eng, CORE, nthreads, scheduler=scheduler)

    def prog():
        return (yield from team.run(graph))

    p = eng.process(prog())
    eng.run()
    return p.value


class TestSchedulers:
    def mixed_graph(self):
        # the big task is LAST in submission order: FIFO starts it late
        g = TaskGraph()
        for instr in (1 * SEC, 1 * SEC, 1 * SEC, 1 * SEC, 4 * SEC):
            g.add_task(WorkSpec(instr))
        return g

    def test_lpt_beats_fifo_on_skewed_sizes(self):
        """LPT pulls the 4s task forward: makespan 4 vs FIFO's 6."""
        t_lpt = run_graph(self.mixed_graph(), 2, "lpt").makespan
        t_fifo = run_graph(self.mixed_graph(), 2, "fifo").makespan
        assert t_lpt == pytest.approx(4.0)
        assert t_fifo == pytest.approx(6.0)

    def test_all_schedulers_complete_all_tasks(self):
        for scheduler in Team.SCHEDULERS:
            stats = run_graph(self.mixed_graph(), 2, scheduler)
            assert stats.tasks_run == 5
            assert stats.busy_seconds == pytest.approx(8.0)

    def test_lifo_takes_newest(self):
        g = TaskGraph()
        g.add_task(WorkSpec(SEC), label="old")
        g.add_task(WorkSpec(SEC), label="new")
        eng = Engine()
        team = Team(eng, CORE, 1, scheduler="lifo")
        order = []

        class Rec:
            def record(self, rank, cat, label, t0, t1):
                order.append(label)

        team.recorder = Rec()

        def prog():
            return (yield from team.run(g))

        eng.process(prog())
        eng.run()
        assert order == ["new", "old"]

    def test_unknown_scheduler_rejected(self):
        eng = Engine()
        with pytest.raises(RuntimeError_):
            Team(eng, CORE, 1, scheduler="random")

    def test_schedulers_respect_mutexes(self):
        for scheduler in Team.SCHEDULERS:
            g = TaskGraph()
            g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: ["m"]})
            g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: ["m"]})
            stats = run_graph(g, 4, scheduler)
            assert stats.max_concurrency == 1


class TestCriticalPath:
    def test_chain(self):
        g = TaskGraph()
        for _ in range(3):
            g.add_task(WorkSpec(10.0), depend={DepType.INOUT: ["x"]})
        length, path = g.critical_path()
        assert length == pytest.approx(30.0)
        assert path == [0, 1, 2]

    def test_independent_tasks(self):
        g = TaskGraph()
        g.add_task(WorkSpec(5.0))
        g.add_task(WorkSpec(9.0))
        length, path = g.critical_path()
        assert length == pytest.approx(9.0)
        assert path == [1]

    def test_diamond(self):
        g = TaskGraph()
        g.add_task(WorkSpec(1.0), depend={DepType.OUT: ["x"]})
        g.add_task(WorkSpec(10.0), depend={DepType.IN: ["x"],
                                           DepType.OUT: ["a"]})
        g.add_task(WorkSpec(2.0), depend={DepType.IN: ["x"],
                                          DepType.OUT: ["b"]})
        g.add_task(WorkSpec(1.0), depend={DepType.IN: ["a", "b"]})
        length, path = g.critical_path()
        assert length == pytest.approx(12.0)
        assert path == [0, 1, 3]

    def test_average_parallelism(self):
        g = TaskGraph()
        for _ in range(8):
            g.add_task(WorkSpec(1.0))
        assert g.average_parallelism() == pytest.approx(8.0)

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.critical_path() == (0.0, [])
        assert g.average_parallelism() == 1.0

    def test_makespan_lower_bound(self):
        """No schedule can beat the critical path (engine property)."""
        g = TaskGraph()
        g.add_task(WorkSpec(2 * SEC), depend={DepType.OUT: ["x"]})
        g.add_task(WorkSpec(3 * SEC), depend={DepType.IN: ["x"]})
        g.add_task(WorkSpec(1 * SEC))
        stats = run_graph(g, 8, "lpt")
        length, _ = g.critical_path()
        assert stats.makespan >= length / (CORE.freq_ghz * 1e9) - 1e-12


class TestPolydisperse:
    @pytest.fixture(scope="class")
    def airway(self):
        return build_airway_mesh(AirwayConfig(generations=3),
                                 MeshResolution(points_per_ring=6))

    def test_lognormal_distribution_stats(self):
        d = lognormal_diameters(20000, median=4e-6, gsd=1.8, seed=1)
        assert np.median(d) == pytest.approx(4e-6, rel=0.05)
        gsd = np.exp(np.std(np.log(d)))
        assert gsd == pytest.approx(1.8, rel=0.05)
        assert (d > 0).all()

    def test_lognormal_validation(self):
        with pytest.raises(ValueError):
            lognormal_diameters(-1)
        with pytest.raises(ValueError):
            lognormal_diameters(10, median=0.0)
        with pytest.raises(ValueError):
            lognormal_diameters(10, gsd=0.9)

    def test_particle_mass_array(self):
        d = np.array([1e-6, 2e-6])
        m = particle_mass(d, 1000.0)
        assert m[1] / m[0] == pytest.approx(8.0)

    def test_inject_polydisperse(self, airway):
        d = lognormal_diameters(100, seed=2)
        state = inject_at_inlet(airway, 100, diameters=d)
        np.testing.assert_array_equal(state.diameter, d)

    def test_inject_diameter_validation(self, airway):
        with pytest.raises(ValueError):
            inject_at_inlet(airway, 10, diameters=np.ones(5))
        with pytest.raises(ValueError):
            inject_at_inlet(airway, 2, diameters=np.array([1e-6, -1e-6]))

    def test_polydisperse_tracking_stable(self, airway):
        flow = AirwayFlow(airway.segments)
        d = lognormal_diameters(300, median=6e-6, gsd=2.0, seed=3)
        state = inject_at_inlet(airway, 300, seed=4, diameters=d)
        tracker = NewmarkTracker(flow)
        for _ in range(150):
            tracker.step(state, dt=1e-4)
        assert np.isfinite(state.x).all()
        assert np.isfinite(state.v).all()

    def test_bigger_particles_deposit_more(self, airway):
        """Within one polydisperse population, the deposited particles are
        on average larger (inertial impaction + sedimentation)."""
        flow = AirwayFlow(airway.segments)
        d = lognormal_diameters(800, median=8e-6, gsd=2.2, seed=5)
        state = inject_at_inlet(airway, 800, seed=6, diameters=d)
        tracker = NewmarkTracker(flow)
        for _ in range(400):
            if state.n_active == 0:
                break
            tracker.step(state, dt=1e-4)
        deposited = state.status == STATUS_DEPOSITED
        if deposited.sum() < 20 or deposited.sum() > 780:
            pytest.skip("degenerate deposition split")
        assert (np.median(state.diameter[deposited])
                >= np.median(state.diameter[~deposited]) * 0.9)

    def test_extend_mixes_rejected(self, airway):
        mono = inject_at_inlet(airway, 10)
        poly = inject_at_inlet(airway, 10,
                               diameters=np.full(10, 4e-6))
        with pytest.raises(ValueError):
            mono.extend(poly)

    def test_extend_concatenates_diameters(self, airway):
        a = inject_at_inlet(airway, 5, diameters=np.full(5, 1e-6))
        b = inject_at_inlet(airway, 3, diameters=np.full(3, 2e-6))
        a.extend(b)
        assert a.n == 8
        assert a.diameter.shape == (8,)
        assert a.diameter[-1] == pytest.approx(2e-6)
