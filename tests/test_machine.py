"""Unit tests for the machine models and the calibration of the presets."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    CoreModel,
    WorkSpec,
    InterconnectModel,
    NodeModel,
    get_cluster,
    marenostrum4,
    rank_to_node,
    thunder,
)

#: Atomic fraction of the assembly kernel on the reference element mix
#: (nn^2+nn scatter updates; see repro.app.costs).
ASSEMBLY_ATOMIC_FRAC = 0.0136


class TestWorkSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkSpec(-1.0)
        with pytest.raises(ValueError):
            WorkSpec(1.0, atomic_frac=1.5)
        with pytest.raises(ValueError):
            WorkSpec(1.0, extra_miss_frac=-0.1)
        with pytest.raises(ValueError):
            WorkSpec(1.0, ipc_factor=0.0)

    def test_scaled(self):
        spec = WorkSpec(100.0, atomic_frac=0.01, ipc_factor=0.9)
        spec2 = spec.scaled(2.0)
        assert spec2.instructions == 200.0
        assert spec2.atomic_frac == 0.01
        assert spec2.ipc_factor == 0.9


class TestCoreModel:
    def test_base_ipc_without_penalties(self):
        core = marenostrum4().node.core
        assert core.effective_ipc(WorkSpec(1e6)) == pytest.approx(2.25)

    def test_seconds_scales_linearly_with_instructions(self):
        core = thunder().node.core
        t1 = core.seconds(WorkSpec(1e6))
        t2 = core.seconds(WorkSpec(2e6))
        assert t2 == pytest.approx(2 * t1)

    def test_zero_instructions_is_free(self):
        core = thunder().node.core
        assert core.seconds(WorkSpec(0.0)) == 0.0

    def test_atomics_reduce_ipc(self):
        core = marenostrum4().node.core
        plain = core.effective_ipc(WorkSpec(1e6))
        atomic = core.effective_ipc(WorkSpec(1e6, atomic_frac=0.02))
        assert atomic < plain

    def test_instructions_in_inverts_seconds(self):
        core = marenostrum4().node.core
        spec = WorkSpec(3.7e8, atomic_frac=0.01, extra_miss_frac=0.005)
        t = core.seconds(spec)
        assert core.instructions_in(t, spec) == pytest.approx(
            spec.instructions, rel=1e-9)

    @given(st.floats(min_value=1.0, max_value=1e12),
           st.floats(min_value=0.0, max_value=0.2),
           st.floats(min_value=0.0, max_value=0.2))
    def test_ipc_never_exceeds_base(self, instr, af, mf):
        core = marenostrum4().node.core
        ipc = core.effective_ipc(WorkSpec(instr, atomic_frac=af,
                                          extra_miss_frac=mf))
        assert ipc <= core.base_ipc + 1e-12

    @given(st.floats(min_value=0.001, max_value=0.2))
    def test_atomics_hurt_ooo_intel_relatively_more(self, atomic_frac):
        """The paper's architecture asymmetry, as a model property."""
        intel = marenostrum4().node.core
        arm = thunder().node.core
        spec = WorkSpec(1e6, atomic_frac=atomic_frac)
        intel_ratio = intel.effective_ipc(spec) / intel.base_ipc
        arm_ratio = arm.effective_ipc(spec) / arm.base_ipc
        assert intel_ratio < arm_ratio


class TestCalibration:
    """Presets must reproduce the IPC counters of Section 4.3."""

    def test_mn4_mpi_only_ipc(self):
        core = marenostrum4().node.core
        assert core.effective_ipc(WorkSpec(1.0)) == pytest.approx(2.25, abs=0.05)

    def test_mn4_atomics_ipc(self):
        core = marenostrum4().node.core
        ipc = core.effective_ipc(WorkSpec(1.0, atomic_frac=ASSEMBLY_ATOMIC_FRAC))
        assert ipc == pytest.approx(1.15, abs=0.10)

    def test_thunder_mpi_only_ipc(self):
        core = thunder().node.core
        assert core.effective_ipc(WorkSpec(1.0)) == pytest.approx(0.49, abs=0.02)

    def test_thunder_atomics_ipc(self):
        core = thunder().node.core
        ipc = core.effective_ipc(WorkSpec(1.0, atomic_frac=ASSEMBLY_ATOMIC_FRAC))
        assert ipc == pytest.approx(0.42, abs=0.02)

    def test_multidep_ipc_factor_band(self):
        """0.95 derating lands in the paper's 94-96 % band on both cores."""
        for cluster in (marenostrum4(), thunder()):
            core = cluster.node.core
            ratio = (core.effective_ipc(WorkSpec(1.0, ipc_factor=0.95))
                     / core.base_ipc)
            assert 0.94 <= ratio <= 0.96

    def test_coloring_between_atomics_and_multidep(self):
        """Coloring IPC must beat atomics on both architectures (Sec. 4.3),
        at the miss fraction the coloring strategy actually uses."""
        from repro.core import DEFAULT_PARAMS
        color = WorkSpec(1.0,
                         extra_miss_frac=DEFAULT_PARAMS.color_extra_miss_frac)
        atomics = WorkSpec(1.0, atomic_frac=ASSEMBLY_ATOMIC_FRAC)
        multidep = WorkSpec(1.0, ipc_factor=0.95)
        for cluster in (marenostrum4(), thunder()):
            core = cluster.node.core
            assert core.effective_ipc(color) > core.effective_ipc(atomics)
            assert core.effective_ipc(color) < core.effective_ipc(multidep)


class TestNodeAndCluster:
    def test_node_core_count(self):
        assert marenostrum4().node.cores == 48
        assert thunder().node.cores == 96

    def test_total_cores(self):
        assert marenostrum4(num_nodes=2).total_cores == 96
        assert thunder(num_nodes=2).total_cores == 192

    def test_interconnect_transfer_time(self):
        link = InterconnectModel("x", latency_us=10.0, bandwidth_gbs=5.0)
        assert link.transfer_seconds(0) == pytest.approx(10e-6)
        # 5 GB at 5 GB/s = 1 s plus latency
        assert link.transfer_seconds(5e9) == pytest.approx(1.0 + 10e-6)

    def test_negative_message_size_rejected(self):
        link = InterconnectModel("x", latency_us=1.0, bandwidth_gbs=1.0)
        with pytest.raises(ValueError):
            link.transfer_seconds(-1)

    def test_intranode_cheaper_than_internode(self):
        for cluster in (marenostrum4(), thunder()):
            same = cluster.message_seconds(0, 0, 1e6)
            cross = cluster.message_seconds(0, 1, 1e6)
            assert same < cross

    def test_get_cluster_lookup(self):
        assert get_cluster("mn4").name == "MareNostrum4"
        assert get_cluster("THUNDER").name == "Thunder"
        with pytest.raises(KeyError):
            get_cluster("summit")

    def test_invalid_node(self):
        core = thunder().node.core
        with pytest.raises(ValueError):
            NodeModel("bad", sockets=0, cores_per_socket=4, core=core,
                      mem_bw_gbs=1.0)


class TestRankToNode:
    def test_block_mapping(self):
        # 96 ranks over 2 nodes: first 48 on node 0
        assert rank_to_node(0, 96, 2, "block") == 0
        assert rank_to_node(47, 96, 2, "block") == 0
        assert rank_to_node(48, 96, 2, "block") == 1
        assert rank_to_node(95, 96, 2, "block") == 1

    def test_cyclic_mapping(self):
        assert rank_to_node(0, 96, 2, "cyclic") == 0
        assert rank_to_node(1, 96, 2, "cyclic") == 1
        assert rank_to_node(2, 96, 2, "cyclic") == 0

    def test_block_mapping_uneven(self):
        # 5 ranks over 2 nodes: ceil(5/2)=3 per node
        nodes = [rank_to_node(r, 5, 2, "block") for r in range(5)]
        assert nodes == [0, 0, 0, 1, 1]

    @given(st.integers(min_value=1, max_value=256),
           st.integers(min_value=1, max_value=8))
    def test_every_rank_lands_on_valid_node(self, nranks, nnodes):
        for mapping in ("block", "cyclic"):
            for r in range(nranks):
                node = rank_to_node(r, nranks, nnodes, mapping)
                assert 0 <= node < nnodes

    def test_out_of_range_rank(self):
        with pytest.raises(ValueError):
            rank_to_node(10, 10, 2)
        with pytest.raises(ValueError):
            rank_to_node(-1, 10, 2)

    def test_unknown_mapping(self):
        with pytest.raises(ValueError):
            rank_to_node(0, 4, 2, "scatter")
