"""Tests for the PR 9 adaptive time-stepping stack.

Covers the deterministic CFL controller and Δt ladder, the per-rung
operator cache behind ``FractionalStepSolver.dt`` (including the stale-Δt
regression the setter fixes), ``advance_to`` determinism across reruns and
every fluid perf-toggle combination, endpoint accuracy against a fine
fixed-Δt reference, the app-layer Δt schedules / local subcycling, the
driver's bit-identical replay of adaptive workloads, the campaign axis,
and the batched runtime's repeats-ordering contract.
"""

import hashlib
import itertools

import numpy as np
import pytest

from repro.app.driver import RunConfig, run_cfpd
from repro.app.workload import WorkloadSpec, get_workload
from repro.campaign import get_campaign
from repro.core import Team, TaskGraph
from repro.fem import FlowBC, FractionalStepSolver, element_sizes
from repro.fem.fractional_step import FLUID_COUNTERS
from repro.fem.geometry import geometry_blocks
from repro.fem.timestep import (CflController, DtLadder, cfl_rate,
                                element_cfl_rates)
from repro.machine import CoreModel, WorkSpec
from repro.mesh.airway import Segment
from repro.mesh.generator import MeshResolution, build_tube_mesh
from repro.perf.toggles import configured
from repro.sim import Engine

FLUID_TOGGLES = ("fluid_operator_recycle", "deflation_setup_cache",
                 "krylov_buffers")


@pytest.fixture(scope="module")
def tube():
    seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                  radius=0.01)
    mesh = build_tube_mesh(seg, MeshResolution(points_per_ring=8,
                                               max_sections=6))
    z = mesh.coords[:, 2]
    r = np.linalg.norm(mesh.coords[:, :2], axis=1)
    inlet = np.nonzero(np.isclose(z, 0.0) & (r < 0.0099))[0]
    outlet = np.nonzero(np.isclose(z, -0.04))[0]
    wall = np.nonzero(np.isclose(r, 0.01))[0]
    u_in = np.zeros((len(inlet), 3))
    # weak inflow so the CFL controller has headroom to climb rungs
    u_in[:, 2] = -0.25 * (1.0 - (r[inlet] / 0.01) ** 2)
    bc = FlowBC(inlet_nodes=inlet, inlet_velocity=u_in, wall_nodes=wall,
                outlet_nodes=outlet)
    return mesh, bc


# -- controller / ladder ----------------------------------------------------

class TestDtLadder:
    def test_rungs_and_quantize(self):
        ladder = DtLadder(dt_min=1e-4, dt_max=8e-4)
        assert ladder.top == 3
        assert ladder.dt_of(0) == 1e-4
        assert ladder.dt_of(3) == pytest.approx(8e-4)
        # clamped outside [0, top]
        assert ladder.dt_of(-5) == 1e-4
        assert ladder.dt_of(99) == pytest.approx(8e-4)
        assert ladder.rungs() == [ladder.dt_of(k) for k in range(4)]
        # coarsest rung not exceeding the target
        assert ladder.quantize(5e-4) == 2
        assert ladder.quantize(1e-3) == 3
        assert ladder.quantize(1.5e-4) == 0
        # below the bottom rung floors at 0 (never stalls)
        assert ladder.quantize(1e-5) == 0
        # the relative epsilon admits its own rung values exactly
        assert ladder.quantize(ladder.dt_of(1)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DtLadder(dt_min=0.0, dt_max=1e-3)
        with pytest.raises(ValueError):
            DtLadder(dt_min=1e-3, dt_max=1e-4)
        with pytest.raises(ValueError):
            DtLadder(dt_min=1e-4, dt_max=8e-4, ratio=1.0)


class TestCflController:
    def test_drop_is_immediate_climb_has_hysteresis(self):
        control = CflController(cfl_target=0.9,
                                ladder=DtLadder(1e-4, 8e-4))
        top = control.ladder.top
        # violation: drop straight to the admissible rung
        assert control.rung_for(0.9 / 1e-4, top) == 0
        # zero rate targets dt_max: climb one rung at a time
        assert control.rung_for(0.0, 0) == 1
        assert control.rung_for(0.0, 1) == 2
        assert control.rung_for(0.0, top) == top
        # hysteresis: a target barely above the next rung does not climb
        rate = 0.9 / (2e-4 * 1.01)      # target = 1.01 * dt_of(1)
        assert control.rung_for(rate, 0) == 0
        rate = 0.9 / (2e-4 * 1.10)      # target = 1.10 * dt_of(1)
        assert control.rung_for(rate, 0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CflController(cfl_target=0.0)
        with pytest.raises(ValueError):
            CflController(climb_margin=0.99)


class TestCflRates:
    def test_rate_matches_elementwise_max(self, tube):
        mesh, bc = tube
        solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=2e-3)
        solver.run(2, tol=1e-6)
        blocks = geometry_blocks(mesh)
        rates = element_cfl_rates(solver.u, blocks, mesh.nelem)
        assert rates.shape == (mesh.nelem,)
        assert cfl_rate(solver.u, blocks) == rates.max()
        assert rates.max() > 0

    def test_element_sizes(self, tube):
        mesh, _ = tube
        h = element_sizes(mesh)
        assert h.shape == (mesh.nelem,)
        assert (h > 0).all()


# -- per-rung operator cache ------------------------------------------------

class TestRungCache:
    def test_counter_deltas(self, tube):
        mesh, bc = tube
        before = dict(FLUID_COUNTERS)
        solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=2e-3)
        assert FLUID_COUNTERS["dt_rung_rebuilds"] == \
            before["dt_rung_rebuilds"] + 1
        assert solver.rung_cache_size() == 1
        solver.dt = 1e-3                    # miss: new rung built
        assert FLUID_COUNTERS["dt_rung_misses"] == \
            before["dt_rung_misses"] + 1
        assert FLUID_COUNTERS["dt_rung_rebuilds"] == \
            before["dt_rung_rebuilds"] + 2
        assert solver.rung_cache_size() == 2
        solver.dt = 2e-3                    # hit: restored from the cache
        assert FLUID_COUNTERS["dt_rung_hits"] == before["dt_rung_hits"] + 1
        assert solver.rung_cache_size() == 2
        solver.dt = 2e-3                    # no-op: same value
        assert FLUID_COUNTERS["dt_rung_hits"] == before["dt_rung_hits"] + 1
        with pytest.raises(ValueError):
            solver.dt = 0.0
        with pytest.raises(ValueError):
            solver.dt = -1e-3

    @pytest.mark.parametrize("pressure_solver", ["cg", "deflated"])
    def test_stale_dt_regression(self, tube, pressure_solver):
        """Mutating ``dt`` mid-run must continue exactly like a fresh
        solver built at the new Δt and seeded with the same fields.

        This is the latent bug the property setter fixes: reassigning the
        old attribute left the recycled momentum operators (and the
        deflation setup) at the construction Δt.
        """
        mutated = FractionalStepSolver(mesh := tube[0], bc := tube[1],
                                       viscosity=1e-3, density=1.0,
                                       dt=2e-3,
                                       pressure_solver=pressure_solver)
        mutated.run(3, tol=1e-6)
        u_snap, p_snap = mutated.u.copy(), mutated.p.copy()
        mutated.dt = 1e-3
        infos_m = mutated.run(3, tol=1e-6)

        fresh = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                     dt=1e-3,
                                     pressure_solver=pressure_solver)
        fresh.u = u_snap.copy()
        fresh.p = p_snap.copy()
        infos_f = fresh.run(3, tol=1e-6)

        assert mutated.u.tobytes() == fresh.u.tobytes()
        assert mutated.p.tobytes() == fresh.p.tobytes()
        assert [(i.momentum_iterations, i.pressure_iterations)
                for i in infos_m] == \
            [(i.momentum_iterations, i.pressure_iterations)
             for i in infos_f]


# -- adaptive advance -------------------------------------------------------

def _advance_digest(mesh, bc, pressure_solver="cg"):
    control = CflController(ladder=DtLadder(dt_min=5e-4, dt_max=4e-3))
    solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                  dt=2e-3, pressure_solver=pressure_solver)
    infos = solver.advance_to(8e-3, control=control, tol=1e-5)
    h = hashlib.sha256()
    h.update(solver.u.tobytes())
    h.update(solver.p.tobytes())
    for i in infos:
        h.update(repr((i.momentum_iterations, i.pressure_iterations,
                       round(i.dt, 12), i.rung)).encode())
    return h.hexdigest(), infos


class TestAdvanceTo:
    def test_lands_exactly_on_t_end(self, tube):
        mesh, bc = tube
        _, infos = _advance_digest(mesh, bc)
        assert sum(i.dt for i in infos) == pytest.approx(8e-3, rel=1e-12)
        assert all(i.subcycles == 1 for i in infos)
        assert all(i.cfl > 0 for i in infos)
        # the adaptive run takes fewer steps than fixed dt=5e-4 would (16)
        assert len(infos) < 16

    def test_validation(self, tube):
        mesh, bc = tube
        solver = FractionalStepSolver(mesh, bc, viscosity=1e-3,
                                      density=1.0, dt=2e-3)
        with pytest.raises(ValueError):
            solver.advance_to(0.0)

    def test_deterministic_across_all_toggle_combos(self, tube):
        """Same initial state ⇒ identical Δt sequence, rung walk, Krylov
        iteration counts and final fields, for every subset of the fluid
        fast-path toggles."""
        mesh, bc = tube
        with configured(**{t: False for t in FLUID_TOGGLES}):
            ref, _ = _advance_digest(mesh, bc)
        for combo in itertools.product([False, True], repeat=3):
            state = dict(zip(FLUID_TOGGLES, combo))
            with configured(**state):
                got, _ = _advance_digest(mesh, bc)
            assert got == ref, f"adaptive digest depends on toggles {state}"
        # and a plain rerun replays bit for bit
        again, _ = _advance_digest(mesh, bc)
        assert again == ref

    def test_deterministic_deflated(self, tube):
        mesh, bc = tube
        with configured(**{t: False for t in FLUID_TOGGLES}):
            ref, _ = _advance_digest(mesh, bc, "deflated")
        got, _ = _advance_digest(mesh, bc, "deflated")
        assert got == ref

    def test_endpoint_accuracy_vs_fine_reference(self, tube):
        """From a developed state, the adaptive endpoint tracks the fine
        fixed-Δt reference within the documented tolerance (the bench gate
        uses the same bound on the larger mesh)."""
        mesh, bc = tube
        spinup = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=4e-3)
        spinup.run(120, tol=1e-6)
        u0, p0 = spinup.u.copy(), spinup.p.copy()

        def from_snapshot(dt):
            s = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                     dt=dt)
            s.u, s.p = u0.copy(), p0.copy()
            return s

        fine = from_snapshot(5e-4)
        fine.run(16, tol=1e-6)
        adaptive = from_snapshot(5e-4)
        control = CflController(ladder=DtLadder(dt_min=5e-4, dt_max=4e-3))
        infos = adaptive.advance_to(16 * 5e-4, control=control, tol=1e-6)
        assert len(infos) < 16
        err = np.linalg.norm(adaptive.u - fine.u) / np.linalg.norm(fine.u)
        assert err < 0.05


# -- app-layer schedules ----------------------------------------------------

class TestWorkloadSchedules:
    SPEC = dict(generations=2, points_per_ring=6, n_steps=8)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(adaptive="bogus")
        with pytest.raises(ValueError):
            WorkloadSpec(inlet_waveform="bogus")
        with pytest.raises(ValueError):
            WorkloadSpec(cfl_target=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(dt_ladder_rungs=0)
        with pytest.raises(ValueError):
            WorkloadSpec(dt_ladder_ratio=1.0)

    def test_off_mode_is_the_fixed_schedule(self):
        spec = WorkloadSpec(**self.SPEC)
        wl = get_workload(spec)
        sched = wl.dt_schedule()
        assert wl.n_sim_steps == spec.n_steps
        assert all(plan.dt == spec.dt for plan in sched)
        assert all(plan.rung == -1 for plan in sched)
        assert [plan.t for plan in sched] == \
            [s * spec.dt for s in range(spec.n_steps)]
        assert wl.injection_step_set() == set(spec.injection_steps())

    @pytest.mark.parametrize("mode", ["global", "local"])
    def test_adaptive_schedule_reaches_t_end(self, mode):
        spec = WorkloadSpec(adaptive=mode, inlet_waveform="sine",
                            **self.SPEC)
        wl = get_workload(spec)
        sched = wl.dt_schedule()
        assert sum(plan.dt for plan in sched) == \
            pytest.approx(spec.t_end, rel=1e-9)
        assert wl.n_sim_steps < spec.n_steps
        # injection steps land inside the schedule
        assert all(0 <= i < wl.n_sim_steps
                   for i in wl.injection_step_set())
        # cached and deterministic
        assert wl.dt_schedule() is sched

    def test_local_subcycles(self):
        spec = WorkloadSpec(adaptive="local", inlet_waveform="sine",
                            **self.SPEC)
        wl = get_workload(spec)
        sub = wl.subcycle_matrix(4)
        assert sub.shape == (wl.n_sim_steps, 4)
        assert sub.dtype == np.int64
        assert (sub >= 1).all()
        assert np.array_equal(sub, wl.subcycle_matrix(4))
        summary = wl.schedule_summary(nranks=4)
        for key in ("mode", "waveform", "n_sim_steps", "fixed_steps",
                    "steps_saved", "t_end", "dt_values", "max_cfl",
                    "h_min", "subcycles_total", "subcycles_max",
                    "subcycle_imbalance"):
            assert key in summary
        assert summary["mode"] == "local"
        assert summary["subcycles_total"] >= sub.shape[0] * sub.shape[1]

    def test_off_mode_subcycles_all_ones(self):
        wl = get_workload(WorkloadSpec(**self.SPEC))
        assert (wl.subcycle_matrix(4) == 1).all()


# -- driver replay ----------------------------------------------------------

def _run_digest(spec):
    cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=8)
    result = run_cfpd(cfg, spec=spec)
    h = hashlib.sha256()
    for s in result.phase_log.samples:
        h.update(repr((s.step, s.rank, s.phase, s.t0, s.t1,
                       s.busy, s.instructions)).encode())
    h.update(repr(result.total_time).encode())
    h.update(repr(result.deposition).encode())
    h.update(repr(result.solver_info).encode())
    return h.hexdigest(), result


class TestDriverAdaptive:
    SPEC = WorkloadSpec(generations=2, points_per_ring=6, n_steps=4,
                        adaptive="local", inlet_waveform="sine")

    def test_adaptive_run_replays_bit_identically(self):
        ref, result = _run_digest(self.SPEC)
        again, _ = _run_digest(self.SPEC)
        assert again == ref
        with configured(engine_batch=False):
            unbatched, _ = _run_digest(self.SPEC)
        assert unbatched == ref
        diag = result.adaptive_diag
        assert diag["mode"] == "local"
        assert diag["n_sim_steps"] < self.SPEC.n_steps
        assert diag["subcycles_total"] >= diag["n_sim_steps"]

    def test_fixed_run_has_no_adaptive_diag_mode_on(self):
        _, result = _run_digest(WorkloadSpec(generations=2,
                                             points_per_ring=6, n_steps=4))
        assert result.adaptive_diag.get("mode", "off") == "off"


# -- campaign axis ----------------------------------------------------------

class TestCampaignAxis:
    def test_adaptive_dlb_grid_expansion(self):
        camp = get_campaign("adaptive-dlb")
        jobs = camp.expand()
        cells = {(job.spec.adaptive, job.config.dlb) for job in jobs}
        assert cells == {("off", False), ("off", True),
                         ("local", False), ("local", True)}
        assert all(job.spec.inlet_waveform == "sine" for job in jobs)


# -- batched runtime: repeats ordering --------------------------------------

CORE = CoreModel(name="unit", freq_ghz=1.0, base_ipc=1.0, out_of_order=True,
                 atomic_stall_cycles=0.0, mem_stall_cycles=0.0)
SEC = 1e9


def _tied_completion_order():
    """Two teams finishing at the same simulated time, with different
    repeat structure: A runs a 4-task graph twice, B runs an 8-task graph
    once (same total work, both on 2 threads ⇒ both end at t=4).

    The completion order of this tie is the scalar runtime's dispatch
    genealogy; the batched runtime must reproduce it even though A's
    final completion comes from a repeated plan.
    """
    eng = Engine()
    team_a = Team(eng, CORE, 2, name="A")
    team_b = Team(eng, CORE, 2, name="B")
    order = []

    def graph(n):
        g = TaskGraph()
        for _ in range(n):
            g.add_task(WorkSpec(SEC))
        return g

    def run(team, g, repeats):
        def prog():
            stats = yield from team.run(g, repeats=repeats)
            order.append((team.name, eng.now, stats.tasks_run,
                          stats.busy_seconds, stats.t_end))
        eng.process(prog())

    run(team_a, graph(4), 2)
    run(team_b, graph(8), 1)
    eng.run()
    assert len(order) == 2
    assert order[0][1] == order[1][1]       # genuinely a tie
    return order


class TestBatchedRepeatsOrdering:
    def test_tie_order_matches_scalar_runtime(self):
        with configured(engine_batch=False):
            scalar = _tied_completion_order()
        with configured(engine_batch=True):
            batched = _tied_completion_order()
        assert batched == scalar

    @pytest.mark.parametrize("repeats", [2, 3, 4])
    def test_repeated_plan_stats_match_scalar(self, repeats):
        """The k-repeat plan's aggregate stats replicate the scalar
        left-fold ``+=`` accumulation bit for bit (not ``k * x``, which
        rounds differently for k >= 3)."""
        g = TaskGraph()
        for instr in (SEC / 3, SEC / 7, SEC / 11):
            g.add_task(WorkSpec(instr))

        def run_once():
            eng = Engine()
            team = Team(eng, CORE, 2)
            out = {}

            def prog():
                out["stats"] = yield from team.run(g, repeats=repeats)
            eng.process(prog())
            eng.run()
            s = out["stats"]
            return (eng.now, s.tasks_run, s.busy_seconds,
                    s.instructions, s.overhead_seconds, s.t_end)

        with configured(engine_batch=False):
            scalar = run_once()
        with configured(engine_batch=True):
            batched = run_once()
        assert batched == scalar
