"""Unit tests for the FEM substrate: shape functions, assembly, SGS."""

import numpy as np
import pytest

from repro.fem import (
    SGSState,
    assemble_operator,
    element_work_meters,
    reference_element,
    update_sgs,
)
from repro.mesh import ElementType, Mesh, MeshResolution, Segment, build_tube_mesh


# ---------------------------------------------------------------------------
# reference elements
# ---------------------------------------------------------------------------

class TestReferenceElements:
    @pytest.mark.parametrize("etype", list(ElementType))
    def test_partition_of_unity(self, etype):
        ref = reference_element(etype)
        np.testing.assert_allclose(ref.N.sum(axis=1), 1.0, atol=1e-12)

    @pytest.mark.parametrize("etype", list(ElementType))
    def test_gradient_of_unity_is_zero(self, etype):
        ref = reference_element(etype)
        np.testing.assert_allclose(ref.dN.sum(axis=1), 0.0, atol=1e-12)

    def test_tet_reference_volume(self):
        ref = reference_element(ElementType.TET)
        assert ref.weights.sum() == pytest.approx(1.0 / 6.0)

    def test_prism_reference_volume(self):
        ref = reference_element(ElementType.PRISM)
        # triangle area 1/2 times z-length 2
        assert ref.weights.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("etype,coords,expected", [
        (ElementType.TET,
         np.array([[0., 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]]),
         1.0 / 6.0),
        (ElementType.PRISM,
         np.array([[0., 0, 0], [1, 0, 0], [0, 1, 0],
                   [0, 0, 2], [1, 0, 2], [0, 1, 2]]),
         1.0),
        (ElementType.PYRAMID,
         np.array([[-1., -1, 0], [1, -1, 0], [1, 1, 0], [-1, 1, 0],
                   [0, 0, 1.5]]),
         4.0 * 1.5 / 3.0),
    ])
    def test_quadrature_integrates_volume(self, etype, coords, expected):
        ref = reference_element(etype)
        J = np.einsum("qni,nj->qij", ref.dN, coords)
        detJ = np.abs(np.linalg.det(J))
        assert (detJ * ref.weights).sum() == pytest.approx(expected, rel=1e-9)


# ---------------------------------------------------------------------------
# assembly on a structured tet mesh of the unit cube
# ---------------------------------------------------------------------------

def unit_cube_tets(n=3):
    """Conforming tet mesh of the unit cube, n^3 cells, 6 tets each."""
    xs = np.linspace(0.0, 1.0, n + 1)
    coords = np.array([[x, y, z] for x in xs for y in xs for z in xs])

    def vid(i, j, k):
        return (i * (n + 1) + j) * (n + 1) + k

    tets = []
    # Kuhn subdivision of each cube: 6 tets, globally conforming
    perms = [(0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0)]
    for i in range(n):
        for j in range(n):
            for k in range(n):
                base = np.array([i, j, k])
                for perm in perms:
                    path = [base.copy()]
                    p = base.copy()
                    for axis in perm:
                        p = p.copy()
                        p[axis] += 1
                        path.append(p)
                    tets.append([vid(*q) for q in path])
    conn = np.full((len(tets), 6), -1, dtype=np.int32)
    conn[:, :4] = np.asarray(tets, dtype=np.int32)
    types = np.full(len(tets), ElementType.TET, dtype=np.int8)
    return Mesh(coords, types, conn)


@pytest.fixture(scope="module")
def cube():
    return unit_cube_tets(3)


@pytest.fixture(scope="module")
def tube():
    seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                  radius=0.01)
    return build_tube_mesh(seg, MeshResolution(points_per_ring=8))


class TestAssembly:
    def test_stiffness_annihilates_constants(self, cube):
        res = assemble_operator(cube, kappa=1.0)
        ones = np.ones(cube.nnodes)
        np.testing.assert_allclose(res.matrix @ ones, 0.0, atol=1e-10)

    def test_stiffness_symmetric(self, cube):
        K = assemble_operator(cube, kappa=1.0).matrix
        assert abs(K - K.T).max() < 1e-12

    def test_stiffness_energy_of_linear_field(self, cube):
        """For u = x on the unit cube, u^T K u = integral |grad u|^2 = 1."""
        K = assemble_operator(cube, kappa=1.0).matrix
        u = cube.coords[:, 0]
        assert u @ (K @ u) == pytest.approx(1.0, rel=1e-9)

    def test_mass_matrix_total_is_volume(self, cube):
        res = assemble_operator(cube, kappa=0.0, mass_coeff=1.0)
        ones = np.ones(cube.nnodes)
        assert ones @ (res.matrix @ ones) == pytest.approx(1.0, rel=1e-9)

    def test_mass_matrix_total_on_hybrid_tube(self, tube):
        res = assemble_operator(tube, kappa=0.0, mass_coeff=1.0)
        ones = np.ones(tube.nnodes)
        total = ones @ (res.matrix @ ones)
        assert total == pytest.approx(tube.volumes().sum(), rel=1e-6)

    def test_hybrid_stiffness_annihilates_constants(self, tube):
        res = assemble_operator(tube, kappa=1.0)
        ones = np.ones(tube.nnodes)
        np.testing.assert_allclose(res.matrix @ ones, 0.0, atol=1e-8)

    def test_convection_makes_nonsymmetric(self, cube):
        vel = np.tile([1.0, 0.0, 0.0], (cube.nnodes, 1))
        A = assemble_operator(cube, kappa=0.01, velocity=vel).matrix
        assert abs(A - A.T).max() > 1e-8

    def test_source_rhs_total(self, cube):
        res = assemble_operator(cube, kappa=1.0, source=2.0)
        assert res.rhs.sum() == pytest.approx(2.0, rel=1e-9)

    def test_partial_assembly_sums_to_full(self, cube):
        full = assemble_operator(cube, kappa=1.0).matrix
        half = cube.nelem // 2
        a = assemble_operator(cube, kappa=1.0,
                              element_ids=np.arange(half)).matrix
        b = assemble_operator(cube, kappa=1.0,
                              element_ids=np.arange(half, cube.nelem)).matrix
        assert abs((a + b) - full).max() < 1e-12

    def test_assembly_order_independent(self, tube):
        """The race-management strategies reorder elements; the assembled
        matrix must not change (strategy equivalence)."""
        ids = np.arange(tube.nelem)
        rng = np.random.default_rng(3)
        shuffled = rng.permutation(ids)
        A = assemble_operator(tube, kappa=1.0, element_ids=ids).matrix
        B = assemble_operator(tube, kappa=1.0, element_ids=shuffled).matrix
        assert abs(A - B).max() < 1e-12

    def test_scatter_counts(self, tube):
        res = assemble_operator(tube, kappa=1.0)
        for etype, nn in ((ElementType.TET, 4), (ElementType.PYRAMID, 5),
                          (ElementType.PRISM, 6)):
            sel = tube.elem_types == etype
            assert (res.scatter_counts[sel] == nn * nn + nn).all()

    def test_work_meters(self, tube):
        instr_per_type = {ElementType.TET: 1000.0, ElementType.PYRAMID: 1800.0,
                          ElementType.PRISM: 3000.0}
        instr, atomics = element_work_meters(tube, instr_per_type)
        assert len(instr) == tube.nelem
        sel = tube.elem_types == ElementType.PRISM
        assert (instr[sel] == 3000.0).all()
        assert (atomics[sel] == 42).all()


class TestSGS:
    def test_update_shapes_and_locality(self, tube):
        state = SGSState.zeros(tube.nelem)
        vel = np.tile([0.0, 0.0, -1.0], (tube.nnodes, 1))
        sub = np.arange(tube.nelem // 2)
        update_sgs(tube, state, vel, viscosity=1e-5, dt=1e-4,
                   element_ids=sub)
        # only the updated half may be nonzero... convection of uniform
        # field is zero; use a shear field instead
        state2 = SGSState.zeros(tube.nelem)
        shear = np.zeros((tube.nnodes, 3))
        shear[:, 2] = tube.coords[:, 0] * 100.0
        shear[:, 0] = 1.0
        update_sgs(tube, state2, shear, viscosity=1e-5, dt=1e-4,
                   element_ids=sub)
        assert np.abs(state2.values[sub]).max() > 0.0
        assert np.abs(state2.values[tube.nelem // 2:]).max() == 0.0

    def test_uniform_flow_gives_zero_convection_residual(self, tube):
        state = SGSState.zeros(tube.nelem)
        vel = np.tile([0.0, 0.0, -2.0], (tube.nnodes, 1))
        update_sgs(tube, state, vel, viscosity=1e-5, dt=1e-4)
        np.testing.assert_allclose(state.values, 0.0, atol=1e-10)

    def test_sgs_bounded_by_tau_times_residual(self, tube):
        """tau <= dt, so |u_sgs| <= dt * |residual| (stability bound)."""
        state = SGSState.zeros(tube.nelem)
        rng = np.random.default_rng(0)
        vel = rng.normal(size=(tube.nnodes, 3))
        update_sgs(tube, state, vel, viscosity=1e-5, dt=1e-4)
        assert np.isfinite(state.values).all()
