"""Unit tests for the Krylov solvers."""

import numpy as np
import pytest
from scipy import sparse

from repro.fem import assemble_operator
from repro.solver import SolveResult, bicgstab, cg, jacobi_preconditioner
from tests.test_fem import unit_cube_tets


def spd_system(n=80, seed=0):
    rng = np.random.default_rng(seed)
    A = sparse.random(n, n, density=0.08, random_state=rng)
    A = A @ A.T + sparse.identity(n) * n * 0.05
    b = rng.normal(size=n)
    return A.tocsr(), b


class TestCG:
    def test_solves_spd_system(self):
        A, b = spd_system()
        res = cg(A, b, tol=1e-10, maxiter=500)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-6)

    def test_residual_history_decreases_overall(self):
        A, b = spd_system()
        res = cg(A, b, tol=1e-10)
        assert res.residuals[-1] < res.residuals[0]

    def test_jacobi_preconditioner_helps_scaled_system(self):
        n = 120
        rng = np.random.default_rng(1)
        scale = sparse.diags(10.0 ** rng.uniform(-3, 3, size=n))
        A0, b = spd_system(n, seed=1)
        A = (scale @ A0 @ scale).tocsr()
        plain = cg(A, b, tol=1e-8, maxiter=2000)
        pre = cg(A, b, tol=1e-8, maxiter=2000,
                 M=jacobi_preconditioner(A))
        assert pre.iterations < plain.iterations

    def test_zero_rhs(self):
        A, _ = spd_system()
        res = cg(A, np.zeros(A.shape[0]))
        assert res.converged and np.allclose(res.x, 0.0)

    def test_maxiter_respected(self):
        A, b = spd_system(200, seed=3)
        res = cg(A, b, tol=1e-16, maxiter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_initial_guess_exact(self):
        A, b = spd_system()
        exact = cg(A, b, tol=1e-12, maxiter=1000).x
        res = cg(A, b, x0=exact, tol=1e-8)
        assert res.converged
        assert res.iterations <= 2

    def test_matvec_counter(self):
        A, b = spd_system()
        res = cg(A, b, tol=1e-10)
        assert res.matvecs == res.iterations + 1

    def test_fem_pressure_poisson(self):
        """Continuity-like solve: regularized Neumann Laplacian is SPD."""
        cube = unit_cube_tets(3)
        K = assemble_operator(cube, kappa=1.0).matrix
        M = assemble_operator(cube, kappa=0.0, mass_coeff=1.0).matrix
        A = (K + 1e-3 * M).tocsr()
        rng = np.random.default_rng(0)
        b = rng.normal(size=cube.nnodes)
        res = cg(A, b, tol=1e-9, maxiter=2000,
                 M=jacobi_preconditioner(A))
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-5)


class TestBiCGStab:
    def test_solves_nonsymmetric_system(self):
        n = 100
        rng = np.random.default_rng(2)
        A = (sparse.random(n, n, density=0.05, random_state=rng)
             + sparse.identity(n) * 4.0).tocsr()
        b = rng.normal(size=n)
        res = bicgstab(A, b, tol=1e-10, maxiter=500)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-6)

    def test_fem_momentum_system(self):
        """Momentum-like solve: mass/dt + convection + diffusion."""
        cube = unit_cube_tets(3)
        vel = np.tile([1.0, 0.5, 0.0], (cube.nnodes, 1))
        A = assemble_operator(cube, kappa=0.01, mass_coeff=1.0 / 1e-2,
                              velocity=vel).matrix.tocsr()
        rng = np.random.default_rng(1)
        b = rng.normal(size=cube.nnodes)
        res = bicgstab(A, b, tol=1e-9, maxiter=1000,
                       M=jacobi_preconditioner(A))
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-5)

    def test_zero_rhs(self):
        A, _ = spd_system()
        res = bicgstab(A, np.zeros(A.shape[0]))
        assert res.converged and np.allclose(res.x, 0.0)

    def test_matches_cg_on_spd(self):
        A, b = spd_system(seed=5)
        x_cg = cg(A, b, tol=1e-11, maxiter=1000).x
        x_bi = bicgstab(A, b, tol=1e-11, maxiter=1000).x
        np.testing.assert_allclose(x_cg, x_bi, atol=1e-6)

    def test_matches_scipy(self):
        from scipy.sparse import linalg as sla
        n = 90
        rng = np.random.default_rng(7)
        A = (sparse.random(n, n, density=0.06, random_state=rng)
             + sparse.identity(n) * 5.0).tocsr()
        b = rng.normal(size=n)
        ours = bicgstab(A, b, tol=1e-12, maxiter=2000)
        x_scipy, info = sla.bicgstab(A, b, rtol=1e-12, maxiter=2000)
        assert info == 0 and ours.converged
        np.testing.assert_allclose(ours.x, x_scipy, atol=1e-7)


class TestJacobi:
    def test_inverse_of_diagonal(self):
        A = sparse.diags([2.0, 4.0, 8.0]).tocsr()
        M = jacobi_preconditioner(A)
        np.testing.assert_allclose(M(np.ones(3)), [0.5, 0.25, 0.125])

    def test_zero_diagonal_guard(self):
        A = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        M = jacobi_preconditioner(A)
        out = M(np.ones(2))
        assert np.isfinite(out).all()


class TestBufferedCores:
    """The ``krylov_buffers`` cores replay the allocating cores' FP
    operations in the same order on preallocated workspaces — every solve
    must be bit-identical to the allocating path."""

    @pytest.mark.parametrize("solve", [cg, bicgstab])
    @pytest.mark.parametrize("precondition", [False, True])
    @pytest.mark.parametrize("guess", [False, True])
    def test_bitwise_identical_to_allocating_cores(self, solve,
                                                   precondition, guess):
        from repro.perf.toggles import configured

        A, b = spd_system(n=120, seed=5)
        M = jacobi_preconditioner(A) if precondition else None
        x0 = np.linspace(-1.0, 1.0, len(b)) if guess else None
        with configured(krylov_buffers=False):
            ref = solve(A, b, x0=x0, tol=1e-10, maxiter=400, M=M)
        with configured(krylov_buffers=True):
            fast = solve(A, b, x0=x0, tol=1e-10, maxiter=400, M=M)
        assert fast.x.tobytes() == ref.x.tobytes()
        assert fast.iterations == ref.iterations
        assert fast.matvecs == ref.matvecs
        assert fast.residuals == ref.residuals

    @pytest.mark.parametrize("solve", [cg, bicgstab])
    def test_zero_rhs(self, solve):
        from repro.perf.toggles import configured

        A, _ = spd_system(n=40, seed=1)
        with configured(krylov_buffers=True):
            res = solve(A, np.zeros(40))
        assert res.converged and res.iterations == 0
        assert np.all(res.x == 0.0)

    def test_result_does_not_alias_workspace(self):
        """The returned solution must survive the workspace being reused
        by a later solve."""
        from repro.perf.toggles import configured

        A, b = spd_system(n=60, seed=2)
        with configured(krylov_buffers=True):
            first = cg(A, b, tol=1e-10, maxiter=400)
            snapshot = first.x.copy()
            cg(A, 2.0 * b, tol=1e-10, maxiter=400)
        np.testing.assert_array_equal(first.x, snapshot)

    def test_workspace_cache_hits(self):
        from repro.perf.toggles import configured
        from repro.solver import krylov_workspace_stats

        A, b = spd_system(n=50, seed=3)
        with configured(krylov_buffers=True):
            before = krylov_workspace_stats()
            cg(A, b, tol=1e-10, maxiter=400)
            mid = krylov_workspace_stats()
            cg(A, b, tol=1e-10, maxiter=400)
            after = krylov_workspace_stats()
        assert mid["misses"] > before["misses"]
        assert after["hits"] > mid["hits"]
        assert after["resident"] <= 8
