"""Unit and property tests for partitioning and coloring."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import (
    AirwayConfig,
    MeshResolution,
    Segment,
    build_airway_mesh,
    build_tube_mesh,
)
from repro.mesh.mesh import CSRGraph
from repro.partition import (
    decompose_mesh,
    dsatur_coloring,
    edge_cut,
    greedy_coloring,
    partition_graph,
    partition_weights,
    rcb_partition,
    subdomain_decomposition,
    verify_coloring,
)


def grid_graph(nx_, ny_):
    """A 2-D grid graph as CSR (classic partitioning testbed)."""
    def vid(i, j):
        return i * ny_ + j

    ea, eb = [], []
    for i in range(nx_):
        for j in range(ny_):
            if i + 1 < nx_:
                ea.append(vid(i, j)); eb.append(vid(i + 1, j))
            if j + 1 < ny_:
                ea.append(vid(i, j)); eb.append(vid(i, j + 1))
    return CSRGraph.from_edges(nx_ * ny_,
                               np.asarray(ea, dtype=np.int32),
                               np.asarray(eb, dtype=np.int32))


@pytest.fixture(scope="module")
def tube_mesh():
    seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.08,
                  radius=0.01)
    return build_tube_mesh(seg, MeshResolution(points_per_ring=8))


class TestRCB:
    def test_labels_in_range(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(500, 3))
        labels = rcb_partition(pts, 7)
        assert labels.min() == 0 and labels.max() == 6

    def test_balanced_counts(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(size=(1000, 3))
        labels = rcb_partition(pts, 8)
        counts = np.bincount(labels, minlength=8)
        assert counts.max() - counts.min() <= 2

    def test_weighted_balance(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(size=(1000, 2))
        w = rng.uniform(0.5, 2.0, size=1000)
        labels = rcb_partition(pts, 4, weights=w)
        pw = partition_weights(labels, w, 4)
        assert pw.max() / pw.min() < 1.3

    def test_single_part(self):
        pts = np.zeros((10, 3))
        assert (rcb_partition(pts, 1) == 0).all()

    def test_parts_are_spatially_compact(self):
        pts = np.stack(np.meshgrid(np.arange(10), np.arange(10)),
                       axis=-1).reshape(-1, 2).astype(float)
        labels = rcb_partition(pts, 2)
        # a straight cut: one coordinate separates the halves
        side0 = pts[labels == 0]
        side1 = pts[labels == 1]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        assert side0[:, axis].max() <= side1[:, axis].min() or \
               side1[:, axis].max() <= side0[:, axis].min()

    def test_validation(self):
        with pytest.raises(ValueError):
            rcb_partition(np.zeros((5, 3)), 0)
        with pytest.raises(ValueError):
            rcb_partition(np.zeros(5), 2)
        with pytest.raises(ValueError):
            rcb_partition(np.zeros((5, 3)), 2, weights=-np.ones(5))

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=16, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_every_part_nonempty_when_enough_points(self, k, n):
        rng = np.random.default_rng(42)
        pts = rng.uniform(size=(n, 3))
        labels = rcb_partition(pts, k)
        assert len(np.unique(labels)) == k


class TestMultilevel:
    def test_grid_bisection_balanced_and_low_cut(self):
        g = grid_graph(16, 16)
        labels = partition_graph(g, 2, seed=0)
        counts = np.bincount(labels, minlength=2)
        assert counts.min() >= 0.4 * g.n
        # optimal cut of a 16x16 grid bisection is 16; allow slack
        assert edge_cut(g, labels) <= 40

    def test_kway_parts_all_present(self):
        g = grid_graph(20, 20)
        labels = partition_graph(g, 6, seed=1)
        assert len(np.unique(labels)) == 6

    def test_kway_balance(self):
        g = grid_graph(24, 24)
        labels = partition_graph(g, 8, seed=0)
        counts = np.bincount(labels, minlength=8)
        assert counts.max() <= 1.25 * counts.mean()

    def test_weighted_partition(self):
        g = grid_graph(12, 12)
        w = np.ones(g.n)
        w[:36] = 4.0  # heavy corner
        labels = partition_graph(g, 4, vertex_weights=w, seed=0)
        pw = partition_weights(labels, w, 4)
        assert pw.max() <= 1.5 * pw.mean()

    def test_deterministic_for_seed(self):
        g = grid_graph(10, 10)
        a = partition_graph(g, 4, seed=5)
        b = partition_graph(g, 4, seed=5)
        assert (a == b).all()

    def test_single_part(self):
        g = grid_graph(4, 4)
        assert (partition_graph(g, 1) == 0).all()

    def test_nparts_exceeds_vertices(self):
        g = grid_graph(2, 2)
        labels = partition_graph(g, 4, seed=0)
        assert len(np.unique(labels)) == 4

    def test_mesh_partition_cut_beats_random(self, tube_mesh):
        g = tube_mesh.face_adjacency()
        labels = partition_graph(g, 8, seed=0)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 8, size=g.n)
        assert edge_cut(g, labels) < 0.5 * edge_cut(g, random_labels)


class TestColoring:
    @pytest.mark.parametrize("algo", [greedy_coloring, dsatur_coloring])
    def test_valid_on_grid(self, algo):
        g = grid_graph(10, 10)
        colors = algo(g)
        assert verify_coloring(g, colors)
        # grid is bipartite: DSATUR should find 2; greedy <= 3
        assert colors.max() <= 2

    @pytest.mark.parametrize("algo", [greedy_coloring, dsatur_coloring])
    def test_valid_on_mesh_conflict_graph(self, algo, tube_mesh):
        g = tube_mesh.node_sharing_adjacency()
        colors = algo(g)
        assert verify_coloring(g, colors)
        # bounded by max degree + 1
        maxdeg = int(np.max(np.diff(g.xadj)))
        assert colors.max() <= maxdeg

    def test_dsatur_not_worse_than_greedy_on_mesh(self, tube_mesh):
        g = tube_mesh.node_sharing_adjacency()
        assert dsatur_coloring(g).max() <= greedy_coloring(g).max() + 1

    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, np.zeros(0, np.int32), np.zeros(0, np.int32))
        assert len(greedy_coloring(g)) == 0

    def test_verify_rejects_bad_coloring(self):
        g = grid_graph(3, 3)
        assert not verify_coloring(g, np.zeros(g.n, dtype=int))

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_coloring_always_valid(self, a, b):
        g = grid_graph(a, b)
        assert verify_coloring(g, greedy_coloring(g))
        assert verify_coloring(g, dsatur_coloring(g))


class TestSubdomains:
    def test_contiguous_labels_cover_and_contiguous(self, tube_mesh):
        ids = np.arange(tube_mesh.nelem)
        labels, adj = subdomain_decomposition(tube_mesh, ids, 8,
                                              method="contiguous")
        assert len(labels) == tube_mesh.nelem
        assert len(adj) == 8
        # contiguity: labels are non-decreasing over memory order
        assert (np.diff(labels) >= 0).all()

    def test_shared_node_threshold_sparsifies(self, tube_mesh):
        """Raising min_shared_nodes must monotonically thin the subdomain
        adjacency — the scale-compensation knob of the experiments."""
        ids = np.arange(tube_mesh.nelem)
        degrees = []
        for thr in (1, 2, 4):
            _, adj = subdomain_decomposition(tube_mesh, ids, 16,
                                             min_shared_nodes=thr)
            degrees.append(sum(len(a) for a in adj))
        assert degrees[0] >= degrees[1] >= degrees[2]
        # and the graph must not be a clique at production threshold
        _, adj = subdomain_decomposition(tube_mesh, ids, 16,
                                         min_shared_nodes=4)
        assert max(len(a) for a in adj) < 15

    def test_unknown_subdomain_method(self, tube_mesh):
        with pytest.raises(ValueError):
            subdomain_decomposition(tube_mesh, np.arange(10), 2,
                                    method="zigzag")

    def test_adjacency_symmetric(self, tube_mesh):
        ids = np.arange(tube_mesh.nelem)
        _, adj = subdomain_decomposition(tube_mesh, ids, 8)
        for s, nbrs in enumerate(adj):
            for t in nbrs:
                assert s in adj[t]

    def test_adjacency_no_self(self, tube_mesh):
        ids = np.arange(tube_mesh.nelem)
        _, adj = subdomain_decomposition(tube_mesh, ids, 8)
        assert all(s not in adj[s] for s in range(len(adj)))

    def test_fewer_elements_than_subdomains(self, tube_mesh):
        ids = np.arange(3)
        labels, adj = subdomain_decomposition(tube_mesh, ids, 16,
                                              min_elements_per_subdomain=1)
        assert len(adj) == 3
        assert set(labels) == {0, 1, 2}

    def test_granularity_floor(self, tube_mesh):
        """Small domains get fewer subdomains so tasks keep a minimum
        size (task overhead must not dominate)."""
        ids = np.arange(24)
        labels, adj = subdomain_decomposition(tube_mesh, ids, 16,
                                              min_elements_per_subdomain=6)
        assert len(adj) == 4  # 24 // 6

    def test_empty_rank(self, tube_mesh):
        labels, adj = subdomain_decomposition(tube_mesh,
                                              np.zeros(0, dtype=int), 4)
        assert len(labels) == 0 and adj == []


class TestDecomposeMesh:
    @pytest.fixture(scope="class")
    def airway(self):
        return build_airway_mesh(AirwayConfig(generations=3),
                                 MeshResolution(points_per_ring=6))

    @pytest.mark.parametrize("method", ["multilevel", "rcb"])
    def test_every_element_owned_once(self, airway, method):
        dec = decompose_mesh(airway, 12, method=method)
        assert dec.elements_per_rank().sum() == airway.mesh.nelem
        assert len(dec.domains) == 12

    def test_element_counts_balanced(self, airway):
        dec = decompose_mesh(airway, 12, method="rcb")
        counts = dec.elements_per_rank()
        assert counts.max() <= 1.35 * counts.mean()

    def test_cost_imbalance_emerges_from_element_types(self, airway):
        """Partitioning balances counts, not costs: with prisms ~3x tets the
        per-rank cost spread is wider than the count spread (Table 1)."""
        from repro.mesh import ElementType
        dec = decompose_mesh(airway, 12, method="rcb")
        cost_per_type = {ElementType.TET: 1.0, ElementType.PYRAMID: 1.7,
                         ElementType.PRISM: 3.0}
        costs = np.array([cost_per_type[ElementType(t)]
                          for t in airway.mesh.elem_types])
        rank_costs = np.bincount(dec.labels, weights=costs, minlength=12)
        counts = dec.elements_per_rank()
        count_balance = counts.mean() / counts.max()
        cost_balance = rank_costs.mean() / rank_costs.max()
        assert cost_balance < count_balance

    def test_domains_have_subdomain_structure(self, airway):
        dec = decompose_mesh(airway, 6, subdomains_per_rank=8, method="rcb")
        for dom in dec.domains:
            if dom.nelem >= 8:
                assert dom.nsub == 8
            assert len(dom.sub_labels) == dom.nelem

    def test_halo_nodes_positive(self, airway):
        dec = decompose_mesh(airway, 6, method="rcb")
        assert all(d.halo_nodes >= 0 for d in dec.domains)
        assert sum(d.halo_nodes for d in dec.domains) > 0

    def test_invalid_nranks(self, airway):
        with pytest.raises(ValueError):
            decompose_mesh(airway, 0)

    def test_unknown_method(self, airway):
        with pytest.raises(ValueError):
            decompose_mesh(airway, 4, method="magic")
