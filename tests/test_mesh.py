"""Unit tests for the mesh substrate (elements, container, airway, mesher)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import (
    AirwayConfig,
    ElementType,
    Mesh,
    MeshResolution,
    NODES_PER_TYPE,
    Segment,
    build_airway_mesh,
    build_airway_tree,
    build_tube_mesh,
    element_volumes,
)


# ---------------------------------------------------------------------------
# element volumes
# ---------------------------------------------------------------------------

UNIT_TET = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float)
UNIT_PRISM = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0],
                       [0, 0, 1], [1, 0, 1], [0, 1, 1]], dtype=float)
UNIT_PYRAMID = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
                         [0.5, 0.5, 1.0]], dtype=float)


class TestElementVolumes:
    def test_unit_tet(self):
        v = element_volumes(UNIT_TET, ElementType.TET, [[0, 1, 2, 3]])
        assert v[0] == pytest.approx(1.0 / 6.0)

    def test_unit_prism(self):
        v = element_volumes(UNIT_PRISM, ElementType.PRISM,
                            [[0, 1, 2, 3, 4, 5]])
        assert v[0] == pytest.approx(0.5)

    def test_unit_pyramid(self):
        v = element_volumes(UNIT_PYRAMID, ElementType.PYRAMID,
                            [[0, 1, 2, 3, 4]])
        assert v[0] == pytest.approx(1.0 / 3.0)

    def test_bad_connectivity_shape(self):
        with pytest.raises(ValueError):
            element_volumes(UNIT_TET, ElementType.TET, [[0, 1, 2]])

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_volume_scales_cubically(self, scale):
        v1 = element_volumes(UNIT_PRISM, ElementType.PRISM,
                             [[0, 1, 2, 3, 4, 5]])
        v2 = element_volumes(UNIT_PRISM * scale, ElementType.PRISM,
                             [[0, 1, 2, 3, 4, 5]])
        assert v2[0] == pytest.approx(v1[0] * scale ** 3, rel=1e-9)


# ---------------------------------------------------------------------------
# Mesh container
# ---------------------------------------------------------------------------

def two_tet_mesh():
    """Two tets sharing a face (0,1,2)."""
    coords = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
                       [0, 0, -1]], dtype=float)
    types = np.array([ElementType.TET, ElementType.TET], dtype=np.int8)
    conn = np.array([[0, 1, 2, 3, -1, -1], [0, 1, 2, 4, -1, -1]],
                    dtype=np.int32)
    return Mesh(coords, types, conn)


class TestMeshContainer:
    def test_basic_counts(self):
        m = two_tet_mesh()
        assert m.nnodes == 5 and m.nelem == 2
        assert m.type_counts()[ElementType.TET] == 2

    def test_nodes_of(self):
        m = two_tet_mesh()
        assert list(m.nodes_of(1)) == [0, 1, 2, 4]

    def test_centroids(self):
        m = two_tet_mesh()
        c = m.centroids()
        assert c[0] == pytest.approx([0.25, 0.25, 0.25])

    def test_volumes(self):
        m = two_tet_mesh()
        assert m.volumes() == pytest.approx([1 / 6, 1 / 6])

    def test_face_adjacency_detects_shared_face(self):
        m = two_tet_mesh()
        g = m.face_adjacency()
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]

    def test_node_sharing_adjacency(self):
        m = two_tet_mesh()
        g = m.node_sharing_adjacency()
        assert list(g.neighbors(0)) == [1]

    def test_node_sharing_subset(self):
        m = two_tet_mesh()
        g = m.node_sharing_adjacency(np.array([1]))
        assert g.n == 1 and g.degree(0) == 0

    def test_node_to_elements(self):
        m = two_tet_mesh()
        n2e = m.node_to_elements()
        assert sorted(n2e.neighbors(0)) == [0, 1]
        assert list(n2e.neighbors(3)) == [0]

    def test_invalid_padding_rejected(self):
        coords = np.zeros((4, 3))
        types = np.array([ElementType.TET], dtype=np.int8)
        conn = np.array([[0, 1, 2, 3, 9, -1]], dtype=np.int32)
        with pytest.raises(ValueError):
            Mesh(coords, types, conn)

    def test_out_of_range_node_rejected(self):
        coords = np.zeros((3, 3))
        types = np.array([ElementType.TET], dtype=np.int8)
        conn = np.array([[0, 1, 2, 7, -1, -1]], dtype=np.int32)
        with pytest.raises(ValueError):
            Mesh(coords, types, conn)


# ---------------------------------------------------------------------------
# airway tree
# ---------------------------------------------------------------------------

class TestAirwayTree:
    def test_segment_count(self):
        # face + nasal + trachea + sum(2^g for g=1..G)
        for g in (0, 1, 3):
            segs = build_airway_tree(AirwayConfig(generations=g))
            assert len(segs) == 3 + (2 ** (g + 1) - 2)

    def test_parents_precede_children(self):
        segs = build_airway_tree(AirwayConfig(generations=4))
        for seg in segs:
            if seg.parent >= 0:
                assert seg.parent < seg.sid

    def test_children_start_at_parent_end(self):
        segs = build_airway_tree(AirwayConfig(generations=3))
        by_id = {s.sid: s for s in segs}
        for seg in segs:
            if seg.parent >= 0:
                np.testing.assert_allclose(seg.start, by_id[seg.parent].end)

    def test_radii_follow_murray_law(self):
        cfg = AirwayConfig(generations=4)
        segs = build_airway_tree(cfg)
        for seg in segs:
            if seg.generation >= 1:
                expected = cfg.trachea_radius * cfg.radius_ratio ** seg.generation
                assert seg.radius == pytest.approx(expected)

    def test_deterministic_given_seed(self):
        a = build_airway_tree(AirwayConfig(generations=3, seed=7))
        b = build_airway_tree(AirwayConfig(generations=3, seed=7))
        for sa, sb in zip(a, b):
            np.testing.assert_allclose(sa.direction, sb.direction)

    def test_directions_unit_norm(self):
        segs = build_airway_tree(AirwayConfig(generations=5))
        for seg in segs:
            assert np.linalg.norm(seg.direction) == pytest.approx(1.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AirwayConfig(generations=-1)
        with pytest.raises(ValueError):
            AirwayConfig(radius_ratio=1.5)


# ---------------------------------------------------------------------------
# tube mesher
# ---------------------------------------------------------------------------

def straight_tube(radius=0.01, length=0.06):
    return Segment(sid=0, parent=-1, generation=0,
                   start=np.zeros(3), direction=np.array([0.0, 0.0, -1.0]),
                   length=length, radius=radius)


class TestTubeMesher:
    def test_contains_all_three_types(self):
        mesh = build_tube_mesh(straight_tube())
        counts = mesh.type_counts()
        assert counts[ElementType.TET] > 0
        assert counts[ElementType.PYRAMID] > 0
        assert counts[ElementType.PRISM] > 0

    def test_two_rings_has_no_pyramids(self):
        mesh = build_tube_mesh(straight_tube(),
                               MeshResolution(rings=2))
        counts = mesh.type_counts()
        assert counts[ElementType.PYRAMID] == 0
        assert counts[ElementType.PRISM] > 0

    def test_volume_matches_polygonal_cylinder(self):
        seg = straight_tube(radius=0.01, length=0.05)
        res = MeshResolution(points_per_ring=16, rings=3)
        mesh = build_tube_mesh(seg, res)
        P = res.points_for(seg.radius, seg.radius)
        # The lattice inscribes a regular P-gon: area = P/2 r^2 sin(2pi/P)
        poly_area = 0.5 * P * seg.radius ** 2 * np.sin(2 * np.pi / P)
        assert mesh.volumes().sum() == pytest.approx(poly_area * seg.length,
                                                     rel=1e-9)

    def test_all_nodes_within_radius(self):
        seg = straight_tube()
        mesh = build_tube_mesh(seg)
        r = np.linalg.norm(mesh.coords[:, :2], axis=1)
        assert r.max() <= seg.radius * (1 + 1e-9)

    def test_elements_in_generation_order_are_local(self):
        """Consecutive elements must be spatially close (locality)."""
        mesh = build_tube_mesh(straight_tube())
        c = mesh.centroids()
        gaps = np.linalg.norm(np.diff(c, axis=0), axis=1)
        # neighbours in memory are within a couple of cell sizes
        assert np.median(gaps) < 0.01

    def test_dual_graph_connected(self):
        import networkx as nx
        mesh = build_tube_mesh(straight_tube())
        g = mesh.face_adjacency()
        G = nx.Graph()
        G.add_nodes_from(range(g.n))
        for v in range(g.n):
            for w in g.neighbors(v):
                G.add_edge(v, int(w))
        assert nx.is_connected(G)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            MeshResolution(rings=1)
        with pytest.raises(ValueError):
            MeshResolution(min_points=2)


# ---------------------------------------------------------------------------
# full airway mesh
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_airway():
    return build_airway_mesh(AirwayConfig(generations=3),
                             MeshResolution(points_per_ring=6))


class TestAirwayMesh:
    def test_element_ranges_cover_all(self, small_airway):
        am = small_airway
        total = sum(hi - lo for lo, hi in am.elem_ranges.values())
        assert total == am.mesh.nelem

    def test_regions_match_ranges(self, small_airway):
        am = small_airway
        for sid, (lo, hi) in am.elem_ranges.items():
            assert (am.mesh.regions[lo:hi] == sid).all()

    def test_junction_pairs_one_per_tree_edge(self, small_airway):
        am = small_airway
        n_edges = sum(1 for s in am.segments if s.parent >= 0)
        assert len(am.junction_pairs) == n_edges

    def test_dual_with_junctions_connected(self, small_airway):
        import networkx as nx
        g = small_airway.dual_with_junctions()
        G = nx.Graph()
        G.add_nodes_from(range(g.n))
        for v in range(g.n):
            for w in g.neighbors(v):
                G.add_edge(v, int(w))
        assert nx.is_connected(G)

    def test_inlet_disk_is_nasal_orifice(self, small_airway):
        """Particles enter through the nasal orifice (paper Sec. 2.2), not
        the outer face hemisphere."""
        center, axis, radius = small_airway.inlet_disk()
        nasal = small_airway.nasal_segment
        assert nasal.generation == -1
        assert radius == nasal.radius
        np.testing.assert_allclose(center, nasal.start)
        assert small_airway.inlet_segment.generation == -2

    def test_boundary_layer_prisms_present_everywhere(self, small_airway):
        """Every segment has wall prisms (the paper's BL structure)."""
        am = small_airway
        for sid, (lo, hi) in am.elem_ranges.items():
            types = am.mesh.elem_types[lo:hi]
            assert (types == ElementType.PRISM).sum() > 0, f"segment {sid}"

    def test_mesh_size_grows_with_generations(self):
        small = build_airway_mesh(AirwayConfig(generations=2),
                                  MeshResolution(points_per_ring=6))
        large = build_airway_mesh(AirwayConfig(generations=4),
                                  MeshResolution(points_per_ring=6))
        assert large.mesh.nelem > 2 * small.mesh.nelem
