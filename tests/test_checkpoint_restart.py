"""Checkpoint/restart: bit-identical resume, kills, and file validation."""

import dataclasses

import pytest

from repro import RunConfig, WorkloadSpec, run_cfpd
from repro.fault import (
    Checkpoint,
    CheckpointError,
    FaultPlan,
    FaultSpec,
    load_checkpoint,
    save_checkpoint,
)
from repro.smpi import JobKilledError


SPEC = WorkloadSpec(generations=3, points_per_ring=6, n_steps=8)


def small_config(**kw):
    base = dict(cluster="thunder", num_nodes=1, nranks=4,
                threads_per_rank=2, dlb=False, checkpoint_every=4)
    base.update(kw)
    return RunConfig(**base)


def samples(result, from_step=0):
    return sorted((s.step, s.phase, s.rank, s.t0, s.t1, s.busy,
                   s.instructions)
                  for s in result.phase_log.samples if s.step >= from_step)


@pytest.mark.parametrize("mode_kw", [
    {},                                         # sync
    {"dlb": True},                              # sync + DLB
    {"mode": "coupled", "fluid_ranks": 3},      # coupled
    {"mode": "coupled", "fluid_ranks": 3, "dlb": True},
])
def test_restart_is_bit_identical(tmp_path, mode_kw):
    """run(8 steps) == run to checkpoint at 4 -> restart -> run to 8."""
    cfg = small_config(**mode_kw)
    path = str(tmp_path / "ck.pkl")
    full = run_cfpd(cfg, spec=SPEC)
    taken = run_cfpd(cfg, spec=SPEC, checkpoint_path=path)
    assert taken.checkpoints and taken.checkpoints[0][0] == 4
    # writing the checkpoint must not perturb the run itself
    assert taken.total_time == full.total_time
    restarted = run_cfpd(cfg, spec=SPEC, restart_from=path)
    assert restarted.total_time == full.total_time
    # the tail is re-simulated, the head replayed from the file: the merged
    # log must equal the uninterrupted one sample for sample
    assert samples(restarted) == samples(full)


def test_checkpoint_file_roundtrip(tmp_path):
    cfg = small_config()
    path = str(tmp_path / "ck.pkl")
    run_cfpd(cfg, spec=SPEC, checkpoint_path=path)
    ckpt = load_checkpoint(path)
    assert ckpt.step == 4
    assert ckpt.config == cfg
    assert ckpt.spec == SPEC
    assert ckpt.written_by_rank == 0
    assert ckpt.particles["x"].shape[1] == 3


def test_restart_refuses_other_config(tmp_path):
    path = str(tmp_path / "ck.pkl")
    run_cfpd(small_config(), spec=SPEC, checkpoint_path=path)
    other = small_config(dlb=True)
    with pytest.raises(CheckpointError, match="refusing to resume"):
        run_cfpd(other, spec=SPEC, restart_from=path)


def test_restart_refuses_other_spec(tmp_path):
    path = str(tmp_path / "ck.pkl")
    cfg = small_config()
    run_cfpd(cfg, spec=SPEC, checkpoint_path=path)
    other_spec = dataclasses.replace(SPEC, n_steps=10)
    with pytest.raises(CheckpointError, match="spec does not match"):
        run_cfpd(cfg, spec=other_spec, restart_from=path)


def test_corrupted_file_is_detected(tmp_path):
    path = tmp_path / "ck.pkl"
    path.write_bytes(b"not a checkpoint")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(path))
    path2 = tmp_path / "ck2.pkl"
    save_checkpoint(str(path2), Checkpoint(
        version=99, step=0, sim_time=0.0, config=small_config(), spec=SPEC,
        phase_samples=[], particles={}, nodal_velocity=None, sgs_norms=[],
        rng={}, written_by_rank=0))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(str(path2))


def test_missing_file_is_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(str(tmp_path / "nope.pkl"))


def test_checkpoint_path_without_interval_is_rejected(tmp_path):
    cfg = small_config(checkpoint_every=0)
    with pytest.raises(ValueError, match="checkpoint_every"):
        run_cfpd(cfg, spec=SPEC, checkpoint_path=str(tmp_path / "ck.pkl"))


def test_job_kill_then_restart_equals_uninterrupted(tmp_path):
    """Power loss mid-run: the checkpoint survives, the restart finishes
    the job, and the combined timeline equals the uninterrupted run."""
    cfg = small_config()
    path = str(tmp_path / "ck.pkl")
    full = run_cfpd(cfg, spec=SPEC)
    ckpt_time = full.total_time * 0.55   # after the step-4 checkpoint
    plan = FaultPlan(specs=(
        FaultSpec(kind="job_kill", time=ckpt_time, note="power loss"),))
    with pytest.raises(JobKilledError, match="power loss"):
        run_cfpd(cfg, spec=SPEC, fault_plan=plan, checkpoint_path=path)
    ckpt = load_checkpoint(path)             # written before the kill
    assert ckpt.step == 4
    restarted = run_cfpd(cfg, spec=SPEC, restart_from=path)
    assert restarted.total_time == full.total_time
    assert samples(restarted) == samples(full)


def test_job_killed_error_carries_time_and_reason(tmp_path):
    cfg = small_config()
    plan = FaultPlan(specs=(
        FaultSpec(kind="job_kill", time=1e-4, note="wall clock"),))
    with pytest.raises(JobKilledError) as err:
        run_cfpd(cfg, spec=SPEC, fault_plan=plan)
    assert err.value.reason == "wall clock"
    assert err.value.time >= 1e-4


def test_restart_preserves_faults_after_the_cut(tmp_path):
    """Faults scheduled after the checkpoint fire on the restarted run;
    faults before it are history and are not re-injected."""
    cfg = small_config()
    path = str(tmp_path / "ck.pkl")
    base = run_cfpd(cfg, spec=SPEC, checkpoint_path=path)
    cut = base.checkpoints[0][1]
    plan = FaultPlan(specs=(
        FaultSpec(kind="straggler", time=cut / 2, rank=0, duration=1e-4),
        FaultSpec(kind="straggler", time=cut * 1.5, rank=1, duration=1e-4),
    ))
    restarted = run_cfpd(cfg, spec=SPEC, fault_plan=plan, restart_from=path)
    fired = [(e.kind, e.rank) for e in restarted.faults.events]
    assert fired == [("straggler", 1)]
