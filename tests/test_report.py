"""Tests for the one-shot report generator and RunResult.step_times."""

import os

import pytest

from repro.app import RunConfig, WorkloadSpec, get_workload, run_cfpd
from repro.experiments import ARTIFACTS, generate_all

TINY = WorkloadSpec(generations=3, points_per_ring=6, n_steps=2)


class TestGenerateAll:
    def test_subset_generation(self, tmp_path):
        paths = generate_all(str(tmp_path), spec=TINY,
                             only=["table1", "fig2_timeline"],
                             progress=None)
        assert set(paths) == {"table1", "fig2_timeline"}
        for path in paths.values():
            assert os.path.exists(path)
            assert os.path.getsize(path) > 0

    def test_unknown_artifact_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            generate_all(str(tmp_path), only=["fig99"])

    def test_progress_callback(self, tmp_path):
        lines = []
        generate_all(str(tmp_path), spec=TINY, only=["table1"],
                     progress=lines.append)
        assert len(lines) == 1 and "table1" in lines[0]

    def test_artifact_registry_complete(self):
        expected = {"table1", "fig2_timeline", "fig6_assembly", "fig7_sgs",
                    "fig8_dlb_mn4_small", "fig9_dlb_thunder_small",
                    "fig10_dlb_mn4_large", "fig11_dlb_thunder_large",
                    "ipc_counters"}
        assert set(ARTIFACTS) == expected


class TestStepTimes:
    def test_one_duration_per_step(self):
        wl = get_workload(TINY)
        res = run_cfpd(RunConfig(cluster="thunder", num_nodes=1, nranks=8),
                       workload=wl)
        times = res.step_times()
        assert len(times) == TINY.n_steps
        assert all(t > 0 for t in times)
        assert sum(times) <= res.total_time * 1.001
