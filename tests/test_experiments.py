"""Tests for the experiment runners (fast, scaled-down variants).

The full-size experiments are exercised (and shape-checked) by the
benchmark harness; these tests cover the runner mechanics, formatting and
result objects on a small workload.
"""

import pytest

from repro.app import WorkloadSpec
from repro.core import Strategy
from repro.experiments import (
    PAPER_IPC,
    PAPER_TABLE1,
    format_table,
    large_load_spec,
    reference_spec,
    run_dlb_figure,
    run_fig2,
    run_table1,
    small_load_spec,
)
from repro.experiments.dlb_figures import COUPLED_SPLITS

TINY = WorkloadSpec(generations=3, points_per_ring=6, n_steps=2)


class TestSpecs:
    def test_reference_spec_defaults(self):
        spec = reference_spec()
        assert spec.generations == 5
        assert spec.n_steps == 10

    def test_load_specs_keep_ratio_ordering(self):
        small = small_load_spec()
        large = large_load_spec()
        assert large.particle_ratio / small.particle_ratio == pytest.approx(
            7e6 / 4e5)

    def test_spec_overrides(self):
        spec = small_load_spec(generations=2, n_steps=1)
        assert spec.generations == 2 and spec.n_steps == 1

    def test_paper_scale_spec(self):
        from repro.experiments import paper_scale_spec
        spec = paper_scale_spec()
        assert spec.generations == 7
        assert paper_scale_spec(generations=6).generations == 6


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [("1", "2"), ("333", "4")],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_handles_non_strings(self):
        out = format_table(["x"], [(1.5,), (None,)])
        assert "1.5" in out and "None" in out


class TestTable1Runner:
    def test_small_run_structure(self):
        result = run_table1(spec=TINY, nranks=8)
        phases = {r["phase"] for r in result.rows}
        assert phases >= set(PAPER_TABLE1)
        assert result.total_time > 0
        text = result.format()
        assert "L96" in text and "assembly" in text

    def test_percentages_bounded(self):
        result = run_table1(spec=TINY, nranks=8)
        for row in result.rows:
            assert 0.0 <= row["percent_time"] <= 100.0
            assert 0.0 < row["load_balance"] <= 1.0


class TestFig2Runner:
    def test_rows_and_render(self):
        result = run_fig2(spec=TINY, nranks=8, step=1)
        rows = result.rows()
        assert {r for r, *_ in rows} == set(range(8))
        art = result.render(width=60, max_ranks=8)
        assert "step 1" in art
        assert "#" in art  # assembly glyph present

    def test_step_out_of_range_renders_empty(self):
        result = run_fig2(spec=TINY, nranks=4, step=7)
        assert "no samples" in result.render()


class TestDLBFigureRunner:
    def test_result_object(self):
        # small custom sweep by monkeypatching splits would be intrusive;
        # use the real runner on the tiny spec with thunder (fast enough
        # per config at tiny mesh size).
        result = run_dlb_figure("marenostrum4", TINY, load_tag="tiny")
        labels = [label for label, *_ in result.rows]
        assert labels[0] == "sync 96"
        assert len(labels) == 1 + len(COUPLED_SPLITS["marenostrum4"])
        assert result.best_original() <= result.worst_original()
        assert len(result.dlb_gains()) == len(labels)
        assert result.dlb_spread() >= 1.0
        text = result.format()
        assert "original (ms)" in text and "tiny" in text


class TestTable1Residual:
    def test_residual_complements_phases(self):
        result = run_table1(spec=TINY, nranks=8)
        assert 0.0 <= result.residual_percent < 60.0
        total = sum(r["percent_time"] for r in result.rows) \
            + result.residual_percent
        assert total == pytest.approx(100.0)
        assert "(mpi/other)" in result.format()


class TestFig67Runner:
    def test_custom_totals_sweep(self):
        from repro.core import Strategy
        from repro.experiments import run_fig6

        result = run_fig6(spec=TINY, totals={"thunder": 8})
        assert set(result.speedups) == {"thunder"}
        for strategy in ("atomics", "coloring", "multidep"):
            for threads in (1, 2, 4):
                s = result.speedup("thunder", Strategy(strategy), threads)
                assert 0.1 < s < 10.0
        text = result.format()
        assert "8x1" in text and "2x4" in text


class TestPaperConstants:
    def test_table1_reference_values(self):
        assert PAPER_TABLE1["assembly"] == (0.66, 40.84)
        assert PAPER_TABLE1["particles"][0] == 0.02

    def test_ipc_reference_values(self):
        assert PAPER_IPC[("marenostrum4", "mpionly")] == 2.25
        assert PAPER_IPC[("thunder", "atomics")] == 0.42
