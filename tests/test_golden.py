"""Golden regression values for the headline reproduced results.

Everything in the stack is deterministic, so the key numbers of the
reproduction can be pinned with modest tolerances.  If a refactor moves
one of these, either it found a bug (fix it) or it deliberately changed
the model (re-derive the constant in docs/calibration.md and update here
and in EXPERIMENTS.md).
"""

import pytest

from repro.app import RunConfig, WorkloadSpec, get_workload, run_cfpd
from repro.core import Strategy


@pytest.fixture(scope="module")
def reference():
    return get_workload(WorkloadSpec())


@pytest.fixture(scope="module")
def table1_run(reference):
    cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=96,
                    threads_per_rank=1,
                    assembly_strategy=Strategy.MPI_ONLY,
                    sgs_strategy=Strategy.MPI_ONLY)
    return run_cfpd(cfg, workload=reference)


class TestGoldenTable1:
    EXPECTED = {
        # phase: (L96, %time), measured values recorded in EXPERIMENTS.md
        "assembly": (0.78, 48.3),
        "solver1": (0.95, 15.4),
        "solver2": (0.95, 4.2),
        "sgs": (0.78, 24.2),
        "particles": (0.03, 4.1),
    }

    def test_phase_metrics(self, table1_run):
        rows = {r["phase"]: r for r in table1_run.phase_summary()}
        for phase, (lb, pct) in self.EXPECTED.items():
            assert rows[phase]["load_balance"] == pytest.approx(
                lb, abs=0.05), phase
            assert rows[phase]["percent_time"] == pytest.approx(
                pct, abs=3.0), phase

    def test_workload_fingerprint(self, reference):
        assert reference.mesh.nelem == 7134
        assert reference.mesh.nnodes == 3823
        assert reference.n_particles == 161

    def test_total_time_band(self, table1_run):
        # 10 steps of the reference workload on a Thunder node
        assert table1_run.total_time == pytest.approx(5.3e-3, rel=0.15)


class TestGoldenIPC:
    def test_assembly_ipc_per_strategy(self, reference):
        expected = {
            ("thunder", Strategy.MPI_ONLY): 0.49,
            ("thunder", Strategy.ATOMICS): 0.42,
            ("marenostrum4", Strategy.MPI_ONLY): 2.25,
            ("marenostrum4", Strategy.ATOMICS): 1.15,
        }
        for (cluster, strategy), ipc in expected.items():
            cfg = RunConfig(cluster=cluster, num_nodes=1,
                            nranks=48, threads_per_rank=1,
                            assembly_strategy=strategy,
                            sgs_strategy=strategy)
            res = run_cfpd(cfg, workload=get_workload(WorkloadSpec()))
            assert res.ipc("assembly") == pytest.approx(ipc, abs=0.04), \
                (cluster, strategy)


class TestGoldenDLB:
    def test_sync_small_load_mn4(self, reference):
        times = {}
        for dlb in (False, True):
            cfg = RunConfig(cluster="marenostrum4", nranks=96,
                            threads_per_rank=1, dlb=dlb,
                            assembly_strategy=Strategy.MULTIDEP,
                            sgs_strategy=Strategy.ATOMICS)
            times[dlb] = run_cfpd(cfg, workload=reference).total_time
        # recorded in EXPERIMENTS.md: ~1.09 ms original, ~0.97 ms with DLB
        assert times[False] == pytest.approx(1.09e-3, rel=0.12)
        assert times[True] == pytest.approx(0.97e-3, rel=0.12)
        assert times[False] / times[True] > 1.05
