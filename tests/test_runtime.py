"""Unit tests for the malleable task-execution team."""

import pytest

from repro.core import DepType, Team, TaskGraph
from repro.core.runtime import RuntimeError_
from repro.machine import CoreModel, WorkSpec
from repro.sim import Engine


#: A convenient core: 1 GHz, IPC 1 => 1e9 instructions per second.
CORE = CoreModel(name="unit", freq_ghz=1.0, base_ipc=1.0, out_of_order=True,
                 atomic_stall_cycles=0.0, mem_stall_cycles=0.0)

#: 1e9 instructions == 1 simulated second on CORE.
SEC = 1e9


def run_graph(graph, nthreads, capacity_script=None, **team_kwargs):
    eng = Engine()
    team = Team(eng, CORE, nthreads, **team_kwargs)

    result = {}

    def prog():
        stats = yield from team.run(graph)
        result["stats"] = stats

    eng.process(prog())
    if capacity_script:
        def scripted():
            for delay, cap in capacity_script:
                yield eng.timeout(delay)
                team.set_capacity(cap)
        eng.process(scripted())
    eng.run()
    return eng, team, result["stats"]


def simple_graph(n_tasks, instr=SEC):
    g = TaskGraph()
    for _ in range(n_tasks):
        g.add_task(WorkSpec(instr))
    return g


class TestBasicExecution:
    def test_single_task_duration(self):
        eng, _, stats = run_graph(simple_graph(1), nthreads=1)
        assert eng.now == pytest.approx(1.0)
        assert stats.tasks_run == 1
        assert stats.makespan == pytest.approx(1.0)

    def test_parallel_tasks_use_all_threads(self):
        eng, _, stats = run_graph(simple_graph(4), nthreads=4)
        assert eng.now == pytest.approx(1.0)
        assert stats.max_concurrency == 4

    def test_more_tasks_than_threads(self):
        eng, _, stats = run_graph(simple_graph(4), nthreads=2)
        assert eng.now == pytest.approx(2.0)
        assert stats.busy_seconds == pytest.approx(4.0)

    def test_empty_graph_is_instant(self):
        eng, _, stats = run_graph(TaskGraph(), nthreads=2)
        assert eng.now == 0.0
        assert stats.tasks_run == 0

    def test_dependences_respected(self):
        g = TaskGraph()
        g.add_task(WorkSpec(SEC), depend={DepType.OUT: ["x"]})
        g.add_task(WorkSpec(SEC), depend={DepType.IN: ["x"]})
        eng, _, stats = run_graph(g, nthreads=4)
        assert eng.now == pytest.approx(2.0)  # serialized despite 4 threads

    def test_task_overhead_added(self):
        eng, _, stats = run_graph(simple_graph(2), nthreads=1,
                                  task_overhead_s=0.25)
        assert eng.now == pytest.approx(2.5)
        assert stats.overhead_seconds == pytest.approx(0.5)

    def test_run_while_running_rejected(self):
        eng = Engine()
        team = Team(eng, CORE, 1)

        def prog():
            yield from team.run(simple_graph(2))

        def second():
            yield eng.timeout(0.5)
            yield from team.run(simple_graph(1))

        eng.process(prog())
        p2 = eng.process(second())
        eng.run()
        assert not p2.ok
        assert isinstance(p2.value, RuntimeError_)

    def test_stats_instructions_and_ipc(self):
        eng, team, stats = run_graph(simple_graph(3), nthreads=1)
        assert stats.instructions == pytest.approx(3 * SEC)
        assert stats.ipc(CORE) == pytest.approx(1.0)

    def test_sequential_runs_on_same_team(self):
        eng = Engine()
        team = Team(eng, CORE, 2)
        spans = []

        def prog():
            s1 = yield from team.run(simple_graph(2))
            s2 = yield from team.run(simple_graph(2))
            spans.append((s1.makespan, s2.makespan))

        eng.process(prog())
        eng.run()
        assert spans[0] == (pytest.approx(1.0), pytest.approx(1.0))
        assert eng.now == pytest.approx(2.0)


class TestMutexScheduling:
    def test_conflicting_tasks_serialize(self):
        g = TaskGraph()
        g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: [0, 1]})
        g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: [1, 2]})
        eng, _, stats = run_graph(g, nthreads=2)
        assert eng.now == pytest.approx(2.0)
        assert stats.max_concurrency == 1

    def test_nonconflicting_tasks_parallel(self):
        g = TaskGraph()
        g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: [0]})
        g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: [1]})
        eng, _, stats = run_graph(g, nthreads=2)
        assert eng.now == pytest.approx(1.0)
        assert stats.max_concurrency == 2

    def test_mutex_skip_allows_out_of_order_start(self):
        """A runnable later task starts while the head of the queue is
        mutex-blocked (mutexinoutset imposes no order)."""
        g = TaskGraph()
        g.add_task(WorkSpec(2 * SEC), depend={DepType.MUTEXINOUTSET: ["a"]})
        g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: ["a"]})
        g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: ["b"]})
        eng, _, stats = run_graph(g, nthreads=2)
        # t0 and t2 run together; t1 runs after t0 -> total 3s (not 4s)
        assert eng.now == pytest.approx(3.0)

    def test_multidep_subdomain_pattern(self):
        """A ring of 4 subdomains with shared-boundary refs: opposite
        (non-adjacent) subdomains run concurrently."""
        g = TaskGraph()
        for s in range(4):
            refs = {s,
                    frozenset((s, (s - 1) % 4)),
                    frozenset((s, (s + 1) % 4))}
            g.add_task(WorkSpec(SEC), depend={DepType.MUTEXINOUTSET: refs})
        eng, _, stats = run_graph(g, nthreads=4)
        # neighbours exclude each other: at most 2 concurrent (0&2, 1&3)
        assert stats.max_concurrency == 2
        assert eng.now == pytest.approx(2.0)


class TestMalleability:
    def test_capacity_increase_speeds_up(self):
        # 4 x 1s tasks on 1 thread; at t=1 capacity -> 4
        eng, _, stats = run_graph(simple_graph(4), nthreads=1,
                                  capacity_script=[(1.0, 4)])
        assert eng.now == pytest.approx(2.0)  # 1 task, then 3 in parallel

    def test_capacity_decrease_at_task_boundary(self):
        # 4 x 1s tasks on 2 threads; at t=0.5 capacity -> 1.
        # Running tasks finish; afterwards only 1 at a time.
        eng, _, stats = run_graph(simple_graph(4), nthreads=2,
                                  capacity_script=[(0.5, 1)])
        assert eng.now == pytest.approx(3.0)

    def test_zero_capacity_stalls_until_restored(self):
        eng, _, stats = run_graph(simple_graph(2), nthreads=0,
                                  capacity_script=[(5.0, 2)])
        assert eng.now == pytest.approx(6.0)

    def test_hungry_notification(self):
        calls = []

        class Listener:
            def on_team_hungry(self, team):
                calls.append(("hungry", team.ready_count))

            def on_team_idle(self, team):
                calls.append(("idle", 0))

        run_graph(simple_graph(4), nthreads=1, listener=Listener())
        kinds = [k for k, _ in calls]
        assert "hungry" in kinds
        assert kinds[-1] == "idle"

    def test_wants_cores_reflects_backlog(self):
        eng = Engine()
        team = Team(eng, CORE, 1)
        probes = []

        def prog():
            yield from team.run(simple_graph(3))

        def probe():
            yield eng.timeout(0.5)
            probes.append(team.wants_cores)

        eng.process(prog())
        eng.process(probe())
        eng.run()
        assert probes == [True]

    def test_recorder_sees_tasks(self):
        records = []

        class Rec:
            def record(self, rank, category, label, t0, t1):
                records.append((rank, category, label, t0, t1))

        run_graph(simple_graph(2), nthreads=1, rank=7, recorder=Rec())
        assert len(records) == 2
        assert all(r[0] == 7 and r[1] == "task" for r in records)


class TestPlanEquivalence:
    """Whole-graph plans (``engine_batch``) vs the scalar task-by-task path.

    Mid-run ``set_slowdown``/``set_capacity`` force a replan; the replayed
    prefix and the re-simulated suffix must land on exactly the scalar
    stats — not approximately: the same float expressions in the same
    order.
    """

    @staticmethod
    def _perturbed_run(graph_factory, script):
        from repro.sim import Engine as Eng
        eng = Eng()
        team = Team(eng, CORE, 2)
        out = {}

        def prog():
            out["stats"] = yield from team.run(graph_factory())

        eng.process(prog())

        def scripted():
            for delay, action in script:
                yield eng.timeout(delay)
                action(team)

        eng.process(scripted())
        eng.run()
        s = out["stats"]
        return (s.tasks_run, s.instructions, s.busy_seconds,
                s.overhead_seconds, s.t_start, s.t_end, s.max_concurrency)

    @pytest.mark.parametrize("script", [
        [(0.4, lambda t: t.set_slowdown(3.0)),
         (0.7, lambda t: t.set_slowdown(1.0))],
        [(0.3, lambda t: t.set_capacity(1)),
         (0.9, lambda t: t.set_capacity(2))],
        [(0.2, lambda t: t.set_slowdown(2.0)),
         (0.5, lambda t: t.set_capacity(1)),
         (1.1, lambda t: t.set_capacity(2)),
         (1.3, lambda t: t.set_slowdown(1.0))],
    ], ids=["slowdown", "capacity", "mixed"])
    def test_midrun_perturbation_exact(self, script):
        from repro.perf.toggles import configured

        def graphs():
            return simple_graph(7, instr=0.35 * SEC)

        with configured(engine_batch=False):
            scalar = self._perturbed_run(graphs, script)
        with configured(engine_batch=True):
            batch = self._perturbed_run(graphs, script)
        assert scalar == batch      # bit-exact, no approx
