"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    SimulationError,
    Store,
    Resource,
)


def test_timeout_advances_clock():
    eng = Engine()

    def prog():
        yield eng.timeout(1.5)
        yield eng.timeout(2.5)

    eng.process(prog())
    eng.run()
    assert eng.now == pytest.approx(4.0)


def test_process_return_value():
    eng = Engine()

    def prog():
        yield eng.timeout(1.0)
        return 42

    p = eng.process(prog())
    eng.run()
    assert p.triggered and p.ok
    assert p.value == 42


def test_zero_delay_timeout():
    eng = Engine()
    seen = []

    def prog():
        yield eng.timeout(0.0)
        seen.append(eng.now)

    eng.process(prog())
    eng.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def prog(delay, tag):
        yield eng.timeout(delay)
        order.append(tag)

    eng.process(prog(3.0, "c"))
    eng.process(prog(1.0, "a"))
    eng.process(prog(2.0, "b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo_order():
    eng = Engine()
    order = []

    def prog(tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        eng.process(prog(tag))
    eng.run()
    assert order == list(range(5))


def test_process_waits_on_event():
    eng = Engine()
    ev = eng.event()
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    def trigger():
        yield eng.timeout(2.0)
        ev.succeed("hello")

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert got == [(2.0, "hello")]


def test_waiting_on_already_processed_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed("early")
    got = []

    def late_waiter():
        yield eng.timeout(5.0)
        value = yield ev  # already processed by now
        got.append((eng.now, value))

    eng.process(late_waiter())
    eng.run()
    assert got == [(5.0, "early")]


def test_event_failure_raises_in_process():
    eng = Engine()
    ev = eng.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield eng.timeout(1.0)
        ev.fail(ValueError("boom"))

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_marks_process_failed():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("died")

    p = eng.process(bad())
    eng.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, RuntimeError)


def test_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_process_waits_on_process():
    eng = Engine()

    def child():
        yield eng.timeout(3.0)
        return "child-result"

    def parent():
        result = yield eng.process(child())
        return (eng.now, result)

    p = eng.process(parent())
    eng.run()
    assert p.value == (3.0, "child-result")


def test_all_of_waits_for_every_child():
    eng = Engine()

    def prog():
        values = yield eng.all_of([eng.timeout(1.0, "a"), eng.timeout(4.0, "b"),
                                   eng.timeout(2.0, "c")])
        return (eng.now, values)

    p = eng.process(prog())
    eng.run()
    assert p.value == (4.0, ["a", "b", "c"])


def test_all_of_empty_triggers_immediately():
    eng = Engine()

    def prog():
        values = yield eng.all_of([])
        return (eng.now, values)

    p = eng.process(prog())
    eng.run()
    assert p.value == (0.0, [])


def test_any_of_fires_at_first_child():
    eng = Engine()

    def prog():
        value = yield eng.any_of([eng.timeout(5.0, "slow"),
                                  eng.timeout(1.0, "fast")])
        return (eng.now, value)

    p = eng.process(prog())
    eng.run()
    assert p.value == (1.0, "fast")


def test_run_until_stops_clock():
    eng = Engine()

    def prog():
        yield eng.timeout(10.0)

    eng.process(prog())
    eng.run(until=4.0)
    assert eng.now == pytest.approx(4.0)
    eng.run()
    assert eng.now == pytest.approx(10.0)


def test_yield_non_event_is_error():
    eng = Engine()

    def bad():
        yield 42  # type: ignore[misc]

    p = eng.process(bad())
    eng.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


class TestResource:
    def test_grants_up_to_capacity(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        held = []

        def holder(tag, hold_time):
            yield res.request()
            held.append((tag, eng.now))
            yield eng.timeout(hold_time)
            res.release()

        eng.process(holder("a", 2.0))
        eng.process(holder("b", 2.0))
        eng.process(holder("c", 2.0))
        eng.run()
        times = dict((tag, t) for tag, t in held)
        assert times["a"] == 0.0 and times["b"] == 0.0
        assert times["c"] == pytest.approx(2.0)

    def test_fifo_grant_order(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def holder(tag):
            yield res.request()
            order.append(tag)
            yield eng.timeout(1.0)
            res.release()

        for tag in range(4):
            eng.process(holder(tag))
        eng.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_request_rejected(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_validation(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Resource(eng, capacity=0)

    def test_available_accounting(self):
        eng = Engine()
        res = Resource(eng, capacity=3)

        def prog():
            yield res.request()
            yield res.request()
            assert res.available == 1
            res.release()
            assert res.available == 2

        p = eng.process(prog())
        eng.run()
        assert p.ok, p.value


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        store.put("x")

        def prog():
            item = yield store.get()
            return item

        p = eng.process(prog())
        eng.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)

        def getter():
            item = yield store.get()
            return (eng.now, item)

        def putter():
            yield eng.timeout(3.0)
            store.put("late")

        p = eng.process(getter())
        eng.process(putter())
        eng.run()
        assert p.value == (3.0, "late")

    def test_fifo_item_order(self):
        eng = Engine()
        store = Store(eng)
        for i in range(3):
            store.put(i)

        def prog():
            items = []
            for _ in range(3):
                items.append((yield store.get()))
            return items

        p = eng.process(prog())
        eng.run()
        assert p.value == [0, 1, 2]

    def test_predicate_matching(self):
        eng = Engine()
        store = Store(eng)
        store.put({"tag": 1, "data": "one"})
        store.put({"tag": 2, "data": "two"})

        def prog():
            item = yield store.get(lambda m: m["tag"] == 2)
            return item["data"]

        p = eng.process(prog())
        eng.run()
        assert p.value == "two"
        assert len(store) == 1

    def test_pending_predicate_get_matched_later(self):
        eng = Engine()
        store = Store(eng)

        def getter():
            item = yield store.get(lambda m: m == "wanted")
            return (eng.now, item)

        def putter():
            yield eng.timeout(1.0)
            store.put("other")
            yield eng.timeout(1.0)
            store.put("wanted")

        p = eng.process(getter())
        eng.process(putter())
        eng.run()
        assert p.value == (2.0, "wanted")
        assert store.peek_all() == ["other"]


class TestBatchEngine:
    """The cohort-batched core (``engine_batch``) against the scalar engine.

    Every test drives the same program through a scalar and a batched
    engine and compares the observable trajectory — the (when, seq) FIFO
    contract says they must match exactly.
    """

    @staticmethod
    def _trace_program(record):
        def run_on(eng):
            def mark(label):
                record.append((round(eng.now, 12), label))

            # interleave zero-delay defers, timers and same-time timers so
            # the cohort merge order is exercised
            eng.defer(mark, "defer-a")
            eng.call_later(0.5, mark, "timer-half")
            eng.call_later(1.0, mark, "timer-one-first")
            eng.call_later(1.0, mark, "timer-one-second")
            eng.defer(mark, "defer-b")

            def prog():
                yield eng.timeout(0.5)
                mark("proc-half")
                eng.defer(mark, "proc-defer")
                yield eng.timeout(0.5)
                mark("proc-one")

            eng.process(prog())
            eng.run()
        return run_on

    def test_dispatch_order_matches_scalar(self):
        from repro.perf.toggles import configured
        scalar_rec, batch_rec = [], []
        with configured(engine_batch=False):
            self._trace_program(scalar_rec)(Engine())
        with configured(engine_batch=True):
            self._trace_program(batch_rec)(Engine())
        assert scalar_rec == batch_rec

    def test_run_until_and_resume(self):
        from repro.perf.toggles import configured
        fired = []
        with configured(engine_batch=True):
            eng = Engine()
        eng.call_later(1.0, fired.append, "one")
        eng.call_later(2.0, fired.append, "two")
        eng.run(until=1.5)
        assert fired == ["one"] and eng.now == 1.5
        eng.run()
        assert fired == ["one", "two"] and eng.now == 2.0

    def test_step_parity_with_run(self):
        from repro.perf.toggles import configured
        def schedule(eng, out):
            eng.call_later(1.0, out.append, "a")
            eng.call_later(1.0, out.append, "b")
            eng.call_later(2.0, out.append, "c")
        with configured(engine_batch=True):
            e1, e2 = Engine(), Engine()
        r1, r2 = [], []
        schedule(e1, r1)
        schedule(e2, r2)
        e1.run()
        while r2 != r1:
            e2.step()
        assert e2.now == e1.now
        assert e2.events_processed == e1.events_processed

    def test_cancel_scheduled_never_fires(self):
        from repro.perf.toggles import configured
        fired = []
        with configured(engine_batch=True):
            eng = Engine()
        h = eng.call_later(1.0, fired.append, "cancelled")
        eng.call_later(2.0, fired.append, "kept")
        eng.cancel_scheduled(h)
        eng.run()
        assert fired == ["kept"]
        assert eng.arena.cancelled == 1
        assert eng.arena.live == 0      # cancelled slot was recycled

    def test_cancelled_tail_does_not_advance_clock(self):
        from repro.perf.toggles import configured
        with configured(engine_batch=True):
            eng = Engine()
        eng.call_later(1.0, lambda: None)
        h = eng.call_later(5.0, lambda: None)
        eng.cancel_scheduled(h)
        eng.run()
        assert eng.now == 1.0   # the cancelled bucket at t=5 is not a jump

    def test_arena_free_list_recycles(self):
        from repro.perf.toggles import configured
        with configured(engine_batch=True):
            eng = Engine()

        def chain(n):
            if n:
                eng.call_later(1.0, chain, n - 1)

        chain(1000)
        eng.run()
        assert eng.arena.allocated == 1000
        assert eng.arena.capacity <= 2          # one slot, recycled 999x
        assert eng.arena.recycled >= 998

    def test_cohort_counters(self):
        from repro.perf.instrument import engine_counters
        from repro.perf.toggles import configured
        with configured(engine_batch=True):
            eng = Engine()
        for _ in range(4):
            eng.call_later(1.0, lambda: None)
        eng.call_later(2.0, lambda: None)
        eng.run()
        c = engine_counters(eng)["batch"]
        assert c["cohorts"] == 2
        assert c["max_cohort"] == 4
        assert c["cohort_events"] == 5
        assert c["bulk_jumps"] == 2
        assert c["jump_total_time"] == pytest.approx(2.0)
        assert c["cohort_hist"] == {"1": 1, "4-7": 1}
