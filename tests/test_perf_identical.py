"""The PR 2 contract: fast paths change wall-clock only.

Two guards:

* **determinism** — two optimized runs of the same configuration produce
  identical simulated-time metrics and identical checkpoint bytes;
* **bit-identical before/after** — a run with every fast path disabled
  (:func:`repro.perf.toggles.baseline`) matches an optimized run exactly:
  phase samples, total time, deposition, solver info, and the on-disk
  checkpoint file (byte-for-byte), across sync/coupled x DLB on/off.
"""

import hashlib

import pytest

from repro.app.driver import RunConfig, run_cfpd
from repro.app.workload import WorkloadSpec, get_workload
from repro.perf import toggles as toggles_mod

#: small but non-trivial workload: enough steps for two checkpoint cuts
SPEC = WorkloadSpec(generations=3, points_per_ring=6, n_steps=4)

CONFIGS = {
    "sync": dict(cluster="thunder", num_nodes=1, nranks=8),
    "sync_dlb": dict(cluster="thunder", num_nodes=1, nranks=8, dlb=True),
    "coupled": dict(cluster="thunder", num_nodes=1, nranks=8,
                    mode="coupled", fluid_ranks=6),
    "coupled_dlb": dict(cluster="thunder", num_nodes=1, nranks=8,
                        mode="coupled", fluid_ranks=6, dlb=True),
}


def _digest(result) -> str:
    """Hash of every simulated-time metric of a run."""
    h = hashlib.sha256()
    for s in result.phase_log.samples:
        h.update(repr((s.step, s.rank, s.phase, s.t0, s.t1,
                       s.busy, s.instructions)).encode())
    h.update(repr(result.total_time).encode())
    h.update(repr(result.deposition).encode())
    h.update(repr(result.solver_info).encode())
    h.update(repr(result.checkpoints).encode())
    return h.hexdigest()


def _run(config_kwargs, ckpt_path):
    cfg = RunConfig(checkpoint_every=2, **config_kwargs)
    wl = get_workload(SPEC)
    result = run_cfpd(cfg, workload=wl, checkpoint_path=str(ckpt_path))
    return _digest(result), ckpt_path.read_bytes()


class TestDeterminism:
    def test_two_optimized_runs_identical(self, tmp_path):
        d1, c1 = _run(CONFIGS["sync"], tmp_path / "a.ckpt")
        d2, c2 = _run(CONFIGS["sync"], tmp_path / "b.ckpt")
        assert d1 == d2
        assert c1 == c2


class TestBitIdenticalBeforeAfter:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_fast_paths_change_wall_clock_only(self, name, tmp_path):
        kwargs = CONFIGS[name]
        with toggles_mod.baseline():
            d_before, c_before = _run(kwargs, tmp_path / "before.ckpt")
        d_after, c_after = _run(kwargs, tmp_path / "after.ckpt")
        assert d_before == d_after, (
            f"{name}: simulated-time metrics changed by the fast paths")
        assert c_before == c_after, (
            f"{name}: checkpoint bytes changed by the fast paths")


@pytest.fixture(scope="module")
def default_digests(tmp_path_factory):
    """Digest + checkpoint bytes of a defaults run, once per config."""
    base = tmp_path_factory.mktemp("defaults")
    return {name: _run(kwargs, base / f"{name}.ckpt")
            for name, kwargs in CONFIGS.items()}


class TestPerToggleBisection:
    """Each PR 3 / PR 4 / PR 7 / PR 8 toggle can be flipped off alone
    without changing any simulated result — the property the bisection
    workflow relies on."""

    @pytest.mark.parametrize("toggle", ["geometry_cache", "operator_split",
                                        "scheduler_heap",
                                        "driver_graph_cache",
                                        "particle_warm_start",
                                        "particle_compaction",
                                        "particle_fused_step",
                                        "engine_batch",
                                        "fluid_operator_recycle",
                                        "deflation_setup_cache",
                                        "krylov_buffers"])
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_single_toggle_off_is_identical(self, toggle, name, tmp_path,
                                            default_digests):
        with toggles_mod.configured(**{toggle: False}):
            d_off, c_off = _run(CONFIGS[name], tmp_path / "off.ckpt")
        d_ref, c_ref = default_digests[name]
        assert d_off == d_ref, (
            f"{name}: simulated-time metrics depend on toggle {toggle}")
        assert c_off == c_ref, (
            f"{name}: checkpoint bytes depend on toggle {toggle}")


class TestEngineBatchMatrix:
    """The batched event core composes with every engine-adjacent toggle.

    ``engine_batch`` interlocks with the event loop, the task runtime and
    the message layer, so turning it off *together with* one of those fast
    paths must still land on the default digest — across sync/coupled x
    DLB on/off.  This is the matrix the (when, seq) contract promises:
    every toggle combination produces bit-identical simulated results.
    """

    ENGINE_ADJACENT = ["engine_fast_path", "runtime_fast_path",
                       "comm_fast_path", "scheduler_heap",
                       "driver_graph_cache"]

    @pytest.mark.parametrize("toggle", ENGINE_ADJACENT)
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_batch_off_with_toggle_off_is_identical(self, toggle, name,
                                                    tmp_path,
                                                    default_digests):
        with toggles_mod.configured(engine_batch=False, **{toggle: False}):
            d_off, c_off = _run(CONFIGS[name], tmp_path / "off.ckpt")
        d_ref, c_ref = default_digests[name]
        assert d_off == d_ref, (
            f"{name}: digest depends on engine_batch x {toggle}")
        assert c_off == c_ref, (
            f"{name}: checkpoint bytes depend on engine_batch x {toggle}")


class TestManyRankTieOrder:
    """Batch-vs-scalar identity at production scale (96 ranks, 2 nodes).

    Small single-node configs never produce same-instant completions on
    *different* nodes, so they cannot catch a wrong tie-break among plan
    completion events — the many-rank default configuration does (lockstep
    ranks finish identical graphs at identical times every phase).
    """

    @pytest.mark.parametrize("kwargs", [
        dict(),                                   # sync, marenostrum4, 96
        dict(mode="coupled", fluid_ranks=64),
    ], ids=["sync", "coupled"])
    def test_default_config_digest_identical(self, kwargs):
        cfg = RunConfig(**kwargs)
        with toggles_mod.baseline():
            before = run_cfpd(cfg)
        after = run_cfpd(cfg)
        assert _digest(before) == _digest(after)


class TestFaultPlanReplay:
    """Fault injection replays identically under the batched core.

    A plan with a straggler window, a rank death and a message-loss budget
    must fire at the same simulated times and leave the same simulated
    metrics whether the engine runs scalar or batched — fault timers and
    the keyed-mailbox failure path ride the same (when, seq) order.
    """

    def _fault_run(self, config_kwargs):
        from repro.fault import FaultPlan, FaultSpec
        cfg = RunConfig(**config_kwargs)
        plan = FaultPlan(specs=(
            FaultSpec(kind="straggler", time=1e-5, rank=0, factor=6.0,
                      duration=2e-4),
            FaultSpec(kind="rank_death", time=3e-4, rank=5),
            FaultSpec(kind="msg_delay", time=0.0, rank=2, delay=1e-5,
                      duration=5e-4),
        ))
        result = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        events = [(e.time, e.kind, e.rank) for e in result.faults.events]
        return events, _digest(result)

    @pytest.mark.parametrize("name", ["sync", "coupled"])
    def test_fault_events_and_digest_identical(self, name):
        with toggles_mod.baseline():
            ev_before, d_before = self._fault_run(CONFIGS[name])
        ev_after, d_after = self._fault_run(CONFIGS[name])
        assert ev_before == ev_after, (
            f"{name}: fault firing schedule changed under engine_batch")
        assert d_before == d_after, (
            f"{name}: simulated metrics after faults changed")

    def test_message_loss_deadlock_diagnostic_identical(self):
        """A dropped message deadlocks at the same simulated time with the
        same dropped count, scalar or batched (the keyed mailbox's blocked
        getter surfaces in the diagnostic exactly like the Store's)."""
        from repro.fault import FaultInjector, FaultPlan, FaultSpec
        from repro.machine import marenostrum4
        from repro.sim import Engine
        from repro.smpi import DeadlockError, World

        def outcome():
            eng = Engine()
            world = World(eng, marenostrum4(), 2)
            injector = FaultInjector(world, FaultPlan(specs=(
                FaultSpec(kind="msg_drop", time=0.0, rank=0, count=1),)))
            injector.start()

            def program(comm):
                if comm.rank == 0:
                    yield from comm.compute(1e-6)
                    yield from comm.send("lost", dest=1)
                else:
                    yield from comm.recv(source=0)

            procs = world.launch(program)
            with pytest.raises(DeadlockError):
                world.run(procs)
            return injector.messages_dropped, eng.now

        with toggles_mod.baseline():
            before = outcome()
        assert before == outcome()


class TestArenaRecycling:
    """``defer``/``call_later`` recycle arena slots: no per-step growth.

    Steady state must serve allocations from the free list (capacity a
    tiny fraction of total allocations) and two identical runs must not
    leak simulation objects between them.
    """

    def test_arena_steady_state(self):
        result = run_cfpd(RunConfig(**CONFIGS["sync"]), spec=SPEC)
        arena = result.engine_diag["batch"]["arena"]
        assert arena["live"] == 0, "slots leaked past the end of the run"
        assert arena["recycled"] > 0
        # steady-state table size is bounded by peak concurrency, not by
        # the number of events: orders of magnitude below total allocations
        assert arena["capacity"] < arena["allocated"] / 10

    def test_no_object_growth_between_runs(self):
        import gc
        cfg = RunConfig(**CONFIGS["sync"])
        run_cfpd(cfg, spec=SPEC)     # warm caches (graphs, geometry, ...)
        gc.collect()
        n0 = len(gc.get_objects())
        run_cfpd(cfg, spec=SPEC)
        gc.collect()
        n1 = len(gc.get_objects())
        # the second run may retain a bounded residue (result object grown
        # lists, memoized helpers) but nothing proportional to the ~1e4
        # events the run processed
        assert n1 - n0 < 2000, f"object count grew by {n1 - n0}"
