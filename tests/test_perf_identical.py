"""The PR 2 contract: fast paths change wall-clock only.

Two guards:

* **determinism** — two optimized runs of the same configuration produce
  identical simulated-time metrics and identical checkpoint bytes;
* **bit-identical before/after** — a run with every fast path disabled
  (:func:`repro.perf.toggles.baseline`) matches an optimized run exactly:
  phase samples, total time, deposition, solver info, and the on-disk
  checkpoint file (byte-for-byte), across sync/coupled x DLB on/off.
"""

import hashlib

import pytest

from repro.app.driver import RunConfig, run_cfpd
from repro.app.workload import WorkloadSpec, get_workload
from repro.perf import toggles as toggles_mod

#: small but non-trivial workload: enough steps for two checkpoint cuts
SPEC = WorkloadSpec(generations=3, points_per_ring=6, n_steps=4)

CONFIGS = {
    "sync": dict(cluster="thunder", num_nodes=1, nranks=8),
    "sync_dlb": dict(cluster="thunder", num_nodes=1, nranks=8, dlb=True),
    "coupled": dict(cluster="thunder", num_nodes=1, nranks=8,
                    mode="coupled", fluid_ranks=6),
    "coupled_dlb": dict(cluster="thunder", num_nodes=1, nranks=8,
                        mode="coupled", fluid_ranks=6, dlb=True),
}


def _digest(result) -> str:
    """Hash of every simulated-time metric of a run."""
    h = hashlib.sha256()
    for s in result.phase_log.samples:
        h.update(repr((s.step, s.rank, s.phase, s.t0, s.t1,
                       s.busy, s.instructions)).encode())
    h.update(repr(result.total_time).encode())
    h.update(repr(result.deposition).encode())
    h.update(repr(result.solver_info).encode())
    h.update(repr(result.checkpoints).encode())
    return h.hexdigest()


def _run(config_kwargs, ckpt_path):
    cfg = RunConfig(checkpoint_every=2, **config_kwargs)
    wl = get_workload(SPEC)
    result = run_cfpd(cfg, workload=wl, checkpoint_path=str(ckpt_path))
    return _digest(result), ckpt_path.read_bytes()


class TestDeterminism:
    def test_two_optimized_runs_identical(self, tmp_path):
        d1, c1 = _run(CONFIGS["sync"], tmp_path / "a.ckpt")
        d2, c2 = _run(CONFIGS["sync"], tmp_path / "b.ckpt")
        assert d1 == d2
        assert c1 == c2


class TestBitIdenticalBeforeAfter:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_fast_paths_change_wall_clock_only(self, name, tmp_path):
        kwargs = CONFIGS[name]
        with toggles_mod.baseline():
            d_before, c_before = _run(kwargs, tmp_path / "before.ckpt")
        d_after, c_after = _run(kwargs, tmp_path / "after.ckpt")
        assert d_before == d_after, (
            f"{name}: simulated-time metrics changed by the fast paths")
        assert c_before == c_after, (
            f"{name}: checkpoint bytes changed by the fast paths")


@pytest.fixture(scope="module")
def default_digests(tmp_path_factory):
    """Digest + checkpoint bytes of a defaults run, once per config."""
    base = tmp_path_factory.mktemp("defaults")
    return {name: _run(kwargs, base / f"{name}.ckpt")
            for name, kwargs in CONFIGS.items()}


class TestPerToggleBisection:
    """Each PR 3 / PR 4 toggle can be flipped off alone without changing
    any simulated result — the property the bisection workflow relies on."""

    @pytest.mark.parametrize("toggle", ["geometry_cache", "operator_split",
                                        "scheduler_heap",
                                        "driver_graph_cache",
                                        "particle_warm_start",
                                        "particle_compaction",
                                        "particle_fused_step"])
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_single_toggle_off_is_identical(self, toggle, name, tmp_path,
                                            default_digests):
        with toggles_mod.configured(**{toggle: False}):
            d_off, c_off = _run(CONFIGS[name], tmp_path / "off.ckpt")
        d_ref, c_ref = default_digests[name]
        assert d_off == d_ref, (
            f"{name}: simulated-time metrics depend on toggle {toggle}")
        assert c_off == c_ref, (
            f"{name}: checkpoint bytes depend on toggle {toggle}")
