"""Tests for the campaign subsystem (repro.campaign).

Covers the four contracts the subsystem makes:

* deterministic identity — job fingerprints are stable, sensitive to the
  physics/runtime configuration and blind to naming/tags;
* memoization — an identical campaign re-run performs zero simulations,
  and different campaigns visiting the same cell share store objects;
* concurrency — the worker pool produces a store bit-identical to the
  serial run's;
* crash safety — a campaign killed mid-flight (journaled) resumes to a
  store bit-identical to an uninterrupted run's.
"""

import dataclasses
import hashlib
import json
import os

import pytest

from repro.app import RunConfig, WorkloadSpec
from repro.campaign import (
    CampaignSpec,
    Job,
    ResultStore,
    StoreError,
    build_report,
    ci_smoke_campaign,
    classify_failure,
    cross_run_identity,
    diagnose,
    dlb_figure_campaign,
    get_campaign,
    hybrid_sweep_campaign,
    replay,
    run_campaign,
    run_job,
)
from repro.campaign.journal import Journal
from repro.campaign.serialize import canonical_json, job_fingerprint
from repro.fault import CheckpointError, FaultPlan, FaultSpec
from repro.smpi import JobKilledError, MPIError, RankDeadError

TINY = WorkloadSpec(generations=2, points_per_ring=6, n_steps=2)
KILL2 = FaultPlan(specs=(FaultSpec(kind="job_kill", time=0.0, count=2),))


def tiny_campaign(name="tiny"):
    return CampaignSpec(
        name=name,
        base_config=RunConfig(cluster="thunder", num_nodes=1,
                              threads_per_rank=1),
        base_spec=TINY,
        grid=[("config.nranks", [2, 4]),
              ("config.dlb", [False, True])])


def tree_digest(store):
    """SHA-256 over every object file's relative path and bytes."""
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(store.objects_dir)):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            h.update(os.path.relpath(path, store.objects_dir).encode())
            with open(path, "rb") as fh:
                h.update(fh.read())
    return h.hexdigest()


class TestFingerprints:
    def test_deterministic(self):
        cfg = RunConfig(nranks=8)
        assert job_fingerprint(cfg, TINY) == job_fingerprint(cfg, TINY)

    def test_sensitive_to_config_spec_and_plan(self):
        base = job_fingerprint(RunConfig(nranks=8), TINY)
        assert job_fingerprint(RunConfig(nranks=16), TINY) != base
        assert job_fingerprint(
            RunConfig(nranks=8),
            dataclasses.replace(TINY, n_steps=3)) != base
        assert job_fingerprint(RunConfig(nranks=8), TINY, KILL2) != base

    def test_blind_to_campaign_name_index_and_tags(self):
        cfg = RunConfig(nranks=8)
        a = Job(index=0, campaign="a", config=cfg, spec=TINY,
                tags=(("role", "baseline"),))
        b = Job(index=7, campaign="b", config=cfg, spec=TINY,
                tags=(("role", "hybrid"),))
        assert a.fingerprint == b.fingerprint
        assert a.job_id != b.job_id

    def test_canonical_json_is_byte_stable(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == \
            '{"a":[true,null],"b":1}'


class TestCampaignSpec:
    def test_expand_runs_times_grid_in_order(self):
        campaign = CampaignSpec(
            name="x", base_spec=TINY,
            runs=[{"config.nranks": 2}, {"config.nranks": 4}],
            grid=[("config.dlb", [False, True])])
        jobs = campaign.expand()
        assert [(j.config.nranks, j.config.dlb) for j in jobs] == \
            [(2, False), (2, True), (4, False), (4, True)]
        assert [j.job_id for j in jobs] == [f"x-{i:04d}" for i in range(4)]

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ValueError, match="unknown override key"):
            CampaignSpec(name="x", grid=[("nranks", [2])])
        with pytest.raises(ValueError, match="unknown override key"):
            CampaignSpec(name="x", runs=[{"cfg.nranks": 2}])

    def test_unknown_field_rejected_at_expand(self):
        campaign = CampaignSpec(name="x", base_spec=TINY,
                                grid=[("config.nrankz", [2])])
        with pytest.raises(ValueError, match="nrankz"):
            campaign.expand()

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            CampaignSpec(name="x", grid=[("config.nranks", [])])

    def test_file_roundtrip_preserves_identity(self, tmp_path):
        campaign = tiny_campaign()
        path = str(tmp_path / "campaign.json")
        campaign.to_file(path)
        loaded = CampaignSpec.from_file(path)
        assert loaded.fingerprint == campaign.fingerprint
        assert [j.fingerprint for j in loaded.expand()] == \
            [j.fingerprint for j in campaign.expand()]

    def test_with_spec_overrides(self):
        campaign = tiny_campaign()
        smaller = campaign.with_spec_overrides(n_steps=1)
        assert smaller.base_spec.n_steps == 1
        assert smaller.fingerprint != campaign.fingerprint

    def test_strategy_strings_become_enums(self):
        campaign = CampaignSpec(
            name="x", base_spec=TINY,
            runs=[{"config.assembly_strategy": "coloring"}])
        job = campaign.expand()[0]
        assert job.config.assembly_strategy.value == "coloring"


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        job = tiny_campaign().expand()[0]
        record = run_job(job)
        store.put(record)
        assert job.fingerprint in store
        assert store.get(job.fingerprint) == record
        assert len(store) == 1
        assert store.digest_map() == \
            {job.fingerprint: record["simulated_digest"]}

    def test_get_miss_returns_none(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert store.get("0" * 64) is None

    def test_record_without_fingerprint_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(StoreError, match="no fingerprint"):
            store.put({"simulated_digest": "x"})
        with pytest.raises(StoreError, match="no simulated_digest"):
            store.put({"fingerprint": "0" * 64})

    def test_corrupt_object_raises(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        fp = "ab" + "0" * 62
        path = store._path(fp)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            fh.write("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            store.get(fp)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        fp = "cd" + "0" * 62
        path = store._path(fp)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            json.dump({"fingerprint": "0" * 64, "simulated_digest": "x"}, fh)
        with pytest.raises(StoreError, match="claims fingerprint"):
            store.get(fp)


class TestStoreRecovery:
    def test_orphaned_temp_files_swept_at_open(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put({"fingerprint": "a" * 64, "simulated_digest": "d"})
        # a crash mid-put leaves a temp file next to the objects
        shard = os.path.join(store.objects_dir, "aa")
        with open(os.path.join(shard, ".tmp-dead.json"), "w") as fh:
            fh.write('{"half": ')
        os.makedirs(store.quarantine_dir, exist_ok=True)
        with open(os.path.join(store.quarantine_dir,
                               ".tmp-dead2.json"), "w") as fh:
            fh.write("{")
        reopened = ResultStore(str(tmp_path))
        assert reopened.orphans_removed == 2
        assert reopened.stats()["orphans_removed"] == 2
        assert not [n for n in os.listdir(shard) if n.startswith(".tmp-")]
        assert reopened.get("a" * 64)["simulated_digest"] == "d"

    def test_clean_store_sweeps_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put({"fingerprint": "a" * 64, "simulated_digest": "d"})
        assert ResultStore(str(tmp_path)).orphans_removed == 0

    def test_quarantine_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.quarantined() == []
        record = {"fingerprint": "b" * 64, "job_id": "t-0001",
                  "failure_class": "worker_crash", "attempts": 3}
        store.quarantine_put(record)
        (parked,) = store.quarantined()
        assert parked["job_id"] == "t-0001"
        assert store.stats()["quarantined"] == 1
        assert store.clear_quarantine("b" * 64)
        assert store.quarantined() == []
        assert not store.clear_quarantine("b" * 64)  # already gone

    def test_quarantine_requires_fingerprint(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(str(tmp_path)).quarantine_put({"job_id": "x"})

    def test_quarantine_outside_identity_surface(self, tmp_path):
        import hashlib

        def objects_digest(store):
            h = hashlib.sha256()
            for dirpath, dirnames, filenames in \
                    sorted(os.walk(store.objects_dir)):
                dirnames.sort()
                for name in sorted(filenames):
                    path = os.path.join(dirpath, name)
                    h.update(os.path.relpath(
                        path, store.objects_dir).encode())
                    with open(path, "rb") as fh:
                        h.update(fh.read())
            return h.hexdigest()

        store = ResultStore(str(tmp_path))
        store.put({"fingerprint": "a" * 64, "simulated_digest": "d"})
        before = objects_digest(store)
        store.quarantine_put({"fingerprint": "b" * 64, "job_id": "x"})
        assert objects_digest(store) == before


class TestJournal:
    def test_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append("campaign_begin", campaign="t",
                           campaign_fingerprint="f" * 64, njobs=2)
            journal.append("job_done", fingerprint="a" * 64, job_id="t-0000",
                           digest="d1")
            journal.append("job_cached", fingerprint="b" * 64,
                           job_id="t-0001")
            journal.append("campaign_end", executed=1, cached=1, failed=0)
        state = replay(path)
        assert state.campaign == "t"
        assert state.finished and not state.killed and not state.truncated
        assert state.done == {"a" * 64: "d1"}
        assert state.cached == {"b" * 64}
        assert state.completed == 2

    def test_later_begin_supersedes(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append("campaign_begin", campaign="t", njobs=2)
            journal.append("job_done", fingerprint="a" * 64, digest="d1")
            journal.append("campaign_killed", reason="kill", completed=1)
            journal.append("campaign_begin", campaign="t", njobs=2)
            journal.append("job_cached", fingerprint="a" * 64)
            journal.append("job_done", fingerprint="b" * 64, digest="d2")
            journal.append("campaign_end", executed=1, cached=1, failed=0)
        state = replay(path)
        assert state.finished and not state.killed
        assert state.cached == {"a" * 64}
        assert state.done == {"b" * 64: "d2"}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append("campaign_begin", campaign="t", njobs=2)
            journal.append("job_done", fingerprint="a" * 64, digest="d1")
        with open(path, "a") as fh:
            fh.write('{"seq": 2, "event": "job_do')  # crash mid-append
        state = replay(path)
        assert state.truncated
        assert state.done == {"a" * 64: "d1"}

    def test_seq_continues_across_reopen(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append("campaign_begin", campaign="t", njobs=1)
        with Journal(path) as journal:
            journal.append("campaign_end", executed=0, cached=0, failed=0)
        seqs = [e["seq"] for e in replay(path).events]
        assert seqs == [0, 1]

    def test_missing_journal_is_empty_state(self, tmp_path):
        state = replay(str(tmp_path / "nope.jsonl"))
        assert not state.began and state.completed == 0

    def test_lease_lifecycle_replay(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append("campaign_begin", campaign="t", njobs=2)
            journal.append("worker_spawned", worker="w0")
            journal.append("lease_granted", fingerprint="a" * 64,
                           job_id="t-0000", worker="w0", attempt=1,
                           duration=2.0)
            journal.append("lease_renewed", fingerprint="a" * 64,
                           worker="w0", renewals=1)
            journal.append("lease_expired", fingerprint="a" * 64,
                           job_id="t-0000", worker="w0",
                           reason="heartbeat_timeout", renewals=1)
            journal.append("lease_granted", fingerprint="a" * 64,
                           job_id="t-0000", worker="w1", attempt=2,
                           duration=2.0)
            journal.append("job_done", fingerprint="a" * 64,
                           job_id="t-0000", digest="d1")
        state = replay(path)
        assert state.worker_spawns == 1
        assert state.lease_grants == 2
        assert state.lease_renewals == 1
        assert state.lease_expiries == 1
        assert state.dangling_leases == {}  # the regrant resolved as done
        assert state.summary()["dangling_leases"] == 0

    def test_dangling_lease_flagged(self, tmp_path):
        # the driver died with a job in flight: granted, never resolved
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append("campaign_begin", campaign="t", njobs=1)
            journal.append("lease_granted", fingerprint="a" * 64,
                           job_id="t-0000", worker="w0", attempt=1,
                           duration=2.0)
        state = replay(path)
        assert state.dangling_leases == {"a" * 64: "w0"}
        assert state.in_progress

    def test_quarantine_resolves_a_lease(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append("campaign_begin", campaign="t", njobs=1)
            journal.append("lease_granted", fingerprint="a" * 64,
                           job_id="t-0000", worker="w0", attempt=3,
                           duration=2.0)
            journal.append("job_quarantined", fingerprint="a" * 64,
                           job_id="t-0000", failure_class="worker_crash",
                           error="poison", attempts=3, worker_losses=3)
            journal.append("campaign_end", executed=0, cached=0, failed=0,
                           quarantined=1)
        state = replay(path)
        assert state.quarantined == {"a" * 64: "worker_crash"}
        assert state.dangling_leases == {}
        assert state.finished


class TestFailureTaxonomy:
    def test_classification(self):
        assert classify_failure(JobKilledError("x", 0.0)) == "simulated_kill"
        assert classify_failure(RankDeadError("dead")) == "fault"
        assert classify_failure(MPIError("x")) == "fault"
        assert classify_failure(CheckpointError("x")) == "config"
        assert classify_failure(ValueError("x")) == "config"
        assert classify_failure(OSError("x")) == "transient"
        assert classify_failure(TimeoutError("x")) == "transient"
        assert classify_failure(RuntimeError("x")) == "unknown"

    def test_chained_cause_is_traced(self):
        # raise X from Y: a transient root cause wrapped in a generic
        # error must still classify as transient (and thus retry)
        try:
            try:
                raise OSError("pipe broke")
            except OSError as inner:
                raise RuntimeError("job harness failed") from inner
        except RuntimeError as exc:
            chained = exc
        assert classify_failure(chained) == "transient"

    def test_implicit_context_is_traced(self):
        # raise during except: __context__ (no explicit "from")
        try:
            try:
                raise JobKilledError("kill", 0.0)
            except JobKilledError:
                raise RuntimeError("cleanup failed")
        except RuntimeError as exc:
            chained = exc
        assert classify_failure(chained) == "simulated_kill"

    def test_direct_label_wins_over_the_chain(self):
        # the outermost classifiable exception decides; the chain is only
        # consulted for otherwise-unknown wrappers
        try:
            try:
                raise OSError("transient root")
            except OSError as inner:
                raise ValueError("bad config") from inner
        except ValueError as exc:
            chained = exc
        assert classify_failure(chained) == "config"

    def test_unknown_chain_stays_unknown(self):
        try:
            try:
                raise RuntimeError("inner mystery")
            except RuntimeError as inner:
                raise RuntimeError("outer mystery") from inner
        except RuntimeError as exc:
            chained = exc
        assert classify_failure(chained) == "unknown"

    def test_base_exceptions_classify_as_interrupted(self):
        assert classify_failure(KeyboardInterrupt()) == "interrupted"
        assert classify_failure(SystemExit(1)) == "interrupted"
        assert classify_failure(GeneratorExit()) == "interrupted"

    def test_job_level_kill_fails_without_retry(self):
        campaign = CampaignSpec(
            name="killed-cell",
            base_config=RunConfig(cluster="thunder", num_nodes=1, nranks=2,
                                  threads_per_rank=1, checkpoint_every=0),
            base_spec=TINY,
            runs=[{"fault_plan": {
                "seed": 0,
                "specs": [{"kind": "job_kill", "time": 1e-4}]}}])
        run = run_campaign(campaign)
        (outcome,) = run.outcomes
        assert outcome.status == "failed"
        assert outcome.failure_class == "simulated_kill"
        assert outcome.attempts == 1  # deterministic: no retry
        assert not run.ok

    def test_transient_failure_retries(self, monkeypatch):
        import repro.campaign.executor as executor

        real_run_job = executor.run_job
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("worker lost")
            return real_run_job(job)

        monkeypatch.setattr(executor, "run_job", flaky)
        campaign = CampaignSpec(
            name="flaky",
            base_config=RunConfig(cluster="thunder", num_nodes=1, nranks=2,
                                  threads_per_rank=1),
            base_spec=TINY)
        run = run_campaign(campaign, backoff_base=0.0)
        (outcome,) = run.outcomes
        assert outcome.status == "done"
        assert outcome.attempts == 2
        assert calls["n"] == 2

    def test_transient_failure_exhausts_retries(self, monkeypatch):
        import repro.campaign.executor as executor

        def always_down(job):
            raise OSError("worker lost")

        monkeypatch.setattr(executor, "run_job", always_down)
        campaign = CampaignSpec(
            name="down",
            base_config=RunConfig(cluster="thunder", num_nodes=1, nranks=2,
                                  threads_per_rank=1),
            base_spec=TINY)
        run = run_campaign(campaign, max_retries=1, backoff_base=0.0)
        (outcome,) = run.outcomes
        assert outcome.status == "failed"
        assert outcome.failure_class == "transient"
        assert outcome.attempts == 2


class TestMemoization:
    def test_rerun_is_pure_cache_hit(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(str(tmp_path / "store"))
        first = run_campaign(campaign, store=store)
        assert first.executed == 4 and first.cached == 0
        again = run_campaign(campaign, store=store)
        assert again.executed == 0 and again.cached == 4
        assert again.digest_map() == first.digest_map()

    def test_overlapping_campaigns_share_cells(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        run_campaign(tiny_campaign("one"), store=store)
        other = run_campaign(tiny_campaign("two"), store=store)
        assert other.executed == 0 and other.cached == 4

    def test_duplicate_cells_share_one_outcome(self, tmp_path):
        campaign = CampaignSpec(
            name="dup",
            base_config=RunConfig(cluster="thunder", num_nodes=1, nranks=2,
                                  threads_per_rank=1),
            base_spec=TINY,
            runs=[{"tags.copy": "a"}, {"tags.copy": "b"}])
        store = ResultStore(str(tmp_path / "store"))
        run = run_campaign(campaign, store=store)
        assert len(run.outcomes) == 2
        assert run.outcomes[0] is run.outcomes[1]  # one simulation, shared
        assert len(store) == 1

    def test_store_objects_bit_identical_across_runs(self, tmp_path):
        campaign = tiny_campaign()
        store_a = ResultStore(str(tmp_path / "a"))
        store_b = ResultStore(str(tmp_path / "b"))
        run_campaign(campaign, store=store_a)
        run_campaign(campaign, store=store_b)
        assert cross_run_identity(store_a, store_b)["identical"]
        assert tree_digest(store_a) == tree_digest(store_b)


class TestWorkerPool:
    def test_pool_matches_serial_bit_for_bit(self, tmp_path):
        campaign = tiny_campaign()
        serial = ResultStore(str(tmp_path / "serial"))
        pooled = ResultStore(str(tmp_path / "pooled"))
        run_campaign(campaign, store=serial)
        run = run_campaign(campaign, store=pooled, workers=2)
        assert run.executed == 4 and run.ok
        assert cross_run_identity(serial, pooled)["identical"]
        assert tree_digest(serial) == tree_digest(pooled)

    def test_fresh_process_per_job_matches(self, tmp_path):
        campaign = CampaignSpec(
            name="cold",
            base_config=RunConfig(cluster="thunder", num_nodes=1, nranks=2,
                                  threads_per_rank=1),
            base_spec=TINY)
        inline = run_campaign(campaign)
        cold = run_campaign(campaign, fresh_process_per_job=True)
        assert cold.digest_map() == inline.digest_map()


class TestKillAndResume:
    def test_kill_gate_journals_and_raises(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(JobKilledError, match="after 2 completed"):
            run_campaign(campaign, store=store, kill_plan=KILL2)
        state = replay(os.path.join(store.root, "journal.jsonl"))
        assert state.killed and not state.finished
        assert len(state.done) == 2
        # crash-safety contract: everything journaled done is in the store
        assert len(store) == 2
        for fp, digest in state.done.items():
            assert store.get(fp)["simulated_digest"] == digest

    def test_resume_after_kill_bit_identical(self, tmp_path):
        campaign = tiny_campaign()
        uninterrupted = ResultStore(str(tmp_path / "uninterrupted"))
        run_campaign(campaign, store=uninterrupted)

        interrupted = ResultStore(str(tmp_path / "interrupted"))
        with pytest.raises(JobKilledError):
            run_campaign(campaign, store=interrupted, kill_plan=KILL2)
        resumed = run_campaign(campaign, store=interrupted)
        assert resumed.cached == 2 and resumed.executed == 2

        assert cross_run_identity(uninterrupted, interrupted)["identical"]
        assert tree_digest(uninterrupted) == tree_digest(interrupted)
        state = replay(os.path.join(interrupted.root, "journal.jsonl"))
        assert state.finished and not state.killed

    def test_cached_cells_do_not_trip_the_kill_gate(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(str(tmp_path / "store"))
        run_campaign(campaign, store=store)
        # every cell cached: the gate counts executed completions only
        run = run_campaign(campaign, store=store, kill_plan=KILL2)
        assert run.cached == 4


class TestAggregation:
    def test_report_rows_and_summary(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(str(tmp_path / "store"))
        run_campaign(campaign, store=store)
        report = build_report(campaign, store)
        assert len(report.rows) == 4 and not report.pending
        assert report.summary["completed"] == 4
        assert 0 < report.summary["mean_parallel_efficiency"] <= 1
        assert report.summary["fastest"]["total_time"] <= \
            report.summary["slowest"]["total_time"]
        text = report.format()
        assert "Campaign 'tiny'" in text and "4/4 cells complete" in text

    def test_report_flags_pending_cells(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(JobKilledError):
            run_campaign(campaign, store=store, kill_plan=KILL2)
        report = build_report(campaign, store)
        assert len(report.rows) == 2 and len(report.pending) == 2
        assert "pending: 2" in report.format()

    def test_report_from_run_without_store(self):
        campaign = tiny_campaign()
        run = run_campaign(campaign)
        report = build_report(campaign, store=None, run=run)
        assert len(report.rows) == 4


class TestFigureCampaigns:
    def test_hybrid_sweep_shape(self):
        campaign = hybrid_sweep_campaign(spec=TINY, totals={"thunder": 8})
        jobs = campaign.expand()
        # 1 MPI baseline + 3 strategies x 3 thread counts
        assert len(jobs) == 10
        baseline = jobs[0]
        assert baseline.tag("role") == "baseline"
        assert baseline.config.nranks == 8
        for job in jobs[1:]:
            threads = int(job.tag("threads"))
            assert job.config.nranks * threads == 8

    def test_fig6_and_fig7_memoize_each_other(self):
        fig6 = get_campaign("fig6", TINY)
        fig7 = get_campaign("fig7", TINY)
        assert fig6.name != fig7.name
        assert {j.fingerprint for j in fig6.expand()} == \
            {j.fingerprint for j in fig7.expand()}

    def test_dlb_figure_shape(self):
        campaign = dlb_figure_campaign("thunder", spec=TINY, total=8,
                                       splits=(4, 6))
        jobs = campaign.expand()
        # (sync + 2 splits) x (dlb off, on)
        assert len(jobs) == 6
        assert {j.config.dlb for j in jobs} == {False, True}
        assert jobs[0].config.mode == "sync"
        assert jobs[2].config.mode == "coupled"
        assert jobs[2].config.fluid_ranks == 4

    def test_ci_smoke_campaign_is_four_jobs(self):
        assert len(ci_smoke_campaign().expand()) == 4

    def test_unknown_builtin_rejected(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            get_campaign("fig99")


class TestJobRecord:
    def test_record_shape_and_determinism(self):
        job = tiny_campaign().expand()[3]  # nranks=4, dlb=True
        record = run_job(job)
        assert record["schema"] == "repro-campaign-job-v1"
        assert record["fingerprint"] == job.fingerprint
        assert record["metrics"]["total_time"] > 0
        assert set(record["metrics"]["pop"]) == {
            "load_balance", "communication_efficiency",
            "parallel_efficiency"}
        assert "assembly" in record["metrics"]["phase_elapsed"]
        assert "dlb" in record["metrics"]  # dlb=True cell
        assert run_job(job) == record  # bit-stable
        canonical_json(record)  # JSON-able without loss

    def test_record_has_no_wall_clock_material(self):
        record = run_job(tiny_campaign().expand()[0])
        text = canonical_json(record)
        assert "ts" not in json.loads(text)
        assert "wall" not in text


class TestDoctor:
    def _healthy_store(self, tmp_path):
        root = str(tmp_path / "store")
        run_campaign(tiny_campaign(), ResultStore(root))
        return root

    def test_clean_store_is_clean(self, tmp_path):
        root = self._healthy_store(tmp_path)
        report = diagnose(root)
        assert report.ok
        assert report.objects_checked == 4
        assert report.journal_events > 0
        assert report.summary()["problems"] == []
        assert "verdict: clean" in report.format()

    def test_corrupt_object_is_damage(self, tmp_path):
        root = self._healthy_store(tmp_path)
        store = ResultStore(root)
        fp = next(store.fingerprints())
        with open(store._path(fp), "w") as fh:
            fh.write("{ not json")
        report = diagnose(root)
        assert not report.ok
        assert any("corrupt" in p for p in report.problems)

    def test_fingerprint_mismatch_is_damage(self, tmp_path):
        root = self._healthy_store(tmp_path)
        store = ResultStore(root)
        fps = list(store.fingerprints())
        # object claims a different identity than its address
        record = store.get(fps[0])
        record["fingerprint"] = fps[1]
        with open(store._path(fps[0]), "w") as fh:
            fh.write(canonical_json(record))
        report = diagnose(root)
        assert not report.ok
        assert any("claims fingerprint" in p for p in report.problems)

    def test_done_but_missing_object_is_damage(self, tmp_path):
        root = self._healthy_store(tmp_path)
        store = ResultStore(root)
        fp = next(store.fingerprints())
        os.unlink(store._path(fp))
        report = diagnose(root)
        assert not report.ok
        assert any("store has no object" in p for p in report.problems)

    def test_torn_tail_and_dangling_lease_are_damage(self, tmp_path):
        root = self._healthy_store(tmp_path)
        journal = os.path.join(root, "journal.jsonl")
        with Journal(journal) as jr:
            jr.append("lease_granted", fingerprint="e" * 64,
                      job_id="t-0009", worker="w9", attempt=1,
                      duration=2.0)
        with open(journal, "a") as fh:
            fh.write('{"seq": 99, "event": "job_')
        report = diagnose(root)
        assert not report.ok
        assert any("torn journal tail" in p for p in report.problems)
        assert any("dangling lease" in p for p in report.problems)

    def test_orphan_sweep_reported_as_repair(self, tmp_path):
        root = self._healthy_store(tmp_path)
        store = ResultStore(root)
        shard = os.path.dirname(store._path(next(store.fingerprints())))
        with open(os.path.join(shard, ".tmp-crash.json"), "w") as fh:
            fh.write("{")
        report = diagnose(root)
        assert report.ok  # a repair, not damage
        assert any("orphaned temp" in r for r in report.repairs)

    def test_quarantined_cells_are_notes_not_damage(self, tmp_path):
        root = self._healthy_store(tmp_path)
        ResultStore(root).quarantine_put(
            {"fingerprint": "c" * 64, "job_id": "t-0042",
             "failure_class": "worker_crash", "attempts": 3})
        report = diagnose(root)
        assert report.ok
        assert any("quarantined cell" in n for n in report.notes)

    def test_store_without_journal_is_notes_only(self, tmp_path):
        store = ResultStore(str(tmp_path / "bare"))
        record = run_job(tiny_campaign().expand()[0])
        store.put(record)
        report = diagnose(store.root)
        assert report.ok
        assert any("no campaign journal" in n for n in report.notes)
