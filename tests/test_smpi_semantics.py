"""Additional simulated-MPI semantics tests (ordering, sizes, self-sends)."""

import numpy as np
import pytest

from repro.machine import marenostrum4
from repro.sim import Engine
from repro.smpi import World


def make_world(nranks=2):
    return World(Engine(), marenostrum4(), nranks)


class TestMessageOrdering:
    def test_fifo_between_same_pair_same_tag(self):
        """MPI guarantees non-overtaking for matching (src, tag) pairs;
        equal-size messages of the same tag must arrive in send order."""
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield from comm.send(i, dest=1, tag=7, nbytes=64)
                return None
            got = []
            for _ in range(5):
                got.append((yield from comm.recv(source=0, tag=7)))
            return got

        results = world.run(world.launch(program))
        assert results[1] == [0, 1, 2, 3, 4]

    def test_isend_flood_all_delivered(self):
        world = make_world(2)

        def program(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, nbytes=8) for i in range(20)]
                yield from comm.waitall(reqs)
                return None
            got = []
            for _ in range(20):
                got.append((yield from comm.recv(source=0)))
            return sorted(got)

        results = world.run(world.launch(program))
        assert results[1] == list(range(20))


class TestTransferCosts:
    def test_time_monotone_in_message_size(self):
        times = []
        for nbytes in (1e2, 1e5, 1e8):
            world = make_world(2)

            def program(comm, nbytes=nbytes):
                if comm.rank == 0:
                    yield from comm.send(None, dest=1, nbytes=nbytes)
                else:
                    yield from comm.recv(source=0)

            world.run(world.launch(program))
            times.append(world.engine.now)
        assert times[0] < times[1] < times[2]

    def test_numpy_payload_size_inferred(self):
        small, big = None, None
        for arr_len in (10, 1_000_000):
            world = make_world(2)
            payload = np.zeros(arr_len)

            def program(comm, payload=payload):
                if comm.rank == 0:
                    yield from comm.send(payload, dest=1)
                else:
                    yield from comm.recv(source=0)

            world.run(world.launch(program))
            if arr_len == 10:
                small = world.engine.now
            else:
                big = world.engine.now
        assert big > small

    def test_self_send(self):
        """A rank can send to itself (buffered delivery)."""
        world = make_world(1)

        def program(comm):
            req = comm.isend("hello me", dest=0, tag=1)
            msg = yield from comm.recv(source=0, tag=1)
            yield from comm.wait(req)
            return msg

        assert world.run(world.launch(program)) == ["hello me"]


class TestAccountingExtra:
    def test_compute_accumulates(self):
        world = make_world(2)

        def program(comm):
            yield from comm.compute(1.0)
            yield from comm.compute(2.5)

        world.run(world.launch(program))
        assert world.compute_seconds[0] == pytest.approx(3.5)
        assert world.mpi_seconds[0] == pytest.approx(0.0)

    def test_block_mapping_groups_ranks(self):
        world = World(Engine(), marenostrum4(num_nodes=2), 8,
                      mapping="block")
        assert world.ranks_on_node(0) == [0, 1, 2, 3]
        assert world.ranks_on_node(1) == [4, 5, 6, 7]

    def test_comm_world_view_consistency(self):
        world = make_world(3)
        for r in range(3):
            comm = world.comm_world(r)
            assert comm.rank == r
            assert comm.size == 3
            assert comm.world_rank_of(r) == r
