"""Tests for the static-geometry cache (repro.fem.geometry) and its
consumers: cache identity/invalidation, memory accounting, the eviction
budget, the operator-split assembly path, the cached SGS geometry, the
shared centroid KD-tree, and the driver's vectorized exchange topology."""

import numpy as np
import pytest

from repro.fem import (
    SGSState,
    assemble_operator,
    cache_budget_bytes,
    cache_for,
    drop_cache,
    geometry_blocks,
    set_cache_budget,
    update_sgs,
)
from repro.fem import geometry as geom_mod
from repro.mesh import AirwayConfig, MeshResolution, build_airway_mesh
from repro.perf import toggles as toggles_mod


def small_airway():
    return build_airway_mesh(AirwayConfig(generations=3, seed=2018),
                             MeshResolution(points_per_ring=6, rings=2))


@pytest.fixture
def mesh():
    return small_airway().mesh


# -- cache identity, counters, invalidation --------------------------------

class TestGeometryCache:
    def test_hits_and_misses_counted(self, mesh):
        hits0 = geom_mod.COUNTERS.get("hits")
        misses0 = geom_mod.COUNTERS.get("misses")
        b1 = geometry_blocks(mesh)
        assert geom_mod.COUNTERS.get("misses") == misses0 + 1
        b2 = geometry_blocks(mesh)
        assert geom_mod.COUNTERS.get("hits") == hits0 + 1
        assert b2 is b1  # same cached list, not a recompute

    def test_blocks_match_inline_geometry(self, mesh):
        """Cached arrays are bit-identical to the kernels' inline compute."""
        from repro.fem.assembly import _geometry
        from repro.fem.shape import reference_element
        from repro.mesh import NODES_PER_TYPE

        for blk in geometry_blocks(mesh):
            nn = NODES_PER_TYPE[blk.etype]
            conn = mesh.elem_nodes[blk.eids][:, :nn]
            grads, dvol = _geometry(mesh.coords, conn,
                                    reference_element(blk.etype))
            assert np.array_equal(blk.conn, conn)
            assert np.array_equal(blk.grads, grads)
            assert np.array_equal(blk.dvol, dvol)
            assert np.array_equal(blk.vol, dvol.sum(axis=1))
            assert np.array_equal(blk.h, np.cbrt(dvol.sum(axis=1)))

    def test_inplace_coordinate_mutation_invalidates(self, mesh):
        geometry_blocks(mesh)
        inv0 = geom_mod.COUNTERS.get("invalidations")
        cache0 = cache_for(mesh)
        mesh.coords[0, 0] += 1e-3
        blocks = geometry_blocks(mesh)  # must rebuild, not serve stale
        assert geom_mod.COUNTERS.get("invalidations") == inv0 + 1
        assert cache_for(mesh) is not cache0
        # the rebuilt geometry reflects the mutated coordinates
        from repro.fem.assembly import _geometry
        from repro.fem.shape import reference_element
        from repro.mesh import NODES_PER_TYPE

        blk = blocks[0]
        nn = NODES_PER_TYPE[blk.etype]
        _, dvol = _geometry(mesh.coords, mesh.elem_nodes[blk.eids][:, :nn],
                            reference_element(blk.etype))
        assert np.array_equal(blk.dvol, dvol)

    def test_inplace_connectivity_mutation_invalidates(self, mesh):
        geometry_blocks(mesh)
        inv0 = geom_mod.COUNTERS.get("invalidations")
        mesh.elem_nodes[0, 0], mesh.elem_nodes[0, 1] = (
            int(mesh.elem_nodes[0, 1]), int(mesh.elem_nodes[0, 0]))
        cache_for(mesh)
        assert geom_mod.COUNTERS.get("invalidations") == inv0 + 1

    def test_bytes_accounting_and_drop(self, mesh):
        drop_cache(mesh)
        bytes0 = geom_mod.COUNTERS.get("bytes_cached")
        geometry_blocks(mesh)
        cache = cache_for(mesh)
        assert cache.total_bytes > 0
        assert (geom_mod.COUNTERS.get("bytes_cached")
                == bytes0 + cache.total_bytes)
        drop_cache(mesh)
        assert geom_mod.COUNTERS.get("bytes_cached") == bytes0

    def test_eviction_budget(self, mesh):
        drop_cache(mesh)
        full = geometry_blocks(mesh)
        nbytes = sum(b.nbytes for b in full)
        drop_cache(mesh)
        previous = set_cache_budget(max(1, nbytes // 2))
        try:
            ev0 = geom_mod.COUNTERS.get("evictions")
            geometry_blocks(mesh)  # oversized single entry: kept anyway
            cache = cache_for(mesh)
            assert len(cache) == 1
            geometry_blocks(mesh, np.arange(mesh.nelem // 2))
            # inserting a second entry pushed past the budget: LRU evicted
            assert geom_mod.COUNTERS.get("evictions") > ev0
            assert len(cache) == 1
            assert cache.total_bytes <= nbytes
        finally:
            set_cache_budget(previous)
            drop_cache(mesh)

    def test_budget_accessors(self):
        previous = set_cache_budget(12345)
        try:
            assert cache_budget_bytes() == 12345
            with pytest.raises(ValueError, match="positive"):
                set_cache_budget(0)
        finally:
            set_cache_budget(previous)


# -- operator-split assembly -----------------------------------------------

class TestOperatorSplit:
    def _operands(self, mesh):
        rng = np.random.default_rng(7)
        return dict(kappa=1.9e-5, mass_coeff=230.0,
                    velocity=rng.normal(size=(mesh.nnodes, 3)), source=0.4)

    def test_split_matches_monolithic(self, mesh):
        kw = self._operands(mesh)
        with toggles_mod.configured(operator_split=False):
            mono = assemble_operator(mesh, **kw)
        split1 = assemble_operator(mesh, **kw)  # builds the constant part
        split2 = assemble_operator(mesh, **kw)  # reuses it
        for res in (split1, split2):
            assert np.array_equal(res.matrix.indices, mono.matrix.indices)
            assert np.array_equal(res.matrix.indptr, mono.matrix.indptr)
            # values agree to summation-order tolerance (the split sums the
            # constant and convective element matrices in a different order)
            assert np.allclose(res.matrix.data, mono.matrix.data,
                               rtol=1e-12, atol=1e-14)
            assert np.array_equal(res.rhs, mono.rhs)
            assert np.array_equal(res.scatter_counts, mono.scatter_counts)
            assert np.array_equal(res.element_nodes, mono.element_nodes)
        # repeated split assemblies are bit-identical to each other
        assert np.array_equal(split1.matrix.data, split2.matrix.data)

    def test_constant_operator_is_cached_copy(self, mesh):
        """velocity=None: the whole operator is constant across repeats."""
        a = assemble_operator(mesh, kappa=1.0, mass_coeff=2.0)
        hits0 = geom_mod.COUNTERS.get("hits")
        b = assemble_operator(mesh, kappa=1.0, mass_coeff=2.0)
        assert geom_mod.COUNTERS.get("hits") > hits0
        assert np.array_equal(a.matrix.data, b.matrix.data)
        assert a.matrix.data is not b.matrix.data

    def test_returned_arrays_are_copy_safe(self, mesh):
        """Mutating a result must not corrupt the cached constant blocks."""
        kw = self._operands(mesh)
        first = assemble_operator(mesh, **kw)
        first.rhs += 99.0
        first.matrix.data[:] = -1.0
        first.scatter_counts[:] = 0
        second = assemble_operator(mesh, **kw)
        with toggles_mod.configured(operator_split=False):
            mono = assemble_operator(mesh, **kw)
        assert np.array_equal(second.rhs, mono.rhs)
        assert np.allclose(second.matrix.data, mono.matrix.data,
                           rtol=1e-12, atol=1e-14)
        assert np.array_equal(second.scatter_counts, mono.scatter_counts)

    def test_stale_connectivity_still_detected(self, mesh):
        from repro.mesh import ElementType

        assemble_operator(mesh, kappa=1.0)
        tet = int(np.nonzero(mesh.elem_types == ElementType.TET)[0][0])
        mesh.elem_types[tet] = ElementType.PRISM
        mesh.elem_nodes[tet, 4:] = mesh.elem_nodes[tet, 0]
        with pytest.raises(ValueError, match="stale"):
            assemble_operator(mesh, kappa=1.0)


# -- SGS with cached geometry ----------------------------------------------

class TestSGSGeometry:
    def test_cached_geometry_is_bit_identical(self, mesh):
        rng = np.random.default_rng(5)
        vel = rng.normal(size=(mesh.nnodes, 3))

        def sweep():
            state = SGSState.zeros(mesh.nelem)
            for _ in range(3):
                update_sgs(mesh, state, vel, viscosity=1.9e-5, dt=1e-4)
            return state.values

        with toggles_mod.baseline():
            ref = sweep()
        fast = sweep()
        assert np.array_equal(ref, fast)

    def test_restricted_element_set(self, mesh):
        rng = np.random.default_rng(6)
        vel = rng.normal(size=(mesh.nnodes, 3))
        ids = np.arange(mesh.nelem // 3)

        def sweep():
            state = SGSState.zeros(mesh.nelem)
            update_sgs(mesh, state, vel, viscosity=1.9e-5, dt=1e-4,
                       element_ids=ids)
            return state.values

        with toggles_mod.baseline():
            ref = sweep()
        assert np.array_equal(ref, sweep())


# -- shared centroid KD-tree -----------------------------------------------

class TestSharedCentroidTree:
    def test_fields_share_one_tree(self, mesh):
        from repro.particles.interpolation import MeshVelocityField

        drop_cache(mesh)
        vel = np.zeros((mesh.nnodes, 3))
        f1 = MeshVelocityField(mesh, vel)
        f2 = MeshVelocityField(mesh, vel)
        assert f1._tree is f2._tree
        with toggles_mod.baseline():
            f3 = MeshVelocityField(mesh, vel)
        assert f3._tree is not f1._tree
        # shared and private trees answer identically
        pts = mesh.coords[:10] + 1e-4
        assert np.array_equal(f1.host_elements(pts), f3.host_elements(pts))


# -- driver exchange topology ----------------------------------------------

class TestExchangeTopology:
    def test_vectorized_topology_matches_nested_loop(self):
        from repro.app.costs import DEFAULT_COSTS
        from repro.app.driver import RunConfig, _RunContext
        from repro.app.workload import WorkloadSpec, get_workload

        wl = get_workload(WorkloadSpec(generations=3, points_per_ring=6,
                                       n_steps=2))
        config = RunConfig(cluster="thunder", num_nodes=1, nranks=8,
                           mode="coupled", fluid_ranks=6)
        ctx = _RunContext(wl, config, DEFAULT_COSTS)
        fluid_n, particle_n = 6, 2
        overlap = wl.overlap_bytes(fluid_n, particle_n,
                                   method=config.partition_method)
        sends = [[] for _ in range(fluid_n)]
        recvs = [[] for _ in range(particle_n)]
        for i in range(fluid_n):          # the former nested python loop
            for j in range(particle_n):
                if overlap[i, j] > 0:
                    sends[i].append((ctx.particle_world_ranks[j],
                                     float(overlap[i, j])))
                    recvs[j].append(ctx.fluid_world_ranks[i])
        assert ctx.sends == sends
        assert ctx.recvs == recvs
        assert any(sends)  # the workload must actually exercise the path


class TestElementAdjacency:
    def test_radii_match_brute_force(self, mesh):
        adj = geom_mod.element_adjacency(mesh)
        centroids = mesh.centroids()
        n = mesh.nelem
        d = np.linalg.norm(centroids[:, None, :] - centroids[None, :, :],
                           axis=2)
        np.fill_diagonal(d, np.inf)
        # r_self: half the distance to the nearest *other* centroid
        assert np.allclose(adj.r_self, 0.5 * d.min(axis=1), rtol=1e-12)
        # r_safe: half the distance to the nearest *non-candidate* centroid
        for e in range(0, n, max(1, n // 40)):
            cand = set(adj.candidates[e].tolist())
            out = [d[e, j] for j in range(n) if j not in cand]
            expect = 0.5 * min(out) if out else np.inf
            assert adj.r_safe[e] == pytest.approx(expect, rel=1e-12)

    def test_candidates_contain_self_and_are_valid(self, mesh):
        adj = geom_mod.element_adjacency(mesh)
        n = mesh.nelem
        assert adj.candidates.dtype == np.intp
        assert (adj.candidates[:, 0] == np.arange(n)).all()
        assert (adj.candidates >= 0).all() and (adj.candidates < n).all()
        assert (adj.r_self <= adj.r_safe + 1e-15).all()

    def test_cached_under_fingerprint(self, mesh):
        a1 = geom_mod.element_adjacency(mesh)
        a2 = geom_mod.element_adjacency(mesh)
        assert a1 is a2
        # coordinate mutation invalidates (fingerprinted like every block)
        mesh.coords[0, 0] += 1e-3
        a3 = geom_mod.element_adjacency(mesh)
        assert a3 is not a1
        mesh.coords[0, 0] -= 1e-3
