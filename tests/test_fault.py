"""Tests for the fault injection / detection / degradation subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RunConfig, WorkloadSpec, run_cfpd
from repro.fault import FaultInjector, FaultPlan, FaultSpec, resilience_report
from repro.machine import marenostrum4
from repro.sim import Engine, SimulationError, Store
from repro.smpi import DeadlockError, MPIError, RankDeadError, World
from repro.solver import SolverBreakdown, cg, jacobi_preconditioner
from repro.solver.krylov import _cg_core


SPEC = WorkloadSpec(generations=3, points_per_ring=6, n_steps=8)


def small_config(**kw):
    base = dict(cluster="thunder", num_nodes=1, nranks=4,
                threads_per_rank=2, dlb=False)
    base.update(kw)
    return RunConfig(**base)


def spd_system(n=60, seed=3):
    rng = np.random.default_rng(seed)
    B = rng.normal(size=(n, n))
    from scipy import sparse
    A = sparse.csr_matrix(B @ B.T + n * np.eye(n))
    b = rng.normal(size=n)
    return A, b


# ---------------------------------------------------------------------------
# engine-level failure detection primitives
# ---------------------------------------------------------------------------

class TestEngineDiagnostics:
    def test_empty_queue_is_diagnosed_not_indexerror(self):
        eng = Engine()

        def stuck(eng):
            yield eng.event()   # nobody will ever trigger this

        eng.process(stuck(eng), name="stuck")
        eng.run()               # run() drains without raising
        with pytest.raises(SimulationError, match="no events scheduled"):
            eng.step()

    def test_empty_queue_message_counts_alive_processes(self):
        eng = Engine()

        def stuck(eng):
            yield eng.event()

        for i in range(3):
            eng.process(stuck(eng), name=f"p{i}")
        eng.run()
        with pytest.raises(SimulationError, match="3 processes still alive"):
            eng.step()

    def test_interrupt_throws_into_process(self):
        eng = Engine()
        seen = []

        def prog(eng):
            try:
                yield eng.timeout(10.0)
            except RankDeadError as exc:
                seen.append(exc.rank)
                return "degraded"

        p = eng.process(prog(eng))
        def killer(eng):
            yield eng.timeout(1.0)
            p.interrupt(RankDeadError(2))

        eng.process(killer(eng))
        eng.run()
        assert seen == [2]
        assert p.value == "degraded"
        assert eng.now == pytest.approx(10.0)  # pending timeout still fires

    def test_interrupt_finished_process_rejected(self):
        eng = Engine()

        def empty(eng):
            return
            yield

        p = eng.process(empty(eng))
        eng.run()
        with pytest.raises(SimulationError, match="finished process"):
            p.interrupt(RuntimeError("late"))

    def test_store_fail_pending_by_meta(self):
        eng = Engine()
        store = Store(eng)
        outcomes = {}

        def getter(name, meta):
            try:
                item = yield store.get(meta=meta)
                outcomes[name] = item
            except RankDeadError:
                outcomes[name] = "failed"

        eng.process(getter("a", {"src": 1}))
        eng.process(getter("b", {"src": 2}))
        eng.run()
        n = store.fail_pending(
            lambda meta: isinstance(meta, dict) and meta.get("src") == 1,
            RankDeadError(1))
        assert n == 1
        store.put("payload")
        eng.run()
        assert outcomes == {"a": "failed", "b": "payload"}


# ---------------------------------------------------------------------------
# smpi: rank death + deadlock diagnostics
# ---------------------------------------------------------------------------

class TestRankDeath:
    def test_recv_from_dead_rank_raises(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(1e-6)
                with pytest.raises(RankDeadError):
                    yield from comm.recv(source=1)
                return "survived"
            yield from comm.compute(10.0)

        procs = world.launch(program)
        world.kill_rank(1, "test kill")
        results = world.run(procs)
        assert results[0] == "survived"
        assert world.dead_ranks == {1}

    def test_pending_recv_fails_when_peer_dies(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 2)

        def program(comm):
            if comm.rank == 0:
                try:
                    yield from comm.recv(source=1)
                except RankDeadError as exc:
                    return ("dead", exc.rank)
            else:
                yield from comm.compute(5.0)

        procs = world.launch(program)

        def killer(eng):
            yield eng.timeout(1.0)
            world.kill_rank(1)

        eng.process(killer(eng))
        results = world.run(procs)
        assert results[0] == ("dead", 1)

    def test_collectives_shrink_to_survivors(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 4)

        def program(comm):
            if comm.rank == 3:
                yield from comm.compute(50.0)   # dies before contributing
                return None
            yield from comm.compute(1e-6)
            total = yield from comm.allreduce(comm.rank)
            return total

        procs = world.launch(program)

        def killer(eng):
            yield eng.timeout(1e-7)
            world.kill_rank(3)

        eng.process(killer(eng))
        results = world.run(procs)
        assert results[0] == results[1] == results[2] == 0 + 1 + 2

    def test_deadlock_error_names_blocked_ranks_and_calls(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 2)

        def program(comm):
            if comm.rank == 0:
                yield from comm.recv(source=1)   # never sent: deadlock
            else:
                yield from comm.compute(1e-6)

        procs = world.launch(program)
        with pytest.raises(DeadlockError) as err:
            world.run(procs)
        msg = str(err.value)
        assert "deadlock" in msg
        assert "rank0" in msg and "'recv'" in msg
        assert isinstance(err.value, MPIError)


# ---------------------------------------------------------------------------
# fault plan + injector
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray", time=0.0)
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="straggler", time=0.0, rank=0)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(kind="msg_delay", time=0.0, rank=0)
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind="msg_drop", time=0.0, rank=0)
        with pytest.raises(ValueError, match="target rank"):
            FaultSpec(kind="rank_death", time=0.0)
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan(specs=("not a spec",))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), nranks=st.integers(1, 64),
           n_faults=st.integers(0, 8))
    def test_random_plan_is_deterministic(self, seed, nranks, n_faults):
        a = FaultPlan.random(seed, nranks, t_end=1.0, n_faults=n_faults)
        b = FaultPlan.random(seed, nranks, t_end=1.0, n_faults=n_faults)
        assert a.specs == b.specs
        assert len(a) == n_faults
        for s in a:
            assert 0.0 <= s.time < 1.0
            assert 0 <= s.rank < nranks

    def test_for_kind_sorted_by_time(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="straggler", time=2.0, rank=0, duration=1.0),
            FaultSpec(kind="rank_death", time=0.5, rank=1),
            FaultSpec(kind="straggler", time=1.0, rank=1, duration=1.0),
        ))
        times = [s.time for s in plan.for_kind("straggler")]
        assert times == [1.0, 2.0]

    def test_orchestration_kinds_need_a_grant_number(self):
        from repro.fault import ORCHESTRATION_KINDS

        for kind in ORCHESTRATION_KINDS:
            with pytest.raises(ValueError, match="count >= 1"):
                FaultSpec(kind=kind, time=0.0)
            spec = FaultSpec(kind=kind, time=0.0, count=3)
            assert spec.count == 3

    def test_orchestration_selector_sorted_by_grant(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="worker_wedge", time=0.0, count=5),
            FaultSpec(kind="rank_death", time=0.5, rank=1),
            FaultSpec(kind="worker_kill", time=0.0, count=2),
            FaultSpec(kind="heartbeat_loss", time=0.0, count=4),
        ))
        assert [(s.count, s.kind) for s in plan.orchestration()] == \
            [(2, "worker_kill"), (4, "heartbeat_loss"), (5, "worker_wedge")]

    def test_injector_ignores_orchestration_kinds(self):
        # worker-level faults act on the campaign executor, not on the
        # simulated DES run: the injector must not schedule any trigger
        eng = Engine()
        world = World(eng, marenostrum4(), 2)
        plan = FaultPlan(specs=(
            FaultSpec(kind="worker_kill", time=0.0, count=1),
            FaultSpec(kind="heartbeat_loss", time=0.0, count=2),
            FaultSpec(kind="worker_wedge", time=0.0, count=3),
        ))
        injector = FaultInjector(world, plan)
        injector.start()

        def program(comm):
            yield from comm.compute(1e-6)
            return "done"

        results = world.run(world.launch(program))
        assert results == ["done", "done"]
        assert injector.events == []  # nothing fired inside the DES run


class TestInjectedRuns:
    def test_straggler_slows_the_run(self):
        cfg = small_config()
        clean = run_cfpd(cfg, spec=SPEC)
        plan = FaultPlan(specs=(
            FaultSpec(kind="straggler", time=0.0, rank=0, factor=8.0,
                      duration=clean.total_time),))
        slow = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        assert slow.total_time > clean.total_time
        assert slow.faults.summary()["by_kind"] == {"straggler": 1}

    def test_rank_death_run_completes_with_dlb_degradation(self):
        cfg = small_config(dlb=True)
        clean = run_cfpd(cfg, spec=SPEC)
        plan = FaultPlan(specs=(
            FaultSpec(kind="rank_death", time=clean.total_time / 2, rank=3),))
        result = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        assert result.faults.summary()["dead_ranks"] == [3]
        assert result.dlb_stats.rank_death_events == 1
        # the run finished: the last step produced samples on survivors
        last = max(s.step for s in result.phase_log.samples)
        assert last == SPEC.n_steps - 1

    def test_msg_delay_slows_the_run(self):
        cfg = small_config()
        clean = run_cfpd(cfg, spec=SPEC)
        plan = FaultPlan(specs=(
            FaultSpec(kind="msg_delay", time=0.0, rank=0, delay=1e-4,
                      duration=clean.total_time),))
        slow = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        assert slow.total_time > clean.total_time
        assert slow.faults.messages_delayed > 0

    def test_msg_drop_turns_into_deadlock_diagnostic(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 2)
        plan = FaultPlan(specs=(
            FaultSpec(kind="msg_drop", time=0.0, rank=0, count=1),))
        injector = FaultInjector(world, plan)
        injector.start()

        def program(comm):
            if comm.rank == 0:
                yield from comm.compute(1e-6)
                yield from comm.send("lost", dest=1)
            else:
                yield from comm.recv(source=0)

        procs = world.launch(program)
        with pytest.raises(DeadlockError, match="'recv'"):
            world.run(procs)
        assert injector.messages_dropped == 1

    def test_solver_perturb_runs_real_recovery(self):
        cfg = small_config()
        plan = FaultPlan(specs=(
            FaultSpec(kind="solver_perturb", time=0.0, count=2),))
        result = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        assert len(result.faults.solver_results) == 1
        solve = result.faults.solver_results[0]
        assert solve.recovered and solve.converged

    def test_injected_run_is_replayable(self):
        cfg = small_config(dlb=True)
        plan = FaultPlan.random(seed=7, nranks=4, t_end=0.008, n_faults=3,
                                kinds=("straggler", "msg_delay"))
        a = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        b = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        assert a.total_time == b.total_time
        assert a.faults.events == b.faults.events

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_any_seeded_straggler_plan_replays_identically(self, seed):
        cfg = small_config()
        plan = FaultPlan.random(seed=seed, nranks=4, t_end=0.008,
                                n_faults=2, kinds=("straggler", "msg_delay"))
        a = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        b = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        assert a.total_time == b.total_time

    def test_fault_events_land_in_tracer(self):
        cfg = small_config(collect_mpi_trace=True)
        plan = FaultPlan(specs=(
            FaultSpec(kind="straggler", time=0.0, rank=1, duration=0.002),))
        result = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        faults = result.tracer.by_category("fault")
        assert len(faults) >= 1
        assert faults[0].name == "fault.straggler"


# ---------------------------------------------------------------------------
# solver breakdown guards
# ---------------------------------------------------------------------------

class TestSolverGuards:
    def test_nan_injection_recovers(self):
        A, b = spd_system()

        def contaminate(it, r):
            if it == 3:
                r = r.copy()
                r[0] = np.nan
            return r

        result = cg(A, b, tol=1e-10, maxiter=500,
                    M=jacobi_preconditioner(A), fault=contaminate)
        assert result.converged and result.recovered
        assert np.allclose(A @ result.x, b, atol=1e-6)

    def test_transient_fault_is_dropped_on_retry(self):
        # The retry models a transient fault (bit-flip): the hook is not
        # re-applied, so even an every-iteration fault ends recovered.
        A, b = spd_system()

        def always(it, r):
            r = r.copy()
            r[0] = np.inf
            return r

        result = cg(A, b, fault=always)
        assert result.recovered and result.converged

    def test_double_breakdown_is_structured_failure(self):
        # CG on a negative-definite operator breaks down immediately, and
        # the re-preconditioned retry breaks down the same way: the result
        # is a structured failure naming both causes, not an exception.
        from scipy import sparse
        A = (-1.0 * sparse.identity(20)).tocsr()
        result = cg(A, np.ones(20))
        assert not result.converged
        assert result.breakdown == "indefinite_operator+indefinite_operator"

    def test_no_retry_raises(self):
        A, b = spd_system()

        def nan_at_1(it, r):
            r = r.copy()
            r[0] = np.nan
            return r

        with pytest.raises(SolverBreakdown) as err:
            _cg_core(A, b, None, 1e-8, 100, None, nan_at_1, 100)
        assert err.value.reason == "nonfinite_residual"

    def test_stagnation_guard_trips_after_flat_window(self):
        from repro.solver.krylov import _StagnationGuard
        guard = _StagnationGuard(window=3)
        guard.check(1.0, 0)
        guard.check(0.5, 1)    # improving: counter resets
        guard.check(0.5, 2)
        guard.check(0.5, 3)
        with pytest.raises(SolverBreakdown) as err:
            guard.check(0.5, 4)
        assert err.value.reason == "stagnation"
        with pytest.raises(SolverBreakdown, match="nonfinite"):
            _StagnationGuard(window=3).check(np.nan, 0)

    def test_stagnation_detected_on_badly_scaled_system(self):
        # Unpreconditioned CG on a badly scaled SPD system makes no
        # progress; a small window must classify that instead of burning
        # maxiter (the Jacobi retry then solves it — recovery in action).
        from scipy import sparse
        n = 120
        rng = np.random.default_rng(1)
        scale = sparse.diags(10.0 ** rng.uniform(-3, 3, size=n))
        A0, b = spd_system(n, seed=1)
        A = (scale @ A0 @ scale).tocsr()
        plain = cg(A, b, tol=1e-8, maxiter=2000, stagnation_window=10,
                   retry_on_breakdown=False)
        assert not plain.converged
        assert plain.breakdown == "stagnation"
        recovered = cg(A, b, tol=1e-8, maxiter=2000, stagnation_window=10)
        assert recovered.recovered and recovered.converged

    def test_recovered_result_accounts_total_work(self):
        A, b = spd_system()

        def contaminate(it, r):
            if it == 4:
                r = r.copy()
                r[0] = np.nan
            return r

        clean = cg(A, b, M=jacobi_preconditioner(A))
        hit = cg(A, b, M=jacobi_preconditioner(A), fault=contaminate)
        assert hit.iterations > clean.iterations
        assert hit.matvecs > clean.matvecs


# ---------------------------------------------------------------------------
# config validation + report
# ---------------------------------------------------------------------------

class TestRunConfigValidation:
    def test_bad_values_fail_eagerly(self):
        with pytest.raises(ValueError, match="nranks"):
            small_config(nranks=0)
        with pytest.raises(ValueError, match="threads_per_rank"):
            small_config(threads_per_rank=0)
        with pytest.raises(ValueError, match="unknown mode"):
            small_config(mode="async")
        with pytest.raises(ValueError, match="fluid_ranks"):
            small_config(mode="coupled", fluid_ranks=4)
        with pytest.raises(ValueError, match="unknown mapping"):
            small_config(mapping="diagonal")
        with pytest.raises(ValueError, match="unknown scheduler"):
            small_config(scheduler="random")
        with pytest.raises(ValueError, match="partition_method"):
            small_config(partition_method="metis")
        with pytest.raises(ValueError, match="checkpoint_every"):
            small_config(checkpoint_every=-1)
        with pytest.raises(ValueError, match="unknown cluster"):
            small_config(cluster="summit")


class TestResilienceReport:
    def test_clean_run_reports_no_faults(self):
        result = run_cfpd(small_config(), spec=SPEC)
        text = resilience_report(result)
        assert "Resilience report" in text
        assert "none injected" in text

    def test_faulty_run_report_tells_the_story(self):
        cfg = small_config(dlb=True)
        plan = FaultPlan(specs=(
            FaultSpec(kind="straggler", time=0.0, rank=0, duration=0.002),
            FaultSpec(kind="rank_death", time=0.004, rank=3),
            FaultSpec(kind="solver_perturb", time=0.0, count=2),
        ))
        result = run_cfpd(cfg, spec=SPEC, fault_plan=plan)
        text = resilience_report(result)
        assert "straggler" in text
        assert "dead ranks    : [3]" in text
        assert "solver fault #1" in text
        assert "DLB degradation" in text
