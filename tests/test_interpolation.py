"""Tests for mesh-based velocity interpolation."""

import numpy as np
import pytest

from repro.mesh import MeshResolution, Segment, build_tube_mesh
from repro.particles import AirwayFlow, MeshVelocityField, NewmarkTracker
from repro.particles.tracker import ParticleState


@pytest.fixture(scope="module")
def tube():
    return build_tube_mesh(
        Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                radius=0.01),
        MeshResolution(points_per_ring=8))


class TestMeshVelocityField:
    def test_exact_at_nodes(self, tube):
        rng = np.random.default_rng(0)
        nodal = rng.normal(size=(tube.nnodes, 3))
        field = MeshVelocityField(tube, nodal)
        # sample exactly at a few nodes that are centroid-nearest to
        # themselves (interior nodes)
        sample = tube.coords[::17]
        out = field.velocity(sample)
        # inverse-distance weights make the value exact at a node when the
        # node belongs to the host element
        hosts = field.host_elements(sample)
        for i, (pt, host) in enumerate(zip(sample, hosts)):
            node_ids = tube.nodes_of(int(host))
            dists = np.linalg.norm(tube.coords[node_ids] - pt, axis=1)
            if dists.min() < 1e-12:
                node = node_ids[dists.argmin()]
                np.testing.assert_allclose(out[i], nodal[node], atol=1e-9)

    def test_constant_field_reproduced(self, tube):
        nodal = np.tile([1.0, -2.0, 0.5], (tube.nnodes, 1))
        field = MeshVelocityField(tube, nodal)
        rng = np.random.default_rng(1)
        pts = tube.centroids()[rng.integers(0, tube.nelem, 50)]
        out = field.velocity(pts)
        np.testing.assert_allclose(out, nodal[:50], atol=1e-12)

    def test_close_to_analytic_flow(self, tube):
        """Interpolating the sampled analytic field approximates the
        analytic field away from sharp gradients."""
        seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                      direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                      radius=0.01)
        flow = AirwayFlow([seg])
        nodal = flow.velocity(tube.coords)
        field = MeshVelocityField(tube, nodal)
        rng = np.random.default_rng(2)
        pts = tube.centroids()[rng.integers(0, tube.nelem, 200)]
        ui = field.velocity(pts)
        ua = flow.velocity(pts)
        scale = np.abs(ua).max()
        err = np.linalg.norm(ui - ua, axis=1)
        assert np.median(err) < 0.15 * scale

    def test_shape_validation(self, tube):
        with pytest.raises(ValueError):
            MeshVelocityField(tube, np.zeros((3, 3)))

    def test_empty_points(self, tube):
        field = MeshVelocityField(tube, np.zeros((tube.nnodes, 3)))
        assert field.velocity(np.zeros((0, 3))).shape == (0, 3)
        assert field.host_elements(np.zeros((0, 3))).shape == (0,)

    def test_usable_as_tracker_flow(self, tube):
        """Duck-typing: the tracker only needs .velocity(); particles can
        be transported in a mesh-interpolated field."""
        seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                      direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                      radius=0.01)
        flow = AirwayFlow([seg])
        field = MeshVelocityField(tube, flow.velocity(tube.coords))

        class HybridFlow:
            """Mesh-interpolated velocity + analytic geometry queries."""

            def velocity(self, pts):
                return field.velocity(pts)

            def locate(self, pts):
                return flow.locate(pts)

            def is_terminal(self, seg_idx):
                return flow.is_terminal(seg_idx)

        n = 50
        rng = np.random.default_rng(3)
        x = np.column_stack([rng.uniform(-3e-3, 3e-3, n),
                             rng.uniform(-3e-3, 3e-3, n),
                             rng.uniform(-0.03, -0.01, n)])
        state = ParticleState(x=x, v=np.zeros((n, 3)), a=np.zeros((n, 3)),
                              status=np.zeros(n, dtype=np.int8))
        tracker = NewmarkTracker(HybridFlow())
        z0 = state.x[:, 2].mean()
        for _ in range(30):
            tracker.step(state, dt=1e-4)
        assert np.isfinite(state.x).all()
        assert state.x[:, 2].mean() < z0  # advected downstream


class TestFusedInterpolation:
    def test_fused_matches_baseline_bitwise(self, tube):
        from repro.perf import toggles as toggles_mod

        rng = np.random.default_rng(3)
        nodal = rng.normal(size=(tube.nnodes, 3))
        pts = tube.coords[rng.integers(0, tube.nnodes, 200)] \
            + 1e-5 * rng.standard_normal((200, 3))
        with toggles_mod.configured(particle_fused_step=False):
            ref = MeshVelocityField(tube, nodal).velocity(pts)
        got = MeshVelocityField(tube, nodal).velocity(pts)
        assert ref.tobytes() == got.tobytes()

    def test_host_elements_dtype_intp(self, tube):
        field = MeshVelocityField(tube, np.zeros((tube.nnodes, 3)))
        assert field.host_elements(tube.coords[:5]).dtype == np.intp
        assert field.host_elements(np.zeros((0, 3))).dtype == np.intp
