"""Tests for the POP efficiency metrics and the energy model."""

import numpy as np
import pytest

from repro.app import RunConfig, WorkloadSpec, get_workload, run_cfpd
from repro.machine import POWER_MODELS, PowerModel, energy_estimate
from repro.trace import PhaseLog, pop_from_phase_log, pop_metrics


class TestPOPMetrics:
    def test_perfect_execution(self):
        m = pop_metrics([2.0, 2.0], runtime=2.0)
        assert m.load_balance == pytest.approx(1.0)
        assert m.communication_efficiency == pytest.approx(1.0)
        assert m.parallel_efficiency == pytest.approx(1.0)

    def test_factorization(self):
        m = pop_metrics([1.0, 3.0], runtime=4.0)
        assert m.load_balance == pytest.approx(2.0 / 3.0)
        assert m.communication_efficiency == pytest.approx(3.0 / 4.0)
        assert m.parallel_efficiency == pytest.approx(0.5)

    def test_comme_capped_at_one(self):
        m = pop_metrics([5.0], runtime=4.0)  # accounting noise
        assert m.communication_efficiency == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pop_metrics([], runtime=1.0)
        with pytest.raises(ValueError):
            pop_metrics([1.0], runtime=0.0)

    def test_zero_useful(self):
        m = pop_metrics([0.0, 0.0], runtime=1.0)
        assert m.parallel_efficiency == 0.0

    def test_from_phase_log(self):
        log = PhaseLog(2)
        log.add(0, "a", 0, 0.0, 1.0, busy=1.0)
        log.add(0, "a", 1, 0.0, 3.0, busy=3.0)
        m = pop_from_phase_log(log, runtime=4.0)
        assert m.load_balance == pytest.approx(2.0 / 3.0)
        assert m.communication_efficiency == pytest.approx(0.75)

    def test_format(self):
        text = pop_metrics([1.0, 1.0], 1.0).format()
        assert "LB=" in text and "PE=" in text

    def test_dlb_improves_parallel_efficiency(self):
        wl = get_workload(WorkloadSpec(generations=3, points_per_ring=6,
                                       n_steps=3))
        pes = {}
        for dlb in (False, True):
            res = run_cfpd(RunConfig(cluster="thunder", num_nodes=1,
                                     nranks=16, dlb=dlb), workload=wl)
            pes[dlb] = res.pop_metrics().parallel_efficiency
        assert pes[True] >= pes[False]


class TestEnergyModel:
    def test_power_model_validation(self):
        with pytest.raises(ValueError):
            PowerModel(core_active_w=1.0, core_idle_w=2.0, node_static_w=0)
        with pytest.raises(ValueError):
            PowerModel(core_active_w=-1.0, core_idle_w=0.0,
                       node_static_w=0.0)

    def test_presets_exist(self):
        assert "MareNostrum4" in POWER_MODELS
        assert "Thunder" in POWER_MODELS
        # Arm cores draw less than Intel cores
        assert (POWER_MODELS["Thunder"].core_active_w
                < POWER_MODELS["MareNostrum4"].core_active_w)

    def test_hand_computed_energy(self):
        # 2 cores for 10 s, one fully busy, one idle, 1 node
        p = POWER_MODELS["Thunder"]
        e = energy_estimate("Thunder", [10.0, 0.0], runtime=10.0,
                            cores_used=2, num_nodes=1)
        expected = (10.0 * p.core_active_w + 10.0 * p.core_idle_w
                    + 10.0 * p.node_static_w)
        assert e == pytest.approx(expected)

    def test_unknown_cluster(self):
        with pytest.raises(KeyError):
            energy_estimate("Summit", [1.0], 1.0, 1)

    def test_busier_run_costs_more_energy(self):
        base = energy_estimate("Thunder", [1.0, 1.0], 10.0, 2, 1)
        busy = energy_estimate("Thunder", [9.0, 9.0], 10.0, 2, 1)
        assert busy > base

    def test_run_result_energy(self):
        wl = get_workload(WorkloadSpec(generations=3, points_per_ring=6,
                                       n_steps=3))
        res = run_cfpd(RunConfig(cluster="thunder", num_nodes=1, nranks=8),
                       workload=wl)
        e = res.energy_joules()
        assert e > 0
        # bounded by everything-active upper bound
        p = POWER_MODELS["Thunder"]
        upper = res.total_time * (8 * p.core_active_w + p.node_static_w)
        assert e <= upper * 1.001

    def test_dlb_reduces_energy(self):
        """Shorter runtime at the same useful work => less energy."""
        wl = get_workload(WorkloadSpec(generations=3, points_per_ring=6,
                                       n_steps=3))
        energies = {}
        for dlb in (False, True):
            res = run_cfpd(RunConfig(cluster="thunder", num_nodes=1,
                                     nranks=16, dlb=dlb), workload=wl)
            energies[dlb] = res.energy_joules()
        assert energies[True] <= energies[False] * 1.001
