"""Unit tests for the performance layer (repro.perf): toggles,
instrumentation, benchmark runner, and the per-module fast-path
equivalences (comm, assembly, tracker)."""

import numpy as np
import pytest

from repro.fem import assemble_operator
from repro.machine import marenostrum4, thunder
from repro.mesh import AirwayConfig, MeshResolution, build_airway_mesh
from repro.particles import (
    STATUS_ACTIVE,
    ElementLocator,
    FluidProperties,
    NewmarkTracker,
    ParticleProperties,
    ParticleState,
    inject_at_inlet,
)
from repro.perf import (
    Counters,
    PhaseTimer,
    ThroughputMeter,
    Toggles,
    engine_counters,
)
from repro.perf import toggles as toggles_mod
from repro.sim import Engine
from repro.smpi import World


def small_airway():
    return build_airway_mesh(AirwayConfig(generations=3, seed=2018),
                             MeshResolution(points_per_ring=6, rings=2))


# -- toggles ---------------------------------------------------------------

class TestToggles:
    def test_defaults_all_on(self):
        t = Toggles()
        assert all(getattr(t, f) for f in
                   ("engine_fast_path", "runtime_fast_path",
                    "comm_fast_path", "assembly_pattern_cache",
                    "locator_active_only", "geometry_cache",
                    "operator_split", "scheduler_heap",
                    "driver_graph_cache"))

    def test_baseline_turns_everything_off_and_restores(self):
        before = toggles_mod.TOGGLES
        with toggles_mod.baseline() as off:
            assert not off.engine_fast_path
            assert not off.assembly_pattern_cache
            assert toggles_mod.TOGGLES is off
        assert toggles_mod.TOGGLES is before

    def test_configured_overrides_and_restores(self):
        with toggles_mod.configured(engine_fast_path=False) as t:
            assert not t.engine_fast_path
            assert t.comm_fast_path
        assert toggles_mod.TOGGLES.engine_fast_path

    def test_configured_rejects_unknown_toggle(self):
        with pytest.raises(TypeError, match="unknown toggles"):
            with toggles_mod.configured(warp_drive=True):
                pass

    def test_restored_after_exception(self):
        before = toggles_mod.TOGGLES
        with pytest.raises(RuntimeError):
            with toggles_mod.baseline():
                raise RuntimeError("boom")
        assert toggles_mod.TOGGLES is before


# -- instrumentation -------------------------------------------------------

class TestInstrument:
    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("assembly"):
                pass
        assert timer.entries("assembly") == 3
        assert timer.seconds("assembly") >= 0.0
        assert timer.seconds("never") == 0.0
        rep = timer.report()
        assert rep["assembly"]["entries"] == 3

    def test_phase_timer_rejects_reentrant_same_name(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            with pytest.raises(ValueError, match="already open"):
                with timer.phase("x"):
                    pass

    def test_phase_timer_nests_different_names(self):
        timer = PhaseTimer()
        with timer.phase("outer"):
            with timer.phase("inner"):
                pass
        assert timer.entries("outer") == timer.entries("inner") == 1

    def test_counters(self):
        c = Counters()
        c.add("events")
        c.add("events", 9)
        assert c.get("events") == 10
        assert c.get("missing") == 0
        assert c.report() == {"events": 10}

    def test_throughput_meter(self):
        m = ThroughputMeter()
        m.record("elements", 500, 0.5)
        m.record("elements", 500, 0.5)
        assert m.rate("elements") == pytest.approx(1000.0)
        assert m.rate("empty") == 0.0
        rep = m.report()
        assert rep["elements"]["units"] == 1000
        with pytest.raises(ValueError):
            m.record("bad", 1, -1.0)

    def test_engine_counters(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)

        eng.process(proc())
        eng.run()
        snap = engine_counters(eng)
        assert snap["events_processed"] > 0
        assert snap["sim_now"] == pytest.approx(1.0)
        assert snap["alive_processes"] == 0


# -- benchmark runner ------------------------------------------------------

class TestBench:
    def test_table_modes(self):
        from repro.perf.bench import _benchmark_table

        full = {r["name"] for r in _benchmark_table(quick=False)}
        quick = {r["name"] for r in _benchmark_table(quick=True)}
        assert quick < full
        assert "run_cfpd_sync" in quick
        assert "run_cfpd_sync_dlb" in full - quick

    def test_compare_reports_flags_regressions(self):
        from repro.perf.bench import compare_reports

        ref = {"benchmarks": [
            {"name": "a", "after_seconds": 1.0},
            {"name": "b", "after_seconds": 1.0}]}
        cur = {"benchmarks": [
            {"name": "a", "after_seconds": 1.5},     # within 2x
            {"name": "b", "after_seconds": 2.5},     # regression
            {"name": "new", "after_seconds": 9.0}]}  # not in ref: skipped
        failures = compare_reports(cur, ref)
        assert len(failures) == 1
        assert failures[0].startswith("b:")

    def test_trajectory_uniform_host_drift_passes(self):
        from repro.perf.bench import trajectory_check

        ref = {"benchmarks": [
            {"name": n, "after_seconds": 1.0, "kind": "kernel"}
            for n in "abc"]}
        cur = {"benchmarks": [  # host 30% slower, code unchanged
            {"name": n, "after_seconds": 1.3, "kind": "kernel"}
            for n in "abc"]}
        trajectory, failures, drift = trajectory_check(cur, ref)
        assert not failures
        assert drift == pytest.approx(1 / 1.3, rel=1e-6)
        for entry in trajectory.values():
            assert entry["speedup_vs_reference"] < 1.0
            assert entry["speedup_vs_reference_drift_adjusted"] == \
                pytest.approx(1.0, abs=1e-3)

    def test_trajectory_real_regression_not_masked_by_drift(self):
        from repro.perf.bench import trajectory_check

        ref = {"benchmarks": [
            {"name": n, "after_seconds": 1.0, "kind": "kernel"}
            for n in "abcd"]}
        cur = {"benchmarks": [
            {"name": "a", "after_seconds": 1.3, "kind": "kernel"},
            {"name": "b", "after_seconds": 1.3, "kind": "kernel"},
            {"name": "c", "after_seconds": 1.3, "kind": "kernel"},
            {"name": "d", "after_seconds": 3.0, "kind": "kernel"}]}
        _, failures, drift = trajectory_check(cur, ref)
        assert drift == pytest.approx(1 / 1.3, rel=1e-6)  # median holds
        assert len(failures) == 1 and failures[0].startswith("d:")

    def test_trajectory_ignores_non_kernel_rows(self):
        from repro.perf.bench import trajectory_check

        ref = {"benchmarks": [
            {"name": "k", "after_seconds": 1.0, "kind": "kernel"},
            {"name": "e2e", "after_seconds": 1.0, "kind": "end_to_end"}]}
        cur = {"benchmarks": [
            {"name": "k", "after_seconds": 1.0, "kind": "kernel"},
            {"name": "e2e", "after_seconds": 5.0, "kind": "end_to_end"},
            {"name": "new", "after_seconds": 9.0, "kind": "kernel"}]}
        trajectory, failures, drift = trajectory_check(cur, ref)
        assert not failures            # e2e rows are recorded, not gated
        assert drift == 1.0            # ...and excluded from the estimate
        assert "e2e" in trajectory and "new" not in trajectory

    def test_run_benchmarks_micro_smoke(self, monkeypatch):
        """One table row end-to-end through the runner (fast smoke)."""
        import repro.perf.bench as bench

        monkeypatch.setattr(
            bench, "_benchmark_table",
            lambda quick: [{"name": "engine_events", "kind": "micro",
                            "fn": bench._engine_events_workload,
                            "units": "events"}])
        report = bench.run_benchmarks(quick=True, verbose=False)
        assert report["schema"] == "repro-bench-v1"
        [b] = report["benchmarks"]
        assert b["name"] == "engine_events"
        assert b["before_seconds"] > 0 and b["after_seconds"] > 0
        assert b["throughput"]["units"] == "events"
        assert b["throughput"]["after_per_second"] > 0


# -- smpi fast-path equivalence --------------------------------------------

def _collective_round(world):
    """allreduce + reduce + alltoall on every alive rank of ``world``."""

    def program(comm):
        red = yield from comm.allreduce(float(comm.rank + 1))
        mx = yield from comm.reduce(comm.rank, root=0,
                                    op=lambda a, b: max(a, b))
        a2a = yield from comm.alltoall(
            [comm.rank * 100 + d for d in range(comm.size)])
        yield from comm.barrier()
        return (red, mx, a2a)

    return world.run(world.launch(program))


class TestCommFastPath:
    def test_collective_results_and_timing_unchanged(self):
        results = {}
        for label, ctx in (("before", toggles_mod.baseline),
                           ("after", toggles_mod.configured)):
            with ctx():
                eng = Engine()
                world = World(eng, marenostrum4(), 8, mapping="block")
                results[label] = (_collective_round(world), eng.now)
        assert results["before"] == results["after"]

    def test_collectives_with_dead_rank_unchanged(self):
        def run():
            eng = Engine()
            world = World(eng, thunder(1), 4, mapping="block")

            def program(comm):
                if comm.rank == 3:
                    yield from comm.compute(10.0)  # killed before this ends
                    return None
                total = yield from comm.allreduce(float(comm.rank + 1))
                return total

            procs = world.launch(program)
            world.kill_rank(3, "fault injection")
            results = world.run(procs)
            # exceptions compare by identity: normalize the dead rank's
            return ([repr(r) if isinstance(r, Exception) else r
                     for r in results], eng.now)

        with toggles_mod.baseline():
            before = run()
        after = run()
        assert before == after
        # survivors' reduction: ranks 0..2 contribute 1+2+3
        assert after[0][0] == pytest.approx(6.0)

    def test_isend_fast_path_delivers(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 2)

        def program(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(4), dest=1, nbytes=32)
                yield from comm.wait(req)
                return None
            data = yield from comm.recv(source=0)
            return list(data)

        results = world.run(world.launch(program))
        assert results[1] == [0, 1, 2, 3]
        assert eng.now > 0.0


# -- assembly fast-path equivalence ----------------------------------------

class TestAssemblyPatternCache:
    def test_fast_matches_baseline(self):
        airway = small_airway()
        mesh = airway.mesh
        rng = np.random.default_rng(3)
        vel = rng.normal(size=(mesh.nnodes, 3))
        ids = np.arange(mesh.nelem)

        with toggles_mod.baseline():
            ref = assemble_operator(mesh, kappa=0.7, mass_coeff=2.0,
                                    velocity=vel, element_ids=ids,
                                    source=1.5)
        # two fast assemblies: first builds the pattern, second reuses it
        fast1 = assemble_operator(mesh, kappa=0.7, mass_coeff=2.0,
                                  velocity=vel, element_ids=ids, source=1.5)
        fast2 = assemble_operator(mesh, kappa=0.7, mass_coeff=2.0,
                                  velocity=vel, element_ids=ids, source=1.5)
        ref_m = ref.matrix.tocsr()
        ref_m.sum_duplicates()
        ref_m.sort_indices()
        for res in (fast1, fast2):
            m = res.matrix
            # sparsity structure is exactly scipy's canonical CSR
            assert np.array_equal(m.indices, ref_m.indices)
            assert np.array_equal(m.indptr, ref_m.indptr)
            # values agree to summation-order tolerance
            assert np.allclose(m.data, ref_m.data, rtol=0, atol=1e-12)
            # work meters and rhs are exact
            assert np.array_equal(res.scatter_counts, ref.scatter_counts)
            assert np.array_equal(res.element_nodes, ref.element_nodes)
            assert np.array_equal(res.rhs, ref.rhs)
        # repeated fast assemblies are bit-identical to each other
        assert np.array_equal(fast1.matrix.data, fast2.matrix.data)

    def test_restricted_element_sets_get_separate_patterns(self):
        airway = small_airway()
        mesh = airway.mesh
        half = np.arange(mesh.nelem // 2)
        full = assemble_operator(mesh, kappa=1.0)
        part = assemble_operator(mesh, kappa=1.0, element_ids=half)
        with toggles_mod.baseline():
            part_ref = assemble_operator(mesh, kappa=1.0, element_ids=half)
        assert full.matrix.nnz > part.matrix.nnz
        assert np.array_equal(part.matrix.indices, part_ref.matrix.indices)
        assert np.allclose(part.matrix.data, part_ref.matrix.data,
                           rtol=0, atol=1e-12)

    def test_stale_pattern_detected(self):
        from repro.mesh import ElementType

        airway = small_airway()
        mesh = airway.mesh
        assemble_operator(mesh, kappa=1.0)  # populates the cache
        # mutate the connectivity behind the cache's back: a tet becomes a
        # prism, changing the scattered-value count for the same element set
        tet = int(np.nonzero(mesh.elem_types == ElementType.TET)[0][0])
        mesh.elem_types[tet] = ElementType.PRISM
        mesh.elem_nodes[tet, 4:] = mesh.elem_nodes[tet, 0]
        with pytest.raises(ValueError, match="stale"):
            assemble_operator(mesh, kappa=1.0)


# -- tracker fast-path equivalence ----------------------------------------

class TestLocatorActiveOnly:
    def _track(self, n_steps=25):
        airway = small_airway()
        state = inject_at_inlet(airway, 400, seed=11)
        from repro.particles import AirwayFlow

        flow = AirwayFlow(airway.segments)
        tracker = NewmarkTracker(flow, particles=ParticleProperties(),
                                 fluid=FluidProperties())
        return airway, state, tracker

    def test_elements_of_state_matches_full_query(self):
        airway, state, tracker = self._track()
        nranks = 8
        from repro.partition import decompose_mesh

        labels = decompose_mesh(airway, nranks).labels
        locator = ElementLocator(airway, labels)
        for _ in range(25):
            tracker.step(state, 1e-3)
            got = locator.elements_of_state(state)
            ref = locator.elements_of(state.x)
            assert np.array_equal(got, ref)
            assert np.array_equal(
                locator.rank_histogram_state(state, nranks),
                locator.rank_histogram(state.x[state.active], nranks))
        # the run must actually exercise the frozen-particle cache
        assert (state.status != STATUS_ACTIVE).any()

    def test_deposition_and_positions_unchanged_by_fast_locator(self):
        def run():
            airway, state, tracker = self._track()
            locator = ElementLocator(airway)
            hists = []
            for _ in range(25):
                tracker.step(state, 1e-3)
                hists.append(locator.elements_of_state(state).copy())
            return state, hists

        with toggles_mod.baseline():
            s_ref, h_ref = run()
        s_fast, h_fast = run()
        assert np.array_equal(s_ref.status, s_fast.status)
        assert np.array_equal(s_ref.x, s_fast.x)
        assert np.array_equal(s_ref.v, s_fast.v)
        assert s_ref.counts() == s_fast.counts()
        for a, b in zip(h_ref, h_fast):
            assert np.array_equal(a, b)

    def test_cache_grows_with_repeated_injection(self):
        airway, state, tracker = self._track()
        locator = ElementLocator(airway)
        locator.elements_of_state(state)
        state.extend(inject_at_inlet(airway, 100, seed=12))
        got = locator.elements_of_state(state)
        assert len(got) == state.n
        assert np.array_equal(got, locator.elements_of(state.x))


class TestParticleFastPath:
    """PR 4: warm-start location, active-set compaction, fused kernels."""

    def _track(self, n=400, seed=11):
        airway = small_airway()
        state = inject_at_inlet(airway, n, seed=seed)
        from repro.particles import AirwayFlow

        flow = AirwayFlow(airway.segments)
        tracker = NewmarkTracker(flow, particles=ParticleProperties(),
                                 fluid=FluidProperties())
        return airway, state, tracker

    def test_warm_locate_matches_brute_force_on_random_points(self):
        from scipy.spatial import cKDTree

        from repro.fem.geometry import element_adjacency
        from repro.particles.locator_fast import warm_locate

        airway = small_airway()
        mesh = airway.mesh
        centroids = mesh.centroids()
        tree = cKDTree(centroids)
        adj = element_adjacency(mesh)
        rng = np.random.default_rng(5)
        lo, hi = mesh.coords.min(axis=0), mesh.coords.max(axis=0)
        points = rng.uniform(lo, hi, size=(500, 3))
        # stale and random host guesses alike must stay exact
        hosts = rng.integers(0, mesh.nelem, size=500)
        eids, stats = warm_locate(tree, centroids, adj, points, hosts)
        brute = np.argmin(
            np.linalg.norm(points[:, None, :] - centroids[None, :, :],
                           axis=2), axis=1)
        assert eids.dtype == np.intp
        assert np.array_equal(eids, tree.query(points)[1])
        assert np.array_equal(eids, brute)
        assert stats.self_ball + stats.ring_ball + stats.fallback == stats.n

    def test_warm_locate_accepts_near_hosts(self):
        from scipy.spatial import cKDTree

        from repro.fem.geometry import element_adjacency
        from repro.particles.locator_fast import warm_locate

        airway = small_airway()
        mesh = airway.mesh
        centroids = mesh.centroids()
        tree = cKDTree(centroids)
        adj = element_adjacency(mesh)
        # points very near their host centroid: the self ball must fire
        hosts = np.arange(0, mesh.nelem, 7)
        points = centroids[hosts] + 1e-9
        eids, stats = warm_locate(tree, centroids, adj, points, hosts)
        assert np.array_equal(eids, tree.query(points)[1])
        assert stats.self_ball > 0

    @pytest.mark.parametrize("toggle", ["particle_warm_start",
                                        "particle_compaction",
                                        "particle_fused_step"])
    def test_single_toggle_off_tracker_bit_identical(self, toggle):
        def run():
            airway, state, tracker = self._track()
            locator = ElementLocator(airway)
            elems = []
            for i in range(20):
                tracker.step(state, 1e-3 if i < 10 else 1e-4)
                if i == 10:
                    state.extend(inject_at_inlet(airway, 80, seed=13))
                elems.append(locator.elements_of_state(state).copy())
            return state, elems

        s_ref, e_ref = run()
        with toggles_mod.configured(**{toggle: False}):
            s_off, e_off = run()
        assert s_ref.x.tobytes() == s_off.x.tobytes()
        assert s_ref.v.tobytes() == s_off.v.tobytes()
        assert s_ref.a.tobytes() == s_off.a.tobytes()
        assert np.array_equal(s_ref.status, s_off.status)
        for a, b in zip(e_ref, e_off):
            assert np.array_equal(a, b)

    def test_all_new_toggles_off_matches_defaults(self):
        def run():
            airway, state, tracker = self._track()
            for i in range(15):
                tracker.step(state, 1e-3)
            return state

        s_ref = run()
        with toggles_mod.configured(particle_warm_start=False,
                                    particle_compaction=False,
                                    particle_fused_step=False):
            s_off = run()
        assert s_ref.x.tobytes() == s_off.x.tobytes()
        assert s_ref.v.tobytes() == s_off.v.tobytes()
        assert np.array_equal(s_ref.status, s_off.status)

    def test_repeated_injection_keeps_locator_exact(self):
        """Cache growth across several injections with a frozen/active
        mix: the warm-start host cache must stay consistent."""
        airway, state, tracker = self._track()
        locator = ElementLocator(airway)
        for i in range(30):
            tracker.step(state, 1e-3)
            if i % 10 == 9:
                state.extend(inject_at_inlet(airway, 60, seed=100 + i))
            got = locator.elements_of_state(state)
            assert np.array_equal(got, locator.elements_of(state.x))
        assert (state.status != STATUS_ACTIVE).any()
        assert state.n > 400

    def test_locator_dtypes_are_intp(self):
        airway, state, _ = self._track(n=10)
        locator = ElementLocator(airway)
        assert locator.elements_of(state.x).dtype == np.intp
        assert locator.elements_of(np.zeros((0, 3))).dtype == np.intp
        assert locator.elements_of_state(state).dtype == np.intp

    def test_flowfield_fused_locate_identical(self):
        from repro.particles import AirwayFlow

        airway = small_airway()
        flow = AirwayFlow(airway.segments)
        state = inject_at_inlet(airway, 300, seed=4)
        rng = np.random.default_rng(9)
        pts = state.x + 1e-4 * rng.standard_normal(state.x.shape)
        with toggles_mod.configured(particle_fused_step=False):
            s_ref, a_ref, r_ref = flow.locate(pts)
        s_f, a_f, r_f = flow.locate(pts)  # defaults: fused on
        assert np.array_equal(s_ref, s_f)
        assert a_ref.tobytes() == a_f.tobytes()
        assert r_ref.tobytes() == r_f.tobytes()

    def test_compaction_survives_external_status_edit(self):
        """An external status write between steps invalidates the
        compacted permutation (detected via the status snapshot)."""
        airway, state, tracker = self._track()
        for _ in range(5):
            tracker.step(state, 1e-3)
        # freeze an active particle behind the tracker's back
        idx = int(np.argmax(state.status == STATUS_ACTIVE))
        state.status[idx] = 2  # STATUS_ESCAPED
        x_before = state.x[idx].copy()
        tracker.step(state, 1e-3)
        # the edited particle must not have moved
        assert state.status[idx] == 2
        assert np.array_equal(state.x[idx], x_before)

    def test_bench_rows_present_and_gated(self):
        from repro.perf.bench import _benchmark_table

        rows = {r["name"]: r for r in _benchmark_table(quick=True)}
        assert rows["particle_location"]["min_speedup"] == 1.2
        assert rows["tracker_step"]["min_speedup"] == 2.0
        assert "interpolation" in rows
