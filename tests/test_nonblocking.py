"""Tests for non-blocking collectives (iallreduce) and their DLB interplay."""

import numpy as np
import pytest

from repro.core import DLB, Team, build_parallel_for_graph
from repro.machine import CoreModel, marenostrum4
from repro.sim import Engine
from repro.smpi import MPIError, World

CORE = CoreModel(name="unit", freq_ghz=1.0, base_ipc=1.0, out_of_order=True,
                 atomic_stall_cycles=0.0, mem_stall_cycles=0.0)
SEC = 1e9


class TestIAllreduce:
    def test_result_matches_blocking(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 4)

        def program(comm):
            req = comm.iallreduce(comm.rank + 1)
            return (yield from comm.wait(req))

        assert world.run(world.launch(program)) == [10] * 4

    def test_overlaps_with_computation(self):
        """The collective's latency hides behind local compute."""
        eng = Engine()
        world = World(eng, marenostrum4(), 4)

        def program(comm):
            req = comm.iallreduce(float(comm.rank))
            yield from comm.compute(1.0)
            total = yield from comm.wait(req)
            return (total, comm.engine.now)

        results = world.run(world.launch(program))
        # collective cost << 1 s of compute: finish exactly at t=1
        assert all(t == pytest.approx(1.0) for _, t in results)

    def test_custom_op(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 3)

        def program(comm):
            req = comm.iallreduce(comm.rank * 2, op=max)
            return (yield from comm.wait(req))

        assert world.run(world.launch(program)) == [4, 4, 4]

    def test_mismatch_with_blocking_collective_detected(self):
        eng = Engine()
        world = World(eng, marenostrum4(), 2)

        def program(comm):
            if comm.rank == 0:
                req = comm.iallreduce(1)
                yield from comm.wait(req)
            else:
                yield from comm.allreduce(1)

        with pytest.raises(MPIError, match="mismatch"):
            world.run(world.launch(program))

    def test_late_waiter_gets_value(self):
        """A rank that waits long after completion still sees the result."""
        eng = Engine()
        world = World(eng, marenostrum4(), 2)

        def program(comm):
            req = comm.iallreduce(comm.rank + 1)
            yield from comm.compute(5.0)
            return (yield from comm.wait(req))

        assert world.run(world.launch(program)) == [3, 3]


class TestDLBInterplay:
    """Blocking allreduce lets DLB lend during the wait; iallreduce +
    overlap removes both the wait and the lending opportunity."""

    def _run(self, use_nonblocking):
        eng = Engine()
        cluster = marenostrum4(num_nodes=1)
        world = World(eng, cluster, 2)
        dlb = DLB(world, enabled=True)
        teams = {r: Team(eng, CORE, 2, rank=r) for r in range(2)}
        for r, tm in teams.items():
            dlb.attach_team(r, tm)
        tasks = {0: 2, 1: 8}

        def program(comm):
            n = tasks[comm.rank]
            graph = build_parallel_for_graph(np.full(n, SEC), 2,
                                             min_chunks=n)
            yield from teams[comm.rank].run(graph)
            if use_nonblocking:
                req = comm.iallreduce(1.0)
                result = yield from comm.wait(req)
            else:
                result = yield from comm.allreduce(1.0)
            return result

        world.run(world.launch(program))
        return eng.now, dlb.stats

    def test_blocking_wait_enables_lending(self):
        t_blocking, stats = self._run(use_nonblocking=False)
        assert stats.cores_borrowed_total > 0
        assert t_blocking == pytest.approx(3.0, abs=0.01)

    def test_wait_on_request_also_lends(self):
        """comm.wait() is itself a blocking call, so DLB still engages —
        the behaviour matches the blocking collective here."""
        t_nb, stats = self._run(use_nonblocking=True)
        assert stats.cores_borrowed_total > 0
        assert t_nb == pytest.approx(3.0, abs=0.01)
