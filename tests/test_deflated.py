"""Unit tests for the deflated CG solver."""

import numpy as np
import pytest
from scipy import sparse

from repro.fem import assemble_operator
from repro.partition import rcb_partition
from repro.solver import DeflationSetup, cg, coarse_space_from_groups, \
    deflated_cg, jacobi_preconditioner
from tests.test_fem import unit_cube_tets


@pytest.fixture(scope="module")
def poisson_system():
    cube = unit_cube_tets(6)
    K = assemble_operator(cube, kappa=1.0).matrix
    M = assemble_operator(cube, kappa=0.0, mass_coeff=1.0).matrix
    A = (K + 1e-4 * M).tocsr()
    rng = np.random.default_rng(0)
    b = rng.normal(size=cube.nnodes)
    groups = rcb_partition(cube.coords, 16)
    return A, b, groups


class TestCoarseSpace:
    def test_indicator_structure(self):
        W = coarse_space_from_groups(np.array([0, 1, 1, 2, 0]))
        assert W.shape == (5, 3)
        dense = W.toarray()
        np.testing.assert_array_equal(dense.sum(axis=1), 1.0)
        assert dense[0, 0] == 1 and dense[3, 2] == 1

    def test_explicit_ngroups(self):
        W = coarse_space_from_groups(np.array([0, 0]), ngroups=4)
        assert W.shape == (2, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            coarse_space_from_groups(np.array([], dtype=int))
        with pytest.raises(ValueError):
            coarse_space_from_groups(np.array([-1, 0]))


class TestDeflatedCG:
    def test_solves_to_tolerance(self, poisson_system):
        A, b, groups = poisson_system
        res = deflated_cg(A, b, groups, tol=1e-9, maxiter=2000)
        assert res.converged
        assert np.linalg.norm(A @ res.x - b) / np.linalg.norm(b) < 1e-8

    def test_fewer_iterations_than_plain_cg(self, poisson_system):
        """The whole point of deflation: low-frequency components removed."""
        A, b, groups = poisson_system
        plain = cg(A, b, tol=1e-8, maxiter=2000)
        defl = deflated_cg(A, b, groups, tol=1e-8, maxiter=2000)
        assert defl.converged and plain.converged
        assert defl.iterations < 0.8 * plain.iterations

    def test_with_jacobi_preconditioner(self, poisson_system):
        A, b, groups = poisson_system
        res = deflated_cg(A, b, groups, tol=1e-9, maxiter=2000,
                          M=jacobi_preconditioner(A))
        assert res.converged
        assert np.linalg.norm(A @ res.x - b) / np.linalg.norm(b) < 1e-8

    def test_matches_plain_cg_solution(self, poisson_system):
        A, b, groups = poisson_system
        x_plain = cg(A, b, tol=1e-11, maxiter=4000).x
        x_defl = deflated_cg(A, b, groups, tol=1e-11, maxiter=4000).x
        np.testing.assert_allclose(x_defl, x_plain, atol=1e-6)

    def test_single_group_equals_rank_one_deflation(self, poisson_system):
        A, b, _ = poisson_system
        res = deflated_cg(A, b, np.zeros(len(b), dtype=int), tol=1e-8,
                          maxiter=2000)
        assert res.converged

    def test_zero_rhs(self, poisson_system):
        A, _, groups = poisson_system
        res = deflated_cg(A, np.zeros(A.shape[0]), groups)
        assert res.converged and np.allclose(res.x, 0.0)

    def test_more_groups_fewer_iterations(self, poisson_system):
        """Richer coarse space => faster convergence (monotone trend)."""
        A, b, _ = poisson_system
        cube = unit_cube_tets(6)
        its = []
        for k in (2, 8, 32):
            groups = rcb_partition(cube.coords, k)
            its.append(deflated_cg(A, b, groups, tol=1e-8,
                                   maxiter=2000).iterations)
        assert its[2] < its[0]

    def test_needs_groups_or_setup(self, poisson_system):
        A, b, _ = poisson_system
        with pytest.raises(TypeError, match="groups or setup"):
            deflated_cg(A, b)


class TestDeflationSetup:
    def test_cached_setup_solution_bit_identical(self, poisson_system):
        """The whole contract of setup reuse: the iteration is unchanged,
        so a shared setup reproduces the per-call-setup solve exactly."""
        A, b, groups = poisson_system
        setup = DeflationSetup(A, groups)
        per_call = deflated_cg(A, b, groups, tol=1e-9, maxiter=2000)
        for _ in range(3):
            shared = deflated_cg(A, b, tol=1e-9, maxiter=2000, setup=setup)
            assert shared.x.tobytes() == per_call.x.tobytes()
            assert shared.iterations == per_call.iterations
            assert shared.residuals == per_call.residuals

    def test_coarse_blocks_stay_sparse(self, poisson_system):
        """Regression for the dense coarse block: W and AW must be sparse
        and no dense (n, k) intermediate may materialize during a solve
        (the original formulation went through ``W.toarray()``)."""
        A, b, groups = poisson_system
        setup = DeflationSetup(A, groups)
        assert sparse.issparse(setup.W)
        assert sparse.issparse(setup.AW)
        assert setup.AW.shape == setup.W.shape

        def boom(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("dense (n, k) coarse block materialized")

        setup.W.toarray = boom
        setup.AW.toarray = boom
        res = deflated_cg(A, b, tol=1e-8, maxiter=2000, setup=setup)
        assert res.converged

    def test_singular_coarse_operator_lstsq_fallback(self, poisson_system):
        """An empty coarse group gives W a zero column, so E is exactly
        singular: the setup must fall back to least squares instead of
        raising, and the solve must still converge."""
        A, b, groups = poisson_system
        setup = DeflationSetup(A, groups, ngroups=int(groups.max()) + 2)
        assert setup.singular
        res = deflated_cg(A, b, tol=1e-8, maxiter=2000, setup=setup)
        assert res.converged
        assert np.linalg.norm(A @ res.x - b) / np.linalg.norm(b) < 1e-7

    def test_nonsingular_setup_uses_cholesky(self, poisson_system):
        A, _, groups = poisson_system
        setup = DeflationSetup(A, groups)
        assert not setup.singular

    def test_zero_rhs_with_setup(self, poisson_system):
        A, _, groups = poisson_system
        setup = DeflationSetup(A, groups)
        res = deflated_cg(A, np.zeros(A.shape[0]), setup=setup)
        assert res.converged and res.iterations == 0
        assert np.allclose(res.x, 0.0)
