"""Unit tests for the task-graph dependence model."""

import pytest
from hypothesis import given, strategies as st

from repro.core import DepType, TaskGraph, TaskGraphError
from repro.machine import WorkSpec


W = WorkSpec(100.0)


class TestOrderedDeps:
    def test_in_after_out(self):
        g = TaskGraph()
        a = g.add_task(W, depend={DepType.OUT: ["x"]})
        b = g.add_task(W, depend={DepType.IN: ["x"]})
        assert b.n_preds == 1
        assert b.tid in a.successors

    def test_independent_reads_are_concurrent(self):
        g = TaskGraph()
        g.add_task(W, depend={DepType.OUT: ["x"]})
        r1 = g.add_task(W, depend={DepType.IN: ["x"]})
        r2 = g.add_task(W, depend={DepType.IN: ["x"]})
        assert r1.n_preds == 1 and r2.n_preds == 1
        assert r2.tid not in g.tasks[r1.tid].successors

    def test_write_after_reads(self):
        g = TaskGraph()
        w0 = g.add_task(W, depend={DepType.OUT: ["x"]})
        r1 = g.add_task(W, depend={DepType.IN: ["x"]})
        r2 = g.add_task(W, depend={DepType.IN: ["x"]})
        w1 = g.add_task(W, depend={DepType.OUT: ["x"]})
        # w1 must wait for both readers (and not duplicate the w0 edge twice)
        assert w1.n_preds == 2
        assert w1.tid in g.tasks[r1.tid].successors
        assert w1.tid in g.tasks[r2.tid].successors

    def test_inout_chains_serialize(self):
        g = TaskGraph()
        t0 = g.add_task(W, depend={DepType.INOUT: ["x"]})
        t1 = g.add_task(W, depend={DepType.INOUT: ["x"]})
        t2 = g.add_task(W, depend={DepType.INOUT: ["x"]})
        assert t1.n_preds == 1 and t2.n_preds == 1
        assert t1.tid in t0.successors and t2.tid in t1.successors

    def test_unrelated_refs_no_edges(self):
        g = TaskGraph()
        a = g.add_task(W, depend={DepType.OUT: ["x"]})
        b = g.add_task(W, depend={DepType.OUT: ["y"]})
        assert a.n_preds == 0 and b.n_preds == 0

    def test_invalid_dep_key_rejected(self):
        g = TaskGraph()
        with pytest.raises(TaskGraphError):
            g.add_task(W, depend={"in": ["x"]})


class TestMutexinoutset:
    def test_shared_ref_conflicts(self):
        g = TaskGraph()
        c = g.add_task(W, depend={DepType.MUTEXINOUTSET: [1, 2]})
        d = g.add_task(W, depend={DepType.MUTEXINOUTSET: [2, 3]})
        e = g.add_task(W, depend={DepType.MUTEXINOUTSET: [4]})
        assert g.conflicts(c, d)
        assert not g.conflicts(c, e)
        # mutexinoutset adds no ordering edges
        assert c.n_preds == 0 and d.n_preds == 0

    def test_dynamic_dependence_list(self):
        """The multidependence feature: ref list computed at run time."""
        g = TaskGraph()
        neighbours = [set(), {0}, {0, 1}]  # runtime-computed adjacency
        tasks = [g.add_task(W, depend={
            DepType.MUTEXINOUTSET: {s} | neighbours[s]}) for s in range(3)]
        assert g.conflicts(tasks[0], tasks[1])
        assert g.conflicts(tasks[1], tasks[2])
        assert g.conflicts(tasks[0], tasks[2])  # 2 lists 0 as neighbour


class TestGraphStructure:
    def test_roots(self):
        g = TaskGraph()
        a = g.add_task(W, depend={DepType.OUT: ["x"]})
        g.add_task(W, depend={DepType.IN: ["x"]})
        c = g.add_task(W)
        assert {t.tid for t in g.roots()} == {a.tid, c.tid}

    def test_barrier_orders_after_all_sinks(self):
        g = TaskGraph()
        g.add_task(W)
        g.add_task(W)
        bar = g.add_barrier()
        after = g.add_task(W)
        # 'after' has no declared deps, so it is a root; the barrier waits
        # on both earlier tasks.
        assert bar.n_preds == 2
        assert after.n_preds == 0

    def test_validate_accepts_dag(self):
        g = TaskGraph()
        g.add_task(W, depend={DepType.OUT: ["x"]})
        g.add_task(W, depend={DepType.INOUT: ["x"]})
        g.add_task(W, depend={DepType.IN: ["x"]})
        g.validate()  # no exception

    def test_validate_rejects_cycle(self):
        g = TaskGraph()
        a = g.add_task(W)
        b = g.add_task(W)
        # manufacture a cycle by hand
        a.successors.append(b.tid)
        b.successors.append(a.tid)
        a.n_preds = 1
        b.n_preds = 1
        with pytest.raises(TaskGraphError):
            g.validate()

    def test_total_instructions(self):
        g = TaskGraph()
        g.add_task(WorkSpec(10.0))
        g.add_task(WorkSpec(30.0))
        assert g.total_instructions == 40.0

    @given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=30))
    def test_random_inout_chains_are_acyclic(self, refs):
        g = TaskGraph()
        for ref in refs:
            g.add_task(W, depend={DepType.INOUT: [ref]})
        g.validate()

    @given(st.lists(
        st.tuples(st.sampled_from([DepType.IN, DepType.OUT, DepType.INOUT]),
                  st.sampled_from(["a", "b"])),
        min_size=1, max_size=40))
    def test_random_dep_sequences_are_acyclic(self, seq):
        g = TaskGraph()
        for dep_type, ref in seq:
            g.add_task(W, depend={dep_type: [ref]})
        g.validate()
