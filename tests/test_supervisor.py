"""Chaos tests for the supervised campaign executor.

The contracts under test, straight from the supervision design:

* **crash consistency** — ``kill -9`` of any pool worker at any moment
  (injected deterministically through the orchestration fault kinds)
  still yields a final store bit-identical to an undisturbed run;
* **liveness** — silent workers (no heartbeats) and wedged workers
  (heartbeats forever, no result) are detected and their jobs reclaimed;
* **poison quarantine** — a job that repeatedly crashes its workers is
  parked with its failure taxonomy instead of failing the campaign, every
  other cell still executes, and the report says so;
* **virtual time** — retry backoff reads the injected clock, so these
  tests spend no real wall seconds backing off.
"""

import dataclasses
import hashlib
import os

import pytest

from repro.app import RunConfig, WorkloadSpec
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    SupervisorConfig,
    VirtualClock,
    build_report,
    cross_run_identity,
    replay,
    run_campaign,
)
from repro.fault import FaultPlan, FaultSpec

TINY = WorkloadSpec(generations=2, points_per_ring=6, n_steps=2)

#: Tight liveness windows so loss detection takes tenths of a second of
#: real time, not the production-scale defaults.
FAST = SupervisorConfig(heartbeat_interval=0.05, heartbeat_timeout=0.5,
                        lease_duration=0.25, poll_interval=0.02)


def tiny_campaign(name="chaos"):
    return CampaignSpec(
        name=name,
        base_config=RunConfig(cluster="thunder", num_nodes=1,
                              threads_per_rank=1),
        base_spec=TINY,
        grid=[("config.nranks", [2, 4]),
              ("config.dlb", [False, True])])


def tree_digest(store):
    """SHA-256 over every object file's relative path and bytes — the
    bit-identity surface (quarantine/journal live outside it)."""
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(store.objects_dir)):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            h.update(os.path.relpath(path, store.objects_dir).encode())
            with open(path, "rb") as fh:
                h.update(fh.read())
    return h.hexdigest()


def chaos_plan(kind, *grants):
    return FaultPlan(specs=tuple(
        FaultSpec(kind=kind, time=0.0, count=g) for g in grants))


def journal_events(store_root, event):
    state = replay(os.path.join(store_root, "journal.jsonl"))
    return [e for e in state.events if e["event"] == event]


class TestCrashConsistency:
    def test_sigkill_mid_flight_store_bit_identical(self, tmp_path):
        campaign = tiny_campaign()
        calm = ResultStore(str(tmp_path / "calm"))
        run_campaign(campaign, calm, workers=2, supervision=FAST)

        chaos = ResultStore(str(tmp_path / "chaos"))
        run = run_campaign(campaign, chaos, workers=2, supervision=FAST,
                           backoff_base=0.0,
                           kill_plan=chaos_plan("worker_kill", 2))
        assert run.ok and run.executed == 4
        assert run.supervision["worker_losses"] == 1
        assert run.supervision["lease_expiries"] == 1
        assert tree_digest(chaos) == tree_digest(calm)
        assert cross_run_identity(calm, chaos)["identical"]

    def test_every_grant_killed_once_still_converges(self, tmp_path):
        # kill the holder of each of the first four leases: every job's
        # first execution dies, every job is reclaimed and re-run
        campaign = tiny_campaign()
        calm = ResultStore(str(tmp_path / "calm"))
        run_campaign(campaign, calm, workers=2, supervision=FAST)

        chaos = ResultStore(str(tmp_path / "chaos"))
        run = run_campaign(campaign, chaos, workers=2, supervision=FAST,
                           backoff_base=0.0,
                           kill_plan=chaos_plan("worker_kill", 1, 2, 3, 4))
        assert run.ok and run.executed == 4
        assert run.supervision["worker_losses"] == 4
        assert tree_digest(chaos) == tree_digest(calm)

    def test_kill_journals_the_lease_lifecycle(self, tmp_path):
        root = str(tmp_path / "chaos")
        run_campaign(tiny_campaign(), ResultStore(root), workers=2,
                     supervision=FAST, backoff_base=0.0,
                     kill_plan=chaos_plan("worker_kill", 1))
        expired = journal_events(root, "lease_expired")
        assert len(expired) == 1
        assert expired[0]["reason"] == "worker_death"
        retries = journal_events(root, "job_retry")
        assert retries and retries[0]["failure_class"] == "worker_crash"
        state = replay(os.path.join(root, "journal.jsonl"))
        assert state.finished and not state.dangling_leases
        assert state.lease_grants == 5 and state.lease_expiries == 1


class TestLiveness:
    def test_silent_worker_detected_by_heartbeat_loss(self, tmp_path):
        campaign = tiny_campaign()
        calm = ResultStore(str(tmp_path / "calm"))
        run_campaign(campaign, calm, workers=2, supervision=FAST)

        root = str(tmp_path / "chaos")
        run = run_campaign(campaign, ResultStore(root), workers=2,
                           supervision=FAST, backoff_base=0.0,
                           kill_plan=chaos_plan("heartbeat_loss", 1))
        assert run.ok and run.executed == 4
        expired = journal_events(root, "lease_expired")
        assert [e["reason"] for e in expired] == ["heartbeat_timeout"]
        assert tree_digest(ResultStore(root)) == tree_digest(calm)

    def test_wedged_worker_exhausts_renewal_budget(self, tmp_path):
        cfg = dataclasses.replace(FAST, max_lease_renewals=2)
        root = str(tmp_path / "chaos")
        run = run_campaign(tiny_campaign(), ResultStore(root), workers=2,
                           supervision=cfg, backoff_base=0.0,
                           kill_plan=chaos_plan("worker_wedge", 1))
        assert run.ok and run.executed == 4
        expired = journal_events(root, "lease_expired")
        assert [e["reason"] for e in expired] == ["renewals_exhausted"]
        # the wedge heartbeated: its lease was renewed up to the budget
        assert run.supervision["lease_renewals"] >= 2
        assert run.supervision["heartbeats"] >= 2

    def test_job_timeout_reclaims_the_lease(self, tmp_path):
        # an unbounded renewal budget would let a wedge live forever;
        # job_timeout caps the lease lifetime regardless of heartbeats
        root = str(tmp_path / "chaos")
        run = run_campaign(tiny_campaign(), ResultStore(root), workers=2,
                           supervision=FAST, backoff_base=0.0,
                           job_timeout=1.0,
                           kill_plan=chaos_plan("worker_wedge", 1))
        assert run.ok and run.executed == 4
        reasons = {e["reason"]
                   for e in journal_events(root, "lease_expired")}
        assert reasons == {"job_timeout"}


class TestPoisonQuarantine:
    def test_repeated_crashes_quarantine_the_job(self, tmp_path):
        # with one worker the grant order is deterministic: grant 1 is
        # job A; after its worker dies A requeues behind B, C, D, so
        # grant 5 is A again — killing grants 1 and 5 crashes only A
        campaign = tiny_campaign()
        root = str(tmp_path / "store")
        cfg = dataclasses.replace(FAST, poison_attempts=2)
        run = run_campaign(campaign, ResultStore(root), workers=1,
                           supervision=cfg, backoff_base=0.0,
                           kill_plan=chaos_plan("worker_kill", 1, 5))
        assert not run.ok
        assert run.quarantined == 1 and run.executed == 3
        assert run.failed == 0
        assert run.supervision["quarantined"] == 1

        store = ResultStore(root)
        assert len(store) == 3           # every other cell completed
        parked = store.quarantined()
        assert len(parked) == 1
        assert parked[0]["failure_class"] == "worker_crash"
        assert parked[0]["worker_losses"] == 2

        state = replay(os.path.join(root, "journal.jsonl"))
        assert len(state.quarantined) == 1 and state.finished

    def test_quarantine_reported_as_degraded_completion(self, tmp_path):
        campaign = tiny_campaign()
        root = str(tmp_path / "store")
        cfg = dataclasses.replace(FAST, poison_attempts=2)
        run = run_campaign(campaign, ResultStore(root), workers=1,
                           supervision=cfg, backoff_base=0.0,
                           kill_plan=chaos_plan("worker_kill", 1, 5))
        report = build_report(campaign, ResultStore(root), run=run)
        assert len(report.degraded["quarantined"]) == 1
        text = report.format()
        assert "DEGRADED COMPLETION: 1 quarantined cell(s)" in text
        assert "worker_crash" in text
        assert "lease churn" in text

    def test_later_success_clears_the_quarantine(self, tmp_path):
        campaign = tiny_campaign()
        root = str(tmp_path / "store")
        cfg = dataclasses.replace(FAST, poison_attempts=2)
        run_campaign(campaign, ResultStore(root), workers=1,
                     supervision=cfg, backoff_base=0.0,
                     kill_plan=chaos_plan("worker_kill", 1, 5))
        assert len(ResultStore(root).quarantined()) == 1
        # no chaos this time: the parked cell executes and is un-parked
        rerun = run_campaign(campaign, ResultStore(root), workers=1,
                             supervision=FAST)
        assert rerun.ok and rerun.cached == 3 and rerun.executed == 1
        assert ResultStore(root).quarantined() == []

    def test_crashing_worker_process_quarantined(self, tmp_path,
                                                 monkeypatch):
        # not an injected fault: the job genuinely hard-kills whichever
        # worker runs it (os._exit skips all cleanup, like an OOM kill)
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork (workers inherit the monkeypatch)")
        campaign = tiny_campaign()
        poison_fp = campaign.expand()[0].fingerprint
        from repro.campaign import runner
        real_run_job = runner.run_job

        def exploding(job):
            if job.fingerprint == poison_fp:
                os._exit(17)
            return real_run_job(job)

        monkeypatch.setattr(runner, "run_job", exploding)
        cfg = dataclasses.replace(FAST, poison_attempts=2)
        root = str(tmp_path / "store")
        run = run_campaign(campaign, ResultStore(root), workers=2,
                           supervision=cfg, backoff_base=0.0)
        assert not run.ok
        assert run.quarantined == 1 and run.executed == 3
        parked = ResultStore(root).quarantined()
        assert [q["fingerprint"] for q in parked] == [poison_fp]


class TestVirtualTime:
    def test_serial_retry_backoff_spends_no_wall_time(self, monkeypatch):
        from repro.campaign import executor
        from repro.campaign.runner import run_job as real_run_job

        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient worker hiccup")
            return real_run_job(job)

        monkeypatch.setattr(executor, "run_job", flaky)
        clock = VirtualClock()
        campaign = CampaignSpec(name="retry", base_config=RunConfig(),
                                base_spec=TINY,
                                grid=[("config.nranks", [2])])
        run = run_campaign(campaign, None, workers=0, clock=clock,
                           backoff_base=10.0)
        assert run.ok and run.executed == 1
        assert calls["n"] == 2
        # the 10 s backoff happened on the virtual clock, instantly
        assert clock.slept >= 1.0

    def test_supervised_retry_backoff_on_virtual_clock(self, tmp_path):
        clock = VirtualClock()
        root = str(tmp_path / "store")
        run = run_campaign(tiny_campaign(), ResultStore(root), workers=2,
                           supervision=FAST, clock=clock,
                           backoff_base=10.0,
                           kill_plan=chaos_plan("worker_kill", 1))
        assert run.ok and run.executed == 4
        assert run.supervision["retries"] == 1
        # backoff was charged to the virtual clock, not time.sleep
        assert run.supervision["backoff_total"] == pytest.approx(1.0)


class TestSupervisionStats:
    def test_undisturbed_run_reports_clean_counters(self, tmp_path):
        run = run_campaign(tiny_campaign(), ResultStore(str(tmp_path)),
                           workers=2, supervision=FAST)
        sup = run.supervision
        assert sup["lease_grants"] == 4
        assert sup["lease_expiries"] == 0
        assert sup["worker_losses"] == 0
        assert sup["quarantined"] == 0
        assert run.stats()["supervision"]["lease_grants"] == 4

    def test_worker_pool_still_bit_identical_to_serial(self, tmp_path):
        campaign = tiny_campaign()
        serial = ResultStore(str(tmp_path / "serial"))
        run_campaign(campaign, serial, workers=0)
        pooled = ResultStore(str(tmp_path / "pooled"))
        run_campaign(campaign, pooled, workers=3, supervision=FAST)
        assert tree_digest(serial) == tree_digest(pooled)
