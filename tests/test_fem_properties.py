"""Property-based tests for the FEM assembly (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fem import assemble_operator
from repro.mesh import MeshResolution, Segment, build_tube_mesh
from tests.test_fem import unit_cube_tets


@pytest.fixture(scope="module")
def cube():
    return unit_cube_tets(2)


@pytest.fixture(scope="module")
def tube():
    seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.03,
                  radius=0.01)
    return build_tube_mesh(seg, MeshResolution(points_per_ring=6))


class TestAssemblyProperties:
    @given(st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=15, deadline=None)
    def test_linearity_in_kappa(self, kappa):
        cube = unit_cube_tets(2)
        K1 = assemble_operator(cube, kappa=1.0).matrix
        Kk = assemble_operator(cube, kappa=kappa).matrix
        assert abs(Kk - kappa * K1).max() < 1e-9 * max(1.0, kappa)

    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=15, deadline=None)
    def test_superposition_of_mass_and_stiffness(self, kappa, mc):
        cube = unit_cube_tets(2)
        K = assemble_operator(cube, kappa=1.0).matrix
        M = assemble_operator(cube, kappa=0.0, mass_coeff=1.0).matrix
        both = assemble_operator(cube, kappa=kappa, mass_coeff=mc).matrix
        assert abs(both - (kappa * K + mc * M)).max() < 1e-9 * max(
            1.0, kappa, mc)

    @given(st.integers(min_value=0, max_value=2 ** 30))
    @settings(max_examples=10, deadline=None)
    def test_random_split_additivity(self, seed):
        """Assembling any two complementary element subsets sums to the
        full matrix — the property that makes per-rank local assembly
        (and all three race-management strategies) correct."""
        tube = build_tube_mesh(
            Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                    direction=np.array([0.0, 0.0, -1.0]), length=0.03,
                    radius=0.01),
            MeshResolution(points_per_ring=6))
        rng = np.random.default_rng(seed)
        mask = rng.uniform(size=tube.nelem) < 0.5
        full = assemble_operator(tube, kappa=1.0).matrix
        a = assemble_operator(tube, kappa=1.0,
                              element_ids=np.nonzero(mask)[0]).matrix
        b = assemble_operator(tube, kappa=1.0,
                              element_ids=np.nonzero(~mask)[0]).matrix
        assert abs((a + b) - full).max() < 1e-12

    @given(st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=10, deadline=None)
    def test_mass_scales_with_volume(self, scale):
        cube = unit_cube_tets(2)
        scaled_coords = cube.coords * scale
        from repro.mesh import Mesh
        scaled = Mesh(scaled_coords, cube.elem_types, cube.elem_nodes)
        M = assemble_operator(scaled, kappa=0.0, mass_coeff=1.0).matrix
        ones = np.ones(scaled.nnodes)
        assert ones @ (M @ ones) == pytest.approx(scale ** 3, rel=1e-9)

    def test_stiffness_positive_semidefinite(self, tube):
        K = assemble_operator(tube, kappa=1.0).matrix
        rng = np.random.default_rng(0)
        for _ in range(10):
            v = rng.normal(size=tube.nnodes)
            assert v @ (K @ v) > -1e-9

    def test_mass_positive_definite(self, tube):
        M = assemble_operator(tube, kappa=0.0, mass_coeff=1.0).matrix
        rng = np.random.default_rng(1)
        for _ in range(10):
            v = rng.normal(size=tube.nnodes)
            assert v @ (M @ v) > 0.0
