"""Integration tests for the CFPD application driver (workload + driver).

Uses a small workload (3 airway generations, 3 steps) so the whole app
path — mesh, decomposition, real assembly/solvers/SGS/particles, DES
execution — runs in well under a second per configuration.
"""

import numpy as np
import pytest

from repro.app import (
    LARGE_PARTICLE_RATIO,
    RunConfig,
    WorkloadSpec,
    Workload,
    get_workload,
    run_cfpd,
)
from repro.core import Strategy

SMALL = WorkloadSpec(generations=3, points_per_ring=6, n_steps=3)


@pytest.fixture(scope="module")
def wl():
    return get_workload(SMALL)


PHASES = ["assembly", "solver1", "solver2", "sgs", "particles"]


class TestWorkload:
    def test_particle_count_follows_ratio(self, wl):
        expected = int(round(SMALL.particle_ratio * wl.mesh.nelem))
        assert wl.n_particles == max(1, expected)

    def test_decomposition_cached(self, wl):
        a = wl.decomposition(8)
        b = wl.decomposition(8)
        assert a is b
        assert wl.decomposition(4) is not a

    def test_rank_meters_cover_mesh(self, wl):
        dd = wl.decomposition(8)
        total = sum(len(rw.element_ids) for rw in dd.ranks)
        assert total == wl.mesh.nelem
        total_instr = sum(rw.assembly_instr.sum() for rw in dd.ranks)
        assert total_instr > 0

    def test_solver_rows_cover_all_nnz(self, wl):
        dd = wl.decomposition(8)
        K = wl.operators()["continuity"]
        assert sum(rw.solver_nnz for rw in dd.ranks) == pytest.approx(K.nnz)

    def test_colors_valid_per_rank(self, wl):
        from repro.partition import verify_coloring
        dd = wl.decomposition(6)
        for rw in dd.ranks[:3]:
            graph = wl.mesh.node_sharing_adjacency(rw.element_ids)
            assert verify_coloring(graph, rw.colors)

    def test_real_solves_converge(self, wl):
        info = wl.solve_fluid_step()
        assert info["momentum_converged"]
        assert info["continuity_converged"]
        assert info["momentum_iterations"] >= 1

    def test_sgs_history_runs(self, wl):
        norms = wl.sgs_history()
        assert len(norms) == SMALL.n_steps
        assert all(np.isfinite(n) for n in norms)

    def test_trajectory_counts_conserved(self, wl):
        traj = wl.trajectory()
        assert len(traj) == SMALL.n_steps
        for step in traj:
            counts = step["counts"]
            assert sum(counts.values()) == wl.n_particles

    def test_histograms_match_trajectory(self, wl):
        hist = wl.particle_histograms(8)
        traj = wl.trajectory()
        for s in range(SMALL.n_steps):
            assert hist[s].sum() == len(traj[s]["positions"])

    def test_overlap_matrix_shape(self, wl):
        ov = wl.overlap_bytes(4, 3)
        assert ov.shape == (4, 3)
        assert (ov >= 0).all()
        assert ov.sum() > 0


class TestSyncDriver:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_all_strategies_run(self, wl, strategy):
        cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=8,
                        threads_per_rank=2, assembly_strategy=strategy,
                        sgs_strategy=strategy)
        res = run_cfpd(cfg, workload=wl)
        assert res.total_time > 0
        assert set(p for p in res.phase_log.phases()) == set(PHASES)

    def test_every_rank_logs_every_phase_every_step(self, wl):
        cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=8)
        res = run_cfpd(cfg, workload=wl)
        for phase in PHASES:
            samples = [s for s in res.phase_log.samples if s.phase == phase]
            assert len(samples) == 8 * SMALL.n_steps

    def test_work_conservation_across_rank_counts(self, wl):
        """Total assembly instructions must not depend on the rank count."""
        totals = []
        for nranks in (4, 8):
            cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=nranks,
                            assembly_strategy=Strategy.MPI_ONLY,
                            sgs_strategy=Strategy.MPI_ONLY)
            res = run_cfpd(cfg, workload=wl)
            totals.append(res.phase_log.instructions("assembly"))
        assert totals[0] == pytest.approx(totals[1], rel=1e-9)

    def test_deterministic(self, wl):
        cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=8, dlb=True)
        a = run_cfpd(cfg, workload=wl).total_time
        b = run_cfpd(cfg, workload=wl).total_time
        assert a == b

    def test_more_cores_not_slower(self, wl):
        t8 = run_cfpd(RunConfig(cluster="thunder", num_nodes=1, nranks=8),
                      workload=wl).total_time
        t16 = run_cfpd(RunConfig(cluster="thunder", num_nodes=1, nranks=16),
                       workload=wl).total_time
        assert t16 < t8 * 1.2  # strong scaling, with generous slack

    def test_oversubscription_rejected(self, wl):
        with pytest.raises(ValueError):
            run_cfpd(RunConfig(cluster="thunder", num_nodes=1, nranks=96,
                               threads_per_rank=2), workload=wl)

    def test_ipc_reflects_strategy(self, wl):
        ipcs = {}
        for strategy in (Strategy.MPI_ONLY, Strategy.ATOMICS):
            cfg = RunConfig(cluster="marenostrum4", num_nodes=1, nranks=8,
                            assembly_strategy=strategy,
                            sgs_strategy=strategy)
            ipcs[strategy] = run_cfpd(cfg, workload=wl).ipc("assembly")
        assert ipcs[Strategy.MPI_ONLY] == pytest.approx(2.25, abs=0.02)
        assert ipcs[Strategy.ATOMICS] < 1.4


class TestCoupledDriver:
    def test_coupled_runs_and_logs_roles(self, wl):
        cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=8,
                        mode="coupled", fluid_ranks=5)
        res = run_cfpd(cfg, workload=wl)
        fluid_ranks = {s.rank for s in res.phase_log.samples
                       if s.phase == "assembly"}
        particle_ranks = {s.rank for s in res.phase_log.samples
                          if s.phase == "particles"}
        assert fluid_ranks == set(range(5))
        assert particle_ranks == set(range(5, 8))

    def test_invalid_split_rejected(self, wl):
        with pytest.raises(ValueError):
            run_cfpd(RunConfig(nranks=8, mode="coupled", fluid_ranks=0),
                     workload=wl)
        with pytest.raises(ValueError):
            run_cfpd(RunConfig(nranks=8, mode="coupled", fluid_ranks=8),
                     workload=wl)

    def test_unknown_mode_rejected(self, wl):
        with pytest.raises(ValueError):
            run_cfpd(RunConfig(nranks=8, mode="fancy"), workload=wl)

    def test_coupled_mapping_defaults_to_cyclic(self):
        assert RunConfig(mode="coupled", fluid_ranks=4).resolved_mapping() \
            == "cyclic"
        assert RunConfig(mode="sync").resolved_mapping() == "block"
        assert RunConfig(mode="sync", mapping="cyclic").resolved_mapping() \
            == "cyclic"

    def test_config_labels(self):
        assert RunConfig(mode="sync", nranks=96).label() == "sync 96x1"
        assert RunConfig(mode="coupled", nranks=96, fluid_ranks=64,
                         dlb=True).label() == "64+32 +DLB"


class TestDLBInApp:
    def test_dlb_never_slower_sync(self, wl):
        for nranks in (8, 16):
            cfg = dict(cluster="thunder", num_nodes=1, nranks=nranks)
            t_off = run_cfpd(RunConfig(**cfg, dlb=False),
                             workload=wl).total_time
            t_on = run_cfpd(RunConfig(**cfg, dlb=True),
                            workload=wl).total_time
            assert t_on <= t_off * 1.001

    def test_dlb_helps_heavy_particle_load(self):
        heavy = get_workload(WorkloadSpec(generations=3, points_per_ring=6,
                                          n_steps=3,
                                          particle_ratio=LARGE_PARTICLE_RATIO))
        cfg = dict(cluster="thunder", num_nodes=1, nranks=16)
        t_off = run_cfpd(RunConfig(**cfg, dlb=False),
                         workload=heavy).total_time
        t_on = run_cfpd(RunConfig(**cfg, dlb=True),
                        workload=heavy).total_time
        assert t_on < t_off * 0.95

    def test_dlb_stats_populated(self, wl):
        cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=8, dlb=True)
        res = run_cfpd(cfg, workload=wl)
        assert res.dlb_stats.lend_events > 0

    def test_dlb_coupled_flattens_split_choice(self):
        heavy = get_workload(WorkloadSpec(generations=3, points_per_ring=6,
                                          n_steps=3,
                                          particle_ratio=LARGE_PARTICLE_RATIO))
        times = {}
        for dlb in (False, True):
            per_split = []
            for f in (8, 12):
                cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=16,
                                mode="coupled", fluid_ranks=f, dlb=dlb)
                per_split.append(run_cfpd(cfg, workload=heavy).total_time)
            times[dlb] = max(per_split) / min(per_split)
        assert times[True] <= times[False] + 1e-9


class TestPollutantInjection:
    """The paper's production scenario: particles injected several times
    during the simulation (pollutant inhalation)."""

    SPEC = WorkloadSpec(generations=3, points_per_ring=6, n_steps=6,
                        injection_interval=2)

    def test_injection_schedule(self):
        assert self.SPEC.injection_steps() == [0, 2, 4]
        assert WorkloadSpec(n_steps=4).injection_steps() == [0]

    def test_population_grows(self):
        wl = get_workload(self.SPEC)
        traj = wl.trajectory()
        totals = [sum(step["counts"].values()) for step in traj]
        assert totals[0] == wl.n_particles
        assert totals[-1] == wl.total_injected == 3 * wl.n_particles
        assert all(b >= a for a, b in zip(totals, totals[1:]))

    def test_particle_phase_work_grows(self):
        wl = get_workload(self.SPEC)
        hist = wl.particle_histograms(8)
        per_step = hist.sum(axis=1)
        assert per_step[4] > per_step[0]

    def test_driver_runs_with_injection_schedule(self):
        wl = get_workload(self.SPEC)
        cfg = RunConfig(cluster="thunder", num_nodes=1, nranks=8, dlb=True)
        res = run_cfpd(cfg, workload=wl)
        assert res.total_time > 0
        assert sum(res.deposition.values()) == wl.total_injected


class TestResultObject:
    def test_deposition_and_particle_count(self, wl):
        res = run_cfpd(RunConfig(cluster="thunder", num_nodes=1, nranks=4),
                       workload=wl)
        assert res.n_particles == wl.n_particles
        assert sum(res.deposition.values()) == wl.n_particles

    def test_solver_info_passthrough(self, wl):
        res = run_cfpd(RunConfig(cluster="thunder", num_nodes=1, nranks=4),
                       workload=wl)
        assert res.solver_info["momentum_converged"]
