"""Benchmark: Figure 6 — hybrid assembly speedup per strategy.

Shape assertions (Sec. 4.3):

* atomics is the worst version on both clusters and never beats multidep;
* the atomics penalty is much larger on Intel (OoO) than on Arm (in-order);
* multidep is the best version in every configuration;
* multidep-vs-atomics factor is large on MN4 (paper: ~2.5x) and modest on
  Thunder (paper: ~1.2x).
"""

from conftest import save_result

from repro.core import Strategy
from repro.experiments import run_fig6


def test_fig6_assembly_hybrid(benchmark, results_dir):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    save_result(results_dir, "fig6_assembly", result.format())

    for cluster in ("marenostrum4", "thunder"):
        for threads in (1, 2, 4):
            atom = result.speedup(cluster, Strategy.ATOMICS, threads)
            color = result.speedup(cluster, Strategy.COLORING, threads)
            multi = result.speedup(cluster, Strategy.MULTIDEP, threads)
            # multidep is the best version in all the cases (paper quote)
            assert multi >= color - 0.03, (cluster, threads)
            assert multi > atom, (cluster, threads)
            # coloring beats atomics on both architectures (on Thunder the
            # atomic penalty is small, and our scaled-down color classes pay
            # extra barrier slack, so allow a small tolerance there)
            assert color > atom - 0.05, (cluster, threads)

    # atomics penalty asymmetric: far worse on Intel than on Arm
    mn4_atom = result.speedup("marenostrum4", Strategy.ATOMICS, 2)
    arm_atom = result.speedup("thunder", Strategy.ATOMICS, 2)
    assert mn4_atom < 0.75          # clearly below the MPI-only baseline
    assert arm_atom > mn4_atom + 0.2

    # multidep/atomics factor: large on Intel, modest on Arm
    mn4_factor = (result.speedup("marenostrum4", Strategy.MULTIDEP, 4)
                  / result.speedup("marenostrum4", Strategy.ATOMICS, 4))
    arm_factor = (result.speedup("thunder", Strategy.MULTIDEP, 4)
                  / result.speedup("thunder", Strategy.ATOMICS, 4))
    assert mn4_factor > 1.5         # paper: ~2.5x
    assert 1.0 < arm_factor < mn4_factor   # paper: ~1.2x

    # hybrid multidep at 4 threads beats pure MPI on both clusters
    assert result.speedup("marenostrum4", Strategy.MULTIDEP, 4) > 1.0
    assert result.speedup("thunder", Strategy.MULTIDEP, 4) > 1.0
