"""Benchmark: Section 4.3 IPC counters — assembly IPC per strategy.

Regenerates the hardware-counter observations:

* Thunder MPI-only ~0.49, atomics ~0.42 (a 14 % reduction);
* MareNostrum4 MPI-only ~2.25, atomics ~1.15 (a 50 % reduction);
* multidep IPC within 94-96 % of the MPI-only IPC on both clusters.
"""

import pytest
from conftest import save_result

from repro.experiments import run_ipc_counters


def test_ipc_counters(benchmark, results_dir):
    result = benchmark.pedantic(run_ipc_counters, rounds=1, iterations=1)
    save_result(results_dir, "ipc_counters", result.format())

    # absolute IPC values near the paper's counters
    assert result.ipc[("marenostrum4", "mpionly")] == pytest.approx(
        2.25, abs=0.1)
    assert result.ipc[("marenostrum4", "atomics")] == pytest.approx(
        1.15, abs=0.15)
    assert result.ipc[("thunder", "mpionly")] == pytest.approx(0.49,
                                                               abs=0.03)
    assert result.ipc[("thunder", "atomics")] == pytest.approx(0.42,
                                                               abs=0.03)

    # relative drops: ~50 % on Intel vs ~14 % on Arm
    assert result.relative_drop("marenostrum4") == pytest.approx(0.50,
                                                                 abs=0.08)
    assert result.relative_drop("thunder") == pytest.approx(0.14, abs=0.05)

    # multidep recovers 94-96 % of the MPI-only IPC
    for cluster in ("marenostrum4", "thunder"):
        frac = result.multidep_fraction(cluster)
        assert 0.92 <= frac <= 0.97, cluster
