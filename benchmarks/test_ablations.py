"""Benchmark: ablations over the reproduction's design choices.

Not paper figures — these justify the knobs DESIGN.md documents:
process placement for coupled+DLB, multidep task granularity, the
subdomain-adjacency scale compensation, the coloring algorithm, and the
DLB lend policy.
"""

from conftest import save_result

from repro.experiments.ablations import (
    ablate_coloring,
    ablate_dlb_policy,
    ablate_mapping,
    ablate_min_shared,
    ablate_scheduler,
    ablate_subdomains,
)


def test_ablation_mapping(benchmark, results_dir):
    result = benchmark.pedantic(ablate_mapping, rounds=1, iterations=1)
    save_result(results_dir, "ablation_mapping", result.format())
    by_mapping = {row[0]: row for row in result.rows}
    # cyclic placement lets DLB move cores between the two codes;
    # block placement separates them onto different nodes
    cyclic_gain = float(by_mapping["cyclic"][3].rstrip("x"))
    block_gain = float(by_mapping["block"][3].rstrip("x"))
    assert cyclic_gain > block_gain
    assert by_mapping["cyclic"][4] > by_mapping["block"][4]


def test_ablation_subdomains(benchmark, results_dir):
    result = benchmark.pedantic(ablate_subdomains, rounds=1, iterations=1)
    save_result(results_dir, "ablation_subdomains", result.format())
    times = [float(t) for _, t in result.rows]
    # too few tasks pack poorly: the coarsest decomposition must be worse
    # than the best one by a clear margin
    assert min(times) < 0.9 * times[0]


def test_ablation_min_shared(benchmark, results_dir):
    result = benchmark.pedantic(ablate_min_shared, rounds=1, iterations=1)
    save_result(results_dir, "ablation_min_shared", result.format())
    degrees = [float(d) for _, d, _ in result.rows]
    times = [float(t) for _, _, t in result.rows]
    # degree drops monotonically with the threshold, and the paper-literal
    # threshold (1) over-serializes relative to the compensated setting (4)
    assert all(a >= b for a, b in zip(degrees, degrees[1:]))
    assert times[2] < times[0]


def test_ablation_coloring(benchmark, results_dir):
    result = benchmark.pedantic(ablate_coloring, rounds=1, iterations=1)
    save_result(results_dir, "ablation_coloring", result.format())
    by_algo = {row[0]: row for row in result.rows}
    # DSATUR never needs more colors than greedy (on these graphs)
    assert float(by_algo["dsatur"][1]) <= float(by_algo["greedy"][1]) + 0.5


def test_ablation_dlb_policy(benchmark, results_dir):
    result = benchmark.pedantic(ablate_dlb_policy, rounds=1, iterations=1)
    save_result(results_dir, "ablation_dlb_policy", result.format())
    by_policy = {row[0]: row for row in result.rows}
    # lend-all moves at least as many cores and is at least as fast here
    assert by_policy["lewi"][2] >= by_policy["lewi_half"][2]
    assert float(by_policy["lewi"][1]) <= float(by_policy["lewi_half"][1])


def test_ablation_scheduler(benchmark, results_dir):
    result = benchmark.pedantic(ablate_scheduler, rounds=1, iterations=1)
    save_result(results_dir, "ablation_scheduler", result.format())
    by_sched = {row[0]: float(row[1]) for row in result.rows}
    # LPT is the best (or tied-best) policy for skewed multidep task sizes
    assert by_sched["lpt"] <= min(by_sched.values()) * 1.02
