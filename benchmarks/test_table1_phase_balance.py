"""Benchmark: Table 1 — per-phase load balance and time share.

Regenerates the paper's Table 1 (96 MPI ranks on one Thunder node, pure
MPI, small particle load) and checks its shape:

* phase ordering by time share: assembly > SGS > Solver1 > Solver2;
* assembly and SGS visibly unbalanced, solvers well balanced;
* the particles phase is catastrophically unbalanced (L ~ a few %).
"""

from conftest import save_result

from repro.experiments import PAPER_TABLE1, run_table1


def test_table1_phase_balance(benchmark, results_dir):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result(results_dir, "table1", result.format())

    rows = {r["phase"]: r for r in result.rows}
    assert set(rows) >= set(PAPER_TABLE1)

    # time-share ordering of the paper
    share = {p: rows[p]["percent_time"] for p in PAPER_TABLE1}
    assert share["assembly"] > share["sgs"] > share["solver1"] \
        > share["solver2"]
    # time shares within a reasonable band of the paper's values
    for phase, (_, paper_pct) in PAPER_TABLE1.items():
        assert abs(share[phase] - paper_pct) < 10.0, phase

    # balance ordering: solvers balanced, element phases unbalanced,
    # particles catastrophic
    lb = {p: rows[p]["load_balance"] for p in PAPER_TABLE1}
    assert lb["particles"] < 0.15
    assert lb["assembly"] < lb["solver1"]
    assert lb["sgs"] < lb["solver1"]
    assert lb["solver1"] > 0.85 and lb["solver2"] > 0.85
    assert 0.55 < lb["assembly"] < 0.95
