"""Benchmark: Figure 9 — 4e5-scaled particles on Thunder, orig vs DLB.

Same trends as the Intel cluster (Fig. 8): bad splits cost up to ~2x, DLB
improves all configurations and minimizes the effect of choosing a bad
combination of MPI processes.
"""

from conftest import save_result

from repro.experiments import run_fig9


def test_fig9_dlb_thunder_small(benchmark, results_dir):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save_result(results_dir, "fig9_dlb_thunder_small", result.format())

    assert result.worst_original() > 1.3 * result.best_original()
    assert all(g >= 0.99 for g in result.dlb_gains())
    assert max(result.dlb_gains()) > 1.2
    orig_spread = result.worst_original() / result.best_original()
    assert result.dlb_spread() < orig_spread
