"""Benchmark: Figure 8 — 4e5-scaled particles on MareNostrum4, orig vs DLB.

Shape assertions (Sec. 4.4):

* choosing a bad coupled split costs up to ~2x vs the best configuration;
* DLB improves (or at least never hurts) every configuration;
* with DLB the configuration choice barely matters (flat profile).
"""

from conftest import save_result

from repro.experiments import run_fig8


def test_fig8_dlb_mn4_small(benchmark, results_dir):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save_result(results_dir, "fig8_dlb_mn4_small", result.format())

    # a bad configuration costs noticeably more than the best one
    assert result.worst_original() > 1.3 * result.best_original()

    # DLB improves every configuration
    assert all(g >= 0.99 for g in result.dlb_gains())
    assert max(result.dlb_gains()) > 1.2

    # DLB flattens the configuration sensitivity
    orig_spread = result.worst_original() / result.best_original()
    assert result.dlb_spread() < orig_spread
    assert result.dlb_spread() < 1.35
