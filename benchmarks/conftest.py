"""Shared fixtures/helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Absolute
numbers come from a simulated substrate, so the assertions target the
*shape* of each result (who wins, rough factors, orderings) — see
EXPERIMENTS.md.  Formatted outputs are written to ``benchmarks/results/``.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated tables/figures as text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment's formatted output."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
