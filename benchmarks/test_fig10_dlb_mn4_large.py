"""Benchmark: Figure 10 — 7e6-scaled particles on MareNostrum4.

With the heavy particle load the computational weight shifts to the
particles code; the paper reports DLB improvements between 1.7x and 2.2x
over the original execution.  Shape assertions: substantial DLB gains
(>1.3x in at least one configuration, and clearly larger than for the
small load), improvement everywhere, flat profile under DLB.
"""

from conftest import save_result

from repro.experiments import run_fig8, run_fig10


def test_fig10_dlb_mn4_large(benchmark, results_dir):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    save_result(results_dir, "fig10_dlb_mn4_large", result.format())

    gains = result.dlb_gains()
    assert all(g >= 0.99 for g in gains)
    assert max(gains) > 1.4          # paper band: 1.7x - 2.2x
    assert sum(gains) / len(gains) > 1.25
    assert result.dlb_spread() < 1.35

    # heavier particle load -> larger DLB gains than the small run
    small = run_fig8()
    assert max(gains) > max(small.dlb_gains()) - 0.05
