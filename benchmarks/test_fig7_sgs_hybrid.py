"""Benchmark: Figure 7 — hybrid SGS speedup per strategy.

The SGS loop has no shared updates, so the "atomics" build is a plain
parallel loop with no penalty.  Shape assertions:

* the atomic version is (near-)fastest — coloring and multidep only add
  structural overhead here;
* that overhead is bounded (paper: below 10 %; our strongly scaled-down
  per-rank domains make tasks ~100x smaller than production, so we allow
  up to ~25 % at the finest configurations — see EXPERIMENTS.md);
* hybrid parallelizations outperform the pure-MPI execution.
"""

from conftest import save_result

from repro.core import Strategy
from repro.experiments import run_fig7


def test_fig7_sgs_hybrid(benchmark, results_dir):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    save_result(results_dir, "fig7_sgs", result.format())

    for cluster in ("marenostrum4", "thunder"):
        for threads in (1, 2, 4):
            atom = result.speedup(cluster, Strategy.ATOMICS, threads)
            color = result.speedup(cluster, Strategy.COLORING, threads)
            multi = result.speedup(cluster, Strategy.MULTIDEP, threads)
            # overhead of coloring/multidep vs the plain loop is bounded
            assert color > 0.75 * atom, (cluster, threads)
            assert multi > 0.75 * atom, (cluster, threads)

        # hybrid (4 threads) outperforms the MPI-only execution
        assert result.speedup(cluster, Strategy.ATOMICS, 4) > 1.0, cluster

    # on Thunder the plain-loop hybrid clearly beats pure MPI (paper Fig. 7)
    assert result.speedup("thunder", Strategy.ATOMICS, 4) > 1.05
