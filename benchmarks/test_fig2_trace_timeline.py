"""Benchmark: Figure 2 — trace timeline of one simulation step.

Regenerates the Paraver-style timeline (phases per rank over time) for the
Table-1 run and checks its structural properties: every rank traverses the
phases in order, the particles phase is dominated by a few ranks, and the
assembly phase shows ragged (imbalanced) ends.
"""

import numpy as np
from conftest import save_result

from repro.experiments import run_fig2


def test_fig2_trace_timeline(benchmark, results_dir):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    save_result(results_dir, "fig2_timeline",
                result.render(width=110, max_ranks=24))

    rows = result.rows()
    assert rows, "timeline must contain samples"
    ranks = {r for r, *_ in rows}
    assert len(ranks) == 96

    # per rank: phases appear in the canonical order
    order = ["assembly", "solver1", "solver2", "sgs", "particles"]
    for rank in list(ranks)[:8]:
        phases = [p for r, p, *_ in rows if r == rank]
        assert phases == order

    # particles phase: the busy time concentrates on very few ranks
    # (the injection disk spans a handful of the 96 rank subdomains)
    part = [(r, t1 - t0) for r, p, t0, t1 in rows if p == "particles"]
    durations = np.array([d for _, d in part])
    top4 = np.sort(durations)[-4:].sum()
    assert top4 > 0.5 * durations.sum()
    assert (durations > 0).sum() < 20  # most ranks have no particle work

    # assembly: ragged ends (max end-time spread exceeds 10 % of phase)
    asm = [(t0, t1) for r, p, t0, t1 in rows if p == "assembly"]
    ends = np.array([t1 for _, t1 in asm])
    starts = np.array([t0 for t0, _ in asm])
    span = ends.max() - starts.min()
    assert (ends.max() - ends.min()) > 0.1 * span
