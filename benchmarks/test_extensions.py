"""Benchmark: extensions beyond the paper's evaluation.

Three studies the paper motivates but does not plot:

* **strong scaling** of the simulation on Thunder (time vs rank count at
  fixed problem size) with and without DLB;
* **energy-to-solution** comparison between the Intel and Arm clusters
  (the Mont-Blanc question behind the Thunder prototype);
* **pollutant inhalation**: particles injected repeatedly during the run
  (Sec. 2.2 mentions production simulations inject "several times"), which
  grows the particle-phase load and with it the value of DLB.
"""

from conftest import save_result

from repro.app import (
    LARGE_PARTICLE_RATIO,
    RunConfig,
    WorkloadSpec,
    get_workload,
    run_cfpd,
)
from repro.core import Strategy
from repro.experiments import format_table


def _cfg(nranks, dlb, cluster="thunder", num_nodes=2):
    return RunConfig(cluster=cluster, num_nodes=num_nodes, nranks=nranks,
                     threads_per_rank=1,
                     assembly_strategy=Strategy.MULTIDEP,
                     sgs_strategy=Strategy.ATOMICS, dlb=dlb)


def run_strong_scaling():
    wl = get_workload(WorkloadSpec())
    rows = []
    for nranks in (24, 48, 96, 192):
        times = {dlb: run_cfpd(_cfg(nranks, dlb), workload=wl).total_time
                 for dlb in (False, True)}
        rows.append((nranks, times[False], times[True]))
    return rows


def test_ext_strong_scaling(benchmark, results_dir):
    rows = benchmark.pedantic(run_strong_scaling, rounds=1, iterations=1)
    table = [(n, f"{o * 1e3:.3f}", f"{d * 1e3:.3f}",
              f"{rows[0][1] / o:.2f}x") for n, o, d in rows]
    save_result(results_dir, "ext_strong_scaling", format_table(
        ["ranks", "orig (ms)", "DLB (ms)", "speedup vs 24"],
        table, title="Strong scaling on Thunder (fixed problem size)"))
    times = [o for _, o, _ in rows]
    # more ranks help up to the core count (monotone within 10 % slack)
    assert times[1] < times[0] * 1.1
    assert times[2] < times[0]
    # DLB never hurts at any scale
    assert all(d <= o * 1.001 for _, o, d in rows)


def run_energy_comparison():
    wl = get_workload(WorkloadSpec())
    rows = []
    for cluster, nranks in (("marenostrum4", 96), ("thunder", 192)):
        res = run_cfpd(_cfg(nranks, True, cluster=cluster), workload=wl)
        rows.append((cluster, nranks, res.total_time, res.energy_joules()))
    return rows


def test_ext_energy_comparison(benchmark, results_dir):
    rows = benchmark.pedantic(run_energy_comparison, rounds=1, iterations=1)
    table = [(c, n, f"{t * 1e3:.3f}", f"{e:.3f}") for c, n, t, e in rows]
    save_result(results_dir, "ext_energy", format_table(
        ["cluster", "ranks", "time (ms)", "energy (J)"],
        table, title="Time- and energy-to-solution (DLB on, full machine)"))
    by_cluster = {c: (t, e) for c, _, t, e in rows}
    # the Arm machine is slower per step but the energy gap is much
    # narrower than the time gap (the Mont-Blanc trade-off)
    t_ratio = by_cluster["thunder"][0] / by_cluster["marenostrum4"][0]
    e_ratio = by_cluster["thunder"][1] / by_cluster["marenostrum4"][1]
    assert t_ratio > 1.5
    assert e_ratio < t_ratio


def run_pollutant_comparison():
    single = get_workload(WorkloadSpec(
        particle_ratio=LARGE_PARTICLE_RATIO))
    pollutant = get_workload(WorkloadSpec(
        particle_ratio=LARGE_PARTICLE_RATIO, injection_interval=3))
    out = {}
    for tag, wl in (("single", single), ("pollutant", pollutant)):
        times = {dlb: run_cfpd(_cfg(192, dlb), workload=wl).total_time
                 for dlb in (False, True)}
        out[tag] = (wl.total_injected, times[False], times[True])
    return out


def test_ext_pollutant_injection(benchmark, results_dir):
    out = benchmark.pedantic(run_pollutant_comparison, rounds=1,
                             iterations=1)
    table = [(tag, n, f"{o * 1e3:.3f}", f"{d * 1e3:.3f}", f"{o / d:.2f}x")
             for tag, (n, o, d) in out.items()]
    save_result(results_dir, "ext_pollutant", format_table(
        ["scenario", "injected", "orig (ms)", "DLB (ms)", "gain"],
        table,
        title="Repeated (pollutant) injection vs single injection, Thunder"))
    n_single, o_single, d_single = out["single"]
    n_poll, o_poll, d_poll = out["pollutant"]
    assert n_poll > n_single
    assert o_poll > o_single          # more particles, more work
    # DLB keeps paying off under continuous injection
    assert o_poll / d_poll > 1.2
