"""Benchmark: Figure 11 — 7e6-scaled particles on Thunder.

Paper: DLB speeds the simulation up 2x-3x vs the original execution, the
performance with DLB is nearly independent of the user's mode/split choice,
and the optimum original configuration *differs* from the small-load run —
users cannot rely on a single configuration.
"""

from conftest import save_result

from repro.experiments import run_fig9, run_fig11


def test_fig11_dlb_thunder_large(benchmark, results_dir):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    save_result(results_dir, "fig11_dlb_thunder_large", result.format())

    gains = result.dlb_gains()
    assert all(g >= 0.99 for g in gains)
    assert max(gains) > 1.4          # paper band: 2x - 3x
    assert result.dlb_spread() < 1.35

    # the optimum configuration depends on the particle load: compare the
    # per-config original-time rankings of the small and large runs
    small = run_fig9()
    small_rank = sorted(range(len(small.rows)),
                        key=lambda i: small.rows[i][1])
    large_rank = sorted(range(len(result.rows)),
                        key=lambda i: result.rows[i][1])
    assert small_rank != large_rank or \
        abs(small.rows[small_rank[0]][1] / small.best_original() - 1) < 0.3
