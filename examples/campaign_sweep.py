#!/usr/bin/env python3
"""Campaign orchestration: memoized sweeps with crash-safe resume.

Four acts on the built-in ``demo`` campaign (rank counts x DLB on a
single Thunder node):

1. **Run** — the campaign executes against a content-addressed result
   store; every cell lands as one immutable JSON object keyed by the
   SHA-256 fingerprint of its ``(config, spec, fault_plan)``.
2. **Re-run** — the identical campaign again: zero simulations, every
   cell is a cache hit.
3. **Kill** — a fresh store, and a campaign-level ``job_kill`` fault
   aborts the orchestration after two completed jobs (the journal
   records the kill).
4. **Resume** — the same command again: the two finished cells are
   cache hits, the rest execute, and the per-job digests are
   bit-identical to the uninterrupted run's.

Run:  python examples/campaign_sweep.py
"""

import tempfile

from repro.campaign import (
    ResultStore,
    build_report,
    demo_campaign,
    replay,
    run_campaign,
)
from repro.fault import FaultPlan, FaultSpec
from repro.smpi import JobKilledError

campaign = demo_campaign()
jobs = campaign.expand()
print(f"campaign {campaign.name!r}: {len(jobs)} jobs "
      f"({campaign.fingerprint[:12]})")
for job in jobs:
    print(f"  {job.job_id}  {job.label():24s} {job.fingerprint[:12]}")

with tempfile.TemporaryDirectory() as tmp:
    # Act 1: populate the store (workers=2 exercises the process pool).
    store = ResultStore(f"{tmp}/store")
    run = run_campaign(campaign, store=store, workers=2)
    print(f"\nfirst run:  {run.stats()}")

    # Act 2: an identical campaign is a 100% cache hit.
    rerun = run_campaign(campaign, store=store)
    print(f"re-run:     {rerun.stats()}  (zero new simulations)")
    assert rerun.executed == 0 and rerun.cached == len(jobs)

    # Act 3: kill the orchestration after 2 completed jobs.
    store_b = ResultStore(f"{tmp}/store-b")
    kill = FaultPlan(specs=(FaultSpec(kind="job_kill", time=0.0, count=2),))
    try:
        run_campaign(campaign, store=store_b, kill_plan=kill)
    except JobKilledError as exc:
        print(f"\nkilled:     {exc.reason}")
    state = replay(f"{tmp}/store-b/journal.jsonl")
    print(f"journal:    {state.completed}/{state.njobs} done, "
          f"killed={state.killed}")

    # Act 4: resume — finished cells cached, the rest execute, and the
    # store ends bit-identical to the uninterrupted run's.
    resumed = run_campaign(campaign, store=store_b)
    print(f"resumed:    {resumed.stats()}")
    assert store_b.digest_map() == store.digest_map()
    print("digests:    resumed store identical to uninterrupted run")

    print()
    print(build_report(campaign, store).format())
