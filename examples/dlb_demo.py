#!/usr/bin/env python3
"""DLB (LeWI) in isolation — the paper's Fig. 5 scenario.

A deliberately unbalanced hybrid MPI+OpenMP application: two MPI ranks with
two cores each on one node; rank 1 has four times the work of rank 0.
Without DLB the step takes as long as the overloaded rank needs.  With DLB,
rank 0 lends its cores while blocked in the barrier and rank 1 finishes on
four cores.

This uses the library layers directly (simulated MPI + task teams + DLB),
without the CFPD application on top — a minimal template for balancing any
hybrid workload.

Run:  python examples/dlb_demo.py
"""

import numpy as np

from repro.core import DLB, Team, build_parallel_for_graph
from repro.machine import marenostrum4
from repro.sim import Engine
from repro.smpi import World

TASK_INSTRUCTIONS = 5e6  # ~1 ms per task on a Xeon core


def run(dlb_enabled: bool) -> float:
    engine = Engine()
    cluster = marenostrum4(num_nodes=1)
    world = World(engine, cluster, nranks=2)
    dlb = DLB(world, enabled=dlb_enabled)
    teams = {}
    for rank in range(2):
        teams[rank] = Team(engine, cluster.node.core, nthreads=2, rank=rank)
        dlb.attach_team(rank, teams[rank])
    tasks_per_rank = {0: 4, 1: 16}  # rank 1 has 4x the work

    def program(comm):
        n = tasks_per_rank[comm.rank]
        graph = build_parallel_for_graph(
            np.full(n, TASK_INSTRUCTIONS), nthreads=2, min_chunks=n)
        stats = yield from teams[comm.rank].run(graph)
        yield from comm.barrier()
        return stats

    results = world.run(world.launch(program))
    for rank, stats in enumerate(results):
        print(f"  rank {rank}: {stats.tasks_run} tasks, busy "
              f"{stats.busy_seconds * 1e3:.2f} ms, finished at "
              f"{stats.t_end * 1e3:.2f} ms, peak concurrency "
              f"{stats.max_concurrency}")
    if dlb_enabled:
        s = dlb.stats
        print(f"  DLB: lent {s.cores_lent_total} core-grants, "
              f"borrowed {s.cores_borrowed_total}, "
              f"peak team size {s.max_team_capacity}")
    return engine.now


def main() -> None:
    print("Without DLB (2 ranks x 2 cores, rank 1 overloaded 4:1):")
    t_plain = run(dlb_enabled=False)
    print(f"  barrier reached at {t_plain * 1e3:.2f} ms simulated\n")

    print("With DLB (rank 0 lends its cores while blocked):")
    t_dlb = run(dlb_enabled=True)
    print(f"  barrier reached at {t_dlb * 1e3:.2f} ms simulated\n")

    # Hand analysis: without DLB the step lasts 16 tasks / 2 cores = 8
    # task-times.  With DLB rank 0 finishes at t=2 and lends both cores, so
    # rank 1 runs its remaining 12 tasks on 4 cores: 2 + 12/4 = 5 task-times.
    print(f"DLB speedup: {t_plain / t_dlb:.2f}x (hand analysis: 8/5 = 1.60x)")


if __name__ == "__main__":
    main()
