#!/usr/bin/env python3
"""Fault injection, graceful degradation, and checkpoint/restart.

Three acts on a small Thunder (ThunderX2 Arm cluster) CFPD run:

1. **Degradation** — a straggler (DVFS throttle on rank 0), a rank death
   (rank 3 crashes mid-run) and a solver bit-flip are injected; the run
   completes anyway: DLB absorbs the dead rank's cores, the collectives
   shrink to the survivors, and the contaminated Krylov solve recovers by
   re-preconditioning.
2. **Power loss** — the job is killed mid-run, after a coordinated
   checkpoint was written.
3. **Restart** — the run resumes from the checkpoint and finishes with a
   timeline bit-identical to an uninterrupted run.

Run:  python examples/fault_tolerance_demo.py
"""

import os
import tempfile

from repro import RunConfig, WorkloadSpec, run_cfpd
from repro.fault import FaultPlan, FaultSpec, load_checkpoint, resilience_report
from repro.smpi import JobKilledError

SPEC = WorkloadSpec(generations=3, points_per_ring=6, n_steps=8)
CONFIG = RunConfig(cluster="thunder", num_nodes=1, nranks=4,
                   threads_per_rank=2, dlb=True, checkpoint_every=4)


def act_one_degradation(t_clean: float) -> None:
    print("Act 1 — injected faults, graceful degradation")
    print("---------------------------------------------")
    plan = FaultPlan(specs=(
        FaultSpec(kind="straggler", time=t_clean * 0.1, rank=0,
                  factor=4.0, duration=t_clean * 0.3,
                  note="DVFS throttle on rank 0"),
        FaultSpec(kind="rank_death", time=t_clean * 0.55, rank=3,
                  note="node crash"),
        FaultSpec(kind="solver_perturb", time=t_clean * 0.3, count=2,
                  note="bit-flip in the continuity residual"),
    ))
    result = run_cfpd(CONFIG, spec=SPEC, fault_plan=plan)
    print(resilience_report(result))
    print(f"\nclean run   : {t_clean * 1e3:8.3f} ms simulated")
    print(f"degraded run: {result.total_time * 1e3:8.3f} ms simulated "
          f"(completed with {len(result.faults.summary()['dead_ranks'])} "
          f"dead rank)\n")


def act_two_and_three_restart(t_clean: float, clean) -> None:
    print("Act 2 — power loss after the step-4 checkpoint")
    print("----------------------------------------------")
    path = os.path.join(tempfile.mkdtemp(prefix="cfpd-ckpt-"), "run.ckpt")
    plan = FaultPlan(specs=(
        FaultSpec(kind="job_kill", time=t_clean * 0.7, note="power loss"),))
    try:
        run_cfpd(CONFIG, spec=SPEC, fault_plan=plan, checkpoint_path=path)
    except JobKilledError as exc:
        print(f"job killed at t={exc.time * 1e3:.3f} ms: {exc.reason}")
    ckpt = load_checkpoint(path)
    print(f"checkpoint survives: step {ckpt.step} at "
          f"t={ckpt.sim_time * 1e3:.3f} ms "
          f"(written by rank {ckpt.written_by_rank})\n")

    print("Act 3 — restart and finish")
    print("--------------------------")
    restarted = run_cfpd(CONFIG, spec=SPEC, restart_from=path)
    print(resilience_report(restarted))
    same_time = restarted.total_time == clean.total_time
    full = sorted((s.step, s.phase, s.rank, s.t0, s.t1)
                  for s in clean.phase_log.samples)
    merged = sorted((s.step, s.phase, s.rank, s.t0, s.t1)
                    for s in restarted.phase_log.samples)
    print(f"\nrestarted run : {restarted.total_time * 1e3:8.3f} ms simulated")
    print(f"uninterrupted : {clean.total_time * 1e3:8.3f} ms simulated")
    print(f"bit-identical : total_time={same_time}, "
          f"phase log={'identical' if merged == full else 'DIVERGED'} "
          f"({len(merged)} samples)")


def main() -> None:
    clean = run_cfpd(CONFIG, spec=SPEC)
    act_one_degradation(clean.total_time)
    act_two_and_three_restart(clean.total_time, clean)


if __name__ == "__main__":
    main()
