#!/usr/bin/env python3
"""Solve the actual airflow: fractional-step Navier-Stokes in a tube.

The paper's fluid problem (Eqs. 1-2) solved with the numeric machinery of
this repository: vector FE operators, BiCGStab momentum predictor,
consistent-pressure-Poisson projection (Chorin-Temam).  We drive a rapid
inhalation through a trachea-sized tube to steady state, then export the
velocity field as legacy VTK for ParaView.

Run:  python examples/navier_stokes_tube.py [out.vtk]
"""

import sys

import numpy as np

from repro.fem import FlowBC, FractionalStepSolver
from repro.mesh import MeshResolution, Segment, build_tube_mesh, write_vtk


def main() -> None:
    seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                  direction=np.array([0.0, 0.0, -1.0]), length=0.06,
                  radius=0.009)
    mesh = build_tube_mesh(seg, MeshResolution(points_per_ring=10,
                                               max_sections=8))
    z = mesh.coords[:, 2]
    r = np.linalg.norm(mesh.coords[:, :2], axis=1)
    inlet = np.nonzero(np.isclose(z, 0.0) & (r < seg.radius * 0.999))[0]
    outlet = np.nonzero(np.isclose(z, -seg.length))[0]
    wall = np.nonzero(np.isclose(r, seg.radius))[0]  # incl. inlet rim

    # rapid-inhalation-scale inlet: ~4 m/s peak in the trachea
    peak = 4.0
    u_in = np.zeros((len(inlet), 3))
    u_in[:, 2] = -peak * (1.0 - (r[inlet] / seg.radius) ** 2)
    bc = FlowBC(inlet_nodes=inlet, inlet_velocity=u_in, wall_nodes=wall,
                outlet_nodes=outlet)
    # A rapid inhalation is turbulent (Re ~ 4000 in the trachea); on a
    # coarse demo mesh we model the unresolved scales with a constant eddy
    # viscosity bringing the effective Reynolds number down to ~10, the
    # regime this resolution advects stably (the paper's production runs
    # resolve the real regime with VMS-LES on 17.7M elements).
    nu_eddy = 1.15 * peak * 2 * seg.radius / 10.0
    solver = FractionalStepSolver(mesh, bc, viscosity=nu_eddy, density=1.15,
                                  dt=2e-4)
    print(f"mesh: {mesh}")
    print(f"BCs: {len(inlet)} inlet, {len(wall)} wall, {len(outlet)} outlet "
          f"nodes; dt = {solver.dt} s")
    print(f"{'step':>5s} {'mom its':>8s} {'p its':>6s} {'div(u)':>10s}")
    infos = []
    for i in range(60):
        info = solver.step()
        infos.append(info)
        if i % 10 == 0 or i == 59:
            print(f"{i:5d} {info.momentum_iterations:8d} "
                  f"{info.pressure_iterations:6d} {info.div_after:10.2e}")

    speed = np.linalg.norm(solver.u, axis=1)
    print(f"\npeak speed {speed.max():.2f} m/s (inlet peak {peak:.1f}); "
          f"mean axial velocity at mid-tube: "
          f"{-solver.u[np.isclose(z, -0.03, atol=0.006)][:, 2].mean():.2f}")

    out = sys.argv[1] if len(sys.argv) > 1 else "/tmp/tube_flow.vtk"
    write_vtk(mesh, out, cell_data={
        "speed": speed[mesh.elem_nodes[:, 0]],
    }, title="fractional-step tube flow")
    print(f"wrote {out} (open in ParaView: color by 'speed')")


if __name__ == "__main__":
    main()
