#!/usr/bin/env python3
"""Aerosol deposition map in the human airway — the paper's use case.

This is the science the paper's runtime work serves: predicting where
inhaled drug particles deposit.  We inject a monodisperse aerosol at the
nasal orifice during a rapid inhalation (1 L/s), track it with the Ganser
drag law + gravity/buoyancy under Newmark integration, and report the
deposition fraction per airway generation — the "deposition map" whose
clinical integration the paper's introduction motivates.

Also demonstrates the classic size dependence: large particles deposit
early (inertial impaction in the extrathoracic airways — the "lost aerosol
fraction"), small particles penetrate deeper.

Run:  python examples/respiratory_deposition.py
"""

import numpy as np

from repro import AirwayConfig, MeshResolution, build_airway_mesh
from repro.mesh.airway import GEN_FACE, GEN_NASAL
from repro.particles import (
    AirwayFlow,
    NewmarkTracker,
    ParticleProperties,
    STATUS_ACTIVE,
    STATUS_DEPOSITED,
    STATUS_ESCAPED,
    inject_at_inlet,
)

GEN_NAMES = {GEN_FACE: "face/hemisphere", GEN_NASAL: "nasal/pharynx",
             0: "trachea"}


def deposition_by_generation(airway, flow, state):
    """Deposited-particle counts per airway generation."""
    dep = state.status == STATUS_DEPOSITED
    out: dict[int, int] = {}
    if dep.any():
        seg_idx, _, _ = flow.locate(state.x[dep])
        for s in seg_idx:
            gen = airway.segments[int(s)].generation
            out[gen] = out.get(gen, 0) + 1
    return out


def main() -> None:
    airway = build_airway_mesh(AirwayConfig(generations=6),
                               MeshResolution(points_per_ring=6))
    flow = AirwayFlow(airway.segments, inlet_flow_rate=1.0e-3)
    print(f"airway: {len(airway.segments)} segments, {airway.mesh}")
    print()

    n_particles = 1200
    n_steps = 1000
    dt = 1e-4

    print(f"{'diameter':>10s} {'deposited':>10s} {'escaped':>8s} "
          f"{'airborne':>9s}   hottest deposition sites")
    for diameter_um in (1.0, 4.0, 10.0, 20.0):
        particles = ParticleProperties(diameter=diameter_um * 1e-6)
        state = inject_at_inlet(airway, n_particles, seed=42)
        tracker = NewmarkTracker(flow, particles=particles)
        for _ in range(n_steps):
            if state.n_active == 0:
                break
            tracker.step(state, dt)
        counts = state.counts()
        by_gen = deposition_by_generation(airway, flow, state)
        hot = sorted(by_gen.items(), key=lambda kv: -kv[1])[:3]
        hot_txt = ", ".join(
            f"{GEN_NAMES.get(g, f'gen {g}')}: {c}" for g, c in hot)
        print(f"{diameter_um:8.1f}um "
              f"{counts[STATUS_DEPOSITED]:10d} "
              f"{counts[STATUS_ESCAPED]:8d} "
              f"{counts[STATUS_ACTIVE]:9d}   {hot_txt}")

    print()
    print("Expected physics: the deposited fraction grows with particle size")
    print("(inertial impaction + sedimentation); large particles are lost in")
    print("the extrathoracic airways — the fraction CFPD studies try to")
    print("reduce (paper, Sec. 1).")


if __name__ == "__main__":
    main()
