#!/usr/bin/env python3
"""Paraver-style trace timeline of one CFPD step (the paper's Fig. 2).

Runs the Table-1 configuration (96 MPI ranks on a Thunder node, pure MPI)
and renders the per-rank phase timeline of the first step as ASCII — the
same picture Extrae+Paraver give the authors: ragged phase ends showing
load imbalance, and a particles phase owned by a couple of ranks.

Run:  python examples/trace_timeline.py
"""

from repro.experiments import run_fig2, run_table1


def main() -> None:
    fig2 = run_fig2()
    print(fig2.render(width=110, max_ranks=24))
    print()

    # The same data, summarized as Table 1:
    table1 = run_table1()
    print(table1.format())
    print()

    rows = fig2.rows()
    print(f"machine-readable export: {len(rows)} (rank, phase, t0, t1) "
          f"rows for step 0; first three:")
    for row in rows[:3]:
        rank, phase, t0, t1 = row
        print(f"  rank {rank:3d}  {phase:10s} "
              f"[{t0 * 1e6:9.2f}, {t1 * 1e6:9.2f}] us")


if __name__ == "__main__":
    main()
