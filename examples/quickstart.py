#!/usr/bin/env python3
"""Quickstart: run one CFPD simulation and inspect its phase profile.

Builds a small synthetic respiratory airway (4 bronchial generations),
injects an aerosol at the nasal orifice, and runs 5 time steps of the
fluid + particle simulation on a simulated Thunder (Arm) node with 32 MPI
ranks — once with the classic runtime and once with DLB.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, Strategy, WorkloadSpec, get_workload, run_cfpd


def main() -> None:
    spec = WorkloadSpec(generations=4, n_steps=5)
    workload = get_workload(spec)
    print(f"mesh: {workload.mesh}")
    print(f"particles injected: {workload.n_particles}")
    print(f"solver check: {workload.solve_fluid_step()}")
    print()

    for dlb in (False, True):
        config = RunConfig(cluster="thunder", num_nodes=1, nranks=32,
                           threads_per_rank=1,
                           assembly_strategy=Strategy.MULTIDEP,
                           sgs_strategy=Strategy.ATOMICS,
                           dlb=dlb)
        result = run_cfpd(config, workload=workload)
        tag = "with DLB" if dlb else "original"
        print(f"=== {tag}: total simulated time "
              f"{result.total_time * 1e3:.3f} ms ===")
        for row in result.phase_summary():
            print(f"  {row['phase']:10s}  L={row['load_balance']:.2f}  "
                  f"{row['percent_time']:5.1f}% of step time")
        if dlb:
            s = result.dlb_stats
            print(f"  DLB: {s.lend_events} lends, {s.borrow_events} borrows, "
                  f"peak team size {s.max_team_capacity} cores")
        print(f"  {result.pop_metrics().format()}")
        print(f"  energy-to-solution estimate: "
              f"{result.energy_joules():.3f} J")
        print()

    print("deposition after the run:", result.deposition,
          "(0=airborne, 1=deposited on airway wall, 2=reached the lungs)")


if __name__ == "__main__":
    main()
