#!/usr/bin/env python3
"""Synchronous vs coupled execution, with and without DLB (Figs. 3 & 8-11).

The CFPD simulation can run *synchronously* (every rank solves the fluid,
then the particles) or *coupled* (f ranks solve the fluid, p = n - f track
the particles, pipelined).  The right split depends on the particle load
and the machine — a wrong choice costs up to ~2x.  DLB removes the need to
choose: blocked ranks lend their cores across codes.

This example sweeps both modes for both particle loads of the paper on the
simulated Thunder cluster.

Run:  python examples/coupled_vs_sync.py
"""

from repro import RunConfig, Strategy, WorkloadSpec, get_workload, run_cfpd
from repro.app import LARGE_PARTICLE_RATIO, SMALL_PARTICLE_RATIO

CLUSTER = "thunder"
TOTAL_RANKS = 192
SPLITS = (96, 128, 160)


def sweep(particle_ratio: float, tag: str) -> None:
    workload = get_workload(WorkloadSpec(particle_ratio=particle_ratio))
    print(f"--- {tag}: {workload.n_particles} particles, "
          f"{workload.mesh.nelem} elements, {CLUSTER} ---")
    print(f"{'configuration':>14s} {'original':>10s} {'with DLB':>10s} "
          f"{'DLB gain':>9s}")
    configs = [("sync", 0)] + [("coupled", f) for f in SPLITS]
    for mode, f in configs:
        times = {}
        for dlb in (False, True):
            config = RunConfig(cluster=CLUSTER, nranks=TOTAL_RANKS,
                               threads_per_rank=1, mode=mode, fluid_ranks=f,
                               assembly_strategy=Strategy.MULTIDEP,
                               sgs_strategy=Strategy.ATOMICS, dlb=dlb)
            times[dlb] = run_cfpd(config, workload=workload).total_time
        label = (f"{f}+{TOTAL_RANKS - f}" if mode == "coupled"
                 else f"sync {TOTAL_RANKS}")
        print(f"{label:>14s} {times[False] * 1e3:8.2f}ms "
              f"{times[True] * 1e3:8.2f}ms {times[False] / times[True]:8.2f}x")
    print()


def main() -> None:
    sweep(SMALL_PARTICLE_RATIO, "small particle load (paper: 4e5)")
    sweep(LARGE_PARTICLE_RATIO, "large particle load (paper: 7e6)")
    print("Observations to look for (paper Sec. 4.4): the best original")
    print("configuration differs between the two loads; with DLB the choice")
    print("hardly matters, and everything gets faster.")


if __name__ == "__main__":
    main()
