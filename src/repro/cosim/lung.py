"""Lumped-parameter lung/ventilator model (0D side of the co-simulation).

The respiratory system is modelled as the classic single-compartment RC
circuit: one airway resistance ``R_aw`` in series with one
respiratory-system compliance ``C_rs``::

    P_ao(t) = PEEP + CPAP + R_aw Q(t) + V(t)/C_rs        dV/dt = Q

driven by a volume-controlled ventilator with an inspiratory /
inspiratory-pause / passive-expiration cycle (shape per SNIPPETS
snippet 2):

* **inhale** (``0 <= s < t_i``): constant driver flow ``Q = v_t/t_i``
  plus the CPAP support flow ``CPAP/R_aw``;
* **pause** (``t_i <= s < t_i + t_ip``): zero flow, volume held at the
  end-inspiratory value;
* **exhale** (the rest of the cycle): passive relaxation against the
  circuit, ``Q(s) = -Q_e0 exp(-s/tau)`` with ``tau = R_aw C_rs`` and
  ``Q_e0 = (V_end/C_rs - CPAP)/R_aw``.

Everything here is a pure function of simulated time: the analytic
:class:`BreathingPattern` evaluates phase/flow/volume in closed form, and
:func:`simulate_breathing` integrates the same ODE with a deterministic
fixed-step explicit Euler scheme to produce the sampled
:class:`FlowTrace` the co-simulation hub buffers.  No wall clock, no
randomness — reruns are bit-identical by construction.

Units follow the bedside convention of the source model: pressures in
cmH2O, volumes in ml, flows in ml/s, resistance in cmH2O/(l/s) (converted
internally to cmH2O/(ml/s)), compliance in ml/cmH2O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BREATHING_PHASES",
    "BreathingPattern",
    "FlowTrace",
    "LungModel",
    "VENTILATION_PATTERNS",
    "VentilatorSettings",
    "simulate_breathing",
]

#: Phase names in cycle order; also the fixed key order of every
#: per-phase diagnostic dict built from them.
BREATHING_PHASES = ("inhale", "pause", "exhale")

#: Inlet scale factors never drop below this: a real circuit keeps a
#: bias flow through the airway even at zero net lung flow (CPAP/HFNC
#: systems), and a strictly zero inlet would make the CFL rate — and
#: with it the adaptive Δt ladder walk — degenerate.
SCALE_FLOOR = 0.05


@dataclass(frozen=True)
class LungModel:
    """Single-compartment respiratory mechanics (healthy adult default)."""

    #: airway resistance, cmH2O/(l/s)
    r_aw: float = 3.0
    #: respiratory-system compliance, ml/cmH2O
    c_rs: float = 60.0

    def __post_init__(self):
        if self.r_aw <= 0:
            raise ValueError(f"r_aw must be > 0, got {self.r_aw}")
        if self.c_rs <= 0:
            raise ValueError(f"c_rs must be > 0, got {self.c_rs}")

    @property
    def resistance(self) -> float:
        """Airway resistance in cmH2O/(ml/s)."""
        return self.r_aw / 1000.0

    @property
    def time_constant(self) -> float:
        """Expiratory time constant ``tau = R_aw C_rs`` in seconds."""
        return self.resistance * self.c_rs


@dataclass(frozen=True)
class VentilatorSettings:
    """Volume-controlled ventilator / CPAP driver settings."""

    #: tidal volume delivered per breath, ml
    tidal_volume: float = 350.0
    #: positive end-expiratory pressure, cmH2O
    peep: float = 5.0
    #: breaths per minute
    respiratory_rate: float = 15.0
    #: inspiratory time, s
    inspiratory_time: float = 1.0
    #: end-inspiratory pause, s
    inspiratory_pause: float = 0.25
    #: continuous positive airway pressure support, cmH2O
    cpap: float = 0.0

    def __post_init__(self):
        if self.tidal_volume <= 0:
            raise ValueError(
                f"tidal_volume must be > 0, got {self.tidal_volume}")
        if self.respiratory_rate <= 0:
            raise ValueError(
                f"respiratory_rate must be > 0, got {self.respiratory_rate}")
        if self.inspiratory_time <= 0:
            raise ValueError(
                f"inspiratory_time must be > 0, got {self.inspiratory_time}")
        if self.inspiratory_pause < 0:
            raise ValueError(
                f"inspiratory_pause must be >= 0, "
                f"got {self.inspiratory_pause}")
        if self.peep < 0:
            raise ValueError(f"peep must be >= 0, got {self.peep}")
        if self.cpap < 0:
            raise ValueError(f"cpap must be >= 0, got {self.cpap}")
        if self.expiratory_time <= 0:
            raise ValueError(
                "inspiratory_time + inspiratory_pause "
                f"({self.inspiratory_time + self.inspiratory_pause}) must "
                f"leave room to exhale within the cycle time "
                f"({self.cycle_time})")

    @property
    def cycle_time(self) -> float:
        """Breath period ``60 / respiratory_rate`` in seconds."""
        return 60.0 / self.respiratory_rate

    @property
    def expiratory_time(self) -> float:
        """Time left for passive exhalation within one cycle."""
        return self.cycle_time - self.inspiratory_time \
            - self.inspiratory_pause

    @property
    def inspiratory_flow(self) -> float:
        """Constant driver flow during inhalation, ml/s."""
        return self.tidal_volume / self.inspiratory_time


@dataclass(frozen=True)
class BreathingPattern:
    """Closed-form lung+ventilator cycle: phase, flow, volume, pressure.

    Each cycle starts from functional residual capacity (``V = 0`` above
    FRC); the residual at end-expiration is ``exp(-t_e/tau)`` of the
    inhaled volume — negligible for physiological settings (``t_e/tau``
    ~ 15 at the defaults) and treated as re-equilibrated between cycles.
    """

    lung: LungModel = LungModel()
    ventilator: VentilatorSettings = VentilatorSettings()

    def __post_init__(self):
        if self.exhale_flow0 <= 0:
            raise ValueError(
                "cpap too high for passive exhalation: end-inspiratory "
                "recoil pressure does not exceed the support pressure")

    # -- derived flows -----------------------------------------------------

    @property
    def support_flow(self) -> float:
        """CPAP-driven support flow ``CPAP / R_aw`` in ml/s."""
        return self.ventilator.cpap / self.lung.resistance

    @property
    def inhale_flow(self) -> float:
        """Total inspiratory flow: driver plus CPAP support, ml/s."""
        return self.ventilator.inspiratory_flow + self.support_flow

    @property
    def end_volume(self) -> float:
        """Volume above FRC at end of inhalation, ml."""
        return self.inhale_flow * self.ventilator.inspiratory_time

    @property
    def exhale_flow0(self) -> float:
        """Initial expiratory flow magnitude ``(V_end/C - CPAP)/R``."""
        return (self.end_volume / self.lung.c_rs
                - self.ventilator.cpap) / self.lung.resistance

    @property
    def peak_flow(self) -> float:
        """Largest flow magnitude over the cycle (normalizes scales)."""
        return max(self.inhale_flow, self.exhale_flow0)

    # -- pointwise evaluation ----------------------------------------------

    def phase_at(self, t: float):
        """``(phase_name, time_into_phase)`` at simulated breathing time
        ``t`` (cyclic; any real ``t`` is mapped into the first cycle)."""
        vent = self.ventilator
        tau = math.fmod(t, vent.cycle_time)
        if tau < 0.0:
            tau += vent.cycle_time
        if tau < vent.inspiratory_time:
            return "inhale", tau
        tau -= vent.inspiratory_time
        if tau < vent.inspiratory_pause:
            return "pause", tau
        return "exhale", tau - vent.inspiratory_pause

    def flow_at(self, t: float) -> float:
        """Airway flow in ml/s (positive into the lung)."""
        phase, s = self.phase_at(t)
        if phase == "inhale":
            return self.inhale_flow
        if phase == "pause":
            return 0.0
        return -self.exhale_flow0 * math.exp(-s / self.lung.time_constant)

    def volume_at(self, t: float) -> float:
        """Volume above FRC in ml."""
        phase, s = self.phase_at(t)
        if phase == "inhale":
            return self.inhale_flow * s
        if phase == "pause":
            return self.end_volume
        rest = self.lung.c_rs * self.ventilator.cpap
        return rest + (self.end_volume - rest) \
            * math.exp(-s / self.lung.time_constant)

    def pressure_at(self, t: float) -> float:
        """Airway-opening pressure ``PEEP + CPAP + R Q + V/C`` in cmH2O."""
        vent = self.ventilator
        return (vent.peep + vent.cpap
                + self.lung.resistance * self.flow_at(t)
                + self.volume_at(t) / self.lung.c_rs)

    def scale_at(self, t: float) -> float:
        """Inlet boundary scale factor: ``|Q|/Q_peak`` floored at
        :data:`SCALE_FLOOR` (the CPAP/bias-flow floor)."""
        return max(SCALE_FLOOR, abs(self.flow_at(t)) / self.peak_flow)

    def next_inhale_start(self, t: float) -> float:
        """``t`` itself if inhaling at ``t``, else the start of the next
        inhalation — the injection-gating primitive."""
        if self.phase_at(t)[0] == "inhale":
            return t
        cycle = self.ventilator.cycle_time
        return (math.floor(t / cycle) + 1.0) * cycle


#: Named ventilation presets — `WorkloadSpec` field overrides, selectable
#: from the CLI via ``--breathing-pattern``.
VENTILATION_PATTERNS = {
    "rest": {"respiratory_rate": 12.0, "tidal_volume": 400.0,
             "inspiratory_time": 1.2, "inspiratory_pause": 0.25},
    "deep": {"respiratory_rate": 8.0, "tidal_volume": 700.0,
             "inspiratory_time": 1.8, "inspiratory_pause": 0.4},
    "rapid": {"respiratory_rate": 24.0, "tidal_volume": 250.0,
              "inspiratory_time": 0.7, "inspiratory_pause": 0.1},
}


@dataclass(frozen=True, eq=False)
class FlowTrace:
    """Sampled breathing trace: what the 0D side hands to the hub.

    ``phase[k]`` indexes :data:`BREATHING_PHASES`.
    """

    dt: float
    t: np.ndarray
    flow: np.ndarray
    volume: np.ndarray
    pressure: np.ndarray
    phase: np.ndarray

    @property
    def duration(self) -> float:
        """Total covered breathing time ``n_samples * dt``."""
        return len(self.t) * self.dt

    @property
    def peak_flow(self) -> float:
        """Largest sampled flow magnitude."""
        return float(np.abs(self.flow).max())


def simulate_breathing(pattern: BreathingPattern, n_cycles: int = 1,
                       samples_per_cycle: int = 512) -> FlowTrace:
    """Integrate the 0D model with deterministic fixed-step explicit Euler.

    The driver flow is imposed during inhale/pause; exhalation solves the
    passive RC relaxation ``dV/dt = -(V/C - CPAP)/R``.  Step size is
    ``cycle_time / samples_per_cycle`` — a fixed fraction of the cycle, so
    the trace of a given pattern is a pure function of its parameters.
    """
    if n_cycles < 1:
        raise ValueError(f"n_cycles must be >= 1, got {n_cycles}")
    if samples_per_cycle < 8:
        raise ValueError(
            f"samples_per_cycle must be >= 8, got {samples_per_cycle}")
    lung, vent = pattern.lung, pattern.ventilator
    dt = vent.cycle_time / samples_per_cycle
    n = n_cycles * samples_per_cycle
    t = np.arange(n) * dt
    flow = np.zeros(n)
    volume = np.zeros(n)
    pressure = np.zeros(n)
    phase = np.zeros(n, dtype=np.int8)
    v = 0.0
    for k in range(n):
        name, _ = pattern.phase_at(t[k])
        if name == "inhale":
            q = pattern.inhale_flow
        elif name == "pause":
            q = 0.0
        else:
            q = -(v / lung.c_rs - vent.cpap) / lung.resistance
        flow[k] = q
        volume[k] = v
        pressure[k] = vent.peep + vent.cpap + lung.resistance * q \
            + v / lung.c_rs
        phase[k] = BREATHING_PHASES.index(name)
        v += dt * q
    return FlowTrace(dt=dt, t=t, flow=flow, volume=volume,
                     pressure=pressure, phase=phase)
