"""Co-simulation: 0D lung/ventilator model coupled to the CFPD solver.

Two layers, both pure functions of simulated state (the determinism
contract of :mod:`repro.perf` extends through them):

* :mod:`repro.cosim.lung` — lumped-parameter RC respiratory mechanics
  with a ventilator/CPAP driver and a deterministic fixed-step
  integrator producing sampled flow traces;
* :mod:`repro.cosim.hub` — the InterscaleHUB-style buffered transformer
  (receive / transform / forward) that turns a flow trace into inlet
  boundary scale factors for the solver's CFL-driven Δt schedule.

`WorkloadSpec` couples to this package through the ``"breathing"``
(analytic) and ``"ventilator"`` (hub-mediated) inlet waveforms; see
``docs/cosim.md``.
"""

from .hub import CosimHub, HubPolicy, hub_for
from .lung import (
    BREATHING_PHASES,
    BreathingPattern,
    FlowTrace,
    LungModel,
    SCALE_FLOOR,
    VENTILATION_PATTERNS,
    VentilatorSettings,
    simulate_breathing,
)

__all__ = [
    "BREATHING_PHASES",
    "BreathingPattern",
    "CosimHub",
    "FlowTrace",
    "HubPolicy",
    "LungModel",
    "SCALE_FLOOR",
    "VENTILATION_PATTERNS",
    "VentilatorSettings",
    "hub_for",
    "simulate_breathing",
]
