"""Buffered transformer hub between the 0D lung and the CFPD solver.

The two sides advance at different timescales: the lung model lives on
the breathing cycle (seconds, sampled at millisecond resolution), the
CFPD solver walks a CFL-driven Δt ladder at ~1e-4 s of *airway* time that
the workload maps onto a configured number of breathing cycles.  In the
EBRAINS InterscaleHUB style the mediation is split into three pure
stages:

* **receive** — the sampled :class:`~repro.cosim.lung.FlowTrace` is
  partitioned into fixed windows of ``policy.window`` samples (the hub's
  buffer granularity);
* **transform** — each window is reduced to one inlet boundary scale
  factor, ``mean(|Q|) / max|Q|`` floored at
  :data:`~repro.cosim.lung.SCALE_FLOOR`;
* **forward** — :meth:`CosimHub.scale_at` answers the solver's queries at
  any simulated time under an explicit staleness policy: ``"hold"``
  forwards the last *completed* window (zero-order hold — what a real
  asynchronous hub that only ships finished buffers can do), ``"interp"``
  interpolates linearly between window centers (the smoother choice when
  both sides replay a precomputed trace).

Everything is a pure function of simulated state: the trace is
deterministic, the windows are a fixed partition, and ``scale_at`` /
``staleness`` / :meth:`CosimHub.transfer_summary` neither mutate the hub
nor consult the wall clock.  Repeated queries — from a rerun, from the
``engine_batch`` core, from any fluid-toggle combination — therefore
return bit-identical values, which is what lets the ventilator-coupled
digest checks hold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .lung import SCALE_FLOOR, BreathingPattern, FlowTrace, \
    simulate_breathing

__all__ = ["CosimHub", "HubPolicy", "hub_for"]

_HOLD, _INTERP = "hold", "interp"


@dataclass(frozen=True)
class HubPolicy:
    """Buffering/staleness policy of the hub."""

    #: samples per buffered window
    window: int = 16
    #: forwarding mode: ``"hold"`` (last completed window) or
    #: ``"interp"`` (linear between window centers)
    mode: str = "interp"
    #: lower bound on forwarded scales (bias-flow floor)
    floor: float = SCALE_FLOOR

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.mode not in (_HOLD, _INTERP):
            raise ValueError(
                f"mode must be 'hold' or 'interp', got {self.mode!r}")
        if not 0.0 <= self.floor < 1.0:
            raise ValueError(
                f"floor must be in [0, 1), got {self.floor}")


class CosimHub:
    """Receive / transform / forward mediator over one flow trace.

    ``time_scale`` maps solver time to breathing time (breathing seconds
    per simulated second); queries beyond the trace wrap cyclically, so
    the hub answers for any ``t >= 0`` — including the clipped off-ladder
    final step of an adaptive schedule.
    """

    def __init__(self, trace: FlowTrace, policy: HubPolicy = HubPolicy(),
                 time_scale: float = 1.0):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self.trace = trace
        self.policy = policy
        self.time_scale = time_scale
        # receive: partition the trace into fixed windows
        n = len(trace.flow)
        w = policy.window
        self.n_windows = (n + w - 1) // w
        self.window_dt = w * trace.dt
        self.duration = trace.duration
        # transform: one scale factor per window
        peak = trace.peak_flow
        if peak <= 0:
            raise ValueError("flow trace has no nonzero flow")
        raw = np.array([
            float(np.abs(trace.flow[k * w:(k + 1) * w]).mean()) / peak
            for k in range(self.n_windows)])
        self.scales = np.maximum(policy.floor, raw)
        self._centers = (np.arange(self.n_windows) + 0.5) * self.window_dt

    # -- forward -----------------------------------------------------------

    def _breathing_time(self, t: float) -> float:
        """Solver time mapped into the trace (cyclic)."""
        tb = math.fmod(t * self.time_scale, self.duration)
        if tb < 0.0:
            tb += self.duration
        return tb

    def _window_of(self, tb: float) -> int:
        return min(int(tb // self.window_dt), self.n_windows - 1)

    def scale_at(self, t: float) -> float:
        """Forward the inlet scale factor for solver time ``t``."""
        tb = self._breathing_time(t)
        if self.policy.mode == _HOLD:
            k = self._window_of(tb)
            return float(self.scales[max(k - 1, 0)])
        return float(np.interp(tb, self._centers, self.scales))

    def staleness(self, t: float) -> float:
        """Age (in breathing seconds) of the data behind ``scale_at(t)``.

        ``"hold"``: time since the forwarded window completed (the first
        window bootstraps itself, so its staleness is the query time).
        ``"interp"``: distance to the nearest window center.
        """
        tb = self._breathing_time(t)
        if self.policy.mode == _HOLD:
            k = self._window_of(tb)
            if k == 0:
                return float(tb)
            return float(tb - k * self.window_dt)
        return float(np.abs(self._centers - tb).min())

    # -- diagnostics -------------------------------------------------------

    def buffer_stats(self) -> dict:
        """Static buffering facts of this hub (receive/transform side)."""
        return {
            "samples": int(len(self.trace.flow)),
            "trace_dt": float(self.trace.dt),
            "windows": int(self.n_windows),
            "window_dt": float(self.window_dt),
            "mode": self.policy.mode,
            "floor": float(self.policy.floor),
            "time_scale": float(self.time_scale),
            "scale_min": float(self.scales.min()),
            "scale_max": float(self.scales.max()),
        }

    def transfer_summary(self, times) -> dict:
        """Buffer stats plus forward-side statistics over the query
        schedule ``times`` — a pure function of the schedule, so two runs
        with the same Δt plan report identical summaries regardless of
        how often the live solver actually called :meth:`scale_at`."""
        times = list(times)
        stats = self.buffer_stats()
        stats["forwards"] = len(times)
        if times:
            scales = [self.scale_at(t) for t in times]
            stale = [self.staleness(t) for t in times]
            stats["forward_scale_min"] = float(min(scales))
            stats["forward_scale_max"] = float(max(scales))
            stats["staleness_max"] = float(max(stale))
            stats["staleness_mean"] = float(sum(stale) / len(stale))
        return stats


_HUB_CACHE: dict = {}


def hub_for(pattern: BreathingPattern, n_cycles: int, horizon: float,
            policy: HubPolicy = HubPolicy()) -> CosimHub:
    """The hub mapping ``n_cycles`` breaths of ``pattern`` onto the solver
    horizon ``[0, horizon]`` — cached per (pattern, cycles, horizon,
    policy), since the underlying trace is a pure function of those.

    The cache is a wall-clock-only optimization: a cache hit returns an
    identical (not merely equal) hub, so forwarded scales are unaffected.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    key = (pattern, int(n_cycles), float(horizon), policy)
    hub = _HUB_CACHE.get(key)
    if hub is None:
        trace = simulate_breathing(pattern, n_cycles=int(n_cycles))
        scale = n_cycles * pattern.ventilator.cycle_time / horizon
        hub = CosimHub(trace, policy=policy, time_scale=scale)
        _HUB_CACHE[key] = hub
    return hub
