"""The CFPD application (Alya work-alike): cost model, numeric workload,
and the configurable simulation driver."""

from .costs import CostModel, DEFAULT_COSTS
from .driver import RunConfig, RunResult, run_cfpd
from .workload import (
    BREATHING_WAVEFORMS,
    INLET_WAVEFORMS,
    LARGE_PARTICLE_RATIO,
    SMALL_PARTICLE_RATIO,
    Workload,
    WorkloadSpec,
    get_workload,
)

__all__ = [
    "BREATHING_WAVEFORMS",
    "CostModel",
    "DEFAULT_COSTS",
    "INLET_WAVEFORMS",
    "LARGE_PARTICLE_RATIO",
    "RunConfig",
    "RunResult",
    "SMALL_PARTICLE_RATIO",
    "Workload",
    "WorkloadSpec",
    "get_workload",
    "run_cfpd",
]
