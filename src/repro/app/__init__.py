"""The CFPD application (Alya work-alike): cost model, numeric workload,
and the configurable simulation driver."""

from .costs import CostModel, DEFAULT_COSTS
from .driver import RunConfig, RunResult, run_cfpd
from .workload import (
    LARGE_PARTICLE_RATIO,
    SMALL_PARTICLE_RATIO,
    Workload,
    WorkloadSpec,
    get_workload,
)

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "LARGE_PARTICLE_RATIO",
    "RunConfig",
    "RunResult",
    "SMALL_PARTICLE_RATIO",
    "Workload",
    "WorkloadSpec",
    "get_workload",
    "run_cfpd",
]
