"""Numeric workload precomputation for the CFPD experiments.

The driver (see :mod:`repro.app.driver`) separates two layers:

* the **numeric layer** (this module) computes the actual physics once per
  workload — mesh, flow, FE operators (really assembled), solver runs,
  SGS updates, particle trajectories — and derives per-rank *work meters*;
* the **performance layer** replays the distributed execution of that work
  on the simulated cluster (teams, MPI, DLB) for each configuration.

This mirrors the experimental method of the paper: the same simulation is
run under many runtime configurations; only the execution changes, never
the physics.  Everything here is cached aggressively because one figure
sweeps a dozen configurations over the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cosim import (
    BREATHING_PHASES,
    BreathingPattern,
    CosimHub,
    LungModel,
    VentilatorSettings,
    hub_for,
)
from ..fem import (
    CflController,
    DtLadder,
    SGSState,
    assemble_operator,
    element_cfl_rates,
    element_sizes,
    element_work_meters,
    geometry_blocks,
    update_sgs,
)
from ..mesh import AirwayConfig, MeshResolution, build_airway_mesh
from ..mesh.generator import AirwayMesh
from ..partition import Decomposition, decompose_mesh, greedy_coloring
from ..particles import (
    AirwayFlow,
    ElementLocator,
    FluidProperties,
    NewmarkTracker,
    ParticleProperties,
    ParticleState,
    STATUS_ACTIVE,
    STATUS_DEPOSITED,
    STATUS_ESCAPED,
    inject_at_inlet,
)
from ..solver import bicgstab, cg, jacobi_preconditioner
from .costs import CostModel, DEFAULT_COSTS

__all__ = ["WorkloadSpec", "Workload", "RankWork", "StepPlan",
           "get_workload", "BREATHING_WAVEFORMS", "INLET_WAVEFORMS",
           "SMALL_PARTICLE_RATIO", "LARGE_PARTICLE_RATIO"]

#: The paper's particle:element ratios — 4e5 and 7e6 particles in a
#: 17.7M-element mesh.  Scaled workloads keep these ratios.
SMALL_PARTICLE_RATIO = 4e5 / 17.7e6
LARGE_PARTICLE_RATIO = 7e6 / 17.7e6

#: The breathing waveform family: inlet transients derived from the 0D
#: lung/ventilator model of :mod:`repro.cosim`.  Only these couple the
#: waveform into the particle carrier field (see
#: :meth:`Workload.trajectory`); the synthetic ``ramp``/``sine``
#: transients keep their schedule-only semantics.
BREATHING_WAVEFORMS = ("breathing", "ventilator")

#: Every accepted ``WorkloadSpec.inlet_waveform`` mode.
INLET_WAVEFORMS = ("steady", "ramp", "sine") + BREATHING_WAVEFORMS


@dataclass(frozen=True)
class WorkloadSpec:
    """Reproducible description of one CFPD workload."""

    generations: int = 5
    points_per_ring: int = 8
    rings: int = 3
    mesh_seed: int = 2018
    particle_ratio: float = SMALL_PARTICLE_RATIO
    n_steps: int = 10
    dt: float = 1e-4
    inlet_flow_rate: float = 1.0e-3
    injection_seed: int = 7
    #: re-inject every k steps (0 = single injection during the first step;
    #: the paper's pollutant-inhalation scenario injects "several times
    #: during the simulation")
    injection_interval: int = 0
    #: adaptive time stepping: ``"off"`` runs ``n_steps`` fixed steps of
    #: ``dt``; ``"global"`` walks one CFL-driven Δt ladder to the same
    #: simulated endpoint ``t_end`` in fewer steps; ``"local"`` takes
    #: global steps at the top rung with deterministic per-rank subcycling
    #: (see :meth:`Workload.subcycle_matrix`)
    adaptive: str = "off"
    #: target CFL number of the adaptive controller
    cfl_target: float = 0.9
    #: ladder rungs *above* ``dt``: admissible steps are
    #: ``dt * dt_ladder_ratio**k`` for ``k = 0..dt_ladder_rungs``
    dt_ladder_rungs: int = 3
    dt_ladder_ratio: float = 2.0
    #: inlet transient driving the CFL rate over time: ``"steady"``
    #: (scale 1), ``"ramp"`` (0.2 + 0.8 t/T), ``"sine"``
    #: (0.6 + 0.4 sin(2pi t/T)), ``"breathing"`` (analytic
    #: inhale/pause/exhale cycle of :class:`repro.cosim.BreathingPattern`)
    #: or ``"ventilator"`` (the same cycle integrated by the 0D model and
    #: forwarded through the buffered :class:`repro.cosim.CosimHub`)
    inlet_waveform: str = "steady"
    # -- breathing-cycle parameters (the breathing waveform family) --------
    #: breaths per minute of the ventilator driver
    respiratory_rate: float = 15.0
    #: tidal volume per breath, ml
    tidal_volume: float = 350.0
    #: inspiratory time, s
    inspiratory_time: float = 1.0
    #: end-inspiratory pause, s
    inspiratory_pause: float = 0.25
    #: CPAP support pressure, cmH2O
    cpap: float = 0.0
    #: breathing cycles mapped onto the simulated horizon ``t_end``
    breathing_cycles: int = 1
    #: ``"any"`` injects on the fixed grid; ``"inhale"`` moves each
    #: nominal injection to the next inhalation window (drops those whose
    #: window starts beyond ``t_end``) — requires a breathing waveform
    injection_phase: str = "any"
    #: aerosol particle diameter, m (the deposition-vs-size campaign axis)
    particle_diameter: float = 4e-6

    def __post_init__(self):
        if self.adaptive not in ("off", "global", "local"):
            raise ValueError("adaptive must be 'off', 'global' or 'local', "
                             f"got {self.adaptive!r}")
        if self.inlet_waveform not in INLET_WAVEFORMS:
            accepted = ", ".join(f"'{m}'" for m in INLET_WAVEFORMS)
            raise ValueError(f"inlet_waveform must be one of {accepted}, "
                             f"got {self.inlet_waveform!r}")
        if self.cfl_target <= 0:
            raise ValueError(f"cfl_target must be > 0, got {self.cfl_target}")
        if self.dt_ladder_rungs < 1:
            raise ValueError("dt_ladder_rungs must be >= 1, "
                             f"got {self.dt_ladder_rungs}")
        if self.dt_ladder_ratio <= 1.0:
            raise ValueError("dt_ladder_ratio must be > 1, "
                             f"got {self.dt_ladder_ratio}")
        if self.respiratory_rate <= 0:
            raise ValueError("respiratory_rate must be > 0, "
                             f"got {self.respiratory_rate}")
        if self.tidal_volume <= 0:
            raise ValueError(
                f"tidal_volume must be > 0, got {self.tidal_volume}")
        if self.inspiratory_time <= 0:
            raise ValueError("inspiratory_time must be > 0, "
                             f"got {self.inspiratory_time}")
        if self.inspiratory_pause < 0:
            raise ValueError("inspiratory_pause must be >= 0, "
                             f"got {self.inspiratory_pause}")
        if self.cpap < 0:
            raise ValueError(f"cpap must be >= 0, got {self.cpap}")
        if self.breathing_cycles < 1:
            raise ValueError("breathing_cycles must be >= 1, "
                             f"got {self.breathing_cycles}")
        if self.injection_phase not in ("any", "inhale"):
            raise ValueError("injection_phase must be 'any' or 'inhale', "
                             f"got {self.injection_phase!r}")
        if self.particle_diameter <= 0:
            raise ValueError("particle_diameter must be > 0, "
                             f"got {self.particle_diameter}")
        if self.injection_phase == "inhale" \
                and self.inlet_waveform not in BREATHING_WAVEFORMS:
            raise ValueError(
                "injection_phase='inhale' requires a breathing waveform "
                f"({' or '.join(BREATHING_WAVEFORMS)}), "
                f"got inlet_waveform={self.inlet_waveform!r}")
        if self.inlet_waveform in BREATHING_WAVEFORMS:
            # full cross-field validation (e.g. room to exhale, CPAP not
            # defeating passive exhalation) — eager, like everything else
            self.breathing_pattern()

    def particle_count(self, nelem: int) -> int:
        """Particles injected *per injection* for a mesh of ``nelem``
        elements."""
        return max(1, int(round(self.particle_ratio * nelem)))

    def injection_steps(self) -> list[int]:
        """Fixed-grid steps at which a fresh population enters through the
        nose (adaptive runs map these onto schedule steps by simulated
        time; see :meth:`Workload.injection_step_set`)."""
        if self.injection_interval <= 0:
            return [0]
        return list(range(0, self.n_steps, self.injection_interval))

    # -- adaptive schedule inputs -----------------------------------------
    @property
    def t_end(self) -> float:
        """Simulated endpoint: the fixed-grid horizon ``n_steps * dt``.

        Every adaptive mode integrates to exactly this time — adaptivity
        changes *how many steps* it takes, never *where* the run ends.
        """
        return self.n_steps * self.dt

    def ladder(self) -> DtLadder:
        """The spec's Δt ladder, anchored at ``dt`` (the finest rung)."""
        return DtLadder(
            dt_min=self.dt,
            dt_max=self.dt * self.dt_ladder_ratio ** self.dt_ladder_rungs,
            ratio=self.dt_ladder_ratio)

    def controller(self) -> CflController:
        """The deterministic CFL controller of the adaptive modes."""
        return CflController(cfl_target=self.cfl_target,
                             ladder=self.ladder())

    # -- breathing-cycle mapping ------------------------------------------
    def breathing_pattern(self) -> BreathingPattern:
        """The closed-form lung/ventilator cycle of this spec."""
        return BreathingPattern(
            lung=LungModel(),
            ventilator=VentilatorSettings(
                tidal_volume=self.tidal_volume,
                respiratory_rate=self.respiratory_rate,
                inspiratory_time=self.inspiratory_time,
                inspiratory_pause=self.inspiratory_pause,
                cpap=self.cpap))

    @property
    def breathing_time_scale(self) -> float:
        """Breathing seconds per simulated second: ``breathing_cycles``
        full breaths are mapped onto the solver horizon ``t_end``."""
        return (self.breathing_cycles
                * self.breathing_pattern().ventilator.cycle_time
                / self.t_end)

    def breathing_time(self, t: float) -> float:
        """Simulated time ``t`` mapped to breathing time (cyclic beyond
        ``t_end`` — defined for every ``t`` the solver may query)."""
        return t * self.breathing_time_scale

    def breathing_hub(self) -> CosimHub:
        """The (process-cached) co-simulation hub of a ventilator spec."""
        return hub_for(self.breathing_pattern(), self.breathing_cycles,
                       self.t_end)

    def waveform_scale(self, t: float) -> float:
        """Inlet-magnitude scale at simulated time ``t``.

        Drives the time-varying CFL rate — and, in local mode, the
        per-rank subcycle counts whose shifting profile the DLB study
        targets.  A pure function of ``(spec, t)``: bit-reproducible.
        The breathing family additionally scales the carrier flow the
        particles see (see :meth:`Workload.trajectory`): ``"breathing"``
        evaluates the analytic cycle pointwise, ``"ventilator"`` forwards
        the 0D model's integrated trace through the buffered hub.
        """
        if self.inlet_waveform == "ramp":
            return 0.2 + 0.8 * (t / self.t_end)
        if self.inlet_waveform == "sine":
            return 0.6 + 0.4 * float(np.sin(2.0 * np.pi * t / self.t_end))
        if self.inlet_waveform == "breathing":
            return self.breathing_pattern().scale_at(self.breathing_time(t))
        if self.inlet_waveform == "ventilator":
            return self.breathing_hub().scale_at(t)
        return 1.0


@dataclass
class RankWork:
    """Per-rank work meters for one decomposition."""

    rank: int
    element_ids: np.ndarray
    assembly_instr: np.ndarray       # per local element
    assembly_atomics: np.ndarray     # per local element (scatter updates)
    sgs_instr: np.ndarray            # per local element
    colors: np.ndarray               # per local element (node-sharing)
    sub_labels: np.ndarray
    sub_adjacency: list
    solver_nnz: float                # nonzeros of locally-owned matrix rows
    halo_bytes: float
    #: (neighbor_rank, bytes) pairs for the halo exchange
    neighbors: list


@dataclass
class DecompData:
    """A decomposition plus all derived per-rank meters."""

    decomposition: Decomposition
    ranks: list          # list[RankWork]
    labels: np.ndarray


@dataclass(frozen=True)
class StepPlan:
    """One entry of the Δt schedule (a global step of the simulation).

    ``rung`` is -1 for fixed-Δt steps and for the final clipped step of an
    adaptive run (which lands exactly on ``t_end`` with an off-ladder Δt);
    ``cfl`` is the global CFL number ``scale(t) * max_rate * dt`` of the
    step; ``scale`` the inlet waveform factor at the step start.
    """

    t: float
    dt: float
    rung: int
    cfl: float
    scale: float


class Workload:
    """All numeric state shared by the experiment configurations."""

    def __init__(self, spec: WorkloadSpec, costs: CostModel = DEFAULT_COSTS):
        self.spec = spec
        self.costs = costs
        self.airway: AirwayMesh = build_airway_mesh(
            AirwayConfig(generations=spec.generations, seed=spec.mesh_seed),
            MeshResolution(points_per_ring=spec.points_per_ring,
                           rings=spec.rings))
        self.mesh = self.airway.mesh
        self.flow = AirwayFlow(self.airway.segments,
                               inlet_flow_rate=spec.inlet_flow_rate)
        self.nodal_velocity = self.flow.nodal_velocity(self.mesh.coords)
        self.n_particles = spec.particle_count(self.mesh.nelem)
        self._decomps: dict = {}
        self._trajectory: Optional[list] = None
        self._histograms: dict = {}
        self._fluid_solution: Optional[dict] = None
        self._sgs_norms: Optional[list] = None
        self._schedule: Optional[list] = None
        self._element_rates: Optional[np.ndarray] = None
        self._subcycles: dict = {}

    # -- decompositions -------------------------------------------------------
    def decomposition(self, nranks: int, subdomains_per_rank: int = 64,
                      method: str = "rcb",
                      min_shared_nodes: int = 4,
                      min_elements_per_subdomain: int = 3) -> DecompData:
        """The (cached) two-level decomposition + work meters for ``nranks``.

        ``min_shared_nodes=4`` keeps the multidep subdomain adjacency at the
        production-scale degree (~6) on strongly scaled-down meshes, and the
        subdomain granularity floor is low so teams always have several
        times more tasks than threads; see
        :func:`repro.partition.subdomain_decomposition` and EXPERIMENTS.md.
        """
        key = (nranks, subdomains_per_rank, method, min_shared_nodes,
               min_elements_per_subdomain)
        if key in self._decomps:
            return self._decomps[key]
        dec = decompose_mesh(self.airway, nranks,
                             subdomains_per_rank=subdomains_per_rank,
                             method=method,
                             min_shared_nodes=min_shared_nodes,
                             min_elements_per_subdomain=min_elements_per_subdomain)
        row_nnz, node_owner = self._row_structure(dec.labels, nranks)
        neighbor_bytes = self._neighbor_bytes(dec.labels, nranks)
        ranks = []
        for dom in dec.domains:
            ids = dom.element_ids
            # the same per-element meters the assembly kernel reports
            a_instr, atomics = element_work_meters(
                self.mesh, self.costs.assembly_instr, ids)
            s_instr, _ = element_work_meters(
                self.mesh, self.costs.sgs_instr, ids)
            colors = (greedy_coloring(self.mesh.node_sharing_adjacency(ids))
                      if len(ids) else np.zeros(0, dtype=np.int32))
            owned_rows = node_owner == dom.rank
            ranks.append(RankWork(
                rank=dom.rank,
                element_ids=ids,
                assembly_instr=a_instr,
                assembly_atomics=atomics,
                sgs_instr=s_instr,
                colors=colors,
                sub_labels=dom.sub_labels,
                sub_adjacency=dom.sub_adjacency,
                solver_nnz=float(row_nnz[owned_rows].sum()),
                halo_bytes=dom.halo_nodes * self.costs.halo_bytes_per_node,
                neighbors=neighbor_bytes[dom.rank]))
        data = DecompData(decomposition=dec, ranks=ranks, labels=dec.labels)
        self._decomps[key] = data
        return data

    def _neighbor_bytes(self, labels: np.ndarray, nranks: int) -> list:
        """Per rank: (neighbor rank, halo bytes) pairs — ranks sharing
        interface nodes exchange their values every step."""
        from scipy import sparse

        valid = self.mesh.elem_nodes.ravel() >= 0
        nodes = self.mesh.elem_nodes.ravel()[valid]
        owners = np.repeat(labels, 6)[valid]
        inc = sparse.csr_matrix(
            (np.ones(len(nodes), dtype=np.int32), (nodes, owners)),
            shape=(self.mesh.nnodes, nranks))
        inc.data[:] = 1
        shared = (inc.T @ inc).tocoo()   # (r, s): nodes touched by both
        out: list[list] = [[] for _ in range(nranks)]
        for r, t, count in zip(shared.row, shared.col, shared.data):
            if r != t and count > 0:
                out[int(r)].append(
                    (int(t), float(count) * self.costs.halo_bytes_per_node))
        return out

    def _row_structure(self, labels: np.ndarray, nranks: int):
        """Assembled-matrix row sizes and a node -> owning rank map.

        Solver rows follow a *node-balanced* distribution (geometric), as
        Alya's solvers do: the remaining per-rank nnz variation comes from
        connectivity-degree differences, which is why the solver phases are
        much better balanced than the assembly (Table 1: 0.90 vs 0.66).
        """
        from ..partition import rcb_partition

        K = self.operators()["continuity"]
        row_nnz = np.diff(K.indptr)
        owner = rcb_partition(self.mesh.coords, nranks,
                              weights=row_nnz.astype(np.float64))
        return row_nnz, owner

    # -- adaptive Δt schedule -----------------------------------------------
    def element_rates(self) -> np.ndarray:
        """(nelem,) CFL rates ``|u_e| / h_e`` of the steady flow field.

        The time-varying rate of the transient run is
        ``waveform_scale(t) * element_rates()`` — the inlet waveform scales
        the whole field uniformly, so one cached element sweep serves every
        step of the schedule.
        """
        if self._element_rates is None:
            self._element_rates = element_cfl_rates(
                self.nodal_velocity, geometry_blocks(self.mesh),
                self.mesh.nelem)
        return self._element_rates

    def dt_schedule(self) -> list[StepPlan]:
        """The (cached) deterministic Δt schedule of the run.

        ``off``: ``n_steps`` fixed steps of ``spec.dt`` — bit-identical to
        the pre-adaptive behaviour.  ``global``: the CFL controller walks
        the ladder against ``waveform_scale(t) * max_rate``, reaching the
        same endpoint ``t_end`` in fewer steps.  ``local``: global steps at
        the ladder's top rung (per-rank refinement happens *inside* each
        global step via :meth:`subcycle_matrix`, keeping the collective
        pattern identical on every rank).  The final adaptive step is
        clipped to land exactly on ``t_end``.
        """
        if self._schedule is not None:
            return self._schedule
        spec = self.spec
        rate_max = float(self.element_rates().max(initial=0.0))
        if spec.adaptive == "off":
            self._schedule = [
                StepPlan(t=s * spec.dt, dt=spec.dt, rung=-1,
                         cfl=rate_max * spec.dt, scale=1.0)
                for s in range(spec.n_steps)]
            return self._schedule
        ladder = spec.ladder()
        control = spec.controller()
        t_end = spec.t_end
        plans: list[StepPlan] = []
        t = 0.0
        rung = ladder.top
        while t_end - t > 1e-9 * t_end:
            scale = spec.waveform_scale(t)
            rate = scale * rate_max
            if spec.adaptive == "global":
                rung = control.rung_for(rate, rung)
            dt = ladder.dt_of(rung)
            clipped = min(dt, t_end - t)
            plans.append(StepPlan(
                t=t, dt=clipped,
                rung=rung if clipped == dt else -1,
                cfl=rate * clipped, scale=scale))
            t += clipped
        self._schedule = plans
        return plans

    @property
    def n_sim_steps(self) -> int:
        """Steps the schedule actually takes to reach ``t_end``."""
        return len(self.dt_schedule())

    def injection_step_set(self) -> set:
        """Schedule indices that inject a fresh particle population.

        Fixed-grid injection steps are mapped onto the schedule by
        simulated time (the first schedule step starting at or after the
        nominal injection time); in ``off`` mode with ungated injection
        this is exactly ``spec.injection_steps()``.

        With ``injection_phase="inhale"`` each nominal injection time is
        first moved to the start of the next inhalation window of the
        breathing cycle (times already inhaling stay put); injections
        whose window begins at or beyond ``t_end`` are dropped — aerosol
        is only released while the subject breathes in.
        """
        spec = self.spec
        gated = spec.injection_phase == "inhale"
        if spec.adaptive == "off" and not gated:
            return set(spec.injection_steps())
        starts = [plan.t for plan in self.dt_schedule()]
        eps = 1e-9 * spec.t_end
        pattern = spec.breathing_pattern() if gated else None
        out = set()
        for s in spec.injection_steps():
            t_inj = s * spec.dt
            if gated:
                t_b = pattern.next_inhale_start(spec.breathing_time(t_inj))
                t_inj = t_b / spec.breathing_time_scale
                if t_inj >= spec.t_end - eps:
                    continue
            idx = len(starts) - 1
            for i, t0 in enumerate(starts):
                if t0 >= t_inj - eps:
                    idx = i
                    break
            out.add(idx)
        return out

    def subcycle_matrix(self, nranks: int, method: str = "rcb"
                        ) -> np.ndarray:
        """(n_sim_steps, nranks) fluid subcycles per rank per global step.

        All ones except in ``local`` mode, where each rank walks its own
        rung ladder against ``waveform_scale(t) * max(element_rates)`` over
        its elements and subcycles ``dt_global / dt_rank`` times inside the
        global step — compute repeats, while the halo/allreduce pattern
        stays once per global step, so collectives keep matching across
        ranks.  The time-varying, rank-varying counts are the shifting
        imbalance profile of the DLB interaction study.
        """
        key = (nranks, method)
        if key in self._subcycles:
            return self._subcycles[key]
        schedule = self.dt_schedule()
        sub = np.ones((len(schedule), nranks), dtype=np.int64)
        if self.spec.adaptive == "local":
            labels = self.decomposition(nranks, method=method).labels
            rates = self.element_rates()
            rank_rate = np.zeros(nranks)
            for r in range(nranks):
                mine = rates[labels == r]
                rank_rate[r] = float(mine.max()) if len(mine) else 0.0
            ladder = self.spec.ladder()
            control = self.spec.controller()
            rungs = np.full(nranks, ladder.top, dtype=np.int64)
            for s, plan in enumerate(schedule):
                for r in range(nranks):
                    rungs[r] = control.rung_for(plan.scale * rank_rate[r],
                                                int(rungs[r]))
                    sub[s, r] = max(
                        1, int(round(plan.dt / ladder.dt_of(int(rungs[r])))))
        self._subcycles[key] = sub
        return sub

    def schedule_summary(self, nranks: Optional[int] = None,
                         method: str = "rcb") -> dict:
        """Diagnostics of the adaptive schedule (for ``RunResult``)."""
        schedule = self.dt_schedule()
        spec = self.spec
        out = {
            "mode": spec.adaptive,
            "waveform": spec.inlet_waveform,
            "n_sim_steps": len(schedule),
            "fixed_steps": spec.n_steps,
            "steps_saved": spec.n_steps - len(schedule),
            "t_end": spec.t_end,
            "dt_values": sorted({plan.dt for plan in schedule}),
            "max_cfl": max(plan.cfl for plan in schedule),
            "h_min": float(element_sizes(self.mesh).min()),
        }
        if nranks is not None and spec.adaptive == "local":
            sub = self.subcycle_matrix(nranks, method=method)
            out["subcycles_total"] = int(sub.sum())
            out["subcycles_max"] = int(sub.max())
            out["subcycle_imbalance"] = float(
                sub.max(axis=1).mean() / max(sub.mean(), 1e-30))
        return out

    # -- real numerics ------------------------------------------------------
    def operators(self) -> dict:
        """The (cached) globally assembled momentum/continuity operators."""
        if self._fluid_solution is None or "momentum" not in \
                self._fluid_solution:
            momentum = assemble_operator(
                self.mesh, kappa=1.9e-5, mass_coeff=1.15 / self.spec.dt,
                velocity=self.nodal_velocity).matrix.tocsr()
            continuity_res = assemble_operator(self.mesh, kappa=1.0)
            mass = assemble_operator(self.mesh, kappa=0.0,
                                     mass_coeff=1.0).matrix
            continuity = (continuity_res.matrix + 1e-3 * mass).tocsr()
            self._fluid_solution = {"momentum": momentum,
                                    "continuity": continuity}
        return self._fluid_solution

    def solve_fluid_step(self) -> dict:
        """Really run the momentum + continuity solves once (cached).

        Momentum uses Jacobi-preconditioned BiCGStab; continuity uses
        subdomain-deflated CG (Alya's production combination).  Returns
        iteration counts and convergence flags — the numeric exercise of
        the Solver1/Solver2 code paths.
        """
        from ..partition import rcb_partition
        from ..solver import deflated_cg

        ops = self.operators()
        if "solves" not in self._fluid_solution:
            rng = np.random.default_rng(0)
            b_m = ops["momentum"] @ rng.normal(size=self.mesh.nnodes)
            res_m = bicgstab(ops["momentum"], b_m, tol=1e-8, maxiter=400,
                             M=jacobi_preconditioner(ops["momentum"]))
            b_c = ops["continuity"] @ rng.normal(size=self.mesh.nnodes)
            groups = rcb_partition(self.mesh.coords,
                                   max(2, min(64, self.mesh.nnodes // 50)))
            res_c = deflated_cg(ops["continuity"], b_c, groups,
                                tol=1e-8, maxiter=800,
                                M=jacobi_preconditioner(ops["continuity"]))
            res_c_plain = cg(ops["continuity"], b_c, tol=1e-8, maxiter=800,
                             M=jacobi_preconditioner(ops["continuity"]))
            self._fluid_solution["solves"] = {
                "momentum_iterations": res_m.iterations,
                "momentum_converged": res_m.converged,
                "continuity_iterations": res_c.iterations,
                "continuity_converged": res_c.converged,
                "continuity_plain_cg_iterations": res_c_plain.iterations,
            }
        return self._fluid_solution["solves"]

    def sgs_history(self) -> list:
        """Really run the SGS update each step (cached); returns the history
        of subgrid-velocity norms."""
        if self._sgs_norms is None:
            state = SGSState.zeros(self.mesh.nelem)
            norms = []
            for plan in self.dt_schedule():
                update_sgs(self.mesh, state, self.nodal_velocity,
                           viscosity=1.9e-5, dt=plan.dt)
                norms.append(float(np.linalg.norm(state.values)))
            self._sgs_norms = norms
        return self._sgs_norms

    # -- particles ------------------------------------------------------------
    def _tracker(self) -> NewmarkTracker:
        """The spec's particle tracker (diameter from the spec)."""
        return NewmarkTracker(
            self.flow,
            particles=ParticleProperties(
                diameter=self.spec.particle_diameter),
            fluid=FluidProperties())

    def _step_particles(self, tracker, state, plan) -> None:
        """Advance ``state`` by one schedule step.

        For the breathing waveform family the carrier flow (and the
        injection speed, via :meth:`_inject`) is scaled by the step's
        waveform factor — the particles actually feel the inhale /
        pause / exhale transient.  The synthetic ``ramp``/``sine``
        waveforms keep their pre-cosim schedule-only semantics, so every
        existing trajectory replays bit for bit.
        """
        if self.spec.inlet_waveform in BREATHING_WAVEFORMS:
            tracker.step(state, plan.dt, flow_scale=plan.scale)
        else:
            tracker.step(state, plan.dt)

    def _inject(self, state, s: int, plan) -> None:
        """Inject a fresh population at schedule step ``s``."""
        scale = plan.scale \
            if self.spec.inlet_waveform in BREATHING_WAVEFORMS else 1.0
        state.extend(inject_at_inlet(
            self.airway, self.n_particles,
            seed=self.spec.injection_seed + s,
            speed_fraction=0.5 * scale))

    def trajectory(self) -> list:
        """Per step: (positions of active particles at step start, state
        snapshot counts).  Computed once with the real tracker."""
        if self._trajectory is None:
            injection_steps = self.injection_step_set()
            state = ParticleState.empty()
            tracker = self._tracker()
            steps = []
            for s, plan in enumerate(self.dt_schedule()):
                if s in injection_steps:
                    self._inject(state, s, plan)
                act = state.active
                steps.append({"positions": state.x[act].copy(),
                              "counts": state.counts()})
                self._step_particles(tracker, state, plan)
            self._final_particle_state = state
            self._trajectory = steps
        return self._trajectory

    def particle_state_at(self, step: int) -> ParticleState:
        """Particle population at the *start* of ``step``, replayed
        deterministically (injections and tracking of all earlier steps).

        Used by checkpointing: the state is a pure function of the spec,
        so a restarted run can verify a checkpoint bit-for-bit.
        """
        injection_steps = self.injection_step_set()
        state = ParticleState.empty()
        tracker = self._tracker()
        for s, plan in enumerate(self.dt_schedule()[:step]):
            if s in injection_steps:
                self._inject(state, s, plan)
            self._step_particles(tracker, state, plan)
        return state

    @property
    def total_injected(self) -> int:
        """Particles injected over the whole run (all injections)."""
        return self.n_particles * len(self.injection_step_set())

    def deposition_summary(self) -> dict:
        """Particle status counts after the last step."""
        self.trajectory()
        return self._final_particle_state.counts()

    def cosim_summary(self) -> dict:
        """Diagnostics of a breathing-coupled run (for ``RunResult``).

        Per-phase step counts, hub buffer/transfer statistics (ventilator
        waveform), injection windows, and cycle-resolved deposition
        tallies — all derived from the deterministic schedule and
        trajectory, so two bit-identical runs report bit-identical
        summaries.
        """
        spec = self.spec
        if spec.inlet_waveform not in BREATHING_WAVEFORMS:
            return {}
        pattern = spec.breathing_pattern()
        schedule = self.dt_schedule()
        cycle_time = pattern.ventilator.cycle_time
        phases = [pattern.phase_at(spec.breathing_time(plan.t))[0]
                  for plan in schedule]
        cycles = [min(int(spec.breathing_time(plan.t) // cycle_time),
                      spec.breathing_cycles - 1) for plan in schedule]
        steps_by_phase = {name: phases.count(name)
                          for name in BREATHING_PHASES}
        # per-step deposition deltas, attributed to the phase/cycle the
        # step started in
        traj = self.trajectory()
        final = self._final_particle_state.counts()
        deposited_by_phase = {name: 0 for name in BREATHING_PHASES}
        deposited_by_cycle = [0] * spec.breathing_cycles
        for s in range(len(schedule)):
            before = traj[s]["counts"][STATUS_DEPOSITED]
            after = (traj[s + 1]["counts"][STATUS_DEPOSITED]
                     if s + 1 < len(schedule) else final[STATUS_DEPOSITED])
            delta = int(after - before)
            deposited_by_phase[phases[s]] += delta
            deposited_by_cycle[cycles[s]] += delta
        injections = sorted(self.injection_step_set())
        out = {
            "waveform": spec.inlet_waveform,
            "pattern": {
                "respiratory_rate": spec.respiratory_rate,
                "tidal_volume": spec.tidal_volume,
                "inspiratory_time": spec.inspiratory_time,
                "inspiratory_pause": spec.inspiratory_pause,
                "cpap": spec.cpap,
                "cycle_time": cycle_time,
                "cycles": spec.breathing_cycles,
            },
            "n_sim_steps": len(schedule),
            "steps_by_phase": steps_by_phase,
            "injection_steps": injections,
            "injection_phases": [phases[s] for s in injections],
            "injection_phase_policy": spec.injection_phase,
            "total_injected": self.total_injected,
            "deposited": final[STATUS_DEPOSITED],
            "escaped": final[STATUS_ESCAPED],
            "active": final[STATUS_ACTIVE],
            "deposition_fraction": (
                final[STATUS_DEPOSITED] / self.total_injected
                if self.total_injected else 0.0),
            "deposited_by_phase": deposited_by_phase,
            "deposited_by_cycle": deposited_by_cycle,
        }
        if spec.inlet_waveform == "ventilator":
            out["hub"] = spec.breathing_hub().transfer_summary(
                [plan.t for plan in schedule])
        return out

    def particle_histograms(self, nranks: int, method: str = "rcb"
                            ) -> np.ndarray:
        """(n_sim_steps, nranks) active-particle counts per owning rank."""
        key = (nranks, method)
        if key not in self._histograms:
            data = self.decomposition(nranks, method=method)
            locator = ElementLocator(self.airway, data.labels)
            hist = np.zeros((self.n_sim_steps, nranks), dtype=np.int64)
            for s, step in enumerate(self.trajectory()):
                pos = step["positions"]
                if len(pos):
                    hist[s] = locator.rank_histogram(pos, nranks)
            self._histograms[key] = hist
        return self._histograms[key]

    def overlap_bytes(self, f: int, p: int, method: str = "rcb"
                      ) -> np.ndarray:
        """(f, p) matrix: bytes of velocity data fluid rank i sends particle
        rank j each step (proportional to the element overlap of the two
        partitions)."""
        lf = self.decomposition(f, method=method).labels
        lp = self.decomposition(p, method=method).labels
        counts = np.zeros((f, p))
        np.add.at(counts, (lf, lp), 1.0)
        # ~ nodes per element x bytes per node
        return counts * 4.5 * self.costs.halo_bytes_per_node


_WORKLOADS: dict = {}


def get_workload(spec: WorkloadSpec, costs: CostModel = DEFAULT_COSTS
                 ) -> Workload:
    """Process-wide workload cache (one numeric precompute per spec)."""
    key = (spec, id(costs) if costs is not DEFAULT_COSTS else 0)
    if key not in _WORKLOADS:
        _WORKLOADS[key] = Workload(spec, costs)
    return _WORKLOADS[key]
