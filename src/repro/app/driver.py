"""The CFPD application driver — the Alya work-alike.

Runs the respiratory-simulation time step under a configurable runtime
setup on the simulated cluster:

* **synchronous mode** (paper Fig. 3 top): every rank executes, per step,
  matrix assembly -> momentum solve (Solver1) -> continuity solve
  (Solver2) -> subgrid scale (SGS) -> particle transport -> migration;
* **coupled mode** (Fig. 3 bottom): ``f`` ranks run the fluid phases and
  ship nodal velocities to ``p = n - f`` ranks that run the particle
  transport, pipelined across steps.

Each phase executes as a task graph built by the configured strategy
(ATOMICS / COLORING / MULTIDEP for the racy element loops), on the rank's
malleable thread team; MPI calls go through the simulated MPI layer whose
PMPI hooks feed DLB when enabled.  Phase timings land in a
:class:`~repro.trace.PhaseLog` — the source of every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core import (
    DLB,
    Strategy,
    StrategyParams,
    Team,
    build_element_loop_graph,
    build_parallel_for_graph,
)
from ..fem.fractional_step import FLUID_COUNTERS
from ..machine import get_cluster
from ..perf import toggles as _perf_toggles
from ..smpi import RankDeadError, World
from ..sim import Engine
from ..trace import PhaseLog
from .costs import CostModel, DEFAULT_COSTS
from .workload import Workload, WorkloadSpec, get_workload

__all__ = ["RunConfig", "RunResult", "run_cfpd"]


@dataclass(frozen=True)
class RunConfig:
    """One runtime configuration of the CFPD simulation."""

    cluster: str = "marenostrum4"
    num_nodes: int = 2
    nranks: int = 96
    threads_per_rank: int = 1
    mode: str = "sync"                 # "sync" | "coupled"
    fluid_ranks: int = 0               # coupled mode: f (particles = n - f)
    assembly_strategy: Strategy = Strategy.MULTIDEP
    sgs_strategy: Strategy = Strategy.ATOMICS
    dlb: bool = False
    mapping: Optional[str] = None      # None: block for sync, cyclic coupled
    subdomains_per_rank: int = 64
    subdomain_min_shared: int = 4
    partition_method: str = "rcb"
    strategy_params: StrategyParams = StrategyParams()
    #: attach a Tracer to the MPI world (raw blocking-call intervals in
    #: RunResult.tracer; costs memory on long runs)
    collect_mpi_trace: bool = False
    #: team task scheduler: "lpt" (default), "fifo" or "lifo"
    scheduler: str = "lpt"
    #: coordinated checkpoint barrier every N steps (0: never).  Part of the
    #: run *timing* whether or not a checkpoint path is given, so a full
    #: run and a restarted one stay bit-identical.
    checkpoint_every: int = 0

    def __post_init__(self):
        """Eager validation: fail at construction with an actionable message
        instead of deep inside the simulated run."""
        from ..machine.presets import PRESETS
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        if self.threads_per_rank < 1:
            raise ValueError(
                f"threads_per_rank must be >= 1, got {self.threads_per_rank}")
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.mode not in ("sync", "coupled"):
            raise ValueError(
                f"unknown mode {self.mode!r}; available: 'sync', 'coupled'")
        if self.mode == "coupled" and not 1 <= self.fluid_ranks \
                <= self.nranks - 1:
            raise ValueError(
                f"coupled mode needs 1 <= fluid_ranks < nranks "
                f"(got {self.fluid_ranks} of {self.nranks})")
        if self.mapping not in (None, "block", "cyclic"):
            raise ValueError(
                f"unknown mapping {self.mapping!r}; available: "
                f"'block', 'cyclic' (or None for the mode default)")
        if self.scheduler not in Team.SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; available: "
                f"{Team.SCHEDULERS}")
        if self.partition_method not in ("rcb", "multilevel"):
            raise ValueError(
                f"unknown partition_method {self.partition_method!r}; "
                f"available: 'rcb', 'multilevel'")
        if self.subdomains_per_rank < 1:
            raise ValueError(f"subdomains_per_rank must be >= 1, "
                             f"got {self.subdomains_per_rank}")
        if self.checkpoint_every < 0:
            raise ValueError(f"checkpoint_every must be >= 0, "
                             f"got {self.checkpoint_every}")
        if self.cluster.lower() not in PRESETS:
            raise ValueError(
                f"unknown cluster {self.cluster!r}; available: "
                f"{sorted(PRESETS)}")

    def resolved_mapping(self) -> str:
        """Process placement: interleave the two codes in coupled mode so
        DLB (shared-memory only) can lend between them."""
        if self.mapping is not None:
            return self.mapping
        return "cyclic" if self.mode == "coupled" else "block"

    def label(self) -> str:
        """Short human-readable descriptor (figure x-axis labels)."""
        if self.mode == "coupled":
            base = f"{self.fluid_ranks}+{self.nranks - self.fluid_ranks}"
        else:
            base = f"sync {self.nranks}x{self.threads_per_rank}"
        return base + (" +DLB" if self.dlb else "")


@dataclass
class RunResult:
    """Outcome of one simulated CFPD run."""

    config: RunConfig
    total_time: float                  # simulated seconds for n_steps
    phase_log: PhaseLog
    dlb_stats: object
    solver_info: dict
    deposition: dict
    n_particles: int
    tracer: object = None              # Tracer if collect_mpi_trace
    faults: object = None              # FaultInjector if a plan was injected
    #: (step, sim_time) of every checkpoint written during the run
    checkpoints: list = field(default_factory=list)
    #: host-side engine diagnostics (perf.instrument.engine_counters):
    #: event/cohort/arena/plan counters.  Wall-clock instrumentation only —
    #: never part of the simulated digest or the checkpoint bytes.
    engine_diag: dict = field(default_factory=dict)
    #: adaptive-Δt schedule diagnostics (Workload.schedule_summary): mode,
    #: steps taken vs the fixed grid, Δt values, max CFL, and — in local
    #: mode — subcycle totals and imbalance.  Empty for fixed-Δt runs.
    adaptive_diag: dict = field(default_factory=dict)
    #: co-simulation diagnostics (Workload.cosim_summary): per-phase step
    #: counts, hub buffer/transfer stats, injection windows, and
    #: cycle-resolved deposition tallies.  Empty unless the spec uses a
    #: breathing-family inlet waveform.
    cosim_diag: dict = field(default_factory=dict)

    def mpi_seconds_by_rank(self):
        """Blocking-MPI time per rank (needs collect_mpi_trace=True)."""
        if self.tracer is None:
            raise ValueError("run with collect_mpi_trace=True")
        import numpy as np
        out = np.zeros(self.config.nranks)
        for iv in self.tracer.by_category("mpi"):
            out[iv.rank] += iv.duration
        return out

    def phase_summary(self) -> list[dict]:
        """Table-1 rows."""
        return self.phase_log.summary()

    def ipc(self, phase: str) -> float:
        """Achieved IPC of ``phase`` on this run's core."""
        freq = get_cluster(self.config.cluster).node.core.freq_ghz
        return self.phase_log.ipc(phase, freq)

    def step_times(self) -> list:
        """Wall-clock duration of each simulated time step."""
        from collections import defaultdict
        spans: dict = defaultdict(lambda: [float("inf"), 0.0])
        for sample in self.phase_log.samples:
            lo, hi = spans[sample.step]
            spans[sample.step] = [min(lo, sample.t0), max(hi, sample.t1)]
        return [spans[s][1] - spans[s][0] for s in sorted(spans)]

    def pop_metrics(self):
        """POP efficiencies (LB x CommE = PE) of the whole run."""
        from ..trace import pop_from_phase_log
        return pop_from_phase_log(self.phase_log, self.total_time)

    def energy_joules(self) -> float:
        """Estimated energy-to-solution (see repro.machine.energy)."""
        import numpy as np

        from ..machine import energy_estimate
        cluster = get_cluster(self.config.cluster, self.config.num_nodes)
        busy = np.zeros(self.config.nranks)
        for s in self.phase_log.samples:
            busy[s.rank] += s.busy
        cores = self.config.nranks * self.config.threads_per_rank
        return energy_estimate(cluster.name, busy, self.total_time, cores,
                               num_nodes=self.config.num_nodes)


# ---------------------------------------------------------------------------
# graph construction
# ---------------------------------------------------------------------------

class _RunContext:
    """Prebuilt graphs and metadata shared by all rank programs of a run."""

    def __init__(self, workload: Workload, config: RunConfig,
                 costs: CostModel, start_step: int = 0,
                 fault_tolerant: bool = False):
        self.workload = workload
        self.config = config
        self.costs = costs
        self.spec = workload.spec
        self.log = PhaseLog(config.nranks)
        self.teams: dict[int, Team] = {}
        self.start_step = start_step
        #: degrade instead of failing when a peer dies mid-exchange
        self.fault_tolerant = fault_tolerant
        #: global steps of the run — the Δt schedule length (== spec.n_steps
        #: for fixed Δt, fewer under the adaptive modes)
        self.n_steps = workload.n_sim_steps
        #: steps opening with a coordinated checkpoint barrier.  Steps at or
        #: before ``start_step`` are excluded so a restarted run does not
        #: re-checkpoint its own entry point.
        self.checkpoint_steps = {
            s for s in range(1, self.n_steps)
            if config.checkpoint_every
            and s % config.checkpoint_every == 0 and s > start_step}
        #: (step, rank, dead_neighbor) halo exchanges that were degraded
        self.degraded_halos: list[tuple[int, int, int]] = []
        #: set by run_cfpd: callback(world_rank, step) after the barrier
        self.on_checkpoint = None
        nthreads = config.threads_per_rank
        if config.mode == "sync":
            fluid_n = config.nranks
            self.fluid_world_ranks = list(range(config.nranks))
            self.particle_world_ranks = list(range(config.nranks))
            particle_n = config.nranks
        else:
            f = config.fluid_ranks  # bounds checked by RunConfig
            fluid_n = f
            particle_n = config.nranks - f
            self.fluid_world_ranks = list(range(f))
            self.particle_world_ranks = list(range(f, config.nranks))
        fluid_dd = workload.decomposition(
            fluid_n, subdomains_per_rank=config.subdomains_per_rank,
            method=config.partition_method,
            min_shared_nodes=config.subdomain_min_shared)
        hist = workload.particle_histograms(particle_n,
                                            method=config.partition_method)
        #: (n_steps, fluid ranks) fluid subcycles — all ones unless the
        #: spec runs in local adaptive mode
        self.subcycles = workload.subcycle_matrix(
            fluid_n, method=config.partition_method)
        cluster = get_cluster(config.cluster, config.num_nodes)
        particle_chunks = 2 * cluster.node.cores
        self.solver_info = workload.solve_fluid_step()
        # Task graphs are stateless between executions (all execution state
        # lives in Team), so identical run configurations can share them
        # across run_cfpd calls.  The cache rides in the Workload — itself
        # process-cached per spec — and is keyed by everything the graph
        # shapes depend on.
        cache = None
        cache_key = None
        if _perf_toggles.TOGGLES.driver_graph_cache:
            cache = workload.__dict__.setdefault("_driver_graph_cache", {})
            cache_key = (
                config.mode, fluid_n, particle_n, nthreads,
                config.assembly_strategy, config.sgs_strategy,
                config.strategy_params, config.subdomains_per_rank,
                config.subdomain_min_shared, config.partition_method,
                particle_chunks,
                id(costs) if costs is not DEFAULT_COSTS else 0)
        cached = cache.get(cache_key) if cache is not None else None
        if cached is not None:
            (self.assembly, self.sgs, self.solver1, self.solver2,
             self.halo_neighbors, self.particles, self.migration_bytes,
             self.sends, self.recvs) = cached
        else:
            self._build_graphs(config, costs, fluid_dd, hist, nthreads,
                               fluid_n, particle_n, particle_chunks)
            if cache is not None:
                cache[cache_key] = (
                    self.assembly, self.sgs, self.solver1, self.solver2,
                    self.halo_neighbors, self.particles,
                    self.migration_bytes, self.sends, self.recvs)
        self.sub_comms: dict = {}

    def _build_graphs(self, config, costs, fluid_dd, hist, nthreads,
                      fluid_n, particle_n, particle_chunks):
        """Construct the per-rank task graphs and exchange topology."""
        workload = self.workload
        # fluid-phase graphs, indexed by fluid-local rank
        self.assembly = []
        self.sgs = []
        self.solver1 = []
        self.solver2 = []
        self.halo_neighbors = []
        for rw in fluid_dd.ranks:
            self.assembly.append(build_element_loop_graph(
                rw.assembly_instr, rw.assembly_atomics,
                config.assembly_strategy, nthreads,
                colors=rw.colors, sub_labels=rw.sub_labels,
                sub_adjacency=rw.sub_adjacency,
                params=config.strategy_params, label="assembly"))
            self.sgs.append(build_element_loop_graph(
                rw.sgs_instr, np.zeros_like(rw.sgs_instr),
                config.sgs_strategy, nthreads,
                colors=rw.colors, sub_labels=rw.sub_labels,
                sub_adjacency=rw.sub_adjacency, race_free=True,
                params=config.strategy_params, label="sgs"))
            s1_work = (costs.solver1_iterations * rw.solver_nnz
                       * costs.solver_instr_per_nnz)
            s2_work = (costs.solver2_iterations * rw.solver_nnz
                       * costs.solver_instr_per_nnz)
            nchunks = max(costs.min_chunks, nthreads * 4)
            self.solver1.append(build_parallel_for_graph(
                np.full(nchunks, s1_work / nchunks), nthreads,
                min_chunks=costs.min_chunks, label="solver1"))
            self.solver2.append(build_parallel_for_graph(
                np.full(nchunks, s2_work / nchunks), nthreads,
                min_chunks=costs.min_chunks, label="solver2"))
            self.halo_neighbors.append(rw.neighbors)
        # particle-phase graphs: [particle-local rank][step]
        self.particles = []
        for pr in range(particle_n):
            per_step = []
            for s in range(self.n_steps):
                count = int(hist[s, pr])
                per_step.append(build_parallel_for_graph(
                    np.full(count, costs.particle_instr), nthreads,
                    min_chunks=particle_chunks, label="particles"))
            self.particles.append(per_step)
        # migration volume per step (total particles in flight is an upper
        # bound for what crosses rank boundaries)
        self.migration_bytes = [
            max(1.0, hist[s].sum() * costs.particle_bytes / max(1, particle_n))
            for s in range(self.n_steps)]
        # coupled-mode exchange topology
        self.sends = None
        self.recvs = None
        if config.mode == "coupled":
            overlap = workload.overlap_bytes(fluid_n, particle_n,
                                             method=config.partition_method)
            self.sends = [[] for _ in range(fluid_n)]
            self.recvs = [[] for _ in range(particle_n)]
            # np.nonzero iterates row-major (fluid-major), reproducing the
            # ordering of the former nested python loop exactly
            fi, pj = np.nonzero(overlap > 0)
            for i, j, nbytes in zip(fi.tolist(), pj.tolist(),
                                    overlap[fi, pj].tolist()):
                self.sends[i].append(
                    (self.particle_world_ranks[j], float(nbytes)))
                self.recvs[j].append(self.fluid_world_ranks[i])


# ---------------------------------------------------------------------------
# rank programs
# ---------------------------------------------------------------------------

def _run_phase(ctx: _RunContext, comm, team, step, phase, graph, repeats=1):
    stats = yield from team.run(graph, repeats=repeats)
    ctx.log.add(step, phase, comm.rank, stats.t_start, stats.t_end,
                stats.busy_seconds, stats.instructions)
    return stats


def _halo_exchange(ctx: _RunContext, sub_comm, local_rank, tag, step=0):
    """Point-to-point halo exchange with the partition neighbours: post
    all sends and receives, then wait (where DLB can lend cores).

    In fault-tolerant runs, neighbours that died are skipped (their halo
    contribution is stale — the degradation is recorded) and a neighbour
    dying mid-exchange downgrades to a partial exchange instead of
    aborting the survivor.
    """
    dead = sub_comm.world.dead_ranks
    neighbors = ctx.halo_neighbors[local_rank]
    if ctx.fault_tolerant and dead:
        live = []
        for nb, nbytes in neighbors:
            if sub_comm.world_rank_of(nb) in dead:
                ctx.degraded_halos.append((step, sub_comm.world_rank, nb))
            else:
                live.append((nb, nbytes))
        neighbors = live
    reqs = [sub_comm.isend(None, dest=nb, tag=tag, nbytes=nbytes)
            for nb, nbytes in neighbors]
    reqs += [sub_comm.irecv(source=nb, tag=tag) for nb, _ in neighbors]
    if not reqs:
        return
    try:
        yield from sub_comm.waitall(reqs)
    except RankDeadError as exc:
        if not ctx.fault_tolerant:
            raise
        ctx.degraded_halos.append((step, sub_comm.world_rank, exc.rank))


def _fluid_phases(ctx: _RunContext, world_comm, sub_comm, team, local_rank,
                  step):
    """Assembly, solvers and SGS of one global step (shared by both modes).

    Synchronization structure follows Alya: the assembly ends with a
    point-to-point halo exchange (neighbour-local sync only); the first
    global synchronization of each solver is its initial residual-norm
    allreduce, which precedes the iteration work — so waiting for slower
    ranks is accounted as MPI time, not as solver time.

    Local adaptive mode subcycles: a rank on a finer Δt rung than the
    global step repeats the *compute* graphs once per subcycle while the
    communication pattern (halo + residual allreduces) stays once per
    global step — every rank issues the same collective sequence, so the
    runs match, and the per-rank, per-step repeat counts are exactly the
    shifting imbalance the DLB study measures.
    """
    reps = int(ctx.subcycles[step, local_rank])
    if reps > 1:
        FLUID_COUNTERS["adaptive_subcycles"] += reps - 1
    yield from _run_phase(ctx, world_comm, team, step, "assembly",
                          ctx.assembly[local_rank], repeats=reps)
    yield from _halo_exchange(ctx, sub_comm, local_rank, tag=1000 + step,
                              step=step)
    yield from sub_comm.allreduce(
        0.0, nbytes=16.0 * ctx.costs.solver1_iterations)
    yield from _run_phase(ctx, world_comm, team, step, "solver1",
                          ctx.solver1[local_rank], repeats=reps)
    yield from sub_comm.allreduce(
        0.0, nbytes=16.0 * ctx.costs.solver2_iterations)
    yield from _run_phase(ctx, world_comm, team, step, "solver2",
                          ctx.solver2[local_rank], repeats=reps)
    yield from sub_comm.allreduce(0.0, nbytes=8.0)
    yield from _run_phase(ctx, world_comm, team, step, "sgs",
                          ctx.sgs[local_rank], repeats=reps)
    yield from sub_comm.allreduce(0.0, nbytes=8.0)


def _checkpoint_barrier(ctx: _RunContext, comm, step):
    """Coordinated checkpoint cut: barrier, then (one rank) write.

    The barrier is unobserved (no PMPI hooks) so DLB neither lends nor
    reclaims across the cut: ranks leaving an observed barrier one event
    at a time would briefly borrow the still-lent cores of slower ranks,
    and a restarted run (which never executes this barrier) could not
    reproduce that transient — breaking restart bit-equivalence.
    """
    yield from comm.barrier(observed=False)
    if ctx.on_checkpoint is not None:
        ctx.on_checkpoint(comm.world_rank, step)


def _sync_program(comm, ctx: _RunContext):
    team = ctx.teams[comm.rank]
    for step in range(ctx.start_step, ctx.n_steps):
        if step in ctx.checkpoint_steps:
            yield from _checkpoint_barrier(ctx, comm, step)
        yield from _fluid_phases(ctx, comm, comm, team, comm.rank, step)
        yield from _run_phase(ctx, comm, team, step, "particles",
                              ctx.particles[comm.rank][step])
        yield from comm.alltoall([None] * comm.size,
                                 nbytes=ctx.migration_bytes[step])
    yield from comm.barrier()


def _coupled_fluid_program(comm, ctx: _RunContext, sub_comm):
    team = ctx.teams[comm.rank]
    local = comm.rank  # fluid world ranks are 0..f-1
    dead = comm.world.dead_ranks
    for step in range(ctx.start_step, ctx.n_steps):
        if step in ctx.checkpoint_steps:
            yield from _checkpoint_barrier(ctx, comm, step)
        yield from _fluid_phases(ctx, comm, sub_comm, team, local, step)
        reqs = [comm.isend(None, dest=pj, tag=step, nbytes=nbytes)
                for pj, nbytes in ctx.sends[local]
                if not (ctx.fault_tolerant and pj in dead)]
        if reqs:
            yield from comm.waitall(reqs)
    yield from comm.barrier()


def _coupled_particle_program(comm, ctx: _RunContext, sub_comm):
    team = ctx.teams[comm.rank]
    local = comm.rank - ctx.config.fluid_ranks
    dead = comm.world.dead_ranks
    for step in range(ctx.start_step, ctx.n_steps):
        if step in ctx.checkpoint_steps:
            yield from _checkpoint_barrier(ctx, comm, step)
        reqs = [comm.irecv(source=fi, tag=step) for fi in ctx.recvs[local]
                if not (ctx.fault_tolerant and fi in dead)]
        if reqs:
            try:
                yield from comm.waitall(reqs)
            except RankDeadError as exc:
                if not ctx.fault_tolerant:
                    raise
                ctx.degraded_halos.append((step, comm.world_rank, exc.rank))
        yield from _run_phase(ctx, comm, team, step, "particles",
                              ctx.particles[local][step])
        yield from sub_comm.alltoall([None] * sub_comm.size,
                                     nbytes=ctx.migration_bytes[step])
    yield from comm.barrier()


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def _verify_restart_state(wl: Workload, ckpt) -> None:
    """Check the checkpointed physics against a rebuilt workload.

    The numeric layer is deterministic from the spec, so every array must
    match bit-for-bit; a mismatch means the file is corrupted or the code
    drifted since the checkpoint was taken.
    """
    from ..fault import CheckpointError

    state = wl.particle_state_at(ckpt.step)
    p = ckpt.particles
    same = (np.array_equal(state.x, p.get("x"))
            and np.array_equal(state.v, p.get("v"))
            and np.array_equal(state.a, p.get("a"))
            and np.array_equal(state.status, p.get("status")))
    if not same:
        raise CheckpointError(
            f"checkpoint particle state at step {ckpt.step} does not match "
            f"the deterministic replay — corrupted file or code drift")
    if not np.array_equal(wl.nodal_velocity, ckpt.nodal_velocity):
        raise CheckpointError(
            "checkpoint velocity field does not match the workload")
    if list(wl.sgs_history()[:ckpt.step]) != list(ckpt.sgs_norms):
        raise CheckpointError(
            "checkpoint SGS history does not match the workload")


def run_cfpd(config: RunConfig,
             spec: Optional[WorkloadSpec] = None,
             workload: Optional[Workload] = None,
             costs: CostModel = DEFAULT_COSTS, *,
             fault_plan=None,
             checkpoint_path: Optional[str] = None,
             restart_from: Optional[str] = None) -> RunResult:
    """Run the CFPD simulation under ``config`` and return its metrics.

    The numeric workload is computed (or fetched from the cache) once; the
    distributed execution is then simulated on the configured cluster.

    Robustness extensions (all optional):

    * ``fault_plan`` — a :class:`repro.fault.FaultPlan` injected into the
      run; the run becomes *fault tolerant* (survivors degrade around dead
      ranks instead of failing).  The injector lands in ``result.faults``.
    * ``checkpoint_path`` — write a coordinated checkpoint at every
      ``config.checkpoint_every`` steps (the lowest alive rank writes).
    * ``restart_from`` — resume from a checkpoint file; the run continues
      at the checkpointed step and simulated time, and completes with
      results identical to an uninterrupted run of the same config.
    """
    if checkpoint_path is not None and not config.checkpoint_every:
        raise ValueError(
            "checkpoint_path given but config.checkpoint_every is 0 — no "
            "checkpoint would ever be written; set checkpoint_every=N")
    start_step = 0
    ckpt = None
    if restart_from is not None:
        from ..fault import CheckpointError, load_checkpoint
        ckpt = load_checkpoint(restart_from)
        if ckpt.config != config:
            raise CheckpointError(
                f"checkpoint was taken under config "
                f"{ckpt.config.label()!r}, refusing to resume under "
                f"{config.label()!r} — pass the original RunConfig")
        if spec is not None and spec != ckpt.spec:
            raise CheckpointError(
                "checkpoint workload spec does not match the requested one")
        spec = ckpt.spec
        start_step = ckpt.step
    wl = workload if workload is not None else get_workload(
        spec or WorkloadSpec(), costs)
    if ckpt is not None:
        from ..fault import CheckpointError
        if wl.spec != ckpt.spec:
            raise CheckpointError(
                "checkpoint workload spec does not match the requested one")
        _verify_restart_state(wl, ckpt)
    cluster = get_cluster(config.cluster, config.num_nodes)
    needed = config.nranks * config.threads_per_rank
    if needed > cluster.total_cores:
        raise ValueError(
            f"{config.nranks} ranks x {config.threads_per_rank} threads "
            f"exceed the {cluster.total_cores} cores of {cluster.name}")
    ctx = _RunContext(wl, config, costs, start_step=start_step,
                      fault_tolerant=fault_plan is not None)
    engine = Engine()
    world = World(engine, cluster, config.nranks,
                  mapping=config.resolved_mapping())
    if ckpt is not None:
        from ..trace import PhaseSample
        engine.now = ckpt.sim_time
        ctx.log.samples.extend(PhaseSample(*t) for t in ckpt.phase_samples)
    tracer = None
    if config.collect_mpi_trace:
        from ..trace import Tracer
        tracer = Tracer()
        world.recorder = tracer
    dlb = DLB(world, enabled=config.dlb)
    for r in range(config.nranks):
        team = Team(engine, cluster.node.core, config.threads_per_rank,
                    rank=r, scheduler=config.scheduler)
        ctx.teams[r] = team
        dlb.attach_team(r, team)
    injector = None
    if fault_plan is not None:
        from ..fault import FaultInjector
        injector = FaultInjector(world, fault_plan, teams=ctx.teams,
                                 dlb=dlb, workload=wl)
        injector.start()
    checkpoints: list = []
    if checkpoint_path is not None:
        from ..fault import CHECKPOINT_VERSION, Checkpoint, save_checkpoint

        def on_checkpoint(world_rank: int, step: int) -> None:
            if world_rank != world.lowest_alive_rank():
                return
            if checkpoints and checkpoints[-1][0] == step:
                return
            state = wl.particle_state_at(step)
            save_checkpoint(checkpoint_path, Checkpoint(
                version=CHECKPOINT_VERSION,
                step=step,
                sim_time=engine.now,
                config=config,
                spec=wl.spec,
                phase_samples=[(s.step, s.phase, s.rank, s.t0, s.t1,
                                s.busy, s.instructions)
                               for s in ctx.log.samples],
                particles={
                    "x": state.x.copy(), "v": state.v.copy(),
                    "a": state.a.copy(), "status": state.status.copy(),
                    "diameter": (None if state.diameter is None
                                 else state.diameter.copy())},
                nodal_velocity=wl.nodal_velocity.copy(),
                sgs_norms=list(wl.sgs_history()[:step]),
                rng={"injection_seed": wl.spec.injection_seed},
                written_by_rank=world_rank))
            checkpoints.append((step, engine.now))

        ctx.on_checkpoint = on_checkpoint
    if config.mode == "sync":
        procs = world.launch(_sync_program, ctx)
    elif config.mode == "coupled":
        f = config.fluid_ranks
        groups = world.split([ctx.fluid_world_ranks,
                              ctx.particle_world_ranks])
        fluid_comms, particle_comms = groups
        procs = []
        for r in range(config.nranks):
            comm = world.comm_world(r)
            if r < f:
                proc = engine.process(
                    _coupled_fluid_program(comm, ctx, fluid_comms[r]),
                    name=f"fluid{r}")
            else:
                proc = engine.process(
                    _coupled_particle_program(comm, ctx,
                                              particle_comms[r - f]),
                    name=f"part{r - f}")
            world.register_rank_process(r, proc)
            procs.append(proc)
    else:
        raise ValueError(f"unknown mode {config.mode!r}")
    world.run(procs)
    from ..perf.instrument import engine_counters
    from .workload import BREATHING_WAVEFORMS
    adaptive_diag = {}
    if wl.spec.adaptive != "off":
        fluid_n = config.nranks if config.mode == "sync" \
            else config.fluid_ranks
        adaptive_diag = wl.schedule_summary(
            nranks=fluid_n, method=config.partition_method)
    cosim_diag = {}
    if wl.spec.inlet_waveform in BREATHING_WAVEFORMS:
        cosim_diag = wl.cosim_summary()
    return RunResult(config=config,
                     total_time=engine.now,
                     phase_log=ctx.log,
                     dlb_stats=dlb.stats,
                     solver_info=ctx.solver_info,
                     deposition=wl.deposition_summary(),
                     n_particles=wl.n_particles,
                     tracer=tracer,
                     faults=injector,
                     checkpoints=checkpoints,
                     engine_diag=engine_counters(engine),
                     adaptive_diag=adaptive_diag,
                     cosim_diag=cosim_diag)
