"""The CFPD application driver — the Alya work-alike.

Runs the respiratory-simulation time step under a configurable runtime
setup on the simulated cluster:

* **synchronous mode** (paper Fig. 3 top): every rank executes, per step,
  matrix assembly -> momentum solve (Solver1) -> continuity solve
  (Solver2) -> subgrid scale (SGS) -> particle transport -> migration;
* **coupled mode** (Fig. 3 bottom): ``f`` ranks run the fluid phases and
  ship nodal velocities to ``p = n - f`` ranks that run the particle
  transport, pipelined across steps.

Each phase executes as a task graph built by the configured strategy
(ATOMICS / COLORING / MULTIDEP for the racy element loops), on the rank's
malleable thread team; MPI calls go through the simulated MPI layer whose
PMPI hooks feed DLB when enabled.  Phase timings land in a
:class:`~repro.trace.PhaseLog` — the source of every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..core import (
    DLB,
    Strategy,
    StrategyParams,
    Team,
    build_element_loop_graph,
    build_parallel_for_graph,
)
from ..machine import get_cluster
from ..smpi import World
from ..sim import Engine
from ..trace import PhaseLog
from .costs import CostModel, DEFAULT_COSTS
from .workload import Workload, WorkloadSpec, get_workload

__all__ = ["RunConfig", "RunResult", "run_cfpd"]


@dataclass(frozen=True)
class RunConfig:
    """One runtime configuration of the CFPD simulation."""

    cluster: str = "marenostrum4"
    num_nodes: int = 2
    nranks: int = 96
    threads_per_rank: int = 1
    mode: str = "sync"                 # "sync" | "coupled"
    fluid_ranks: int = 0               # coupled mode: f (particles = n - f)
    assembly_strategy: Strategy = Strategy.MULTIDEP
    sgs_strategy: Strategy = Strategy.ATOMICS
    dlb: bool = False
    mapping: Optional[str] = None      # None: block for sync, cyclic coupled
    subdomains_per_rank: int = 64
    subdomain_min_shared: int = 4
    partition_method: str = "rcb"
    strategy_params: StrategyParams = StrategyParams()
    #: attach a Tracer to the MPI world (raw blocking-call intervals in
    #: RunResult.tracer; costs memory on long runs)
    collect_mpi_trace: bool = False
    #: team task scheduler: "lpt" (default), "fifo" or "lifo"
    scheduler: str = "lpt"

    def resolved_mapping(self) -> str:
        """Process placement: interleave the two codes in coupled mode so
        DLB (shared-memory only) can lend between them."""
        if self.mapping is not None:
            return self.mapping
        return "cyclic" if self.mode == "coupled" else "block"

    def label(self) -> str:
        """Short human-readable descriptor (figure x-axis labels)."""
        if self.mode == "coupled":
            base = f"{self.fluid_ranks}+{self.nranks - self.fluid_ranks}"
        else:
            base = f"sync {self.nranks}x{self.threads_per_rank}"
        return base + (" +DLB" if self.dlb else "")


@dataclass
class RunResult:
    """Outcome of one simulated CFPD run."""

    config: RunConfig
    total_time: float                  # simulated seconds for n_steps
    phase_log: PhaseLog
    dlb_stats: object
    solver_info: dict
    deposition: dict
    n_particles: int
    tracer: object = None              # Tracer if collect_mpi_trace

    def mpi_seconds_by_rank(self):
        """Blocking-MPI time per rank (needs collect_mpi_trace=True)."""
        if self.tracer is None:
            raise ValueError("run with collect_mpi_trace=True")
        import numpy as np
        out = np.zeros(self.config.nranks)
        for iv in self.tracer.by_category("mpi"):
            out[iv.rank] += iv.duration
        return out

    def phase_summary(self) -> list[dict]:
        """Table-1 rows."""
        return self.phase_log.summary()

    def ipc(self, phase: str) -> float:
        """Achieved IPC of ``phase`` on this run's core."""
        freq = get_cluster(self.config.cluster).node.core.freq_ghz
        return self.phase_log.ipc(phase, freq)

    def step_times(self) -> list:
        """Wall-clock duration of each simulated time step."""
        from collections import defaultdict
        spans: dict = defaultdict(lambda: [float("inf"), 0.0])
        for sample in self.phase_log.samples:
            lo, hi = spans[sample.step]
            spans[sample.step] = [min(lo, sample.t0), max(hi, sample.t1)]
        return [spans[s][1] - spans[s][0] for s in sorted(spans)]

    def pop_metrics(self):
        """POP efficiencies (LB x CommE = PE) of the whole run."""
        from ..trace import pop_from_phase_log
        return pop_from_phase_log(self.phase_log, self.total_time)

    def energy_joules(self) -> float:
        """Estimated energy-to-solution (see repro.machine.energy)."""
        import numpy as np

        from ..machine import energy_estimate
        cluster = get_cluster(self.config.cluster, self.config.num_nodes)
        busy = np.zeros(self.config.nranks)
        for s in self.phase_log.samples:
            busy[s.rank] += s.busy
        cores = self.config.nranks * self.config.threads_per_rank
        return energy_estimate(cluster.name, busy, self.total_time, cores,
                               num_nodes=self.config.num_nodes)


# ---------------------------------------------------------------------------
# graph construction
# ---------------------------------------------------------------------------

class _RunContext:
    """Prebuilt graphs and metadata shared by all rank programs of a run."""

    def __init__(self, workload: Workload, config: RunConfig,
                 costs: CostModel):
        self.workload = workload
        self.config = config
        self.costs = costs
        self.spec = workload.spec
        self.log = PhaseLog(config.nranks)
        self.teams: dict[int, Team] = {}
        nthreads = config.threads_per_rank
        if config.mode == "sync":
            fluid_n = config.nranks
            self.fluid_world_ranks = list(range(config.nranks))
            self.particle_world_ranks = list(range(config.nranks))
            particle_n = config.nranks
        else:
            f = config.fluid_ranks
            if not 1 <= f <= config.nranks - 1:
                raise ValueError(
                    f"coupled mode needs 1 <= fluid_ranks < nranks "
                    f"(got {f} of {config.nranks})")
            fluid_n = f
            particle_n = config.nranks - f
            self.fluid_world_ranks = list(range(f))
            self.particle_world_ranks = list(range(f, config.nranks))
        fluid_dd = workload.decomposition(
            fluid_n, subdomains_per_rank=config.subdomains_per_rank,
            method=config.partition_method,
            min_shared_nodes=config.subdomain_min_shared)
        hist = workload.particle_histograms(particle_n,
                                            method=config.partition_method)
        cluster = get_cluster(config.cluster, config.num_nodes)
        particle_chunks = 2 * cluster.node.cores
        # fluid-phase graphs, indexed by fluid-local rank
        self.assembly = []
        self.sgs = []
        self.solver1 = []
        self.solver2 = []
        self.halo_neighbors = []
        solves = workload.solve_fluid_step()
        for rw in fluid_dd.ranks:
            self.assembly.append(build_element_loop_graph(
                rw.assembly_instr, rw.assembly_atomics,
                config.assembly_strategy, nthreads,
                colors=rw.colors, sub_labels=rw.sub_labels,
                sub_adjacency=rw.sub_adjacency,
                params=config.strategy_params, label="assembly"))
            self.sgs.append(build_element_loop_graph(
                rw.sgs_instr, np.zeros_like(rw.sgs_instr),
                config.sgs_strategy, nthreads,
                colors=rw.colors, sub_labels=rw.sub_labels,
                sub_adjacency=rw.sub_adjacency, race_free=True,
                params=config.strategy_params, label="sgs"))
            s1_work = (costs.solver1_iterations * rw.solver_nnz
                       * costs.solver_instr_per_nnz)
            s2_work = (costs.solver2_iterations * rw.solver_nnz
                       * costs.solver_instr_per_nnz)
            nchunks = max(costs.min_chunks, nthreads * 4)
            self.solver1.append(build_parallel_for_graph(
                np.full(nchunks, s1_work / nchunks), nthreads,
                min_chunks=costs.min_chunks, label="solver1"))
            self.solver2.append(build_parallel_for_graph(
                np.full(nchunks, s2_work / nchunks), nthreads,
                min_chunks=costs.min_chunks, label="solver2"))
            self.halo_neighbors.append(rw.neighbors)
        # particle-phase graphs: [particle-local rank][step]
        self.particles = []
        for pr in range(particle_n):
            per_step = []
            for s in range(self.spec.n_steps):
                count = int(hist[s, pr])
                per_step.append(build_parallel_for_graph(
                    np.full(count, costs.particle_instr), nthreads,
                    min_chunks=particle_chunks, label="particles"))
            self.particles.append(per_step)
        # migration volume per step (total particles in flight is an upper
        # bound for what crosses rank boundaries)
        self.migration_bytes = [
            max(1.0, hist[s].sum() * costs.particle_bytes / max(1, particle_n))
            for s in range(self.spec.n_steps)]
        self.solver_info = solves
        # coupled-mode exchange topology
        if config.mode == "coupled":
            overlap = workload.overlap_bytes(fluid_n, particle_n,
                                             method=config.partition_method)
            self.sends = [[] for _ in range(fluid_n)]
            self.recvs = [[] for _ in range(particle_n)]
            for i in range(fluid_n):
                for j in range(particle_n):
                    if overlap[i, j] > 0:
                        self.sends[i].append(
                            (self.particle_world_ranks[j],
                             float(overlap[i, j])))
                        self.recvs[j].append(self.fluid_world_ranks[i])
        self.sub_comms: dict = {}


# ---------------------------------------------------------------------------
# rank programs
# ---------------------------------------------------------------------------

def _run_phase(ctx: _RunContext, comm, team, step, phase, graph):
    stats = yield from team.run(graph)
    ctx.log.add(step, phase, comm.rank, stats.t_start, stats.t_end,
                stats.busy_seconds, stats.instructions)
    return stats


def _halo_exchange(ctx: _RunContext, sub_comm, local_rank, tag):
    """Point-to-point halo exchange with the partition neighbours: post
    all sends and receives, then wait (where DLB can lend cores)."""
    neighbors = ctx.halo_neighbors[local_rank]
    reqs = [sub_comm.isend(None, dest=nb, tag=tag, nbytes=nbytes)
            for nb, nbytes in neighbors]
    reqs += [sub_comm.irecv(source=nb, tag=tag) for nb, _ in neighbors]
    if reqs:
        yield from sub_comm.waitall(reqs)


def _fluid_phases(ctx: _RunContext, world_comm, sub_comm, team, local_rank,
                  step):
    """Assembly, solvers and SGS of one step (shared by both modes).

    Synchronization structure follows Alya: the assembly ends with a
    point-to-point halo exchange (neighbour-local sync only); the first
    global synchronization of each solver is its initial residual-norm
    allreduce, which precedes the iteration work — so waiting for slower
    ranks is accounted as MPI time, not as solver time.
    """
    yield from _run_phase(ctx, world_comm, team, step, "assembly",
                          ctx.assembly[local_rank])
    yield from _halo_exchange(ctx, sub_comm, local_rank, tag=1000 + step)
    yield from sub_comm.allreduce(
        0.0, nbytes=16.0 * ctx.costs.solver1_iterations)
    yield from _run_phase(ctx, world_comm, team, step, "solver1",
                          ctx.solver1[local_rank])
    yield from sub_comm.allreduce(
        0.0, nbytes=16.0 * ctx.costs.solver2_iterations)
    yield from _run_phase(ctx, world_comm, team, step, "solver2",
                          ctx.solver2[local_rank])
    yield from sub_comm.allreduce(0.0, nbytes=8.0)
    yield from _run_phase(ctx, world_comm, team, step, "sgs",
                          ctx.sgs[local_rank])
    yield from sub_comm.allreduce(0.0, nbytes=8.0)


def _sync_program(comm, ctx: _RunContext):
    team = ctx.teams[comm.rank]
    for step in range(ctx.spec.n_steps):
        yield from _fluid_phases(ctx, comm, comm, team, comm.rank, step)
        yield from _run_phase(ctx, comm, team, step, "particles",
                              ctx.particles[comm.rank][step])
        yield from comm.alltoall([None] * comm.size,
                                 nbytes=ctx.migration_bytes[step])
    yield from comm.barrier()


def _coupled_fluid_program(comm, ctx: _RunContext, sub_comm):
    team = ctx.teams[comm.rank]
    local = comm.rank  # fluid world ranks are 0..f-1
    for step in range(ctx.spec.n_steps):
        yield from _fluid_phases(ctx, comm, sub_comm, team, local, step)
        reqs = [comm.isend(None, dest=pj, tag=step, nbytes=nbytes)
                for pj, nbytes in ctx.sends[local]]
        if reqs:
            yield from comm.waitall(reqs)
    yield from comm.barrier()


def _coupled_particle_program(comm, ctx: _RunContext, sub_comm):
    team = ctx.teams[comm.rank]
    local = comm.rank - ctx.config.fluid_ranks
    for step in range(ctx.spec.n_steps):
        reqs = [comm.irecv(source=fi, tag=step) for fi in ctx.recvs[local]]
        if reqs:
            yield from comm.waitall(reqs)
        yield from _run_phase(ctx, comm, team, step, "particles",
                              ctx.particles[local][step])
        yield from sub_comm.alltoall([None] * sub_comm.size,
                                     nbytes=ctx.migration_bytes[step])
    yield from comm.barrier()


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_cfpd(config: RunConfig,
             spec: Optional[WorkloadSpec] = None,
             workload: Optional[Workload] = None,
             costs: CostModel = DEFAULT_COSTS) -> RunResult:
    """Run the CFPD simulation under ``config`` and return its metrics.

    The numeric workload is computed (or fetched from the cache) once; the
    distributed execution is then simulated on the configured cluster.
    """
    wl = workload if workload is not None else get_workload(
        spec or WorkloadSpec(), costs)
    cluster = get_cluster(config.cluster, config.num_nodes)
    needed = config.nranks * config.threads_per_rank
    if needed > cluster.total_cores:
        raise ValueError(
            f"{config.nranks} ranks x {config.threads_per_rank} threads "
            f"exceed the {cluster.total_cores} cores of {cluster.name}")
    ctx = _RunContext(wl, config, costs)
    engine = Engine()
    world = World(engine, cluster, config.nranks,
                  mapping=config.resolved_mapping())
    tracer = None
    if config.collect_mpi_trace:
        from ..trace import Tracer
        tracer = Tracer()
        world.recorder = tracer
    dlb = DLB(world, enabled=config.dlb)
    for r in range(config.nranks):
        team = Team(engine, cluster.node.core, config.threads_per_rank,
                    rank=r, scheduler=config.scheduler)
        ctx.teams[r] = team
        dlb.attach_team(r, team)
    if config.mode == "sync":
        procs = world.launch(_sync_program, ctx)
    elif config.mode == "coupled":
        f = config.fluid_ranks
        groups = world.split([ctx.fluid_world_ranks,
                              ctx.particle_world_ranks])
        fluid_comms, particle_comms = groups
        procs = []
        for r in range(config.nranks):
            comm = world.comm_world(r)
            if r < f:
                procs.append(engine.process(
                    _coupled_fluid_program(comm, ctx, fluid_comms[r]),
                    name=f"fluid{r}"))
            else:
                procs.append(engine.process(
                    _coupled_particle_program(comm, ctx,
                                              particle_comms[r - f]),
                    name=f"part{r - f}"))
    else:
        raise ValueError(f"unknown mode {config.mode!r}")
    world.run(procs)
    return RunResult(config=config,
                     total_time=engine.now,
                     phase_log=ctx.log,
                     dlb_stats=dlb.stats,
                     solver_info=ctx.solver_info,
                     deposition=wl.deposition_summary(),
                     n_particles=wl.n_particles,
                     tracer=tracer)
