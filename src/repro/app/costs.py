"""Calibrated per-phase work constants (the performance model's knobs).

The numeric layer meters *what* is computed (elements assembled, nnz
touched, particles moved); this module supplies the instruction-cost
constants that convert those meters into dynamic instruction counts for the
:mod:`repro.machine` core models.

Calibration (documented in EXPERIMENTS.md):

* **assembly**: instructions per element chosen so the atomic fraction
  (scatter updates ``nn^2 + nn`` per element) lands at ~1.7 % of the
  instruction stream — the value that reproduces the paper's measured IPC
  drop (2.25 -> 1.15 on Intel, 0.49 -> 0.42 on ThunderX, Sec. 4.3).
* **phase ratios**: constants are proportioned so a 96-rank pure-MPI run of
  the reference workload reproduces Table 1's time breakdown (assembly
  ~41 %, Solver1 ~16 %, Solver2 ~4 %, SGS ~21 %, particles ~3 % with the
  small particle load).
* **solver iterations** are fixed per step (the toy operators' conditioning
  differs from Alya's 17.7M-element systems; the *distributed structure* —
  compute + allreduce per phase — is what the experiments exercise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mesh.elements import ElementType

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Instruction-cost constants for every phase of the CFPD step."""

    #: assembly instructions per element, by type (quadrature points x
    #: node-pair work; prisms ~2x tets -> the Table 1 imbalance)
    assembly_instr: dict = field(default_factory=lambda: {
        ElementType.TET: 1200.0,
        ElementType.PYRAMID: 1850.0,
        ElementType.PRISM: 3600.0,
    })
    #: SGS instructions per element, by type (roughly half the assembly)
    sgs_instr: dict = field(default_factory=lambda: {
        ElementType.TET: 600.0,
        ElementType.PYRAMID: 920.0,
        ElementType.PRISM: 1800.0,
    })
    #: solver instructions per touched nonzero per iteration (SpMV + axpys
    #: + preconditioner application)
    solver_instr_per_nnz: float = 10.0
    #: fixed iteration counts per time step (see module docstring)
    solver1_iterations: int = 11
    solver2_iterations: int = 3
    #: particle-transport instructions per particle per step
    #: (locate + Ganser drag + Newmark update)
    particle_instr: float = 250.0
    #: bytes exchanged per interface node in halo exchanges
    halo_bytes_per_node: float = 24.0
    #: bytes per migrated particle (position + velocity + ids)
    particle_bytes: float = 80.0
    #: minimum task chunks per phase (malleability floor for DLB)
    min_chunks: int = 8

    def assembly_instructions(self, etype: ElementType) -> float:
        """Assembly cost of one element of ``etype``."""
        return self.assembly_instr[etype]

    def sgs_instructions(self, etype: ElementType) -> float:
        """SGS cost of one element of ``etype``."""
        return self.sgs_instr[etype]


DEFAULT_COSTS = CostModel()
