"""repro — reproduction of *"Computational Fluid and Particle Dynamics
Simulations for Respiratory System: Runtime Optimization on an Arm
Cluster"* (Garcia-Gasulla, Josep-Fabrego, Eguzkitza, Mantovani; ICPP 2018).

The package contains, built from scratch:

* the paper's **runtime techniques** — task graphs with OpenMP 5.0
  ``mutexinoutset`` multidependences, a malleable OmpSs-like task runtime,
  and the DLB/LeWI dynamic load-balancing library attached via PMPI
  interception (:mod:`repro.core`);
* every **substrate** they run on — a discrete-event simulation engine
  (:mod:`repro.sim`), calibrated Intel/Arm cluster models
  (:mod:`repro.machine`), a simulated MPI (:mod:`repro.smpi`), a hybrid
  airway mesh generator (:mod:`repro.mesh`), graph partitioners and
  coloring (:mod:`repro.partition`), finite-element assembly/solvers/SGS
  (:mod:`repro.fem`, :mod:`repro.solver`), and Lagrangian particle
  transport (:mod:`repro.particles`);
* the **CFPD application** itself (:mod:`repro.app`), tracing/analysis
  (:mod:`repro.trace`), and one experiment runner per table/figure of the
  paper (:mod:`repro.experiments`).

Quickstart::

    from repro import RunConfig, WorkloadSpec, run_cfpd

    result = run_cfpd(RunConfig(cluster="thunder", nranks=96, dlb=True),
                      spec=WorkloadSpec(generations=4))
    print(result.total_time, result.phase_summary())
"""

from .app import (
    CostModel,
    RunConfig,
    RunResult,
    Workload,
    WorkloadSpec,
    get_workload,
    run_cfpd,
)
from .core import DLB, Strategy, StrategyParams, TaskGraph, Team
from .fault import (
    Checkpoint,
    CheckpointError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    load_checkpoint,
    resilience_report,
    save_checkpoint,
)
from .fem import FlowBC, FractionalStepSolver
from .machine import ClusterModel, energy_estimate, get_cluster, marenostrum4, thunder
from .mesh import (
    AirwayConfig,
    AirwayMesh,
    MeshResolution,
    build_airway_mesh,
    write_vtk,
)
from .particles import AirwayFlow, NewmarkTracker, ParticleState, inject_at_inlet
from .smpi import World
from .solver import bicgstab, cg, deflated_cg
from .trace import PhaseLog, load_balance, pop_metrics, render_timeline

__version__ = "1.0.0"

__all__ = [
    "AirwayConfig",
    "AirwayFlow",
    "AirwayMesh",
    "Checkpoint",
    "CheckpointError",
    "ClusterModel",
    "CostModel",
    "DLB",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FlowBC",
    "FractionalStepSolver",
    "MeshResolution",
    "NewmarkTracker",
    "ParticleState",
    "PhaseLog",
    "RunConfig",
    "RunResult",
    "Strategy",
    "StrategyParams",
    "TaskGraph",
    "Team",
    "Workload",
    "WorkloadSpec",
    "World",
    "__version__",
    "bicgstab",
    "build_airway_mesh",
    "cg",
    "deflated_cg",
    "energy_estimate",
    "get_cluster",
    "get_workload",
    "inject_at_inlet",
    "load_balance",
    "load_checkpoint",
    "marenostrum4",
    "pop_metrics",
    "render_timeline",
    "resilience_report",
    "run_cfpd",
    "save_checkpoint",
    "thunder",
    "write_vtk",
]
