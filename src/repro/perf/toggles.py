"""Runtime switches for the performance-layer hot-path optimizations.

Every optimization added by the performance layer is gated behind a toggle
so the benchmark harness (:mod:`repro.perf.bench`) can measure *before* and
*after* from one build, and so a bisection of a perf regression can turn
individual fast paths off without reverting code.

The toggles only change **wall-clock** behaviour.  Every fast path preserves
the exact (time, seq) event ordering of the DES engine and the exact floating
point operation order of the simulated-time results; the bit-identical guard
in ``tests/test_perf_identical.py`` enforces this across sync/coupled x DLB
on/off.

This module must stay dependency-free (no numpy, no repro imports): it is
imported by ``sim``, ``smpi``, ``core``, ``fem`` and ``particles``, which sit
below everything else in the package graph.

Capture semantics: long-lived objects (``Engine``, ``World``, ``Team``,
``ElementLocator``) capture the toggle state at construction, so flipping a
toggle mid-run never mixes code paths within one simulation.  Stateless
kernels (``fem.assembly``) read the toggle per call.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields, replace

__all__ = ["Toggles", "TOGGLES", "set_toggles", "baseline", "configured"]


@dataclass(frozen=True)
class Toggles:
    """Feature switches for the individual fast paths (all on by default)."""

    #: ``sim.engine``: FIFO now-queue for same-time posts (no heap sift) and
    #: the inlined run loop with the single-waiter dispatch fast path.
    engine_fast_path: bool = True
    #: ``core.runtime`` / ``smpi.comm``: run tasks and collective finishes as
    #: deferred callbacks instead of generator Processes, with cached task
    #: durations and collective-group topology.
    runtime_fast_path: bool = True
    #: ``smpi.comm``: no-dead-ranks fast path in collective completion.
    comm_fast_path: bool = True
    #: ``fem.assembly``: precompute the CSR sparsity pattern per
    #: (mesh, element set) and scatter values into it on later assemblies.
    assembly_pattern_cache: bool = True
    #: ``particles.tracker``: KD-tree queries only for STATUS_ACTIVE
    #: particles; frozen (deposited/escaped) particles keep their cached
    #: element assignment.
    locator_active_only: bool = True
    #: ``fem.geometry``: per-(mesh, element-set) static-geometry cache
    #: (Jacobian gradients, |J| dV, element volumes/size) shared by
    #: ``fem.assembly``, ``fem.sgs``, ``fem.vector`` and
    #: ``particles.interpolation`` (centroid KD-tree).
    geometry_cache: bool = True
    #: ``fem.assembly``: operator-split incremental assembly — the constant
    #: mass/diffusion blocks (and the fully constant continuity operator)
    #: are assembled once per (mesh, element set); each call re-assembles
    #: only the velocity-dependent convection + stabilization part.
    #: Engages only together with ``assembly_pattern_cache`` (the split
    #: scatters through the cached CSR pattern).
    operator_split: bool = True
    #: ``core.runtime``: heap-backed LPT ready queue (O(log n) dispatch
    #: instead of a linear argmax scan per task).
    scheduler_heap: bool = True
    #: ``app.driver``: reuse the per-rank task graphs and exchange topology
    #: of a run configuration across ``run_cfpd`` calls (graphs are
    #: stateless between executions; all execution state lives in ``Team``).
    driver_graph_cache: bool = True
    #: ``particles.tracker`` / ``particles.locator_fast``: warm-start exact
    #: element location — accept a particle's cached host element (or an
    #: adjacency-ring neighbour) only when the precomputed per-element
    #: safety radius *proves* it is still the global nearest centroid;
    #: batched KD-tree fallback for the provably-lost remainder.  Subsumes
    #: ``locator_active_only`` (the frozen-particle cache rides along).
    particle_warm_start: bool = True
    #: ``particles.tracker``: active-set compaction — active particles kept
    #: in a contiguous index prefix under a stable permutation (frozen
    #: particles swap to the tail once), so the tracker gathers/scatters
    #: prefix slices instead of full-population boolean masks.
    particle_compaction: bool = True
    #: ``particles.flowfield`` / ``particles.tracker`` /
    #: ``particles.interpolation``: batched transport kernels — preallocated
    #: workspace buffers for ``AirwayFlow.locate`` and the drag/Newmark/
    #: boundary math, and reuse of the boundary-pass locate result for the
    #: next step's velocity evaluation (identical inputs, identical output).
    particle_fused_step: bool = True
    #: ``sim.engine`` / ``core.runtime`` / ``smpi.comm``: batched event-cohort
    #: core — a calendar of per-timestamp event buckets with bulk clock
    #: advance, a free-list event arena for deferred callbacks
    #: (``defer``/``call_later`` allocate an arena slot instead of an
    #: ``Event``), whole-graph execution plans in ``Team`` (one completion
    #: event per graph instead of per task), and keyed message matching in
    #: ``World``.  Preserves the exact (when, seq) FIFO tie-break order of
    #: the scalar engine.
    engine_batch: bool = True
    #: ``fem.fractional_step``: operator recycling in the momentum
    #: predictor — the Dirichlet-applied momentum matrix and its sparsity
    #: pattern are built once, each step scatters the freshly assembled
    #: scalar CSR data through precomputed vector-expansion and
    #: Dirichlet-row slot maps (no COO re-expansion, no LIL row
    #: replacement), and the Jacobi preconditioner refreshes from a
    #: diagonal slot view.  Bit-identical to the rebuild-from-scratch path.
    fluid_operator_recycle: bool = True
    #: ``solver.deflated`` / ``fem.fractional_step``: reuse one
    #: :class:`~repro.solver.deflated.DeflationSetup` (sparse W, sparse
    #: AW, Cholesky factor of E) across deflated-CG solves against the
    #: same operator instead of rebuilding the coarse space per call; the
    #: fractional-step solver pays the setup once in ``__init__``.
    deflation_setup_cache: bool = True
    #: ``solver.krylov``: allocation-free CG/BiCGStab iteration cores —
    #: per-size workspace vectors reused across solves, with in-place
    #: ``out=`` axpy/scal updates that preserve the exact floating-point
    #: operation order of the allocating cores.
    krylov_buffers: bool = True


#: process-wide current toggle state
TOGGLES = Toggles()


def set_toggles(toggles: Toggles) -> Toggles:
    """Replace the process-wide toggle state; returns the previous one."""
    global TOGGLES
    previous = TOGGLES
    TOGGLES = toggles
    return previous


@contextmanager
def configured(**overrides: bool):
    """Context manager: run with the given toggle fields overridden."""
    bad = set(overrides) - {f.name for f in fields(Toggles)}
    if bad:
        raise TypeError(f"unknown toggles: {sorted(bad)}")
    previous = set_toggles(replace(TOGGLES, **overrides))
    try:
        yield TOGGLES
    finally:
        set_toggles(previous)


@contextmanager
def baseline():
    """Context manager: every fast path off (the pre-PR-2 code paths)."""
    off = Toggles(**{f.name: False for f in fields(Toggles)})
    previous = set_toggles(off)
    try:
        yield off
    finally:
        set_toggles(previous)
