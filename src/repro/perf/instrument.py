"""Wall-clock instrumentation for the performance layer.

These helpers measure *host* time (``time.perf_counter``) around simulated
workloads — they never touch the DES clock, so attaching them cannot perturb
simulated-time results.  The benchmark runner (:mod:`repro.perf.bench`)
composes them into the ``BENCH_pr2.json`` report.

* :class:`PhaseTimer` — named wall-clock accumulator with a context-manager
  interface (``with timer.phase("assembly"): ...``);
* :class:`Counters` — plain named event tallies;
* :class:`ThroughputMeter` — units-per-second rates from (units, seconds)
  pairs;
* :func:`engine_counters` — snapshot of a DES engine's progress counters
  (events processed, simulated now, alive processes);
* :func:`fluid_counters` — snapshot of the numeric fluid fast-path tallies
  (momentum operators recycled vs rebuilt, deflated pressure solves,
  deflation setups built/reused, Krylov workspace cache traffic).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["PhaseTimer", "Counters", "ThroughputMeter", "engine_counters",
           "fluid_counters"]


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Phases may be entered repeatedly (each ``with`` adds to the total) and
    may nest as long as the nested phases have different names.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._open: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one entry of phase ``name`` (re-entrant across calls)."""
        if name in self._open:
            raise ValueError(f"phase {name!r} is already open")
        self._open[name] = time.perf_counter()
        try:
            yield
        finally:
            t0 = self._open.pop(name)
            dt = time.perf_counter() - t0
            self._totals[name] = self._totals.get(name, 0.0) + dt
            self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Accumulated wall-clock seconds of ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def entries(self, name: str) -> int:
        """How many times ``name`` was entered."""
        return self._counts.get(name, 0)

    def report(self) -> Dict[str, dict]:
        """``{phase: {"seconds": ..., "entries": ...}}`` for all phases."""
        return {name: {"seconds": self._totals[name],
                       "entries": self._counts[name]}
                for name in self._totals}


class Counters:
    """Named monotonic tallies (events, elements, particles, ...)."""

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def report(self) -> Dict[str, float]:
        """A copy of all counters."""
        return dict(self._counts)


class ThroughputMeter:
    """Derives units-per-second rates from (units, wall seconds) samples.

    One meter holds several named streams, e.g. ``events``, ``elements``,
    ``particles`` — the units of the BENCH report's throughput block.
    """

    def __init__(self) -> None:
        self._units: Dict[str, float] = {}
        self._seconds: Dict[str, float] = {}

    def record(self, name: str, units: float, seconds: float) -> None:
        """Accumulate ``units`` produced in ``seconds`` of wall time."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._units[name] = self._units.get(name, 0.0) + units
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def rate(self, name: str) -> float:
        """Units per second of stream ``name`` (0.0 with no elapsed time)."""
        sec = self._seconds.get(name, 0.0)
        if sec <= 0.0:
            return 0.0
        return self._units.get(name, 0.0) / sec

    def report(self) -> Dict[str, dict]:
        """``{stream: {"units": ..., "seconds": ..., "per_second": ...}}``."""
        return {name: {"units": self._units[name],
                       "seconds": self._seconds[name],
                       "per_second": self.rate(name)}
                for name in self._units}


def engine_counters(engine) -> Dict[str, float]:
    """Snapshot of a DES engine's progress counters.

    Works on any object with the :class:`repro.sim.Engine` surface; the
    result feeds the events/sec throughput entries of the BENCH report.

    On a batched engine (``engine_batch``), the snapshot additionally
    carries the per-cohort instrumentation under ``"batch"``: cohort count
    and size statistics (including a power-of-two size histogram), the
    vectorized-vs-scalar dispatch split (arena-slot callbacks vs Event
    objects), clock-jump statistics, the event arena's allocation counters,
    and — when a :class:`~repro.core.runtime.Team` attached its plan
    arbiter — the whole-graph plan counters.  Scalar engines return the
    flat counters only.
    """
    out: Dict[str, float] = {
        "events_processed": engine.events_processed,
        "sim_now": engine.now,
        "alive_processes": engine.alive_process_count,
    }
    if not getattr(engine, "_batch", False):
        return out
    n_cohorts = engine._n_cohorts
    hist = {}
    for i, count in enumerate(engine._cohort_hist):
        if count:
            lo = 1 << i
            hi = (1 << (i + 1)) - 1
            hist[f"{lo}" if lo == hi else f"{lo}-{hi}"] = count
    batch: Dict[str, float] = {
        "cohorts": n_cohorts,
        "cohort_events": engine._cohort_events,
        "max_cohort": engine._max_cohort,
        "mean_cohort": (engine._cohort_events / n_cohorts
                        if n_cohorts else 0.0),
        "cohort_hist": hist,
        "arena_fired": engine._n_arena_fired,
        "event_objects": engine._n_event_dispatch,
        "bulk_jumps": engine._n_jumps,
        "jump_total_time": engine._jump_total,
        "arena": engine.arena.counters(),
    }
    arbiter = getattr(engine, "_plan_arbiter", None)
    if arbiter is not None:
        batch["plans"] = {
            "planned_graphs": arbiter.planned_graphs,
            "planned_tasks": arbiter.planned_tasks,
            "plan_cache_hits": arbiter.plan_cache_hits,
            "plan_replans": arbiter.plan_replans,
        }
    out["batch"] = batch
    return out


def fluid_counters() -> Dict[str, float]:
    """Snapshot of the numeric fluid fast-path tallies.

    Combines the :data:`repro.fem.fractional_step.FLUID_COUNTERS` running
    totals (momentum operators recycled vs rebuilt from scratch, deflated
    continuity solves, deflation setups built/reused, Δt-rung operator-
    cache hits/misses/rebuilds, adaptive steps and local-mode subcycles)
    with the buffered Krylov cores' workspace-cache counters
    (:func:`repro.solver.krylov.krylov_workspace_stats`), namespaced under
    ``"krylov_workspaces"``.  Process-wide totals — diagnostics, not part
    of any simulated result.
    """
    from ..fem.fractional_step import FLUID_COUNTERS
    from ..solver.krylov import krylov_workspace_stats

    out: Dict[str, float] = dict(FLUID_COUNTERS)
    out["krylov_workspaces"] = krylov_workspace_stats()
    return out
