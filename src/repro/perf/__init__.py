"""Performance layer: measurement harness + fast-path toggles (PR 2).

Two halves:

* **measurement** — :mod:`repro.perf.instrument` (phase timers, counters,
  throughput meters) and :mod:`repro.perf.bench` (the benchmark runner that
  emits ``BENCH_pr2.json``; run it with ``python -m repro.perf.bench``);
* **optimization control** — :mod:`repro.perf.toggles`, the switches gating
  every PR 2 fast path so before/after can be measured from one build.

Attribute access is lazy (PEP 562): low-level modules (``sim``, ``smpi``,
``core``, ``fem``, ``particles``) import ``repro.perf.toggles`` at import
time, while ``repro.perf.bench`` imports the application layer — eager
re-exports here would create an import cycle.
"""

from __future__ import annotations

__all__ = [
    "Toggles",
    "TOGGLES",
    "set_toggles",
    "baseline",
    "configured",
    "PhaseTimer",
    "Counters",
    "ThroughputMeter",
    "engine_counters",
    "run_benchmarks",
]

_TOGGLE_NAMES = {"Toggles", "TOGGLES", "set_toggles", "baseline",
                 "configured"}
_INSTRUMENT_NAMES = {"PhaseTimer", "Counters", "ThroughputMeter",
                     "engine_counters"}


def __getattr__(name: str):
    if name in _TOGGLE_NAMES:
        from . import toggles
        return getattr(toggles, name)
    if name in _INSTRUMENT_NAMES:
        from . import instrument
        return getattr(instrument, name)
    if name == "run_benchmarks":
        from .bench import run_benchmarks
        return run_benchmarks
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
