"""Benchmark runner: the BENCH JSON trajectory of the performance layer.

Runs representative workloads twice — once with every fast path disabled
(:func:`repro.perf.toggles.baseline`, the pre-PR-2 code paths, all kept in
the tree for exactly this purpose) and once with the current defaults — and
emits a machine-readable before/after report.

Usage::

    PYTHONPATH=src python -m repro.perf.bench                 # full run
    PYTHONPATH=src python -m repro.perf.bench --quick         # CI smoke
    PYTHONPATH=src python -m repro.perf.bench --compare BENCH_pr5.json \
        --baseline auto
    PYTHONPATH=src python -m repro.perf.bench --digest-check engine_batch
    PYTHONPATH=src python -m repro.perf.bench --digest-check engine_batch \
        --digest-workload adaptive

``--compare`` exits non-zero when any benchmark is more than
``SLOWDOWN_TOLERANCE`` times slower than the committed baseline report —
the CI perf-regression gate.  Quick mode runs the *same* workload sizes
with fewer repeats and fewer end-to-end variants, so its timings remain
comparable (within the 2x gate) to a committed full-mode report.

``--baseline`` additionally gates the cross-PR *trajectory*: the current
after-times are compared against the previous PR's committed report (its
after-times are this PR's starting point) and the run fails if any
``kernel`` or ``micro`` benchmark regresses beyond host drift — the
median kernel ratio between the two reports — times the noise floor (see
:func:`trajectory_check`).  The comparison, including the estimated
drift factor, is recorded in the report's ``trajectory`` section.
``--baseline auto`` resolves the newest committed ``BENCH_prN.json``
below the current PR number — PRs that shipped no bench report (PR 6)
simply don't break the chain.

``--digest-check TOGGLE`` skips the timing suite entirely and runs the
default end-to-end configuration twice — once with ``TOGGLE`` forced off,
once with the current defaults — failing if the simulated digests differ:
the per-push form of the wall-clock-only contract.
``--digest-workload adaptive`` runs the same check through the adaptive
time-stepping paths instead (CFL-controlled tube flow for the fluid
toggles, a local-adaptive transient end-to-end spec otherwise);
``--digest-workload breathing`` through the ventilator-coupled cosim
paths (hub-driven inlet rescale on the tube solver for the fluid
toggles, the gated-injection ventilator spec end-to-end otherwise).

Every end-to-end benchmark also records a digest of the simulated-time
results under both toggle states: the report itself re-checks the PR's
bit-identicality contract.
"""

from __future__ import annotations

import argparse
import gc
import glob
import hashlib
import json
import os
import platform
import re
import sys
import time
from typing import Callable, Optional

__all__ = ["run_benchmarks", "trajectory_check", "resolve_auto_baseline",
           "main", "SLOWDOWN_TOLERANCE"]

#: --compare fails when current/baseline exceeds this per benchmark
SLOWDOWN_TOLERANCE = 2.0

#: --baseline floor for drift-adjusted kernel speedups (see
#: :func:`trajectory_check`): after the median host-drift factor is
#: divided out, per-kernel best-of-N residual noise is still a few
#: percent, so the gate fails only below this ratio.
TRAJECTORY_NOISE_FLOOR = 0.9

#: the same floor in --quick mode, where single-repeat timings are
#: noisier still.
TRAJECTORY_QUICK_FLOOR = 0.85

_SCHEMA = "repro-bench-v1"
_DEFAULT_OUT = "BENCH_pr10.json"

#: documented accuracy contract of the adaptive time-to-endpoint row:
#: relative L2 distance of the adaptive endpoint velocity from the fine
#: fixed-Δt reference (see docs/performance.md, "Adaptive time stepping")
ENDPOINT_ACCURACY_TOL = 0.05


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Smallest wall-clock of ``repeats`` calls (and the last result).

    The cyclic collector is paused around the timed calls (both toggle
    states get the same treatment): on measurements in the 100 ms range a
    generational pass over the cached workload structures costs several
    percent and lands on random repeats, which is exactly the noise a
    best-of protocol cannot average away.
    """
    best = float("inf")
    result = None
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best, result


# -- workload pieces ---------------------------------------------------------

def _engine_events_workload() -> int:
    """DES micro-benchmark with the substrate's real event mix.

    Two concurrent streams, matching what the engine actually dispatches in
    a CFPD run: (a) the callback-based task runtime executing a stream of
    small graphs on single-worker teams — the regime where the batched
    engine's whole-graph plans and the (cached) plan templates collapse
    per-task events into one completion per graph — and (b) lockstep
    ``defer``/``call_later`` chains forming same-timestamp cohorts that the
    scalar engine pays one heap operation per event for and the batched
    engine retires as one calendar bucket.

    Returns the *scalar-equivalent* event count via a second accounting:
    ``eng.events_processed`` differs by design between the two engines
    (the plan path schedules one event per graph), so the row reports the
    before-side count as the workload size.
    """
    from ..core import Team, TaskGraph
    from ..machine import CoreModel, WorkSpec
    from ..sim import Engine

    core = CoreModel(name="bench", freq_ghz=1.0, base_ipc=1.0,
                     out_of_order=True, atomic_stall_cycles=0.0,
                     mem_stall_cycles=0.0)
    eng = Engine()
    graph = TaskGraph()
    for _ in range(6):
        graph.add_task(WorkSpec(1e3))
    teams = [Team(eng, core, 1) for _ in range(16)]

    def prog(team):
        for _ in range(25):
            yield from team.run(graph)

    for team in teams:
        eng.process(prog(team))

    def tick(chain, r):
        if r:
            if r % 4:
                eng.defer(tick, chain, r - 1)
            else:
                eng.call_later(((r // 4) % 8 + 1) * 1e-6, tick, chain, r - 1)

    for i in range(48):
        eng.call_later(1e-6, tick, i, 100)
    eng.run()
    return eng.events_processed


def _engine_events_manyrank_workload() -> float:
    """Rank-heavy, kernel-light DES benchmark: 96 simulated MPI ranks
    running a p2p ring exchange plus allreduce/barrier rounds with a token
    compute phase.  Nearly all the wall time is engine dispatch and message
    matching — the Amdahl remainder the batched core targets — so this row
    gates the engine/comm stack at production rank counts without any
    numerical kernels in the way."""
    from ..machine import marenostrum4
    from ..sim import Engine
    from ..smpi import World

    eng = Engine()
    world = World(eng, marenostrum4(), 96, mapping="block")
    n_rounds = 12

    def program(comm):
        total = 0.0
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        for r in range(n_rounds):
            yield from comm.compute(5e-7)
            req = comm.isend(float(comm.rank + r), dest=right, tag=r)
            val = yield from comm.recv(source=left, tag=r)
            yield from comm.wait(req)
            total = yield from comm.allreduce(total + val)
            yield from comm.barrier()
        return total

    results = world.run(world.launch(program))
    return float(results[0])


def _collectives_workload() -> float:
    """Simulated-MPI benchmark: allreduce/barrier rounds over 32 ranks."""
    from ..machine import marenostrum4
    from ..sim import Engine
    from ..smpi import World

    eng = Engine()
    world = World(eng, marenostrum4(), 32, mapping="block")
    n_rounds = 30

    def program(comm):
        total = 0.0
        for r in range(n_rounds):
            total = yield from comm.allreduce(float(comm.rank + r))
            yield from comm.barrier()
        return total

    results = world.run(world.launch(program))
    return float(results[0])


def _workload():
    from ..app.workload import WorkloadSpec, get_workload

    return get_workload(WorkloadSpec())


def _assembly_workload() -> str:
    """Repeated operator assembly on the default airway mesh.

    The digest covers what the simulated-time layer consumes — the sparsity
    structure and the per-element work meters — which are exact across
    toggle states.  The matrix *values* agree only to the last ulp
    (duplicate-summation order differs from SciPy's ``tocsr``; asserted at
    1e-12 in ``tests/test_perf.py``), so they stay out of the digest.
    """
    from ..fem import assemble_operator

    wl = _workload()
    digest = hashlib.sha256()
    for _ in range(5):
        res = assemble_operator(wl.mesh, kappa=1.9e-5,
                                mass_coeff=1.15 / wl.spec.dt,
                                velocity=wl.nodal_velocity)
        digest.update(res.matrix.indices.tobytes())
        digest.update(res.matrix.indptr.tobytes())
        digest.update(res.scatter_counts.tobytes())
        digest.update(res.element_nodes.tobytes())
    return digest.hexdigest()


def _assembly_constant_workload() -> str:
    """Repeated assembly of the velocity-independent (continuity) operator.

    With operator splitting this operator is fully constant: after the
    first build every repeat reduces to a cached-data copy, so this row
    isolates the assembled-once path from the incremental one.
    """
    from ..fem import assemble_operator

    wl = _workload()
    digest = hashlib.sha256()
    for _ in range(5):
        res = assemble_operator(wl.mesh, kappa=1.9e-5,
                                mass_coeff=1.15 / wl.spec.dt)
        digest.update(res.matrix.indices.tobytes())
        digest.update(res.matrix.indptr.tobytes())
        digest.update(res.scatter_counts.tobytes())
        digest.update(res.element_nodes.tobytes())
    return digest.hexdigest()


def _sgs_workload() -> float:
    """Repeated SGS sweeps (element-local kernel, no scatter)."""
    import numpy as np

    from ..fem import SGSState, update_sgs

    wl = _workload()
    state = SGSState.zeros(wl.mesh.nelem)
    for _ in range(10):
        update_sgs(wl.mesh, state, wl.nodal_velocity,
                   viscosity=1.9e-5, dt=wl.spec.dt)
    return float(np.linalg.norm(state.values))


# -- numeric fluid workload pieces -------------------------------------------

#: (mesh, bc) of the straight-tube flow problem driving the fluid rows;
#: built once, untimed (the mesh and BCs are toggle-neutral inputs)
_FLUID_TUBE: Optional[tuple] = None

#: (before_solver, after_solver, u0, p0) — the fractional-step solver pair;
#: the before side is constructed with the fluid fast paths off (the
#: ``fluid_operator_recycle`` / ``deflation_setup_cache`` toggles are
#: captured at construction), the after side with the current defaults
_FLUID_SOLVERS: Optional[tuple] = None

#: (A, groups, rhs list) of the pressure-solve row: an SPD pressure-like
#: Poisson system on a structured tet cube with a large RCB coarse space
_PRESSURE_SYSTEM: Optional[tuple] = None


def _fluid_tube() -> tuple:
    """Straight-tube mesh + velocity BCs (parabolic inflow, no-slip wall,
    pressure pinned at the outlet) — the ``tests/test_fluid.py`` problem at
    a bench-sized resolution."""
    global _FLUID_TUBE
    if _FLUID_TUBE is None:
        import numpy as np

        from ..fem import FlowBC
        from ..mesh.airway import Segment
        from ..mesh.generator import MeshResolution, build_tube_mesh

        seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                      direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                      radius=0.01)
        mesh = build_tube_mesh(seg, MeshResolution(points_per_ring=20,
                                                   max_sections=16))
        z = mesh.coords[:, 2]
        r = np.linalg.norm(mesh.coords[:, :2], axis=1)
        inlet = np.nonzero(np.isclose(z, 0.0) & (r < 0.0099))[0]
        outlet = np.nonzero(np.isclose(z, -0.04))[0]
        wall = np.nonzero(np.isclose(r, 0.01))[0]
        u_in = np.zeros((len(inlet), 3))
        u_in[:, 2] = -1.0 * (1.0 - (r[inlet] / 0.01) ** 2)
        bc = FlowBC(inlet_nodes=inlet, inlet_velocity=u_in, wall_nodes=wall,
                    outlet_nodes=outlet)
        _FLUID_TUBE = (mesh, bc)
    return _FLUID_TUBE


def _fluid_solvers() -> tuple:
    """Construct the before/after fractional-step solver pair (untimed).

    Solver construction captures the ``fluid_operator_recycle`` and
    ``deflation_setup_cache`` toggles, so the before side must be built
    under :func:`~repro.perf.toggles.configured` with them off; the timed
    row then measures pure per-step cost on warm solvers.
    """
    global _FLUID_SOLVERS
    if _FLUID_SOLVERS is None:
        from ..fem import FractionalStepSolver
        from .toggles import configured

        mesh, bc = _fluid_tube()
        kwargs = dict(viscosity=1e-3, density=1.0, dt=1e-3)
        with configured(fluid_operator_recycle=False,
                        deflation_setup_cache=False, krylov_buffers=False):
            before = FractionalStepSolver(mesh, bc, **kwargs)
        after = FractionalStepSolver(mesh, bc, **kwargs)
        _FLUID_SOLVERS = (before, after, after.u.copy(), after.p.copy())
    return _FLUID_SOLVERS


def _fractional_step_run(solver, u0, p0) -> str:
    """Reset the fields and advance 10 steps (the startup regime, where
    per-step setup dominates the short Krylov solves); digest covers the
    final velocity/pressure bytes and the per-step iteration counts."""
    solver.u = u0.copy()
    solver.p = p0.copy()
    infos = solver.run(10, tol=1e-4)
    digest = hashlib.sha256()
    digest.update(solver.u.tobytes())
    digest.update(solver.p.tobytes())
    digest.update(repr([(i.momentum_iterations, i.pressure_iterations)
                        for i in infos]).encode())
    return digest.hexdigest()


def _fractional_step_after() -> str:
    before, after, u0, p0 = _fluid_solvers()
    return _fractional_step_run(after, u0, p0)


def _fractional_step_before() -> str:
    """The pre-PR-8 per-step path: COO vector expansion + LIL Dirichlet row
    replacement + full Jacobi rebuild every step, allocating Krylov cores
    (``krylov_buffers`` is read per solve, so it is forced off here too)."""
    from .toggles import configured

    before, after, u0, p0 = _fluid_solvers()
    with configured(fluid_operator_recycle=False,
                    deflation_setup_cache=False, krylov_buffers=False):
        return _fractional_step_run(before, u0, p0)


def _cube_tet_mesh(n: int):
    """Conforming Kuhn tet mesh of the unit cube: n^3 cells, 6 tets each."""
    import numpy as np

    from ..mesh.elements import ElementType
    from ..mesh.mesh import Mesh

    xs = np.linspace(0.0, 1.0, n + 1)
    coords = np.array([[x, y, z] for x in xs for y in xs for z in xs])

    def vid(i, j, k):
        return (i * (n + 1) + j) * (n + 1) + k

    tets = []
    perms = [(0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1),
             (2, 1, 0)]
    for i in range(n):
        for j in range(n):
            for k in range(n):
                base = np.array([i, j, k])
                for perm in perms:
                    path = [base.copy()]
                    p = base.copy()
                    for axis in perm:
                        p = p.copy()
                        p[axis] += 1
                        path.append(p)
                    tets.append([vid(*q) for q in path])
    conn = np.full((len(tets), 6), -1, dtype=np.int32)
    conn[:, :4] = np.asarray(tets, dtype=np.int32)
    types = np.full(len(tets), ElementType.TET, dtype=np.int8)
    return Mesh(coords, types, conn)


def _pressure_system() -> tuple:
    """SPD pressure-like system + coarse space + RHS batch (untimed).

    A regularized Poisson operator on a 6859-node tet cube with a 1536-part
    RCB coarse space: large enough that the per-call ``DeflationSetup``
    (sparse coarse products + dense Cholesky of the 1536^2 coarse operator)
    is comparable to a solve — the amortization regime of a production
    continuity solver that builds its deflation once per mesh.
    """
    global _PRESSURE_SYSTEM
    if _PRESSURE_SYSTEM is None:
        import numpy as np

        from ..fem import assemble_operator
        from ..partition import rcb_partition

        mesh = _cube_tet_mesh(18)
        K = assemble_operator(mesh, kappa=1.0).matrix
        M = assemble_operator(mesh, kappa=0.0, mass_coeff=1.0).matrix
        A = (K + 1e-4 * M).tocsr()
        groups = rcb_partition(mesh.coords, 1536)
        rng = np.random.default_rng(0)
        bs = [rng.standard_normal(A.shape[0]) for _ in range(8)]
        _PRESSURE_SYSTEM = (A, groups, bs)
    return _PRESSURE_SYSTEM


def _pressure_digest(results) -> str:
    digest = hashlib.sha256()
    for res in results:
        digest.update(res.x.tobytes())
        digest.update(repr(res.iterations).encode())
    return digest.hexdigest()


def _pressure_solve_cached() -> str:
    """One :class:`DeflationSetup` amortized over the RHS batch.  The setup
    build is *inside* the timed region — the row measures the amortization,
    not its omission."""
    from ..solver import DeflationSetup, deflated_cg

    A, groups, bs = _pressure_system()
    setup = DeflationSetup(A, groups)
    return _pressure_digest(
        [deflated_cg(A, b, tol=1e-4, setup=setup) for b in bs])


def _pressure_solve_per_call() -> str:
    """The pre-PR-8 execution model: every solve rebuilds and refactorizes
    the coarse space from the group vector."""
    from ..solver import deflated_cg

    A, groups, bs = _pressure_system()
    return _pressure_digest(
        [deflated_cg(A, b, groups, tol=1e-4) for b in bs])


#: (mesh, bc, u0, p0, dt_fine, n_fixed, control) of the time-to-endpoint
#: row: a weak-inflow tube spun up (untimed) to its developed state, whose
#: CFL headroom then lets the adaptive controller sit on the top Δt rung
#: while the fixed reference covers the same horizon at the fine Δt — the
#: wall-time-to-endpoint regime adaptivity targets.  Starting from the
#: developed state matters for the accuracy gate too: the impulsive-start
#: entrance transient relaxes on the advective timescale L/U (~0.3 s
#: here), and mid-transient states at 8x Δt differ by O(1) no matter the
#: viscosity — whereas near the attractor the coarse-rung endpoint tracks
#: the fine reference to ~1%.
_ADAPTIVE_ENDPOINT: Optional[tuple] = None


def _adaptive_endpoint() -> tuple:
    global _ADAPTIVE_ENDPOINT
    if _ADAPTIVE_ENDPOINT is None:
        import numpy as np

        from ..fem import CflController, DtLadder, FlowBC, \
            FractionalStepSolver
        from ..mesh.airway import Segment
        from ..mesh.generator import MeshResolution, build_tube_mesh

        seg = Segment(sid=0, parent=-1, generation=0, start=np.zeros(3),
                      direction=np.array([0.0, 0.0, -1.0]), length=0.04,
                      radius=0.01)
        mesh = build_tube_mesh(seg, MeshResolution(points_per_ring=12,
                                                   max_sections=10))
        z = mesh.coords[:, 2]
        r = np.linalg.norm(mesh.coords[:, :2], axis=1)
        inlet = np.nonzero(np.isclose(z, 0.0) & (r < 0.0099))[0]
        outlet = np.nonzero(np.isclose(z, -0.04))[0]
        wall = np.nonzero(np.isclose(r, 0.01))[0]
        u_in = np.zeros((len(inlet), 3))
        # peak 0.25 m/s: slow enough that the CFL target admits the top
        # rung of the 5e-4..4e-3 ladder (a 1 m/s inflow on this mesh pins
        # the controller to the bottom rung and there is nothing to win)
        u_in[:, 2] = -0.25 * (1.0 - (r[inlet] / 0.01) ** 2)
        bc = FlowBC(inlet_nodes=inlet, inlet_velocity=u_in, wall_nodes=wall,
                    outlet_nodes=outlet)
        spinup = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=4e-3)
        spinup.run(100, tol=1e-6)
        dt_fine = 5e-4
        control = CflController(
            ladder=DtLadder(dt_min=dt_fine, dt_max=8 * dt_fine))
        _ADAPTIVE_ENDPOINT = (mesh, bc, spinup.u.copy(), spinup.p.copy(),
                              dt_fine, 64, control)
    return _ADAPTIVE_ENDPOINT


def _endpoint_result(solver, infos) -> dict:
    digest = hashlib.sha256()
    digest.update(solver.u.tobytes())
    digest.update(solver.p.tobytes())
    digest.update(repr([(i.momentum_iterations, i.pressure_iterations,
                         round(i.dt, 12), i.rung)
                        for i in infos]).encode())
    return {"steps": len(infos), "u": solver.u.copy(),
            "digest": digest.hexdigest()}


def _endpoint_solver():
    """A fresh fine-Δt solver starting from the spun-up developed state."""
    from ..fem import FractionalStepSolver

    mesh, bc, u0, p0, dt_fine, _, _ = _adaptive_endpoint()
    solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                  dt=dt_fine)
    solver.u = u0.copy()
    solver.p = p0.copy()
    return solver


def _endpoint_fixed() -> dict:
    """Fine fixed-Δt reference advanced to the endpoint.  Solver
    construction stays inside the timed region on both sides: the row
    measures the full wall time to the simulated endpoint, including the
    Δt-dependent operator builds adaptivity amortizes per rung."""
    n_fixed = _adaptive_endpoint()[5]
    solver = _endpoint_solver()
    return _endpoint_result(solver, solver.run(n_fixed, tol=1e-4))


def _endpoint_adaptive() -> dict:
    """CFL-controlled run to the same endpoint on the quantized ladder."""
    dt_fine, n_fixed, control = _adaptive_endpoint()[4:]
    solver = _endpoint_solver()
    infos = solver.advance_to(n_fixed * dt_fine, control=control, tol=1e-4)
    return _endpoint_result(solver, infos)


def _endpoint_detail(before: dict, after: dict) -> dict:
    """Accuracy and determinism cross-checks of the time-to-endpoint row
    (untimed): endpoint error vs the fine fixed-Δt reference, a rerun, and
    the adaptive run with every fluid fast path forced off — the digests
    of all three must match bit for bit."""
    import numpy as np

    from .toggles import configured

    err = float(np.linalg.norm(after["u"] - before["u"])
                / np.linalg.norm(before["u"]))
    rerun = _endpoint_adaptive()
    with configured(fluid_operator_recycle=False,
                    deflation_setup_cache=False, krylov_buffers=False):
        toggled = _endpoint_adaptive()
    return {
        "steps_fixed": before["steps"],
        "steps_adaptive": after["steps"],
        "step_reduction": round(before["steps"] / after["steps"], 3),
        "endpoint_rel_error": round(err, 6),
        "endpoint_tolerance": ENDPOINT_ACCURACY_TOL,
        "ok": err <= ENDPOINT_ACCURACY_TOL,
        "simulated_digest": {
            "after": after["digest"],
            "rerun": rerun["digest"],
            "fast_paths_off": toggled["digest"],
            "identical": after["digest"] == rerun["digest"]
            == toggled["digest"],
        },
    }


#: (A, M, rhs list) of the Krylov-kernel row: a small, iteration-heavy SPD
#: system where the per-iteration allocation overhead the buffered cores
#: remove is a visible fraction of the solve
_KRYLOV_SYSTEM: Optional[tuple] = None


def _krylov_system() -> tuple:
    global _KRYLOV_SYSTEM
    if _KRYLOV_SYSTEM is None:
        import numpy as np

        from ..fem import assemble_operator
        from ..solver import jacobi_preconditioner

        mesh = _cube_tet_mesh(8)
        K = assemble_operator(mesh, kappa=1.0).matrix
        M = assemble_operator(mesh, kappa=0.0, mass_coeff=1.0).matrix
        A = (K + 1e-4 * M).tocsr()
        rng = np.random.default_rng(0)
        bs = [rng.standard_normal(A.shape[0]) for _ in range(32)]
        _KRYLOV_SYSTEM = (A, jacobi_preconditioner(A), bs)
    return _KRYLOV_SYSTEM


def _krylov_cg_workload() -> str:
    """Repeated tight-tolerance Jacobi-CG solves on the prebuilt system.

    The matrix is toggle-neutral setup, so the standard baseline-vs-default
    mechanism isolates the ``krylov_buffers`` allocation-free cores; the
    buffered iteration replays the allocating cores' FP operations in the
    same order, so the digest (solution bytes + iteration counts) is
    bit-identical by design.
    """
    from ..solver import cg

    A, M, bs = _krylov_system()
    return _pressure_digest(
        [cg(A, b, tol=1e-12, maxiter=4000, M=M) for b in bs])


#: (trace, times) of the breathing-cycle row: a multi-cycle ventilator
#: flow trace plus the solver-side query schedule; built once, untimed
#: (the 0D integration is a toggle-neutral input to both sides)
_COSIM_TRACE: Optional[tuple] = None


def _cosim_trace() -> tuple:
    global _COSIM_TRACE
    if _COSIM_TRACE is None:
        from ..cosim import (BreathingPattern, LungModel,
                             VENTILATION_PATTERNS, VentilatorSettings,
                             simulate_breathing)

        pattern = BreathingPattern(
            LungModel(), VentilatorSettings(**VENTILATION_PATTERNS["rest"]))
        trace = simulate_breathing(pattern, n_cycles=4,
                                   samples_per_cycle=4096)
        times = [i * trace.duration / 200.0 for i in range(200)]
        _COSIM_TRACE = (trace, times)
    return _COSIM_TRACE


def _hub_forward_digest(hub_fn, trace, times) -> str:
    digest = hashlib.sha256()
    for t in times:
        digest.update(repr(round(hub_fn(t), 12)).encode())
    digest.update(repr(round(trace.peak_flow, 12)).encode())
    return digest.hexdigest()


def _breathing_cycle_buffered() -> str:
    """One buffered hub amortized over the query schedule: receive and
    transform run once, every forward is a window lookup."""
    from ..cosim import CosimHub

    trace, times = _cosim_trace()
    hub = CosimHub(trace)
    return _hub_forward_digest(hub.scale_at, trace, times)


def _breathing_cycle_unbuffered() -> str:
    """The transform-per-request model a hub-less coupling degenerates to:
    every solver query re-reduces the full trace to window scales before
    forwarding one value.  Forwards are bit-identical to the buffered
    path by construction (same windows, same reduction)."""
    from ..cosim import CosimHub

    trace, times = _cosim_trace()
    return _hub_forward_digest(
        lambda t: CosimHub(trace).scale_at(t), trace, times)
#: particle benchmark row (toggle-neutral: trackers are bit-identical
#: across toggle states, which ``tests/test_perf_identical.py`` enforces)
_PARTICLE_PREROLL: Optional[tuple] = None

#: precomputed (positions, status) per step of a depositing trajectory;
#: built once by :func:`_particle_snapshots` so the timed benchmark covers
#: only the element-location work, not the Newmark integration
_PARTICLE_SNAPSHOTS: Optional[list] = None


def _particle_preroll() -> tuple:
    """(x, v, a, status) after 60 coarse steps (dt = 1e-3) of a 20x
    population: a realistic fraction has deposited, the rest has spread
    down the tree — the regime the particle fast paths target."""
    global _PARTICLE_PREROLL
    if _PARTICLE_PREROLL is None:
        from ..particles import (FluidProperties, NewmarkTracker,
                                 ParticleProperties, ParticleState,
                                 inject_at_inlet)

        wl = _workload()
        tracker = NewmarkTracker(wl.flow, particles=ParticleProperties(),
                                 fluid=FluidProperties())
        state = ParticleState.empty()
        state.extend(inject_at_inlet(wl.airway, 20 * wl.n_particles, seed=7))
        for _ in range(60):
            tracker.step(state, 1e-3)
        _PARTICLE_PREROLL = (state.x.copy(), state.v.copy(),
                             state.a.copy(), state.status.copy())
    return _PARTICLE_PREROLL


def _preroll_state():
    """A fresh mutable :class:`ParticleState` copy of the pre-roll."""
    from ..particles import ParticleState

    x, v, a, status = _particle_preroll()
    return ParticleState(x=x.copy(), v=v.copy(), a=a.copy(),
                         status=status.copy())


def _particle_snapshots() -> list:
    global _PARTICLE_SNAPSHOTS
    if _PARTICLE_SNAPSHOTS is None:
        from ..particles import (FluidProperties, NewmarkTracker,
                                 ParticleProperties)

        wl = _workload()
        tracker = NewmarkTracker(wl.flow, particles=ParticleProperties(),
                                 fluid=FluidProperties())
        state = _preroll_state()
        snaps = []
        # the simulation dt from the pre-rolled population: frozen
        # particles dominate and the movers drift a fraction of an
        # element per step — the regime the locator fast paths target
        for _ in range(60):
            tracker.step(state, 1e-4)
            snaps.append((state.x.copy(), state.status.copy()))
        _PARTICLE_SNAPSHOTS = snaps
    return _PARTICLE_SNAPSHOTS


def _tracker_step_workload() -> str:
    """60 transport steps at the simulation dt from the pre-rolled
    population (fresh tracker per call — toggles captured at
    construction); digest covers the full final particle state."""
    import numpy as np

    from ..particles import (FluidProperties, NewmarkTracker,
                             ParticleProperties)

    wl = _workload()
    tracker = NewmarkTracker(wl.flow, particles=ParticleProperties(),
                             fluid=FluidProperties())
    state = _preroll_state()
    for _ in range(60):
        tracker.step(state, 1e-4)
    digest = hashlib.sha256()
    for arr in (state.x, state.v, state.a, state.status):
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _interpolation_workload() -> str:
    """Mesh-field velocity interpolation at the pre-rolled particle
    positions (fresh field per call — toggles captured at construction)."""
    from ..particles.interpolation import MeshVelocityField

    wl = _workload()
    field = MeshVelocityField(wl.mesh, wl.nodal_velocity)
    x = _particle_preroll()[0]
    digest = hashlib.sha256()
    for _ in range(10):
        digest.update(field.velocity(x).tobytes())
    return digest.hexdigest()


def _particles_workload() -> str:
    """Per-step rank-ownership histograms over a depositing trajectory
    (the driver's particle load metering; KD-tree element location)."""
    import numpy as np

    from ..particles import ElementLocator, ParticleState

    wl = _workload()
    nranks = 96
    labels = wl.decomposition(nranks).labels
    snaps = _particle_snapshots()
    locator = ElementLocator(wl.airway, labels)
    digest = hashlib.sha256()
    z = np.zeros((0, 3))
    state = ParticleState(x=snaps[0][0], v=z, a=z, status=snaps[0][1])
    for _ in range(4):
        for x, status in snaps:
            # the locator reads only positions and status
            state.x = x
            state.status = status
            hist = locator.rank_histogram_state(state, nranks)
            digest.update(hist.tobytes())
    return digest.hexdigest()


def _run_cfpd(**config_kwargs):
    """End-to-end run returning the :class:`RunResult` (the timed part)."""
    from ..app.driver import RunConfig, run_cfpd

    return run_cfpd(RunConfig(**config_kwargs))


def _cfpd_digest(res) -> str:
    """Digest of every simulated-time result of a run.

    Kept out of the timed region (a ``post`` hook): hashing the ~5k phase
    samples costs ~14 ms — noise on the scalar side but a double-digit
    share of the batched end-to-end time, so timing it would understate
    the engine speedup by harness cost alone.
    """
    h = hashlib.sha256()
    for s in res.phase_log.samples:
        h.update(repr((s.step, s.rank, s.phase,
                       round(s.t0, 12), round(s.t1, 12))).encode())
    h.update(repr(round(res.total_time, 12)).encode())
    h.update(repr(res.deposition).encode())
    h.update(repr(res.solver_info).encode())
    return h.hexdigest()


def _run_cfpd_digest(spec=None, **config_kwargs) -> str:
    """End-to-end run; digest covers every simulated-time result."""
    from ..app.driver import RunConfig, run_cfpd

    return _cfpd_digest(run_cfpd(RunConfig(**config_kwargs), spec=spec))


def _campaign_bench_spec():
    """The bench sweep: 8 jobs (2 rank counts x 2 thread counts x DLB)."""
    from ..app import RunConfig, WorkloadSpec
    from ..campaign import CampaignSpec

    return CampaignSpec(
        name="bench-grid",
        base_config=RunConfig(cluster="thunder", num_nodes=1),
        base_spec=WorkloadSpec(generations=3, points_per_ring=6, n_steps=4),
        grid=[("config.nranks", [4, 8]),
              ("config.threads_per_rank", [1, 2]),
              ("config.dlb", [False, True])])


def _campaign_digest(run) -> str:
    h = hashlib.sha256()
    for fp, digest in sorted(run.digest_map().items()):
        h.update(fp.encode())
        h.update(digest.encode())
    return h.hexdigest()


def _campaign_cold_serial() -> str:
    """The pre-campaign execution model: one cold spawned process per job
    (every cell pays interpreter start, imports and the full workload
    precompute — the "ad-hoc script per configuration" status quo)."""
    from ..campaign import run_campaign

    return _campaign_digest(
        run_campaign(_campaign_bench_spec(), fresh_process_per_job=True))


def _campaign_warm_pool() -> str:
    """The campaign executor: a 4-worker pool forked off a warm parent, so
    workers share the precomputed workload instead of rebuilding it."""
    from ..campaign import run_campaign

    return _campaign_digest(
        run_campaign(_campaign_bench_spec(), workers=4))


def _campaign_setup() -> None:
    """Warm the parent-side workload cache (forked into pool workers);
    kept out of the timings like every other setup."""
    from ..campaign.runner import warm_workload

    warm_workload(_campaign_bench_spec().base_spec)


# -- benchmark table ---------------------------------------------------------

def _benchmark_table(quick: bool) -> list[dict]:
    """(name, kind, callable, throughput units) rows for this mode."""
    table = [
        # micro rows finish in milliseconds, so their relative timing noise
        # is the largest in the table: they get a deeper best-of (still
        # the cheapest rows by far) to land on the floor reliably
        {"name": "engine_events", "kind": "micro",
         "fn": _engine_events_workload, "units": "events", "warmup": True,
         "repeats": 7, "min_speedup": 4.0,
         "note": "units count is the before-side (scalar) event total: the "
                 "batched engine retires the same workload through plans "
                 "and cohorts, so its own events_processed is lower by "
                 "design"},
        {"name": "engine_events_manyrank", "kind": "micro",
         "fn": _engine_events_manyrank_workload, "units": None,
         "warmup": True, "repeats": 7, "min_speedup": 2.0,
         "note": "96-rank p2p ring + allreduce/barrier, token compute: "
                 "gates the engine/comm dispatch stack at production rank "
                 "counts"},
        {"name": "collectives", "kind": "micro",
         "fn": _collectives_workload, "units": None, "warmup": True,
         "repeats": 7},
        {"name": "assembly", "kind": "kernel",
         "fn": _assembly_workload, "units": "elements", "warmup": True,
         "unit_count": lambda: 5 * _workload().mesh.nelem},
        # after-side is a ~3 ms cached-copy path: deeper best-of for the
        # same reason as the micro rows
        {"name": "assembly_constant", "kind": "kernel",
         "fn": _assembly_constant_workload, "units": "elements",
         "warmup": True, "repeats": 7,
         "unit_count": lambda: 5 * _workload().mesh.nelem},
        {"name": "sgs", "kind": "kernel",
         "fn": _sgs_workload, "units": "elements", "warmup": True,
         "unit_count": lambda: 10 * _workload().mesh.nelem},
        # before/after compare solver *construction states* (the fluid
        # toggles are captured at construction), so both sides are prebuilt
        # in setup and the before side re-enters configured() per call for
        # the per-solve krylov_buffers read
        {"name": "fractional_step", "kind": "kernel",
         "fn": _fractional_step_after, "before_fn": _fractional_step_before,
         "setup": _fluid_solvers, "units": "steps", "repeats": 7,
         "unit_count": lambda: 10, "min_speedup": 2.0,
         "note": "before = COO vector expansion + LIL Dirichlet rows + "
                 "Jacobi rebuild per step, allocating Krylov cores; after "
                 "= one composed gather into the precomputed constrained "
                 "pattern (fluid_operator_recycle) + buffered cores"},
        {"name": "pressure_solve", "kind": "kernel",
         "fn": _pressure_solve_cached, "before_fn": _pressure_solve_per_call,
         "setup": _pressure_system, "units": "solves", "repeats": 3,
         "unit_count": lambda: 8, "min_speedup": 1.5,
         "note": "before = deflated CG rebuilding the coarse space every "
                 "solve; after = one DeflationSetup (built inside the "
                 "timed region) amortized over the RHS batch"},
        # before/after compare *time-stepping policies* on the same code
        # (fixed fine Δt vs the CFL-controlled ladder), not toggle states;
        # the detail hook cross-checks endpoint accuracy and bit-identical
        # digests across a rerun and the fluid fast paths forced off
        {"name": "time_to_endpoint", "kind": "kernel",
         "fn": _endpoint_adaptive, "before_fn": _endpoint_fixed,
         "setup": _adaptive_endpoint, "units": None, "repeats": 3,
         "min_speedup": 1.5, "detail": _endpoint_detail,
         "note": "before = fixed fine-Δt run to the simulated endpoint; "
                 "after = CFL-driven adaptive stepping on the quantized "
                 "Δt ladder to the same endpoint (solver construction "
                 "timed on both sides)"},
        {"name": "krylov_cg", "kind": "kernel",
         "fn": _krylov_cg_workload, "units": "solves", "warmup": True,
         "setup": _krylov_system, "repeats": 7, "min_speedup": 1.1,
         "unit_count": lambda: 32,
         "note": "gates the krylov_buffers allocation-free cores on an "
                 "iteration-heavy small system"},
        # before/after compare hub execution models (transform-per-request
        # vs one buffered receive/transform amortized over the forwards),
        # not toggle states; forwards are bit-identical by construction
        {"name": "breathing_cycle", "kind": "kernel",
         "fn": _breathing_cycle_buffered,
         "before_fn": _breathing_cycle_unbuffered,
         "setup": _cosim_trace, "units": "forwards", "repeats": 7,
         "unit_count": lambda: 200, "min_speedup": 5.0,
         "note": "before = hub-less coupling re-reducing the 4-cycle flow "
                 "trace to window scales on every solver query; after = "
                 "one buffered CosimHub (receive/transform once) "
                 "answering the same 200 forwards"},
        {"name": "particle_location", "kind": "kernel",
         "fn": _particles_workload, "units": "particles", "warmup": True,
         "setup": _particle_snapshots, "min_speedup": 1.2,
         "unit_count": lambda: 4 * 60 * 20 * _workload().n_particles},
        {"name": "tracker_step", "kind": "kernel",
         "fn": _tracker_step_workload, "units": "particle_steps",
         "warmup": True, "setup": _particle_preroll, "min_speedup": 2.0,
         "unit_count": lambda: 60 * 20 * _workload().n_particles},
        {"name": "interpolation", "kind": "kernel",
         "fn": _interpolation_workload, "units": "points", "warmup": True,
         "setup": _particle_preroll,
         "unit_count": lambda: 10 * 20 * _workload().n_particles},
        # the 5x-gated rows keep a fixed best-of-5 in every mode: a single
        # quick-mode repeat flaps around the gate on host noise alone
        {"name": "run_cfpd_sync", "kind": "end_to_end",
         "fn": lambda: _run_cfpd(), "post": _cfpd_digest, "units": None,
         "warmup": True, "repeats": 5, "min_speedup": 5.0},
        {"name": "run_cfpd_coupled", "kind": "end_to_end",
         "fn": lambda: _run_cfpd(mode="coupled", fluid_ranks=64),
         "post": _cfpd_digest, "units": None, "warmup": True,
         "repeats": 5, "min_speedup": 5.0},
        # before/after compare execution models (cold process per job vs
        # the warm 4-worker pool), not toggle states; the host has a
        # single CPU, so the gate measures amortized startup/precompute,
        # not parallel speedup
        {"name": "campaign_throughput", "kind": "end_to_end",
         "fn": _campaign_warm_pool, "before_fn": _campaign_cold_serial,
         "setup": _campaign_setup, "units": "jobs", "repeats": 1,
         "unit_count": lambda: 8, "min_speedup": 1.67,
         "note": "before = one cold spawned process per job (the ad-hoc "
                 "script model); after = campaign executor, 4-worker "
                 "fork pool sharing the warm workload cache"},
    ]
    if not quick:
        table += [
            {"name": "run_cfpd_sync_dlb", "kind": "end_to_end",
             "fn": lambda: _run_cfpd(dlb=True), "post": _cfpd_digest,
             "units": None},
            {"name": "run_cfpd_coupled_dlb", "kind": "end_to_end",
             "fn": lambda: _run_cfpd(mode="coupled", fluid_ranks=64,
                                     dlb=True),
             "post": _cfpd_digest, "units": None},
        ]
    return table


def _env_info() -> dict:
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def run_benchmarks(quick: bool = False, repeats: Optional[int] = None,
                   verbose: bool = True) -> dict:
    """Run the before/after benchmark suite; returns the report dict.

    ``quick`` keeps workload sizes identical but uses one repeat and skips
    the DLB end-to-end variants (the CI smoke configuration); ``repeats``
    overrides the per-benchmark repeat count (full default: 3, best-of).
    """
    from .toggles import baseline

    if repeats is None:
        repeats = 1 if quick else 3
    benchmarks = []
    for row in _benchmark_table(quick):
        name, fn = row["name"], row["fn"]
        if verbose:
            print(f"[bench] {name} ...", flush=True)
        setup = row.get("setup")
        if setup is not None:
            setup()  # toggle-neutral precompute, kept out of the timings
        # cache-exercising kernels get one untimed call per toggle state:
        # the timing then covers the steady state even at --quick's single
        # repeat (full mode's best-of already lands on warm calls)
        warmup = row.get("warmup", False)
        row_repeats = row.get("repeats", repeats)
        # "post" maps the timed callable's return value to the reported
        # result (e.g. the simulated digest) *outside* the timed region —
        # harness verification cost stays out of both sides' timings
        post = row.get("post", lambda r: r)
        before_fn = row.get("before_fn")
        if before_fn is not None:
            # explicit before/after pair: an execution-model comparison
            # (both sides run the *current* code, no toggles involved)
            before_s, before_res = _best_of(before_fn, row_repeats)
            after_s, after_res = _best_of(fn, row_repeats)
        else:
            with baseline():
                if warmup:
                    fn()
                before_s, before_res = _best_of(fn, row_repeats)
            if warmup:
                fn()
            after_s, after_res = _best_of(fn, row_repeats)
        before_res = post(before_res)
        after_res = post(after_res)
        entry = {
            "name": name,
            "kind": row["kind"],
            "before_seconds": round(before_s, 6),
            "after_seconds": round(after_s, 6),
            "speedup": round(before_s / after_s, 3) if after_s > 0 else None,
        }
        if "min_speedup" in row:
            entry["min_speedup"] = row["min_speedup"]
        if "note" in row:
            entry["note"] = row["note"]
        if row.get("units"):
            # engine_events reports the scalar-side processed-event count
            # (the batched engine retires the same workload in fewer
            # dispatches); kernels declare their unit counts in the table
            count = (float(before_res) if name == "engine_events"
                     else float(row["unit_count"]()))
            entry["throughput"] = {
                "units": row["units"],
                "count": count,
                "before_per_second": round(count / before_s, 1),
                "after_per_second": round(count / after_s, 1),
            }
        if row["kind"] in ("kernel", "end_to_end") and isinstance(
                before_res, str):
            entry["simulated_digest"] = {
                "before": before_res,
                "after": after_res,
                "identical": before_res == after_res,
            }
        # "detail" maps the post-mapped (before, after) results to extra
        # row-specific report fields, outside the timed region; a
        # "simulated_digest" key joins the identity gate and an "ok" key
        # joins the detail-check gate
        detail = row.get("detail")
        if detail is not None:
            extra = dict(detail(before_res, after_res))
            sim = extra.pop("simulated_digest", None)
            if sim is not None:
                entry["simulated_digest"] = sim
            if extra:
                entry["detail"] = extra
        benchmarks.append(entry)
        if verbose:
            print(f"[bench]   before={before_s:.3f}s after={after_s:.3f}s "
                  f"speedup={entry['speedup']}x", flush=True)
    digests = [b["simulated_digest"]["identical"] for b in benchmarks
               if "simulated_digest" in b]
    detail_oks = [b["detail"]["ok"] for b in benchmarks
                  if "ok" in b.get("detail", {})]
    gated = [b for b in benchmarks if "min_speedup" in b]
    gates_ok = all(b["speedup"] is not None
                   and b["speedup"] >= b["min_speedup"] for b in gated)
    default_e2e = next((b for b in benchmarks
                        if b["name"] == "run_cfpd_sync"), None)
    report = {
        "schema": _SCHEMA,
        "generated_by": "python -m repro.perf.bench"
                        + (" --quick" if quick else ""),
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "env": _env_info(),
        "benchmarks": benchmarks,
        "summary": {
            "end_to_end_default_speedup":
                default_e2e["speedup"] if default_e2e else None,
            "all_simulated_results_identical": all(digests) if digests
            else None,
            "speedup_gates_ok": gates_ok if gated else None,
            "detail_checks_ok": all(detail_oks) if detail_oks else None,
        },
    }
    return report


def compare_reports(current: dict, reference: dict,
                    tolerance: float = SLOWDOWN_TOLERANCE) -> list[str]:
    """Regression check: current after-times vs a reference report.

    Returns human-readable failure lines (empty when everything is within
    ``tolerance``); benchmarks missing from either report are skipped.
    """
    ref_by_name = {b["name"]: b for b in reference.get("benchmarks", [])}
    failures = []
    for b in current.get("benchmarks", []):
        ref = ref_by_name.get(b["name"])
        if ref is None:
            continue
        cur_s, ref_s = b["after_seconds"], ref["after_seconds"]
        if ref_s > 0 and cur_s > tolerance * ref_s:
            failures.append(
                f"{b['name']}: {cur_s:.3f}s vs reference {ref_s:.3f}s "
                f"({cur_s / ref_s:.2f}x > {tolerance}x tolerance)")
    return failures


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def trajectory_check(current: dict, reference: dict,
                     min_ratio: float = TRAJECTORY_NOISE_FLOOR,
                     ) -> tuple[dict, list[str], float]:
    """Cross-PR trajectory: current after-times vs the previous PR's report.

    The two reports were measured at different times, possibly under
    different host conditions, so a raw after-time ratio conflates code
    changes with host drift.  The median ratio across all shared ``kernel``
    benchmarks estimates that drift — a uniform host slowdown moves every
    kernel by the same factor, while a genuine regression in one kernel
    cannot move the median — and each kernel is gated on its
    drift-adjusted speedup instead.

    Returns ``(trajectory, failures, host_drift)``: ``trajectory`` maps
    benchmark names to reference/current after-times plus the raw and
    drift-adjusted speedups between them, ``failures`` lists every
    ``kernel`` or ``micro`` benchmark whose adjusted speedup dropped below
    ``min_ratio`` (i.e. this PR made it slower than the committed state it
    started from, beyond what the host explains), and ``host_drift`` is
    the median factor (1.0 means the hosts matched).  The drift estimate
    itself uses only ``kernel`` rows: micro rows are exactly what engine
    PRs move by design, so including them would fold the improvement into
    the drift and mask regressions elsewhere.  Benchmarks missing from
    either report — e.g. rows introduced by this PR — are skipped.
    """
    ref_by_name = {b["name"]: b for b in reference.get("benchmarks", [])}
    shared = []
    for b in current.get("benchmarks", []):
        ref = ref_by_name.get(b["name"])
        if ref is None:
            continue
        ref_s, cur_s = ref["after_seconds"], b["after_seconds"]
        if ref_s <= 0 or cur_s <= 0:
            continue
        shared.append((b, ref_s, cur_s, ref_s / cur_s))
    kernel_ratios = [r for b, _, _, r in shared if b["kind"] == "kernel"]
    host_drift = _median(kernel_ratios) if kernel_ratios else 1.0
    trajectory: dict = {}
    failures = []
    for b, ref_s, cur_s, speedup in shared:
        adjusted = speedup / host_drift if host_drift > 0 else speedup
        trajectory[b["name"]] = {
            "reference_after_seconds": ref_s,
            "after_seconds": cur_s,
            "speedup_vs_reference": round(speedup, 3),
            "speedup_vs_reference_drift_adjusted": round(adjusted, 3),
        }
        if b["kind"] in ("kernel", "micro") and adjusted < min_ratio:
            failures.append(
                f"{b['name']}: drift-adjusted {b['kind']} speedup vs "
                f"reference {adjusted:.3f}x < {min_ratio:.2f}x "
                f"({cur_s:.3f}s vs {ref_s:.3f}s, host drift "
                f"{host_drift:.3f}x)")
    return trajectory, failures, host_drift


def resolve_auto_baseline(out_path: str) -> Optional[str]:
    """``--baseline auto``: the newest committed ``BENCH_prN.json`` with
    ``N`` strictly below the output report's PR number.

    Searches the output path's directory.  PR numbers need not be
    consecutive — a PR that shipped no bench report (PR 6) leaves a gap
    that resolution simply skips over.  An output name without a PR
    number (e.g. CI's ``BENCH_smoke.json``) gates against the newest
    committed report outright.  Returns ``None`` (caller skips the
    trajectory gate with a notice) when no earlier report exists.
    """
    m = re.search(r"pr(\d+)", os.path.basename(out_path))
    current = int(m.group(1)) if m else sys.maxsize
    directory = os.path.dirname(out_path) or "."
    best: tuple[int, str] | None = None
    for path in glob.glob(os.path.join(directory, "BENCH_pr*.json")):
        pm = re.match(r"BENCH_pr(\d+)\.json$", os.path.basename(path))
        if pm is None:
            continue
        n = int(pm.group(1))
        if n < current and (best is None or n > best[0]):
            best = (n, path)
    return best[1] if best else None


#: toggles whose code paths run_cfpd never reaches in full — the driver's
#: coupled fluid phase solves prebuilt operator systems but constructs no
#: :class:`FractionalStepSolver` — so their digest check drives the
#: tube-flow solver directly (both pressure solvers, both toggle states)
_FLUID_DIGEST_TOGGLES = ("fluid_operator_recycle", "deflation_setup_cache",
                         "krylov_buffers")


def _fluid_toggle_digest() -> str:
    """Tube-flow digest for the fluid-path toggles: fresh solvers (toggle
    capture happens at construction) advanced 6 steps with each pressure
    solver; covers field bytes and Krylov iteration counts."""
    from ..fem import FractionalStepSolver

    mesh, bc = _fluid_tube()
    digest = hashlib.sha256()
    for pressure_solver in ("cg", "deflated"):
        solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=2e-3,
                                      pressure_solver=pressure_solver)
        infos = solver.run(6, tol=1e-5)
        digest.update(solver.u.tobytes())
        digest.update(solver.p.tobytes())
        digest.update(repr([(i.momentum_iterations, i.pressure_iterations)
                            for i in infos]).encode())
    return digest.hexdigest()


def _fluid_adaptive_digest() -> str:
    """Adaptive-Δt variant of :func:`_fluid_toggle_digest`: fresh solvers
    advanced to a fixed endpoint through the CFL controller on a ladder
    the inflow forces a rung drop on, so the digest covers the controller
    walk (Δt sequence and rungs) as well as the field bytes."""
    from ..fem import CflController, DtLadder, FractionalStepSolver

    mesh, bc = _fluid_tube()
    control = CflController(ladder=DtLadder(dt_min=5e-4, dt_max=4e-3))
    digest = hashlib.sha256()
    for pressure_solver in ("cg", "deflated"):
        solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=2e-3,
                                      pressure_solver=pressure_solver)
        infos = solver.advance_to(8e-3, control=control, tol=1e-5)
        digest.update(solver.u.tobytes())
        digest.update(solver.p.tobytes())
        digest.update(repr([(i.momentum_iterations, i.pressure_iterations,
                             round(i.dt, 12), i.rung)
                            for i in infos]).encode())
    return digest.hexdigest()


def _fluid_breathing_digest() -> str:
    """Ventilator-coupled variant of :func:`_fluid_toggle_digest`: the
    hub's forwarded scale drives the inlet through
    ``advance_to(..., inlet_scale=...)`` while the CFL controller walks
    the ladder, so the digest covers the inlet rescale path (per-step
    ``inlet_scale`` values) on top of the field bytes and the controller
    walk."""
    from ..cosim import (BreathingPattern, LungModel, VENTILATION_PATTERNS,
                         VentilatorSettings, hub_for)
    from ..fem import CflController, DtLadder, FractionalStepSolver

    mesh, bc = _fluid_tube()
    pattern = BreathingPattern(
        LungModel(), VentilatorSettings(**VENTILATION_PATTERNS["rest"]))
    hub = hub_for(pattern, n_cycles=1, horizon=8e-3)
    control = CflController(ladder=DtLadder(dt_min=5e-4, dt_max=4e-3))
    digest = hashlib.sha256()
    for pressure_solver in ("cg", "deflated"):
        solver = FractionalStepSolver(mesh, bc, viscosity=1e-3, density=1.0,
                                      dt=2e-3,
                                      pressure_solver=pressure_solver)
        infos = solver.advance_to(8e-3, control=control,
                                  inlet_scale=hub.scale_at, tol=1e-5)
        digest.update(solver.u.tobytes())
        digest.update(solver.p.tobytes())
        digest.update(repr([(i.momentum_iterations, i.pressure_iterations,
                             round(i.dt, 12), i.rung,
                             round(i.inlet_scale, 12))
                            for i in infos]).encode())
    return digest.hexdigest()


def _breathing_digest_spec():
    """The end-to-end digest-check spec for ``--digest-workload
    breathing``: ventilator-coupled inlet through the cosim hub,
    injection gated to inhalation, the CFL ladder consuming the
    transient — every path the cosim PR added to the driver."""
    from ..app.workload import WorkloadSpec

    return WorkloadSpec(adaptive="global", inlet_waveform="ventilator",
                        injection_phase="inhale", injection_interval=4,
                        n_steps=16)


def _adaptive_digest_spec():
    """The end-to-end digest-check spec for ``--digest-workload adaptive``:
    local per-rank rungs with deterministic subcycling over a transient
    sine inflow — the paths the adaptive PR added to the driver."""
    from ..app.workload import WorkloadSpec

    return WorkloadSpec(adaptive="local", inlet_waveform="sine")


def _digest_check(toggle: str, workload: str = "default") -> int:
    """Run the toggle's digest workload with ``toggle`` off vs on and
    compare simulated digests — the quick per-push contract check.

    ``workload="adaptive"`` routes the check through the adaptive-Δt
    paths: the tube solver advances through the CFL controller for the
    fluid toggles, and the end-to-end run uses a local-adaptive transient
    spec for everything else.  ``workload="breathing"`` routes it through
    the ventilator-coupled cosim paths instead (hub-driven inlet rescale
    on the tube solver for the fluid toggles, the gated-injection
    ventilator spec end-to-end otherwise).
    """
    from .toggles import Toggles, configured

    if toggle not in Toggles.__dataclass_fields__:
        print(f"[bench] unknown toggle {toggle!r}; known: "
              f"{', '.join(Toggles.__dataclass_fields__)}", file=sys.stderr)
        return 2
    if toggle in _FLUID_DIGEST_TOGGLES:
        digest_fn = {"adaptive": _fluid_adaptive_digest,
                     "breathing": _fluid_breathing_digest,
                     }.get(workload, _fluid_toggle_digest)
    elif workload == "adaptive":
        def digest_fn():
            return _run_cfpd_digest(spec=_adaptive_digest_spec())
    elif workload == "breathing":
        def digest_fn():
            return _run_cfpd_digest(spec=_breathing_digest_spec())
    else:
        digest_fn = _run_cfpd_digest
    with configured(**{toggle: False}):
        d_off = digest_fn()
    d_on = digest_fn()
    if d_off != d_on:
        print(f"[bench] FAIL: simulated digest depends on toggle "
              f"{toggle} ({d_off[:16]}… off vs {d_on[:16]}… on)",
              file=sys.stderr)
        return 1
    print(f"[bench] digest identical with {toggle} off/on ({d_on[:16]}…)")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="Before/after benchmark suite (emits BENCH JSON).")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 1 repeat, fewer end-to-end "
                             "variants, same workload sizes")
    parser.add_argument("--out", default=_DEFAULT_OUT,
                        help=f"output JSON path (default: {_DEFAULT_OUT}; "
                             "'-' for stdout only)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repeat count per measurement (best-of)")
    parser.add_argument("--compare", metavar="BASELINE_JSON", default=None,
                        help="fail (exit 1) if any benchmark is "
                             f">{SLOWDOWN_TOLERANCE}x slower than this "
                             "reference report")
    parser.add_argument("--baseline", metavar="REFERENCE_JSON", default=None,
                        help="previous PR's committed report; records the "
                             "cross-PR trajectory in the output and fails "
                             "(exit 1) if any kernel or micro benchmark "
                             "regresses below the drift-adjusted noise "
                             "floor of it.  'auto' resolves the newest "
                             "BENCH_prN.json below the output's PR number "
                             "(gaps from report-less PRs are fine)")
    parser.add_argument("--digest-check", metavar="TOGGLE", default=None,
                        help="skip the timing suite; run the default "
                             "end-to-end config with TOGGLE off vs on and "
                             "fail (exit 1) if the simulated digests "
                             "differ")
    parser.add_argument("--digest-workload", default="default",
                        choices=("default", "adaptive", "breathing"),
                        help="workload --digest-check runs: the default "
                             "configuration, the adaptive-Δt paths "
                             "(CFL-controlled tube flow for the fluid "
                             "toggles, a local-adaptive transient spec "
                             "end-to-end otherwise), or the "
                             "ventilator-coupled cosim paths (hub-driven "
                             "inlet rescale on the tube solver / the "
                             "gated-injection ventilator spec)")
    args = parser.parse_args(argv)

    if args.digest_check:
        return _digest_check(args.digest_check, args.digest_workload)

    if args.baseline == "auto":
        resolved = resolve_auto_baseline(
            args.out if args.out != "-" else _DEFAULT_OUT)
        if resolved is None:
            print("[bench] --baseline auto: no earlier BENCH_prN.json "
                  "found; skipping the trajectory gate")
        else:
            print(f"[bench] --baseline auto -> {resolved}")
        args.baseline = resolved

    trajectory_failures: list[str] = []
    report = run_benchmarks(quick=args.quick, repeats=args.repeats)
    if args.baseline:
        with open(args.baseline) as fh:
            baseline_report = json.load(fh)
        trajectory, trajectory_failures, host_drift = trajectory_check(
            report, baseline_report,
            min_ratio=TRAJECTORY_QUICK_FLOOR if args.quick
            else TRAJECTORY_NOISE_FLOOR)
        report["trajectory"] = {"reference": args.baseline,
                                "host_drift": round(host_drift, 3),
                                "benchmarks": trajectory}
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"[bench] wrote {args.out}")

    identical = report["summary"]["all_simulated_results_identical"]
    if identical is False:
        print("[bench] FAIL: simulated-time results differ between toggle "
              "states", file=sys.stderr)
        return 1
    if report["summary"]["speedup_gates_ok"] is False:
        for b in report["benchmarks"]:
            gate = b.get("min_speedup")
            if gate and (b["speedup"] is None or b["speedup"] < gate):
                print(f"[bench] FAIL: {b['name']} speedup {b['speedup']}x "
                      f"below the required {gate}x", file=sys.stderr)
        return 1
    if report["summary"]["detail_checks_ok"] is False:
        for b in report["benchmarks"]:
            if b.get("detail", {}).get("ok") is False:
                print(f"[bench] FAIL: {b['name']} detail check failed: "
                      f"{b['detail']}", file=sys.stderr)
        return 1
    if args.compare:
        with open(args.compare) as fh:
            reference = json.load(fh)
        failures = compare_reports(report, reference)
        if failures:
            for line in failures:
                print(f"[bench] REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"[bench] within {SLOWDOWN_TOLERANCE}x of {args.compare}")
    if args.baseline:
        if trajectory_failures:
            for line in trajectory_failures:
                print(f"[bench] REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"[bench] trajectory holds vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
