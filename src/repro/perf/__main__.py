"""``python -m repro.perf`` delegates to the benchmark runner."""

import sys

from .bench import main

sys.exit(main())
