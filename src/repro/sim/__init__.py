"""Discrete-event simulation substrate (engine, events, resources).

See :mod:`repro.sim.engine` for the event loop and :mod:`repro.sim.resources`
for synchronization primitives.
"""

from .engine import AllOf, AnyOf, Engine, Event, Process, SimulationError, Timeout
from .resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
