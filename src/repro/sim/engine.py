"""Discrete-event simulation (DES) engine.

This module is the substrate on which the whole reproduction runs: simulated
MPI ranks, OpenMP-like worker cores, and the DLB library are all *processes*
(Python generators) advancing a shared simulated clock.  The design follows
the classic event-list pattern (as popularized by SimPy, re-implemented here
from scratch): processes yield :class:`Event` objects and are resumed when the
event triggers.

Only simulated time passes between events; the engine is deterministic given a
deterministic set of processes, which is what makes the paper's experiments
exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..perf import toggles as _perf_toggles
from .arena import KIND_COMPLETION, KIND_DEFER, KIND_TIMER, PENDING, EventArena

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. re-triggering an event)."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it can be made to :meth:`succeed` (optionally
    carrying a value) or :meth:`fail` (carrying an exception).  Processes that
    yield a pending event are suspended until it triggers.
    """

    __slots__ = ("engine", "callbacks", "_triggered", "_processed", "_ok",
                 "_value", "_defer")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self._ok: Optional[bool] = None
        self._value: Any = None
        # (fn, args) invoked directly by the run loop when this event pops —
        # the frame-free form of a single callback (see Engine.defer).
        self._defer: Optional[tuple] = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event carries (or the exception if it failed)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling its callbacks *now*."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        # inlined Engine._post — this is the hottest trigger path
        eng = self.engine
        if eng._fast or eng._batch:
            eng._now_queue.append((next(eng._seq), self))
        else:
            heapq.heappush(eng._queue, (eng.now, next(eng._seq), self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.engine._post(self)
        return self


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated time.

    The trigger state is applied when the engine's clock reaches the deadline
    (not at construction), so timeouts compose correctly with :class:`AllOf`
    and :class:`AnyOf`.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._value = value
        engine._schedule_at(engine.now + delay, self)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process driving a generator of events.

    The process itself is an event: it triggers (with the generator's return
    value) when the generator finishes, so processes can wait on each other.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at current time.
        boot = Event(engine)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process is currently suspended on (diagnostics)."""
        return self._waiting_on

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current simulated time.

        The generator sees the exception raised at its current ``yield``
        point; unless the program catches it, the process fails with
        ``exc``.  This is the primitive behind rank-death injection.
        """
        if self._triggered:
            raise SimulationError(
                f"cannot interrupt finished process {self.name!r}")
        if not isinstance(exc, BaseException):
            raise TypeError("interrupt() requires an exception instance")
        relay = Event(self.engine)
        relay.callbacks.append(self._resume)
        relay.fail(exc)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # Already finished (e.g. interrupted while a pending event still
            # held a callback to us): stale wake-ups are ignored.
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._triggered:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            self.generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        self._waiting_on = target
        if target._processed:
            # Callbacks already ran; schedule an immediate relay carrying the
            # event outcome so this process resumes at the current time.
            relay = Event(self.engine)
            relay.callbacks.append(self._resume)
            if target._ok:
                relay.succeed(target._value)
            else:
                relay.fail(target._value)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* child events have triggered.

    Value is the list of child values in construction order.  Fails as soon
    as any child fails.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the *first* child event triggers (value = its value)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Engine:
    """The event loop: a priority queue of (time, seq, event) entries.

    Usage::

        eng = Engine()

        def prog(eng):
            yield eng.timeout(1.5)
            return "done"

        p = eng.process(prog(eng))
        eng.run()
        assert eng.now == 1.5 and p.value == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._n_events_processed = 0
        self._procs: set[Process] = set()
        self._stop_reason: Optional[str] = None
        # Same-time posts go to a FIFO now-queue of (seq, event): the global
        # (time, seq) order is preserved (the queue is compared against the
        # heap head by seq) while the common case — an event triggered at the
        # current time — skips the heap sift entirely.
        self._now_queue: deque[tuple[int, Any]] = deque()
        self._fast = _perf_toggles.TOGGLES.engine_fast_path
        #: scratch counters other layers may bump (e.g. Team plan counters);
        #: surfaced by ``repro.perf.instrument.engine_counters``.
        self.ext_counters: dict[str, int] = {}
        # Batched event-cohort core (engine_batch): instead of one global
        # heap of (when, seq, event) entries, keep a calendar of per-timestamp
        # *buckets* plus a heap of the distinct populated times.  The run
        # loop drains the cohort at the current timestamp (merged against the
        # now-queue by seq) and then jumps the clock directly to the next
        # populated time — one heap operation per *timestamp* instead of one
        # per event.  Deferred callbacks live in a recycled EventArena slot
        # instead of an Event object; queue payloads are either an int
        # (arena slot) or an Event, distinguished by type at dispatch.
        self._batch = _perf_toggles.TOGGLES.engine_batch
        if self._batch:
            self.arena = EventArena()
            self._buckets: dict[float, list] = {}
            self._times: list[float] = []
            # cohort at the current timestamp + its drain cursor; same-time
            # schedules append here (monotonic seqs keep it sorted)
            self._cur: list = []
            self._ci = 0
            # cohort instrumentation (see instrument.engine_counters)
            self._n_cohorts = 0
            self._cohort_events = 0
            self._max_cohort = 0
            self._cohort_hist = [0] * 16  # power-of-two size bins
            self._n_jumps = 0
            self._jump_total = 0.0
            self._n_arena_fired = 0
            self._n_event_dispatch = 0

    # -- factory helpers ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting at current time."""
        proc = Process(self, generator, name=name)
        self._procs.add(proc)
        proc.callbacks.append(self._procs.discard)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering at the first of ``events``."""
        return AnyOf(self, events)

    def defer(self, fn: Callable[..., None], *args: Any):
        """Run ``fn(*args)`` when the engine next reaches the current time.

        Equivalent to a :class:`Process` whose generator would execute
        ``fn`` before its first yield (the bootstrap event is posted at the
        same queue position), without the generator/Process allocation.
        The callback-based task runtime and collective completion are built
        on this.  Returns an opaque handle (an arena slot under
        ``engine_batch``, an :class:`Event` otherwise); callers that need
        cancellation use :meth:`cancel_scheduled`.
        """
        if self._batch:
            # the hot path allocates no object at all: the callback rides in
            # a recycled arena slot, the queue entry is (seq, slot).  The
            # arena free-list claim is inlined (see EventArena.alloc) — this
            # and call_later together run ~15k times per CFPD run.
            seq = next(self._seq)
            arena = self.arena
            free = arena._free
            if free:
                slot = free.pop()
                arena._fn[slot] = fn
                arena._args[slot] = args
                arena._when[slot] = self.now
                arena._seq[slot] = seq
                arena._kind[slot] = KIND_DEFER
                arena._state[slot] = 1
            else:
                slot = arena._grow(self.now, seq, fn, args, KIND_DEFER)
            arena.allocated += 1
            self._now_queue.append((seq, slot))
            return slot
        # inlined Event(self) + ev.succeed() minus the already-triggered
        # guard (the event is freshly constructed): this runs ~50k times
        # per CFPD run.  fn/args ride in the _defer slot so the run loop
        # invokes them without a lambda frame or a callbacks list entry.
        ev = Event.__new__(Event)
        ev.engine = self
        ev.callbacks = []
        ev._triggered = True
        ev._processed = False
        ev._ok = True
        ev._value = None
        ev._defer = (fn, args)
        self._post(ev)
        return ev

    def call_later(self, delay: float, fn: Callable[..., None],
                   *args: Any):
        """Run ``fn(*args)`` after ``delay`` simulated time.

        Equivalent to a :class:`Timeout` with ``fn`` as its only callback —
        same queue entry, same seq — without the Timeout construction or the
        callback closure.  Used by the callback-based task runtime for the
        per-task execution delay.  Returns an opaque handle (see
        :meth:`defer`).
        """
        if self._batch:
            when = self.now + delay
            seq = next(self._seq)
            # inlined arena alloc + bucket insert (hot: one call per message
            # delivery, collective completion and plan timer)
            arena = self.arena
            free = arena._free
            if free:
                slot = free.pop()
                arena._fn[slot] = fn
                arena._args[slot] = args
                arena._when[slot] = when
                arena._seq[slot] = seq
                arena._kind[slot] = KIND_TIMER
                arena._state[slot] = 1
            else:
                slot = arena._grow(when, seq, fn, args, KIND_TIMER)
            arena.allocated += 1
            if when == self.now:
                self._cur.append((seq, slot))
            else:
                b = self._buckets.get(when)
                if b is None:
                    self._buckets[when] = [(seq, slot)]
                    heapq.heappush(self._times, when)
                else:
                    b.append((seq, slot))
            return slot
        ev = Event.__new__(Event)
        ev.engine = self
        ev.callbacks = []
        ev._triggered = False
        ev._processed = False
        ev._ok = None
        ev._value = None
        ev._defer = (fn, args)
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), ev))
        return ev

    def schedule_fn_at(self, when: float, fn: Callable[..., None],
                       *args: Any):
        """Run ``fn(*args)`` at the *absolute* simulated time ``when``.

        Unlike ``call_later(when - now, ...)`` — which schedules at
        ``now + (when - now)``, a float that can differ from ``when`` in the
        last ulp — the deadline is the exact float given, so precomputed
        execution plans (Team plan mode) land their completion events on
        bit-exact timestamps.  Returns a handle for :meth:`cancel_scheduled`.
        """
        if when < self.now:
            raise SimulationError(f"cannot schedule into the past "
                                  f"({when} < {self.now})")
        if self._batch:
            seq = next(self._seq)
            slot = self.arena.alloc(when, seq, fn, args, KIND_COMPLETION)
            self._bucket_insert(when, seq, slot)
            return slot
        ev = Event.__new__(Event)
        ev.engine = self
        ev.callbacks = []
        ev._triggered = False
        ev._processed = False
        ev._ok = None
        ev._value = None
        ev._defer = (fn, args)
        heapq.heappush(self._queue, (when, next(self._seq), ev))
        return ev

    def cancel_scheduled(self, handle) -> None:
        """Cancel a pending :meth:`call_later`/:meth:`schedule_fn_at` call.

        The queue entry stays where it is and is skipped (and its arena slot
        recycled) when it surfaces; the callback is guaranteed not to run.
        """
        if self._batch:
            self.arena.cancel(handle)
        else:
            handle._defer = None

    # -- scheduling (internal) ----------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if self._batch:
            self._bucket_insert(when, next(self._seq), event)
        else:
            heapq.heappush(self._queue, (when, next(self._seq), event))

    def _bucket_insert(self, when: float, seq: int, payload) -> None:
        """File a (seq, payload) entry under its timestamp's bucket.

        An entry at the *current* time joins the live cohort directly —
        monotonic seqs keep the cohort list sorted, and the run loop's merge
        against the now-queue preserves the global (when, seq) order.
        """
        if when == self.now:
            self._cur.append((seq, payload))
            return
        b = self._buckets.get(when)
        if b is None:
            self._buckets[when] = [(seq, payload)]
            heapq.heappush(self._times, when)
        else:
            b.append((seq, payload))

    def _post(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks at the current time."""
        if self._fast or self._batch:
            self._now_queue.append((next(self._seq), event))
        else:
            heapq.heappush(self._queue, (self.now, next(self._seq), event))

    def _pop(self) -> Event:
        """Remove and return the globally next event, advancing the clock.

        The now-queue holds only events posted at the current time, in seq
        order; the heap may also hold entries *at* the current time (e.g. a
        zero-delay Timeout created after earlier posts), so when both are
        candidates the smaller seq wins — reproducing the exact total
        (time, seq) order of a single heap.
        """
        nq = self._now_queue
        q = self._queue
        if nq:
            if q and q[0][0] <= self.now and q[0][1] < nq[0][0]:
                _, _, event = heapq.heappop(q)
                return event
            return nq.popleft()[1]
        if not q:
            raise SimulationError(
                f"no events scheduled ({self.alive_process_count} "
                f"processes still alive at t={self.now:.6f}s)")
        when, _, event = heapq.heappop(q)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        return event

    # -- running --------------------------------------------------------------
    def step(self) -> None:
        """Process a single event from the queue, advancing the clock.

        Raises :class:`SimulationError` if the queue is empty — an empty
        queue while processes are still alive means every one of them is
        blocked on an event nobody will trigger (a deadlock).
        """
        if self._batch:
            self._step_batch()
            return
        event = self._pop()
        if not event._triggered:
            # A Timeout reaching its deadline: apply the trigger state now.
            event._triggered = True
            event._ok = True
        self._n_events_processed += 1
        event._processed = True
        d = event._defer
        if d is not None:
            event._defer = None
            d[0](*d[1])
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        This is :meth:`step` in a loop with the pop logic inlined — the
        loop runs a hundred thousand times per simulated CFPD run, so the
        per-event function-call overhead is worth removing.  Behaviour is
        identical to repeated ``step()`` calls.
        """
        if until is not None and until < self.now:
            raise SimulationError("cannot run into the past")
        if self._batch:
            self._run_batch(until)
            return
        nq = self._now_queue
        q = self._queue
        heappop = heapq.heappop
        n_done = 0
        try:
            while nq or q:
                if self._stop_reason is not None:
                    return
                if nq:
                    # Now-queue events are always at the current time; a
                    # heap entry also at the current time with a smaller seq
                    # (e.g. a zero-delay Timeout) must still run first.
                    if q and q[0][0] <= self.now and q[0][1] < nq[0][0]:
                        _, _, event = heappop(q)
                    else:
                        _, event = nq.popleft()
                else:
                    when = q[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return
                    when, _, event = heappop(q)
                    if when < self.now:
                        raise SimulationError("time went backwards")
                    self.now = when
                if not event._triggered:
                    event._triggered = True
                    event._ok = True
                n_done += 1
                event._processed = True
                d = event._defer
                if d is not None:
                    # frame-free deferred call (Engine.defer / call_later)
                    event._defer = None
                    d[0](*d[1])
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    if len(callbacks) == 1:
                        # single-waiter fast path: skip the loop machinery
                        callbacks[0](event)
                    else:
                        for cb in callbacks:
                            cb(event)
        finally:
            self._n_events_processed += n_done
        if until is not None:
            self.now = until

    def _run_batch(self, until: Optional[float]) -> None:
        """Cohort-batched run loop (``engine_batch``).

        Per *timestamp* (not per event): pop the next populated time off the
        ``_times`` heap, take its whole bucket as the current cohort, and
        drain it merged against the now-queue by seq — reproducing the exact
        total (when, seq) order of the scalar engine's single heap while
        paying one heap operation per distinct timestamp.  Times whose
        bucket was already consumed (re-pushed while the clock sat on them)
        are skipped lazily.
        """
        nq = self._now_queue
        buckets = self._buckets
        times = self._times
        arena = self.arena
        a_state = arena._state
        a_fn = arena._fn
        a_args = arena._args
        a_free = arena._free
        heappop = heapq.heappop
        cur = self._cur
        ci = self._ci
        n_done = 0
        n_arena = 0
        n_events = 0
        try:
            while True:
                if self._stop_reason is not None:
                    return
                if nq:
                    if ci < len(cur) and cur[ci][0] < nq[0][0]:
                        payload = cur[ci][1]
                        ci += 1
                    else:
                        payload = nq.popleft()[1]
                elif ci < len(cur):
                    payload = cur[ci][1]
                    ci += 1
                else:
                    # timestamp fully drained: bulk-advance the clock to the
                    # next populated time
                    while times:
                        when = heappop(times)
                        bucket = buckets.pop(when, None)
                        if bucket is not None:
                            break
                    else:
                        if until is not None:
                            self.now = until
                        return
                    if until is not None and when > until:
                        buckets[when] = bucket
                        heapq.heappush(times, when)
                        self.now = until
                        return
                    if when < self.now:
                        raise SimulationError("time went backwards")
                    for _, p in bucket:
                        if type(p) is not int or a_state[p] != 2:
                            break
                    else:
                        # only cancelled slots: recycle them without moving
                        # the clock (a cancelled tail entry must not drag
                        # the simulation end time forward)
                        for _, p in bucket:
                            a_state[p] = 0
                            a_free.append(p)
                        continue
                    n = len(bucket)
                    self._n_cohorts += 1
                    self._cohort_events += n
                    if n > self._max_cohort:
                        self._max_cohort = n
                    self._cohort_hist[min(n.bit_length() - 1, 15)] += 1
                    self._n_jumps += 1
                    self._jump_total += when - self.now
                    self.now = when
                    cur = bucket
                    ci = 0
                    # visible before callbacks run: same-time schedules made
                    # during dispatch append to this cohort
                    self._cur = cur
                    continue
                if type(payload) is int:
                    # arena slot: free it, then invoke unless cancelled
                    st = a_state[payload]
                    a_state[payload] = 0
                    fn = a_fn[payload]
                    args = a_args[payload]
                    a_fn[payload] = None
                    a_args[payload] = None
                    a_free.append(payload)
                    if st == 1:  # PENDING
                        n_done += 1
                        n_arena += 1
                        fn(*args)
                    continue
                event = payload
                if not event._triggered:
                    event._triggered = True
                    event._ok = True
                n_done += 1
                n_events += 1
                event._processed = True
                d = event._defer
                if d is not None:
                    event._defer = None
                    d[0](*d[1])
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for cb in callbacks:
                            cb(event)
        finally:
            self._ci = ci
            self._n_events_processed += n_done
            self._n_arena_fired += n_arena
            self._n_event_dispatch += n_events

    def _step_batch(self) -> None:
        """Process a single event under ``engine_batch`` (see :meth:`step`).

        Cancelled arena slots are recycled and skipped — they do not count
        as a processed event (the scalar engine never queues them).
        """
        nq = self._now_queue
        while True:
            cur = self._cur
            ci = self._ci
            if nq:
                if ci < len(cur) and cur[ci][0] < nq[0][0]:
                    payload = cur[ci][1]
                    self._ci = ci + 1
                else:
                    payload = nq.popleft()[1]
            elif ci < len(cur):
                payload = cur[ci][1]
                self._ci = ci + 1
            else:
                while self._times:
                    when = heapq.heappop(self._times)
                    bucket = self._buckets.pop(when, None)
                    if bucket is not None:
                        break
                else:
                    raise SimulationError(
                        f"no events scheduled ({self.alive_process_count} "
                        f"processes still alive at t={self.now:.6f}s)")
                if when < self.now:
                    raise SimulationError("time went backwards")
                states = self.arena._state
                for _, p in bucket:
                    if type(p) is not int or states[p] != 2:
                        break
                else:
                    for _, p in bucket:
                        states[p] = 0
                        self.arena._free.append(p)
                    continue
                n = len(bucket)
                self._n_cohorts += 1
                self._cohort_events += n
                if n > self._max_cohort:
                    self._max_cohort = n
                self._cohort_hist[min(n.bit_length() - 1, 15)] += 1
                self._n_jumps += 1
                self._jump_total += when - self.now
                self.now = when
                self._cur = bucket
                self._ci = 0
                continue
            arena = self.arena
            if type(payload) is int:
                st = arena._state[payload]
                arena._state[payload] = 0
                fn = arena._fn[payload]
                args = arena._args[payload]
                arena._fn[payload] = None
                arena._args[payload] = None
                arena._free.append(payload)
                if st == PENDING:
                    self._n_events_processed += 1
                    self._n_arena_fired += 1
                    fn(*args)
                    return
                continue  # cancelled slot: recycle and keep looking
            event = payload
            if not event._triggered:
                event._triggered = True
                event._ok = True
            self._n_events_processed += 1
            self._n_event_dispatch += 1
            event._processed = True
            d = event._defer
            if d is not None:
                event._defer = None
                d[0](*d[1])
            callbacks, event.callbacks = event.callbacks, []
            for cb in callbacks:
                cb(event)
            return

    def stop(self, reason: str = "") -> None:
        """Abort :meth:`run` before the queue drains (simulated job kill).

        The current event finishes; no further events are processed.  The
        reason is kept in :attr:`stop_reason` so the MPI layer can surface
        a structured abort instead of a phantom deadlock.
        """
        self._stop_reason = reason or "stopped"

    @property
    def stop_reason(self) -> Optional[str]:
        """Why the engine was stopped, or ``None`` if it was not."""
        return self._stop_reason

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (diagnostics)."""
        return self._n_events_processed

    @property
    def alive_process_count(self) -> int:
        """Number of registered processes that have not finished yet."""
        return sum(1 for p in self._procs if p.is_alive)

    def blocked_processes(self) -> list["Process"]:
        """Alive processes, for deadlock diagnostics (name + waiting_on)."""
        return [p for p in self._procs if p.is_alive]
