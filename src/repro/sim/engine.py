"""Discrete-event simulation (DES) engine.

This module is the substrate on which the whole reproduction runs: simulated
MPI ranks, OpenMP-like worker cores, and the DLB library are all *processes*
(Python generators) advancing a shared simulated clock.  The design follows
the classic event-list pattern (as popularized by SimPy, re-implemented here
from scratch): processes yield :class:`Event` objects and are resumed when the
event triggers.

Only simulated time passes between events; the engine is deterministic given a
deterministic set of processes, which is what makes the paper's experiments
exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..perf import toggles as _perf_toggles

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. re-triggering an event)."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it can be made to :meth:`succeed` (optionally
    carrying a value) or :meth:`fail` (carrying an exception).  Processes that
    yield a pending event are suspended until it triggers.
    """

    __slots__ = ("engine", "callbacks", "_triggered", "_processed", "_ok",
                 "_value", "_defer")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self._ok: Optional[bool] = None
        self._value: Any = None
        # (fn, args) invoked directly by the run loop when this event pops —
        # the frame-free form of a single callback (see Engine.defer).
        self._defer: Optional[tuple] = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event carries (or the exception if it failed)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling its callbacks *now*."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.engine._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.engine._post(self)
        return self


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated time.

    The trigger state is applied when the engine's clock reaches the deadline
    (not at construction), so timeouts compose correctly with :class:`AllOf`
    and :class:`AnyOf`.
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._value = value
        engine._schedule_at(engine.now + delay, self)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process driving a generator of events.

    The process itself is an event: it triggers (with the generator's return
    value) when the generator finishes, so processes can wait on each other.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once at current time.
        boot = Event(engine)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process is currently suspended on (diagnostics)."""
        return self._waiting_on

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current simulated time.

        The generator sees the exception raised at its current ``yield``
        point; unless the program catches it, the process fails with
        ``exc``.  This is the primitive behind rank-death injection.
        """
        if self._triggered:
            raise SimulationError(
                f"cannot interrupt finished process {self.name!r}")
        if not isinstance(exc, BaseException):
            raise TypeError("interrupt() requires an exception instance")
        relay = Event(self.engine)
        relay.callbacks.append(self._resume)
        relay.fail(exc)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # Already finished (e.g. interrupted while a pending event still
            # held a callback to us): stale wake-ups are ignored.
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._triggered:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            self.generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        self._waiting_on = target
        if target._processed:
            # Callbacks already ran; schedule an immediate relay carrying the
            # event outcome so this process resumes at the current time.
            relay = Event(self.engine)
            relay.callbacks.append(self._resume)
            if target._ok:
                relay.succeed(target._value)
            else:
                relay.fail(target._value)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* child events have triggered.

    Value is the list of child values in construction order.  Fails as soon
    as any child fails.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the *first* child event triggers (value = its value)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Engine:
    """The event loop: a priority queue of (time, seq, event) entries.

    Usage::

        eng = Engine()

        def prog(eng):
            yield eng.timeout(1.5)
            return "done"

        p = eng.process(prog(eng))
        eng.run()
        assert eng.now == 1.5 and p.value == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._n_events_processed = 0
        self._procs: set[Process] = set()
        self._stop_reason: Optional[str] = None
        # Same-time posts go to a FIFO now-queue of (seq, event): the global
        # (time, seq) order is preserved (the queue is compared against the
        # heap head by seq) while the common case — an event triggered at the
        # current time — skips the heap sift entirely.
        self._now_queue: deque[tuple[int, Event]] = deque()
        self._fast = _perf_toggles.TOGGLES.engine_fast_path

    # -- factory helpers ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting at current time."""
        proc = Process(self, generator, name=name)
        self._procs.add(proc)
        proc.callbacks.append(self._procs.discard)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering at the first of ``events``."""
        return AnyOf(self, events)

    def defer(self, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` when the engine next reaches the current time.

        Equivalent to a :class:`Process` whose generator would execute
        ``fn`` before its first yield (the bootstrap event is posted at the
        same queue position), without the generator/Process allocation.
        The callback-based task runtime and collective completion are built
        on this.
        """
        # inlined Event(self) + ev.succeed() minus the already-triggered
        # guard (the event is freshly constructed): this runs ~50k times
        # per CFPD run.  fn/args ride in the _defer slot so the run loop
        # invokes them without a lambda frame or a callbacks list entry.
        ev = Event.__new__(Event)
        ev.engine = self
        ev.callbacks = []
        ev._triggered = True
        ev._processed = False
        ev._ok = True
        ev._value = None
        ev._defer = (fn, args)
        self._post(ev)
        return ev

    def call_later(self, delay: float, fn: Callable[..., None],
                   *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated time.

        Equivalent to a :class:`Timeout` with ``fn`` as its only callback —
        same heap entry, same seq — without the Timeout construction or the
        callback closure.  Used by the callback-based task runtime for the
        per-task execution delay.
        """
        ev = Event.__new__(Event)
        ev.engine = self
        ev.callbacks = []
        ev._triggered = False
        ev._processed = False
        ev._ok = None
        ev._value = None
        ev._defer = (fn, args)
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), ev))
        return ev

    # -- scheduling (internal) ----------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        heapq.heappush(self._queue, (when, next(self._seq), event))

    def _post(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks at the current time."""
        if self._fast:
            self._now_queue.append((next(self._seq), event))
        else:
            heapq.heappush(self._queue, (self.now, next(self._seq), event))

    def _pop(self) -> Event:
        """Remove and return the globally next event, advancing the clock.

        The now-queue holds only events posted at the current time, in seq
        order; the heap may also hold entries *at* the current time (e.g. a
        zero-delay Timeout created after earlier posts), so when both are
        candidates the smaller seq wins — reproducing the exact total
        (time, seq) order of a single heap.
        """
        nq = self._now_queue
        q = self._queue
        if nq:
            if q and q[0][0] <= self.now and q[0][1] < nq[0][0]:
                _, _, event = heapq.heappop(q)
                return event
            return nq.popleft()[1]
        if not q:
            raise SimulationError(
                f"no events scheduled ({self.alive_process_count} "
                f"processes still alive at t={self.now:.6f}s)")
        when, _, event = heapq.heappop(q)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        return event

    # -- running --------------------------------------------------------------
    def step(self) -> None:
        """Process a single event from the queue, advancing the clock.

        Raises :class:`SimulationError` if the queue is empty — an empty
        queue while processes are still alive means every one of them is
        blocked on an event nobody will trigger (a deadlock).
        """
        event = self._pop()
        if not event._triggered:
            # A Timeout reaching its deadline: apply the trigger state now.
            event._triggered = True
            event._ok = True
        self._n_events_processed += 1
        event._processed = True
        d = event._defer
        if d is not None:
            event._defer = None
            d[0](*d[1])
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        This is :meth:`step` in a loop with the pop logic inlined — the
        loop runs a hundred thousand times per simulated CFPD run, so the
        per-event function-call overhead is worth removing.  Behaviour is
        identical to repeated ``step()`` calls.
        """
        if until is not None and until < self.now:
            raise SimulationError("cannot run into the past")
        nq = self._now_queue
        q = self._queue
        heappop = heapq.heappop
        n_done = 0
        try:
            while nq or q:
                if self._stop_reason is not None:
                    return
                if nq:
                    # Now-queue events are always at the current time; a
                    # heap entry also at the current time with a smaller seq
                    # (e.g. a zero-delay Timeout) must still run first.
                    if q and q[0][0] <= self.now and q[0][1] < nq[0][0]:
                        _, _, event = heappop(q)
                    else:
                        _, event = nq.popleft()
                else:
                    when = q[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return
                    when, _, event = heappop(q)
                    if when < self.now:
                        raise SimulationError("time went backwards")
                    self.now = when
                if not event._triggered:
                    event._triggered = True
                    event._ok = True
                n_done += 1
                event._processed = True
                d = event._defer
                if d is not None:
                    # frame-free deferred call (Engine.defer / call_later)
                    event._defer = None
                    d[0](*d[1])
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    if len(callbacks) == 1:
                        # single-waiter fast path: skip the loop machinery
                        callbacks[0](event)
                    else:
                        for cb in callbacks:
                            cb(event)
        finally:
            self._n_events_processed += n_done
        if until is not None:
            self.now = until

    def stop(self, reason: str = "") -> None:
        """Abort :meth:`run` before the queue drains (simulated job kill).

        The current event finishes; no further events are processed.  The
        reason is kept in :attr:`stop_reason` so the MPI layer can surface
        a structured abort instead of a phantom deadlock.
        """
        self._stop_reason = reason or "stopped"

    @property
    def stop_reason(self) -> Optional[str]:
        """Why the engine was stopped, or ``None`` if it was not."""
        return self._stop_reason

    @property
    def events_processed(self) -> int:
        """Total number of events processed so far (diagnostics)."""
        return self._n_events_processed

    @property
    def alive_process_count(self) -> int:
        """Number of registered processes that have not finished yet."""
        return sum(1 for p in self._procs if p.is_alive)

    def blocked_processes(self) -> list["Process"]:
        """Alive processes, for deadlock diagnostics (name + waiting_on)."""
        return [p for p in self._procs if p.is_alive]
