"""Synchronization and queuing primitives built on the DES engine.

Two primitives cover every need of the simulated MPI layer and the task
runtime:

* :class:`Resource` — a counted semaphore with FIFO grant order (used for
  core pools and mutual exclusion).
* :class:`Store` — an unbounded FIFO of items with blocking ``get`` (used for
  MPI mailboxes and work queues).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .engine import Engine, Event, SimulationError

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with ``capacity`` slots, granted in FIFO order.

    ``request()`` returns an event that triggers when a slot is granted;
    ``release()`` frees a slot.  The value of the request event is the
    resource itself, enabling ``grant = yield res.request()``.
    """

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-granted slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    def request(self) -> Event:
        """Ask for a slot; the returned event triggers when granted."""
        ev = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter: _in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event carrying the item; if the
    store is empty the event stays pending until a matching ``put`` arrives.
    An optional filter predicate supports tag/source matching for MPI
    mailboxes.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self._items: Deque[Any] = deque()
        self._getters: Deque[tuple[Event, Optional[Callable[[Any], bool]],
                                   Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, delivering it to the oldest matching getter."""
        for idx, (ev, pred, _meta) in enumerate(self._getters):
            if pred is None or pred(item):
                del self._getters[idx]
                ev.succeed(item)
                return
        self._items.append(item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None,
            meta: Any = None) -> Event:
        """Request the oldest item matching ``predicate`` (or any item).

        ``meta`` is opaque bookkeeping attached to a pending get — the MPI
        layer stores the (source, tag) of a posted receive there so that
        failure detection can fail receives addressed to a dead peer.
        """
        ev = Event(self.engine)
        for idx, item in enumerate(self._items):
            if predicate is None or predicate(item):
                del self._items[idx]
                ev.succeed(item)
                return ev
        self._getters.append((ev, predicate, meta))
        return ev

    def fail_pending(self, match: Callable[[Any], bool],
                     exc: BaseException) -> int:
        """Fail every pending get whose ``meta`` satisfies ``match``.

        Waiters see ``exc`` raised.  Returns the number of failed getters.
        Used to break receives posted to a peer that has since died.
        """
        kept: Deque[tuple[Event, Optional[Callable[[Any], bool]], Any]] = (
            deque())
        failed = 0
        for ev, pred, meta in self._getters:
            if match(meta):
                ev.fail(exc)
                failed += 1
            else:
                kept.append((ev, pred, meta))
        self._getters = kept
        return failed

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (diagnostics only)."""
        return list(self._items)
