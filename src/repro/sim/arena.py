"""Free-list event arena for the batched DES engine.

The scalar engine allocates one :class:`~repro.sim.engine.Event` object per
deferred callback (``Engine.defer`` / ``Engine.call_later``) — roughly one
Python object plus heap entry per task start, task finish, message delivery
and collective hop.  Under :data:`~repro.perf.toggles.Toggles.engine_batch`
those callbacks live in this arena instead: a table of parallel columns
(``when``/``seq``/``kind``/``state`` plus the callback itself) indexed by an
integer *slot* that is recycled through a free list, so steady-state
simulation performs **zero** per-event object allocation.

The hot columns are plain Python lists rather than numpy arrays: the engine
writes and reads single cells on every event, and scalar indexing into a
numpy array is several times slower than a list access.  The structured
numpy view (:meth:`EventArena.as_structured`) is materialized on demand for
instrumentation and debugging only.

Slot lifecycle::

    alloc() -> PENDING --fired by the run loop--> FREE (recycled)
                  |
                  +--- cancel() -> CANCELLED --popped by the run loop--> FREE

A cancelled slot is *not* pushed onto the free list at cancel time: its
(when, seq) entry is still in the engine's calendar, and recycling the slot
before that entry pops would fire the new occupant at the old deadline.  The
run loop frees the slot when the stale entry surfaces, and skips the call.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["EventArena", "FREE", "PENDING", "CANCELLED",
           "KIND_DEFER", "KIND_TIMER", "KIND_COMPLETION"]

#: slot states
FREE, PENDING, CANCELLED = 0, 1, 2

#: slot kinds (instrumentation only — the dispatch path ignores them)
KIND_DEFER, KIND_TIMER, KIND_COMPLETION = 0, 1, 2


class EventArena:
    """Recycled storage for deferred-callback events (see module docstring).

    The engine's run loop reaches into the columns directly (``_fn`` /
    ``_args`` / ``_state`` / ``_free``) — the attribute names are part of the
    engine<->arena contract, not a public API.
    """

    __slots__ = ("_fn", "_args", "_when", "_seq", "_kind", "_state", "_free",
                 "allocated", "cancelled")

    def __init__(self) -> None:
        self._fn: list[Any] = []
        self._args: list[Any] = []
        self._when: list[float] = []
        self._seq: list[int] = []
        self._kind: list[int] = []
        self._state: list[int] = []
        self._free: list[int] = []
        #: total slots ever handed out (recycled allocations included)
        self.allocated = 0
        #: slots cancelled before firing
        self.cancelled = 0

    def alloc(self, when: float, seq: int, fn: Callable[..., None],
              args: tuple, kind: int = KIND_DEFER) -> int:
        """Claim a slot for a callback due at ``when`` and return its index."""
        free = self._free
        if free:
            slot = free.pop()
            self._fn[slot] = fn
            self._args[slot] = args
            self._when[slot] = when
            self._seq[slot] = seq
            self._kind[slot] = kind
            self._state[slot] = PENDING
        else:
            slot = len(self._fn)
            self._fn.append(fn)
            self._args.append(args)
            self._when.append(when)
            self._seq.append(seq)
            self._kind.append(kind)
            self._state.append(PENDING)
        self.allocated += 1
        return slot

    def _grow(self, when: float, seq: int, fn: Callable[..., None],
              args: tuple, kind: int) -> int:
        """Cold path of :meth:`alloc`: append a brand-new slot.

        The engine inlines the free-list claim at its hot call sites
        (``defer``/``call_later``) and falls back here only while the table
        is still growing toward its steady-state size.  Does **not** bump
        ``allocated`` — the inlined caller does.
        """
        slot = len(self._fn)
        self._fn.append(fn)
        self._args.append(args)
        self._when.append(when)
        self._seq.append(seq)
        self._kind.append(kind)
        self._state.append(PENDING)
        return slot

    def cancel(self, slot: int) -> None:
        """Mark a pending slot so the run loop skips (and then recycles) it."""
        if self._state[slot] != PENDING:
            raise ValueError(f"slot {slot} is not pending")
        self._state[slot] = CANCELLED
        self._fn[slot] = None
        self._args[slot] = None
        self.cancelled += 1

    # -- introspection -----------------------------------------------------
    @property
    def capacity(self) -> int:
        """Number of slots ever materialized (the table's physical size)."""
        return len(self._fn)

    @property
    def live(self) -> int:
        """Slots currently pending or cancelled-but-not-yet-popped."""
        return len(self._fn) - len(self._free)

    @property
    def recycled(self) -> int:
        """Allocations served from the free list instead of growing."""
        return self.allocated - len(self._fn)

    def counters(self) -> dict:
        """Allocation statistics for ``engine_counters``."""
        return {
            "allocated": self.allocated,
            "recycled": self.recycled,
            "cancelled": self.cancelled,
            "capacity": self.capacity,
            "live": self.live,
        }

    def as_structured(self):
        """Materialize the when/seq/kind/state columns as a structured
        numpy array (one row per physical slot) for inspection."""
        import numpy as np

        out = np.zeros(len(self._fn), dtype=[("when", "f8"), ("seq", "i8"),
                                             ("kind", "i1"), ("state", "i1")])
        out["when"] = self._when
        out["seq"] = self._seq
        out["kind"] = self._kind
        out["state"] = self._state
        return out
