"""Per-run resilience report.

Summarizes what was injected, what the detection layer saw, and how the
run degraded or recovered — the robustness counterpart of the performance
report in :mod:`repro.report`.
"""

from __future__ import annotations

from typing import Any

__all__ = ["resilience_report"]


def resilience_report(result: Any) -> str:
    """Render the resilience story of a :class:`~repro.app.driver.RunResult`.

    Works on any result; runs without fault injection report a clean bill.
    """
    lines = ["Resilience report", "================="]
    lines.append(f"configuration : {result.config.label()}")
    lines.append(f"total time    : {result.total_time:.6f} s (simulated)")
    injector = getattr(result, "faults", None)
    if injector is None:
        lines.append("faults        : none injected")
        return "\n".join(lines)
    s = injector.summary()
    lines.append(f"faults        : {s['fired']} fired of {s['planned']} "
                 f"planned")
    for kind, count in sorted(s["by_kind"].items()):
        lines.append(f"  - {kind:<15}: {count}")
    for ev in injector.events:
        lines.append(f"    t={ev.time:.6f}s rank={ev.rank} "
                     f"[{ev.kind}] {ev.detail}")
    if s["dead_ranks"]:
        lines.append(f"dead ranks    : {s['dead_ranks']} "
                     f"(survivors completed the run)")
    if s["messages_dropped"] or s["messages_delayed"]:
        lines.append(f"messages      : {s['messages_dropped']} dropped, "
                     f"{s['messages_delayed']} delayed")
    for i, sf in enumerate(s["solver_faults"]):
        outcome = ("recovered after re-preconditioning"
                   if sf["recovered"] and sf["converged"] else
                   f"structured failure: {sf['breakdown']}"
                   if sf["breakdown"] else
                   "converged" if sf["converged"] else "not converged")
        lines.append(f"solver fault #{i + 1}: {outcome} "
                     f"({sf['iterations']} iterations total)")
    stats = result.dlb_stats
    if getattr(stats, "rank_death_events", 0):
        lines.append(f"DLB degradation: {stats.rank_death_events} rank "
                     f"death(s) absorbed, {stats.cores_inherited} cores "
                     f"re-lent to survivors")
    if getattr(stats, "throttle_events", 0):
        lines.append(f"DLB throttles  : {stats.throttle_events} "
                     f"slowdown change(s) observed")
    ckpts = getattr(result, "checkpoints", None) or []
    if ckpts:
        lines.append(f"checkpoints   : {len(ckpts)} written "
                     f"(steps {[c[0] for c in ckpts]})")
    return "\n".join(lines)
