"""Fault injection against a running simulated job.

The :class:`FaultInjector` turns a :class:`~repro.fault.plan.FaultPlan`
into DES trigger processes: each spec fires at its simulated time and
perturbs the run — throttling a team, killing a rank, delaying or dropping
messages, contaminating a solver residual, or aborting the whole job.
Because everything happens in simulated time, an injected run is exactly
replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..smpi import World
from .plan import ORCHESTRATION_KINDS, FaultPlan, FaultSpec

__all__ = ["FaultEvent", "FaultInjector", "exercise_solver_fault"]


@dataclass(frozen=True)
class FaultEvent:
    """One fault occurrence as it actually happened during a run."""

    time: float
    kind: str
    rank: int
    detail: str = ""


class FaultInjector:
    """Schedules a plan's faults on the DES and hooks the message path.

    Parameters
    ----------
    world:
        The simulated MPI job to inject into.
    plan:
        The fault schedule.
    teams:
        Optional ``{world_rank: Team}`` map (straggler injection).
    dlb:
        Optional DLB instance — informed of deaths/throttles so it can
        degrade gracefully (and count them in its stats).
    workload:
        Optional :class:`~repro.app.workload.Workload`; when present,
        ``solver_perturb`` faults run a *real* contaminated Krylov solve
        against the workload's continuity operator.
    """

    def __init__(self, world: World, plan: FaultPlan,
                 teams: Optional[dict] = None, dlb: Optional[Any] = None,
                 workload: Optional[Any] = None):
        self.world = world
        self.plan = plan
        self.teams = teams or {}
        self.dlb = dlb
        self.workload = workload
        #: chronological record of what fired (resilience report input)
        self.events: list[FaultEvent] = []
        #: results of injected solver faults (SolveResult per occurrence)
        self.solver_results: list = []
        self.messages_dropped = 0
        self.messages_delayed = 0
        self._drop_budget: dict[int, int] = {}
        self._delay_windows: list[tuple[int, float, float, float]] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Install the message hook and spawn one trigger per future spec.

        Specs whose trigger time already passed (a restarted run resuming
        at ``engine.now > 0``) are skipped: their damage is part of the
        checkpointed history, not of the remaining run.  Orchestration
        kinds (worker kill, heartbeat loss, wedge) act on the campaign
        executor, not inside a simulated run, so they are ignored here.
        """
        if self._started:
            return
        self._started = True
        self.world.fault_controller = self
        now = self.world.engine.now
        for spec in self.plan:
            if spec.kind in ORCHESTRATION_KINDS:
                continue
            if spec.time < now:
                continue
            self.world.engine.process(
                self._trigger(spec), name=f"fault.{spec.kind}@{spec.time:g}")

    # -- trigger processes --------------------------------------------------
    def _trigger(self, spec: FaultSpec):
        engine = self.world.engine
        yield engine.timeout(spec.time - engine.now)
        if spec.kind == "straggler":
            yield from self._straggler(spec)
        elif spec.kind == "rank_death":
            self._rank_death(spec)
        elif spec.kind == "msg_delay":
            self._record(spec, f"+{spec.delay:g}s/msg from rank {spec.rank} "
                               f"for {spec.duration:g}s")
            self._delay_windows.append(
                (spec.rank, spec.delay, engine.now,
                 engine.now + spec.duration))
        elif spec.kind == "msg_drop":
            self._record(spec, f"drop next {spec.count} messages "
                               f"from rank {spec.rank}")
            self._drop_budget[spec.rank] = (
                self._drop_budget.get(spec.rank, 0) + spec.count)
        elif spec.kind == "solver_perturb":
            self._solver_perturb(spec)
        elif spec.kind == "job_kill":
            self._record(spec, spec.note or "injected job kill")
            engine.stop(spec.note or "injected job kill")

    def _straggler(self, spec: FaultSpec):
        engine = self.world.engine
        self._record(spec, f"x{spec.factor:g} slowdown for "
                           f"{spec.duration:g}s", duration=spec.duration)
        if self.dlb is not None:
            self.dlb.on_rank_throttle(spec.rank, spec.factor)
        elif spec.rank in self.teams:
            self.teams[spec.rank].set_slowdown(spec.factor)
        yield engine.timeout(spec.duration)
        if spec.rank in self.world.dead_ranks:
            return
        if self.dlb is not None:
            self.dlb.on_rank_throttle(spec.rank, 1.0)
        elif spec.rank in self.teams:
            self.teams[spec.rank].set_slowdown(1.0)

    def _rank_death(self, spec: FaultSpec) -> None:
        self._record(spec, spec.note or f"rank {spec.rank} killed")
        self.world.kill_rank(spec.rank, spec.note or "injected rank death")
        if self.dlb is not None:
            self.dlb.on_rank_death(spec.rank)

    def _solver_perturb(self, spec: FaultSpec) -> None:
        if self.workload is None:
            self._record(spec, "solver perturbation (no workload attached)")
            return
        result = exercise_solver_fault(self.workload, spec)
        self.solver_results.append(result)
        outcome = ("recovered" if result.recovered and result.converged
                   else f"failed ({result.breakdown})"
                   if result.breakdown else
                   "converged" if result.converged else "not converged")
        self._record(spec, f"NaN injected into {spec.phase} residual "
                           f"at iteration {max(1, spec.count)}: {outcome}")

    # -- message-path hook (called from Comm._transfer) ---------------------
    def on_message(self, src: int, dest: int,
                   nbytes: float) -> tuple[bool, float]:
        """Decide the fate of one message leaving ``src``.

        Returns ``(dropped, extra_delay_seconds)``.
        """
        budget = self._drop_budget.get(src, 0)
        if budget > 0:
            self._drop_budget[src] = budget - 1
            self.messages_dropped += 1
            return True, 0.0
        now = self.world.engine.now
        extra = 0.0
        for rank, delay, t0, t1 in self._delay_windows:
            if rank == src and t0 <= now < t1:
                extra += delay
        if extra > 0:
            self.messages_delayed += 1
        return False, extra

    # -- bookkeeping --------------------------------------------------------
    def _record(self, spec: FaultSpec, detail: str,
                duration: float = 0.0) -> None:
        now = self.world.engine.now
        self.events.append(FaultEvent(time=now, kind=spec.kind,
                                      rank=spec.rank, detail=detail))
        if self.world.recorder is not None:
            self.world.recorder.record(max(0, spec.rank), "fault",
                                       f"fault.{spec.kind}", now,
                                       now + duration)

    def summary(self) -> dict:
        """Counters for the resilience report."""
        by_kind: dict[str, int] = {}
        for ev in self.events:
            by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
        return {
            "planned": len(self.plan),
            "fired": len(self.events),
            "by_kind": by_kind,
            "messages_dropped": self.messages_dropped,
            "messages_delayed": self.messages_delayed,
            "dead_ranks": sorted(self.world.dead_ranks),
            "solver_faults": [
                {"converged": r.converged, "recovered": r.recovered,
                 "breakdown": r.breakdown, "iterations": r.iterations}
                for r in self.solver_results],
        }


def exercise_solver_fault(workload: Any, spec: FaultSpec):
    """Run a real CG solve with a NaN injected at iteration ``spec.count``.

    Uses the workload's assembled continuity operator — the paper's
    "Solver2" system — so the breakdown/recovery path is exercised on the
    actual physics, not a toy matrix.  Returns the :class:`SolveResult`
    (``recovered=True`` when the re-preconditioned retry succeeded).
    """
    from ..solver import cg, jacobi_preconditioner

    A = workload.operators()["continuity"]
    rng = np.random.default_rng(workload.spec.mesh_seed)
    b = A @ rng.normal(size=A.shape[0])
    hit = max(1, spec.count)

    def contaminate(it: int, r: np.ndarray) -> np.ndarray:
        if it == hit:
            r = r.copy()
            r[0] = np.nan
        return r

    return cg(A, b, tol=1e-8, maxiter=800, M=jacobi_preconditioner(A),
              fault=contaminate)
