"""Coordinated checkpoint/restart for CFPD runs.

The driver checkpoints at step boundaries behind a world barrier — a
consistent cut: mailboxes are empty, no collective is in flight, and every
rank is at the same step index.  The checkpoint captures everything needed
to resume *bit-identically*:

* the run configuration and workload spec (restart refuses a mismatch);
* the step index and the simulated clock;
* the phase-log samples accumulated so far (so derived metrics of the
  combined run equal an uninterrupted one);
* the physics state at the cut: live particle population (positions,
  velocities, Newmark accelerations, status), nodal velocity field, and
  SGS norm history — all derived deterministically from the spec, and
  verified against a rebuilt workload at restart to detect corruption or a
  spec/code drift.

Format: a versioned pickle (the repo's I/O layer is pure python; there is
no external serialization dependency to lean on).  The version gate turns
a stale-format file into a clear :class:`CheckpointError` instead of an
attribute error five frames deep.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["CHECKPOINT_VERSION", "Checkpoint", "CheckpointError",
           "save_checkpoint", "load_checkpoint"]

CHECKPOINT_VERSION = 1

_MAGIC = "repro-cfpd-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or safely resumed from."""


@dataclass
class Checkpoint:
    """A consistent snapshot of a CFPD run at a step boundary."""

    version: int
    step: int                     # first step the restarted run executes
    sim_time: float               # simulated clock at the cut
    config: Any                   # RunConfig of the checkpointed run
    spec: Any                     # WorkloadSpec of the checkpointed run
    #: PhaseSample tuples (step, phase, rank, t0, t1, busy, instructions)
    phase_samples: list = field(default_factory=list)
    #: particle population at the cut: {"x", "v", "a", "status", "diameter"}
    particles: dict = field(default_factory=dict)
    nodal_velocity: Optional[np.ndarray] = None
    sgs_norms: list = field(default_factory=list)
    #: the spec's injection seed stream position (informative; the physics
    #: replay derives everything from the spec's absolute seeds)
    rng: dict = field(default_factory=dict)
    written_by_rank: int = 0


def save_checkpoint(path: str, ckpt: Checkpoint) -> None:
    """Serialize ``ckpt`` to ``path`` (versioned pickle)."""
    payload = {"magic": _MAGIC, "version": ckpt.version, "checkpoint": ckpt}
    try:
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}") \
            from exc


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint, validating magic and version."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") \
            from exc
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        raise CheckpointError(
            f"corrupted checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError(
            f"{path!r} is not a CFPD checkpoint (bad magic)")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version}, "
            f"this build reads version {CHECKPOINT_VERSION}")
    ckpt = payload.get("checkpoint")
    if not isinstance(ckpt, Checkpoint):
        raise CheckpointError(f"corrupted checkpoint {path!r}: "
                              f"payload is {type(ckpt).__name__}")
    return ckpt
