"""Deterministic fault plans.

A :class:`FaultPlan` is a frozen, seeded list of :class:`FaultSpec` events.
Because triggers fire in *simulated* time on the DES engine, replaying the
same plan against the same run configuration reproduces the same failure
scenario bit-for-bit — which is what makes resilience experiments (and
their tests) possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["KINDS", "ORCHESTRATION_KINDS", "FaultSpec", "FaultPlan"]

#: Supported fault kinds:
#:
#: ``straggler``      — multiply task durations on one rank's team by
#:                      ``factor`` for ``duration`` seconds (DVFS throttle /
#:                      noisy neighbour);
#: ``rank_death``     — kill one rank's process (node crash);
#: ``msg_delay``      — add ``delay`` seconds to messages leaving ``rank``
#:                      for ``duration`` seconds (congested / flaky link);
#: ``msg_drop``       — silently drop the next ``count`` messages leaving
#:                      ``rank`` (lossy link);
#: ``solver_perturb`` — inject NaN into a Krylov residual at iteration
#:                      ``count`` (bit-flip in the solver phase);
#: ``job_kill``       — abort the whole simulated job (power loss /
#:                      wall-clock limit), exercising checkpoint/restart.
#:
#: Orchestration-level kinds act on the *campaign executor*, not inside a
#: simulated run.  Their trigger is ``count`` — the 1-based lease-grant
#: sequence number at which they fire (deterministic regardless of wall
#: time); ``time`` is unused and should stay 0:
#:
#: ``worker_kill``    — SIGKILL the pool worker holding lease ``count``
#:                      (node crash / OOM kill of a sweep worker);
#: ``heartbeat_loss`` — the worker granted lease ``count`` goes silent:
#:                      no heartbeats, no result (stuck in a syscall,
#:                      partitioned network);
#: ``worker_wedge``   — the worker granted lease ``count`` keeps
#:                      heartbeating but never finishes its job (livelock).
ORCHESTRATION_KINDS = ("worker_kill", "heartbeat_loss", "worker_wedge")

KINDS = ("straggler", "rank_death", "msg_delay", "msg_drop",
         "solver_perturb", "job_kill") + ORCHESTRATION_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault occurrence."""

    kind: str
    time: float                  # simulated trigger time [s]
    rank: int = -1               # target world rank (-1: whole job / n.a.)
    duration: float = 0.0        # straggler / msg_delay window length [s]
    factor: float = 4.0          # straggler slowdown multiplier
    delay: float = 0.0           # msg_delay extra seconds per message
    count: int = 0               # msg_drop budget / solver_perturb iteration
    phase: str = "solver2"       # solver_perturb target phase (informative)
    note: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0:
            raise ValueError(
                f"fault duration must be >= 0, got {self.duration}")
        if self.factor <= 0:
            raise ValueError(f"fault factor must be > 0, got {self.factor}")
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay}")
        if self.kind == "straggler" and self.duration <= 0:
            raise ValueError("straggler faults need a duration > 0")
        if self.kind == "msg_delay" and self.delay <= 0:
            raise ValueError("msg_delay faults need a delay > 0")
        if self.kind == "msg_drop" and self.count <= 0:
            raise ValueError("msg_drop faults need a count > 0")
        if self.kind in ORCHESTRATION_KINDS and self.count <= 0:
            raise ValueError(
                f"{self.kind} faults need count >= 1 (the 1-based "
                f"lease-grant sequence number that triggers them)")
        if self.kind in ("straggler", "rank_death", "msg_delay", "msg_drop") \
                and self.rank < 0:
            raise ValueError(f"{self.kind} faults need a target rank")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable schedule of faults."""

    specs: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for s in self.specs:
            if not isinstance(s, FaultSpec):
                raise TypeError(f"FaultPlan entries must be FaultSpec, "
                                f"got {type(s).__name__}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_kind(self, kind: str) -> list[FaultSpec]:
        """All specs of one kind, in trigger order."""
        return sorted((s for s in self.specs if s.kind == kind),
                      key=lambda s: s.time)

    def orchestration(self) -> list[FaultSpec]:
        """Campaign-executor-level specs (worker kill / heartbeat loss /
        wedge), in lease-grant trigger order."""
        return sorted((s for s in self.specs
                       if s.kind in ORCHESTRATION_KINDS),
                      key=lambda s: (s.count, s.kind))

    @classmethod
    def random(cls, seed: int, nranks: int, t_end: float,
               n_faults: int = 3,
               kinds: Sequence[str] = ("straggler", "msg_delay",
                                       "msg_drop")) -> "FaultPlan":
        """A seeded random plan over ``[0, t_end)`` targeting ``nranks``.

        Identical ``(seed, nranks, t_end, n_faults, kinds)`` always yields
        an identical plan (verified by a property test).
        """
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if t_end <= 0:
            raise ValueError(f"t_end must be > 0, got {t_end}")
        for k in kinds:
            if k not in KINDS:
                raise ValueError(
                    f"unknown fault kind {k!r}; available: {KINDS}")
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(n_faults):
            kind = str(rng.choice(list(kinds)))
            spec = FaultSpec(
                kind=kind,
                time=float(rng.uniform(0.0, t_end)),
                rank=int(rng.integers(0, nranks)),
                duration=float(rng.uniform(0.05, 0.5) * t_end),
                factor=float(rng.uniform(1.5, 8.0)),
                delay=float(rng.uniform(1e-5, 1e-3)),
                count=int(rng.integers(1, 6)),
            )
            specs.append(spec)
        specs.sort(key=lambda s: (s.time, s.kind, s.rank))
        return cls(specs=tuple(specs), seed=seed)
