"""Fault injection, failure detection, and checkpoint/restart.

Three layers:

* **injection** (:mod:`repro.fault.plan`, :mod:`repro.fault.injector`) —
  seeded deterministic fault schedules replayed in simulated time;
* **detection & recovery** — deadlock diagnostics live in
  :mod:`repro.smpi.comm`, solver breakdown guards in
  :mod:`repro.solver.krylov`, and coordinated checkpoint/restart here in
  :mod:`repro.fault.checkpoint` (driven by :mod:`repro.app.driver`);
* **graceful degradation** — DLB absorbs dead ranks' cores
  (:meth:`repro.core.dlb.DLB.on_rank_death`) and the per-run
  :func:`~repro.fault.report.resilience_report` tells the story.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from .injector import FaultEvent, FaultInjector, exercise_solver_fault
from .plan import KINDS, ORCHESTRATION_KINDS, FaultPlan, FaultSpec
from .report import resilience_report

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "ORCHESTRATION_KINDS",
    "exercise_solver_fault",
    "load_checkpoint",
    "resilience_report",
    "save_checkpoint",
]
