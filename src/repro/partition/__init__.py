"""Partitioning substrate: multilevel (Metis-like) and RCB partitioners,
graph coloring, and the two-level rank/subdomain decomposition."""

from .coloring import color_counts, dsatur_coloring, greedy_coloring, verify_coloring
from .domain import (
    Decomposition,
    RankDomain,
    decompose_mesh,
    halo_counts,
    subdomain_decomposition,
)
from .metis import edge_cut, partition_graph, partition_weights
from .rcb import rcb_partition

__all__ = [
    "Decomposition",
    "RankDomain",
    "color_counts",
    "decompose_mesh",
    "dsatur_coloring",
    "edge_cut",
    "greedy_coloring",
    "halo_counts",
    "partition_graph",
    "partition_weights",
    "rcb_partition",
    "subdomain_decomposition",
    "verify_coloring",
]
