"""Recursive coordinate bisection (RCB) partitioning.

A geometric partitioner: recursively split the point set along its widest
axis at the weighted median, assigning sub-part counts proportionally.
Fast, deterministic, and produces compact parts — used as the default for
large meshes and as the spatial sub-decomposition inside ranks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["rcb_partition"]


def rcb_partition(points: np.ndarray, nparts: int,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Partition ``points`` (n, d) into ``nparts`` by recursive bisection.

    Returns (n,) int32 part labels in [0, nparts).  Weighted: each part
    receives approximately ``sum(weights)/nparts`` total weight.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError("weights must be (n,)")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
    labels = np.zeros(n, dtype=np.int32)
    if nparts == 1 or n == 0:
        return labels
    _rcb(points, weights, np.arange(n), nparts, 0, labels)
    return labels


def _rcb(points: np.ndarray, weights: np.ndarray, idx: np.ndarray,
         nparts: int, offset: int, labels: np.ndarray) -> None:
    if nparts == 1 or len(idx) == 0:
        labels[idx] = offset
        return
    if len(idx) <= nparts:
        # degenerate: one point per part (some parts may stay empty only
        # when there are genuinely fewer points than parts)
        for i, v in enumerate(idx):
            labels[v] = offset + (i % nparts)
        return
    k_left = nparts // 2
    k_right = nparts - k_left
    sub = points[idx]
    spans = sub.max(axis=0) - sub.min(axis=0)
    axis = int(np.argmax(spans))
    order = np.argsort(sub[:, axis], kind="stable")
    w = weights[idx][order]
    total = w.sum()
    if total <= 0:
        # all-zero weights: split by count
        cut = len(idx) * k_left // nparts
    else:
        target = total * k_left / nparts
        cum = np.cumsum(w)
        cut = int(np.searchsorted(cum, target))
        # Each side must receive at least as many points as parts it will
        # be split into (we know len(idx) > nparts here).
        cut = max(k_left, min(cut, len(idx) - k_right))
    left = idx[order[:cut]]
    right = idx[order[cut:]]
    _rcb(points, weights, left, k_left, offset, labels)
    _rcb(points, weights, right, k_right, offset + k_left, labels)
