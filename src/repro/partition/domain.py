"""Domain decomposition: mesh -> MPI rank domains -> multidep subdomains.

Mirrors Alya's two-level decomposition:

* the mesh is partitioned into one domain per MPI rank (Metis in the paper;
  here the multilevel partitioner or RCB);
* inside each rank, the local elements are decomposed into *subdomains*,
  one multidependence task each, with the subdomain adjacency (share at
  least one node) providing the runtime-computed dependence lists.

The rank partition balances **element counts** — per-element costs differ by
type (prisms ~3x tets), which is precisely what produces the assembly load
imbalance of L96 ~ 0.66 the paper measures in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.generator import AirwayMesh
from ..mesh.mesh import Mesh
from .metis import partition_graph
from .rcb import rcb_partition

__all__ = ["RankDomain", "Decomposition", "decompose_mesh",
           "subdomain_decomposition", "halo_counts"]


@dataclass
class RankDomain:
    """Everything one MPI rank knows about its piece of the mesh."""

    rank: int
    element_ids: np.ndarray          # global element ids (memory order)
    sub_labels: np.ndarray           # per local element: subdomain id
    sub_adjacency: list[frozenset]   # per subdomain: neighbouring sub ids
    halo_nodes: int                  # interface nodes shared with other ranks

    @property
    def nelem(self) -> int:
        """Local element count."""
        return len(self.element_ids)

    @property
    def nsub(self) -> int:
        """Number of multidep subdomains."""
        return len(self.sub_adjacency)


@dataclass
class Decomposition:
    """A full two-level decomposition of a mesh."""

    mesh: Mesh
    nranks: int
    labels: np.ndarray               # per global element: owning rank
    domains: list[RankDomain]

    def domain(self, rank: int) -> RankDomain:
        """The :class:`RankDomain` of ``rank``."""
        return self.domains[rank]

    def elements_per_rank(self) -> np.ndarray:
        """Element count per rank."""
        return np.bincount(self.labels, minlength=self.nranks)


def subdomain_decomposition(mesh: Mesh, element_ids: np.ndarray,
                            nsub: int, method: str = "rcb",
                            min_shared_nodes: int = 1,
                            min_elements_per_subdomain: int = 6
                            ) -> tuple[np.ndarray, list[frozenset]]:
    """Split a rank's elements into ``nsub`` subdomains and compute their
    node-sharing adjacency (the multidependence lists).

    ``method="rcb"`` (default) produces *spatially compact* subdomains —
    what Metis gives the paper — so each subdomain touches only a handful
    of neighbours and non-adjacent tasks really run concurrently.
    ``method="contiguous"`` chunks the memory order instead (maximal
    per-task locality, denser adjacency on thin rank domains).

    ``min_shared_nodes`` sets how many nodes two subdomains must share to
    count as adjacent.  The paper's rule is >= 1; on strongly scaled-down
    meshes the subdomains are so small that single-node contacts inflate
    the adjacency degree far beyond the production regime (~6-8
    neighbours), so experiments may raise the threshold — a documented
    scale compensation (see EXPERIMENTS.md).
    """
    nlocal = len(element_ids)
    if nlocal == 0:
        return np.zeros(0, dtype=np.int32), []
    # never create subdomains so small that task overhead dominates
    nsub = max(1, min(nsub, nlocal,
                      nlocal // max(1, min_elements_per_subdomain) or 1))
    if method == "rcb":
        sub_labels = rcb_partition(mesh.centroids()[element_ids],
                                   nsub).astype(np.int32)
    elif method == "contiguous":
        bounds = np.linspace(0, nlocal, nsub + 1).astype(np.int64)
        sub_labels = np.zeros(nlocal, dtype=np.int32)
        for s in range(nsub):
            sub_labels[bounds[s]:bounds[s + 1]] = s
    else:
        raise ValueError(f"unknown subdomain method {method!r}")
    # adjacency: count nodes shared between subdomain pairs
    from scipy import sparse

    conn = mesh.elem_nodes[element_ids]
    valid = conn.ravel() >= 0
    nodes = conn.ravel()[valid]
    subs = np.repeat(sub_labels, conn.shape[1])[valid]
    inc = sparse.csr_matrix(
        (np.ones(len(nodes), dtype=np.int32), (subs, nodes)),
        shape=(nsub, mesh.nnodes))
    inc.data[:] = 1  # count each (subdomain, node) incidence once
    counts = (inc @ inc.T).tocoo()
    mask = (counts.data >= min_shared_nodes) & (counts.row != counts.col)
    adjacency = [set() for _ in range(nsub)]
    for x, y in zip(counts.row[mask], counts.col[mask]):
        adjacency[x].add(int(y))
    return sub_labels, [frozenset(s) for s in adjacency]


def halo_counts(mesh: Mesh, labels: np.ndarray, nranks: int) -> np.ndarray:
    """Interface (halo) node count per rank: nodes touched by elements of
    at least two different ranks."""
    from scipy import sparse

    valid = mesh.elem_nodes.ravel() != -1
    nodes = mesh.elem_nodes.ravel()[valid]
    owners = np.repeat(labels, 6)[valid]
    inc = sparse.csr_matrix(
        (np.ones(len(nodes), dtype=np.int8), (nodes, owners)),
        shape=(mesh.nnodes, nranks))
    inc.data[:] = 1
    ranks_per_node = np.asarray(inc.sum(axis=1)).ravel()
    shared = ranks_per_node >= 2
    counts = np.zeros(nranks, dtype=np.int64)
    for r in range(nranks):
        touched = np.asarray(
            inc[:, r].todense()).ravel().astype(bool)
        counts[r] = int((touched & shared).sum())
    return counts


def decompose_mesh(airway: AirwayMesh | Mesh, nranks: int,
                   subdomains_per_rank: int = 16,
                   method: str = "multilevel",
                   min_shared_nodes: int = 1,
                   min_elements_per_subdomain: int = 6,
                   seed: int = 0) -> Decomposition:
    """Two-level decomposition of a mesh (or airway mesh) for ``nranks``.

    ``method`` selects the rank-level partitioner: ``"multilevel"`` (graph,
    Metis-like — uses junction-aware dual graph for airway meshes) or
    ``"rcb"`` (geometric, faster for large meshes).
    """
    if isinstance(airway, AirwayMesh):
        mesh = airway.mesh
        dual = airway.dual_with_junctions if method == "multilevel" else None
    else:
        mesh = airway
        dual = mesh.face_adjacency if method == "multilevel" else None
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if method == "multilevel":
        labels = partition_graph(dual(), nranks, seed=seed)
    elif method == "rcb":
        labels = rcb_partition(mesh.centroids(), nranks)
    else:
        raise ValueError(f"unknown method {method!r}")
    halos = halo_counts(mesh, labels, nranks)
    domains = []
    for r in range(nranks):
        element_ids = np.nonzero(labels == r)[0]
        sub_labels, adjacency = subdomain_decomposition(
            mesh, element_ids, subdomains_per_rank,
            min_shared_nodes=min_shared_nodes,
            min_elements_per_subdomain=min_elements_per_subdomain)
        domains.append(RankDomain(rank=r, element_ids=element_ids,
                                  sub_labels=sub_labels,
                                  sub_adjacency=adjacency,
                                  halo_nodes=int(halos[r])))
    return Decomposition(mesh=mesh, nranks=nranks, labels=labels,
                         domains=domains)
