"""Graph coloring for the COLORING assembly strategy (Farhat & Crivelli).

Elements sharing a node may not share a color; each color class is then an
atomic-free parallel loop.  Two classic heuristics are provided:

* :func:`greedy_coloring` — first-fit in natural (memory) order;
* :func:`dsatur_coloring` — DSATUR (highest saturation first), usually
  fewer colors on irregular meshes.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..mesh.mesh import CSRGraph

__all__ = ["greedy_coloring", "dsatur_coloring", "verify_coloring",
           "color_counts"]


def greedy_coloring(graph: CSRGraph) -> np.ndarray:
    """First-fit coloring in vertex order; returns (n,) int color ids."""
    n = graph.n
    colors = np.full(n, -1, dtype=np.int32)
    for v in range(n):
        used = {colors[w] for w in graph.neighbors(v) if colors[w] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def dsatur_coloring(graph: CSRGraph) -> np.ndarray:
    """DSATUR coloring: color the most saturated vertex first."""
    n = graph.n
    colors = np.full(n, -1, dtype=np.int32)
    if n == 0:
        return colors
    neighbor_colors: list[set] = [set() for _ in range(n)]
    degrees = np.diff(graph.xadj)
    # heap of (-saturation, -degree, vertex); lazy entries, version check
    heap = [(0, -int(degrees[v]), v) for v in range(n)]
    heapq.heapify(heap)
    colored = 0
    while colored < n:
        while True:
            neg_sat, neg_deg, v = heapq.heappop(heap)
            if colors[v] >= 0:
                continue
            if -neg_sat != len(neighbor_colors[v]):
                heapq.heappush(
                    heap, (-len(neighbor_colors[v]), neg_deg, v))
                continue
            break
        used = neighbor_colors[v]
        c = 0
        while c in used:
            c += 1
        colors[v] = c
        colored += 1
        for w in graph.neighbors(v):
            if colors[w] < 0 and c not in neighbor_colors[w]:
                neighbor_colors[w].add(c)
                heapq.heappush(
                    heap,
                    (-len(neighbor_colors[w]), -int(degrees[w]), int(w)))
    return colors


def verify_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """True iff no edge connects two vertices of the same color."""
    colors = np.asarray(colors)
    if (colors < 0).any():
        return False
    src = np.repeat(np.arange(graph.n),
                    np.diff(graph.xadj).astype(np.int64))
    return bool((colors[src] != colors[graph.adjncy]).all())


def color_counts(colors: np.ndarray) -> np.ndarray:
    """Histogram of class sizes, indexed by color id."""
    colors = np.asarray(colors)
    if len(colors) == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(colors)
