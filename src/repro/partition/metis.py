"""Multilevel graph partitioning (a from-scratch Metis work-alike).

The paper uses Metis twice: to decompose the mesh into per-MPI-rank domains
and, inside each rank, into the subdomains that become multidependence
tasks.  This module implements the standard multilevel recursive-bisection
pipeline:

1. **Coarsening** — repeated heavy-edge matching contracts the graph until
   it is small;
2. **Initial partition** — greedy region growing from a pseudo-peripheral
   vertex until half of the total vertex weight is reached;
3. **Uncoarsening + refinement** — the partition is projected back level by
   level and improved with Fiduccia–Mattheyses-style boundary passes
   (positive-gain moves under a balance constraint).

Recursive bisection yields k-way partitions for any ``nparts`` (weights are
split proportionally for odd counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..mesh.mesh import CSRGraph

__all__ = ["partition_graph", "edge_cut", "partition_weights"]


# ---------------------------------------------------------------------------
# weighted-graph working representation
# ---------------------------------------------------------------------------

@dataclass
class _WGraph:
    """CSR graph with vertex and edge weights (contraction-friendly)."""

    xadj: np.ndarray
    adjncy: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    @property
    def n(self) -> int:
        return len(self.xadj) - 1

    def neighbors(self, v: int):
        lo, hi = self.xadj[v], self.xadj[v + 1]
        return self.adjncy[lo:hi], self.eweights[lo:hi]


def _wgraph_from_csr(graph: CSRGraph, vweights: np.ndarray) -> _WGraph:
    return _WGraph(xadj=graph.xadj.copy(),
                   adjncy=graph.adjncy.astype(np.int64),
                   eweights=np.ones(len(graph.adjncy), dtype=np.float64),
                   vweights=np.asarray(vweights, dtype=np.float64))


def _subgraph(g: _WGraph, idx: np.ndarray) -> _WGraph:
    """Induced subgraph on ``idx`` (renumbered 0..len(idx)-1)."""
    remap = np.full(g.n, -1, dtype=np.int64)
    remap[idx] = np.arange(len(idx))
    xadj = [0]
    adjncy: list[int] = []
    ew: list[float] = []
    for v in idx:
        nbrs, w = g.neighbors(v)
        keep = remap[nbrs] >= 0
        adjncy.extend(remap[nbrs[keep]])
        ew.extend(w[keep])
        xadj.append(len(adjncy))
    return _WGraph(xadj=np.asarray(xadj, dtype=np.int64),
                   adjncy=np.asarray(adjncy, dtype=np.int64),
                   eweights=np.asarray(ew, dtype=np.float64),
                   vweights=g.vweights[idx])


# ---------------------------------------------------------------------------
# coarsening
# ---------------------------------------------------------------------------

def _heavy_edge_matching(g: _WGraph, rng: np.random.Generator) -> np.ndarray:
    """Greedy heavy-edge matching; returns coarse-vertex id per vertex."""
    n = g.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in order:
        if match[v] >= 0:
            continue
        nbrs, w = g.neighbors(v)
        best, best_w = -1, -1.0
        for u, wu in zip(nbrs, w):
            if match[u] < 0 and u != v and wu > best_w:
                best, best_w = int(u), float(wu)
        if best >= 0:
            match[v] = best
            match[best] = v
            coarse[v] = coarse[best] = next_id
        else:
            match[v] = v
            coarse[v] = next_id
        next_id += 1
    return coarse


def _contract(g: _WGraph, coarse: np.ndarray) -> _WGraph:
    """Contract matched vertices into a coarse graph."""
    nc = int(coarse.max()) + 1
    vweights = np.bincount(coarse, weights=g.vweights, minlength=nc)
    src = np.repeat(coarse, np.diff(g.xadj).astype(np.int64))
    dst = coarse[g.adjncy]
    keep = src != dst
    src, dst, ew = src[keep], dst[keep], g.eweights[keep]
    # aggregate parallel edges
    key = src * nc + dst
    order = np.argsort(key, kind="stable")
    key, ew = key[order], ew[order]
    uniq, start = np.unique(key, return_index=True)
    sums = np.add.reduceat(ew, start) if len(ew) else np.zeros(0)
    usrc = (uniq // nc).astype(np.int64)
    udst = (uniq % nc).astype(np.int64)
    xadj = np.zeros(nc + 1, dtype=np.int64)
    np.cumsum(np.bincount(usrc, minlength=nc), out=xadj[1:])
    return _WGraph(xadj=xadj, adjncy=udst, eweights=sums, vweights=vweights)


# ---------------------------------------------------------------------------
# initial partition + refinement
# ---------------------------------------------------------------------------

def _pseudo_peripheral(g: _WGraph, rng: np.random.Generator) -> int:
    """A vertex far from 'the middle': BFS twice from a random start."""
    start = int(rng.integers(g.n))
    for _ in range(2):
        dist = np.full(g.n, -1, dtype=np.int64)
        dist[start] = 0
        queue = [start]
        last = start
        while queue:
            nxt = []
            for v in queue:
                for u in g.neighbors(v)[0]:
                    if dist[u] < 0:
                        dist[u] = dist[v] + 1
                        nxt.append(int(u))
                        last = int(u)
            queue = nxt
        start = last
    return start


def _grow_partition(g: _WGraph, target: float,
                    rng: np.random.Generator) -> np.ndarray:
    """Greedy BFS region growing until ``target`` vertex weight is reached.

    The first seed is a pseudo-peripheral vertex (grows a compact region
    from one end of the graph); later seeds — needed only for disconnected
    graphs — are random remaining vertices.
    """
    side = np.zeros(g.n, dtype=np.int8)
    remaining = np.ones(g.n, dtype=bool)
    grown = 0.0
    first = True
    while grown < target and remaining.any():
        if first:
            start = _pseudo_peripheral(g, rng)
            first = False
            if not remaining[start]:  # pragma: no cover - defensive
                start = int(np.nonzero(remaining)[0][0])
        else:
            seeds = np.nonzero(remaining)[0]
            start = int(seeds[rng.integers(len(seeds))])
        queue = [start]
        remaining[start] = False
        side[start] = 1
        grown += g.vweights[start]
        while queue and grown < target:
            v = queue.pop(0)
            for u in g.neighbors(v)[0]:
                if remaining[u]:
                    remaining[u] = False
                    side[u] = 1
                    grown += g.vweights[u]
                    queue.append(int(u))
                    if grown >= target:
                        break
    return side


def _boundary_refine(g: _WGraph, side: np.ndarray, target0: float,
                     tol: float = 0.04, passes: int = 4) -> None:
    """FM-style refinement: move positive-gain boundary vertices while the
    balance stays within ``tol`` of the target split.

    A rebalancing pre-pass first repairs any imbalance left by region
    growing (which overshoots by up to one BFS frontier): highest-gain
    vertices of the heavy side move until the split is inside the band.
    """
    total = g.vweights.sum()
    w0 = g.vweights[side == 0].sum()
    lo0, hi0 = target0 - tol * total, target0 + tol * total
    guard = 0
    while not (lo0 <= w0 <= hi0) and guard < g.n:
        heavy = 0 if w0 > hi0 else 1
        best, best_gain = -1, -np.inf
        for v in range(g.n):
            if side[v] != heavy:
                continue
            nbrs, w = g.neighbors(v)
            same = side[nbrs] == heavy
            gain = w[~same].sum() - w[same].sum()
            if gain > best_gain:
                best, best_gain = v, gain
        if best < 0:
            break
        side[best] ^= 1
        w0 += g.vweights[best] * (1 if heavy == 1 else -1)
        guard += 1
    for _ in range(passes):
        # gain(v) = external edge weight - internal edge weight
        gains = np.zeros(g.n)
        for v in range(g.n):
            nbrs, w = g.neighbors(v)
            if len(nbrs) == 0:
                continue
            same = side[nbrs] == side[v]
            gains[v] = w[~same].sum() - w[same].sum()
        candidates = np.argsort(-gains)
        moved = 0
        for v in candidates:
            if gains[v] <= 0:
                break
            wv = g.vweights[v]
            if side[v] == 0:
                new_w0 = w0 - wv
            else:
                new_w0 = w0 + wv
            if not (lo0 <= new_w0 <= hi0):
                continue
            side[v] ^= 1
            w0 = new_w0
            moved += 1
        if moved == 0:
            break


def _bisect(g: _WGraph, frac0: float, rng: np.random.Generator,
            coarsen_to: int = 60) -> np.ndarray:
    """Multilevel bisection: side array (0/1), side 0 ~ ``frac0`` of weight."""
    levels: list[tuple[_WGraph, np.ndarray]] = []
    current = g
    while current.n > coarsen_to:
        coarse = _heavy_edge_matching(current, rng)
        nc = int(coarse.max()) + 1
        if nc >= current.n:  # no progress
            break
        levels.append((current, coarse))
        current = _contract(current, coarse)
    total = current.vweights.sum()
    side = _grow_partition(current, total * (1.0 - frac0), rng)
    # side==1 was grown to (1-frac0); relabel so side 0 has frac0 weight
    _boundary_refine(current, side, frac0 * total)
    while levels:
        finer, coarse = levels.pop()
        side = side[coarse]
        _boundary_refine(finer, side, frac0 * finer.vweights.sum())
    return side


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def partition_graph(graph: CSRGraph, nparts: int,
                    vertex_weights: Optional[np.ndarray] = None,
                    seed: int = 0) -> np.ndarray:
    """Partition ``graph`` into ``nparts`` balanced parts.

    Returns (n,) int32 labels.  Balance criterion: vertex weight (unit
    weights by default — matching the paper, which balances element counts
    and lets per-type cost differences create the observed imbalance).
    """
    n = graph.n
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if vertex_weights is None:
        vertex_weights = np.ones(n)
    else:
        vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if vertex_weights.shape != (n,):
            raise ValueError("vertex_weights must be (n,)")
    labels = np.zeros(n, dtype=np.int32)
    if nparts == 1 or n == 0:
        return labels
    rng = np.random.default_rng(seed)
    g = _wgraph_from_csr(graph, vertex_weights)
    _recurse(g, np.arange(n), nparts, 0, labels, rng)
    return labels


def _recurse(g: _WGraph, idx: np.ndarray, nparts: int, offset: int,
             labels: np.ndarray, rng: np.random.Generator) -> None:
    if nparts == 1 or len(idx) == 0:
        labels[idx] = offset
        return
    if len(idx) <= nparts:
        # degenerate: one vertex per part
        for i, v in enumerate(idx):
            labels[v] = offset + (i % nparts)
        return
    k0 = nparts // 2
    frac0 = k0 / nparts
    sub = _subgraph(g, idx) if len(idx) < g.n else g
    side = _bisect(sub, frac0, rng)
    left = idx[side == 0]
    right = idx[side == 1]
    if len(left) == 0 or len(right) == 0:
        half = len(idx) // 2
        left, right = idx[:half], idx[half:]
    _recurse(g, left, k0, offset, labels, rng)
    _recurse(g, right, nparts - k0, offset + k0, labels, rng)


def edge_cut(graph: CSRGraph, labels: np.ndarray) -> int:
    """Number of edges crossing parts (each undirected edge counted once)."""
    labels = np.asarray(labels)
    src = np.repeat(np.arange(graph.n),
                    np.diff(graph.xadj).astype(np.int64))
    cross = labels[src] != labels[graph.adjncy]
    return int(cross.sum()) // 2


def partition_weights(labels: np.ndarray,
                      vertex_weights: Optional[np.ndarray] = None,
                      nparts: Optional[int] = None) -> np.ndarray:
    """Total vertex weight per part."""
    labels = np.asarray(labels)
    if vertex_weights is None:
        vertex_weights = np.ones(len(labels))
    n = nparts if nparts is not None else (int(labels.max()) + 1
                                           if len(labels) else 0)
    return np.bincount(labels, weights=vertex_weights, minlength=n)
