"""Deflated conjugate gradients — Alya's production continuity solver.

Alya solves the pressure (continuity) system with a *deflated* CG: a coarse
space built from subdomain-constant vectors removes the low-frequency error
components that plain CG struggles with on Poisson-like systems, making the
iteration count nearly independent of the domain size (Vázquez et al. 2016;
Houzeaux et al. 2018, "HPC dos and don'ts").

Given a group assignment (e.g. one group per partition subdomain), the
coarse space is W in R^{n x k} with W[i, g] = 1 iff node i belongs to group
g.  Deflation projects the residual with

    P = I - A W E^{-1} W^T,        E = W^T A W   (k x k, dense-factorable)

CG then iterates on the deflected system and the coarse component
``W E^{-1} W^T b`` is added back — the standard two-level deflation of
Saad, Yeung, Erhel & Guyomarc'h (2000).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy import sparse
from scipy.linalg import solve_triangular

from .krylov import SolveResult

__all__ = ["DeflationSetup", "coarse_space_from_groups", "deflated_cg"]


def coarse_space_from_groups(groups: np.ndarray,
                             ngroups: Optional[int] = None) -> sparse.csr_matrix:
    """Sparse indicator matrix W (n x k) from a per-row group assignment."""
    groups = np.asarray(groups)
    n = len(groups)
    if n == 0:
        raise ValueError("groups must be non-empty")
    if (groups < 0).any():
        raise ValueError("group ids must be >= 0")
    k = int(ngroups if ngroups is not None else groups.max() + 1)
    data = np.ones(n)
    return sparse.csr_matrix((data, (np.arange(n), groups)), shape=(n, k))


class DeflationSetup:
    """Reusable coarse-space setup for :func:`deflated_cg`.

    Alya builds the continuity solver's deflation operators once and
    amortizes them over thousands of time steps; this object is that
    amortized state: the sparse indicator matrix ``W`` (n x k), the sparse
    product ``AW = A @ W`` (at most nnz(A) stored entries — the dense
    (n, k) intermediate of the naive formulation is never materialized),
    the dense coarse operator ``E = W^T A W`` (k x k) and its Cholesky
    factor.  A singular ``E`` (e.g. a pure-Neumann operator whose constant
    vector the coarse space contains) falls back to least squares.

    Build once per ``(A, groups)`` and pass via ``deflated_cg(...,
    setup=...)``; the setup holds no solve state, so one instance is safe
    to share across any number of solves against the same operator.
    """

    def __init__(self, A: sparse.spmatrix, groups: np.ndarray,
                 ngroups: Optional[int] = None):
        self.groups = np.asarray(groups)
        self.W = coarse_space_from_groups(self.groups, ngroups)
        self.AW = (A @ self.W).tocsr()                # sparse (n, k)
        self.E = np.asarray((self.W.T @ self.AW).toarray())   # dense (k, k)
        try:
            self._chol = np.linalg.cholesky(self.E)
        except np.linalg.LinAlgError:
            # singular coarse operator (e.g. fully regularized out): fall
            # back to least squares per solve
            self._chol = None

    @property
    def singular(self) -> bool:
        """True when ``E`` was not positive definite (lstsq fallback)."""
        return self._chol is None

    def coarse_solve(self, r: np.ndarray) -> np.ndarray:
        """``E^-1 W^T r`` (least-squares pseudo-solve when E is singular).

        Uses forward/back substitution on the triangular Cholesky factor —
        O(k^2) per call, where the general ``np.linalg.solve`` would
        re-factorize the (already triangular!) factor at O(k^3) on every
        deflation application.
        """
        rhs = self.W.T @ r
        if self._chol is not None:
            y = solve_triangular(self._chol, rhs, lower=True)
            return solve_triangular(self._chol.T, y, lower=False)
        return np.linalg.lstsq(self.E, rhs, rcond=None)[0]

    def deflate(self, r: np.ndarray) -> np.ndarray:
        """``P r = r - A W E^-1 W^T r``."""
        return r - self.AW @ self.coarse_solve(r)


def deflated_cg(A: sparse.spmatrix, b: np.ndarray,
                groups: Optional[np.ndarray] = None,
                tol: float = 1e-8, maxiter: int = 500,
                M: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                setup: Optional[DeflationSetup] = None) -> SolveResult:
    """Deflated (optionally preconditioned) CG for SPD ``A``.

    Parameters
    ----------
    A, b:
        The SPD system.
    groups:
        (n,) int group id per unknown — the coarse space is one constant
        vector per group (subdomain deflation).  May be omitted when a
        prebuilt ``setup`` is passed.
    tol, maxiter, M:
        As in :func:`repro.solver.cg`.
    setup:
        Optional prebuilt :class:`DeflationSetup` for ``(A, groups)``.
        Passing it skips the per-call coarse-space construction and
        factorization entirely (the Alya amortization); the iteration is
        unchanged, so the solution is bit-identical to a per-call setup.
    """
    n = len(b)
    if setup is None:
        if groups is None:
            raise TypeError("deflated_cg needs either groups or setup")
        setup = DeflationSetup(A, groups)
    W = setup.W
    coarse_solve = setup.coarse_solve

    def deflate(r: np.ndarray) -> np.ndarray:
        """P r = r - A W E^-1 W^T r."""
        return setup.deflate(r)

    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=0)
    # coarse component of the solution
    x = W @ coarse_solve(b)
    r = b - A @ x
    matvecs = 1
    r = deflate(r)
    z = M(r) if M is not None else r
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    for it in range(1, maxiter + 1):
        Ap = deflate(A @ p)
        matvecs += 1
        pAp = float(p @ Ap)
        if pAp <= 0:
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r) / norm_b)
        residuals.append(res)
        if res < tol:
            # recover the coarse part of the final solution:
            # x_final = x + W E^-1 W^T (b - A x)
            x = x + W @ coarse_solve(b - A @ x)
            matvecs += 1
            return SolveResult(x=x, converged=True, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        z = M(r) if M is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    x = x + W @ coarse_solve(b - A @ x)
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)
