"""Deflated conjugate gradients — Alya's production continuity solver.

Alya solves the pressure (continuity) system with a *deflated* CG: a coarse
space built from subdomain-constant vectors removes the low-frequency error
components that plain CG struggles with on Poisson-like systems, making the
iteration count nearly independent of the domain size (Vázquez et al. 2016;
Houzeaux et al. 2018, "HPC dos and don'ts").

Given a group assignment (e.g. one group per partition subdomain), the
coarse space is W in R^{n x k} with W[i, g] = 1 iff node i belongs to group
g.  Deflation projects the residual with

    P = I - A W E^{-1} W^T,        E = W^T A W   (k x k, dense-factorable)

CG then iterates on the deflected system and the coarse component
``W E^{-1} W^T b`` is added back — the standard two-level deflation of
Saad, Yeung, Erhel & Guyomarc'h (2000).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy import sparse

from .krylov import SolveResult

__all__ = ["coarse_space_from_groups", "deflated_cg"]


def coarse_space_from_groups(groups: np.ndarray,
                             ngroups: Optional[int] = None) -> sparse.csr_matrix:
    """Sparse indicator matrix W (n x k) from a per-row group assignment."""
    groups = np.asarray(groups)
    n = len(groups)
    if n == 0:
        raise ValueError("groups must be non-empty")
    if (groups < 0).any():
        raise ValueError("group ids must be >= 0")
    k = int(ngroups if ngroups is not None else groups.max() + 1)
    data = np.ones(n)
    return sparse.csr_matrix((data, (np.arange(n), groups)), shape=(n, k))


def deflated_cg(A: sparse.spmatrix, b: np.ndarray, groups: np.ndarray,
                tol: float = 1e-8, maxiter: int = 500,
                M: Optional[Callable[[np.ndarray], np.ndarray]] = None
                ) -> SolveResult:
    """Deflated (optionally preconditioned) CG for SPD ``A``.

    Parameters
    ----------
    A, b:
        The SPD system.
    groups:
        (n,) int group id per unknown — the coarse space is one constant
        vector per group (subdomain deflation).
    tol, maxiter, M:
        As in :func:`repro.solver.cg`.
    """
    n = len(b)
    W = coarse_space_from_groups(groups)
    AW = (A @ W.toarray())                        # (n, k)
    E = W.T @ AW                                  # (k, k)
    E = np.asarray(E)
    try:
        E_fact = np.linalg.cholesky(E)
    except np.linalg.LinAlgError:
        # singular coarse operator (e.g. fully regularized out): fall back
        # to least squares
        E_fact = None

    def coarse_solve(r: np.ndarray) -> np.ndarray:
        rhs = W.T @ r
        if E_fact is not None:
            y = np.linalg.solve(E_fact.T, np.linalg.solve(E_fact, rhs))
        else:
            y = np.linalg.lstsq(E, rhs, rcond=None)[0]
        return y

    def deflate(r: np.ndarray) -> np.ndarray:
        """P r = r - A W E^-1 W^T r."""
        return r - AW @ coarse_solve(r)

    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=0)
    # coarse component of the solution
    x = W @ coarse_solve(b)
    r = b - A @ x
    matvecs = 1
    r = deflate(r)
    z = M(r) if M is not None else r
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    for it in range(1, maxiter + 1):
        Ap = deflate(A @ p)
        matvecs += 1
        pAp = float(p @ Ap)
        if pAp <= 0:
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r) / norm_b)
        residuals.append(res)
        if res < tol:
            # recover the coarse part of the final solution:
            # x_final = x + W E^-1 W^T (b - A x)
            x = x + W @ coarse_solve(b - A @ x)
            matvecs += 1
            return SolveResult(x=x, converged=True, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        z = M(r) if M is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    x = x + W @ coarse_solve(b - A @ x)
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)
