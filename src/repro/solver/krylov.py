"""Krylov solvers — the paper's "Solver1" (momentum) and "Solver2"
(continuity) phases.

Implemented from scratch (NumPy only):

* :func:`cg` — preconditioned conjugate gradients, for the SPD continuity
  (pressure Poisson) system;
* :func:`bicgstab` — BiCGStab, for the nonsymmetric stabilized momentum
  system.

Both report per-iteration residual histories and the work counters (matvec
count, nnz touched) the performance layer converts into simulated time: a
solver iteration costs ~ ``nnz`` ops and, in the MPI execution, one
allreduce per dot product — which is where solver phases block and DLB can
act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
from scipy import sparse

__all__ = ["SolveResult", "cg", "bicgstab", "jacobi_preconditioner"]


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: list[float] = field(default_factory=list)
    matvecs: int = 0

    @property
    def final_residual(self) -> float:
        """Relative residual at exit."""
        return self.residuals[-1] if self.residuals else np.inf


def jacobi_preconditioner(A: sparse.spmatrix) -> Callable[[np.ndarray],
                                                          np.ndarray]:
    """Diagonal (Jacobi) preconditioner ``z = D^-1 r``."""
    diag = np.asarray(A.diagonal()).ravel().copy()
    small = np.abs(diag) < 1e-300
    diag[small] = 1.0
    inv = 1.0 / diag

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


def cg(A: sparse.spmatrix, b: np.ndarray,
       x0: Optional[np.ndarray] = None,
       tol: float = 1e-8, maxiter: int = 500,
       M: Optional[Callable[[np.ndarray], np.ndarray]] = None) -> SolveResult:
    """Preconditioned conjugate gradients for SPD ``A``."""
    n = len(b)
    x = np.zeros(n) if x0 is None else x0.astype(np.float64).copy()
    r = b - A @ x
    matvecs = 1
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=matvecs)
    z = M(r) if M is not None else r
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    for it in range(1, maxiter + 1):
        Ap = A @ p
        matvecs += 1
        pAp = float(p @ Ap)
        if pAp <= 0:
            # loss of positive-definiteness (or breakdown)
            return SolveResult(x=x, converged=False, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r) / norm_b)
        residuals.append(res)
        if res < tol:
            return SolveResult(x=x, converged=True, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        z = M(r) if M is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)


def bicgstab(A: sparse.spmatrix, b: np.ndarray,
             x0: Optional[np.ndarray] = None,
             tol: float = 1e-8, maxiter: int = 500,
             M: Optional[Callable[[np.ndarray], np.ndarray]] = None
             ) -> SolveResult:
    """BiCGStab for general (nonsymmetric) ``A``."""
    n = len(b)
    x = np.zeros(n) if x0 is None else x0.astype(np.float64).copy()
    r = b - A @ x
    matvecs = 1
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=matvecs)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    for it in range(1, maxiter + 1):
        rho_new = float(r_hat @ r)
        if abs(rho_new) < 1e-300:
            return SolveResult(x=x, converged=False, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
        rho = rho_new
        p = r + beta * (p - omega * v)
        phat = M(p) if M is not None else p
        v = A @ phat
        matvecs += 1
        denom = float(r_hat @ v)
        if abs(denom) < 1e-300:
            return SolveResult(x=x, converged=False, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        alpha = rho / denom
        s = r - alpha * v
        if np.linalg.norm(s) / norm_b < tol:
            x += alpha * phat
            residuals.append(float(np.linalg.norm(s) / norm_b))
            return SolveResult(x=x, converged=True, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        shat = M(s) if M is not None else s
        t = A @ shat
        matvecs += 1
        tt = float(t @ t)
        if tt < 1e-300:
            return SolveResult(x=x, converged=False, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        omega = float(t @ s) / tt
        x += alpha * phat + omega * shat
        r = s - omega * t
        res = float(np.linalg.norm(r) / norm_b)
        residuals.append(res)
        if res < tol:
            return SolveResult(x=x, converged=True, iterations=it,
                               residuals=residuals, matvecs=matvecs)
        if abs(omega) < 1e-300:
            return SolveResult(x=x, converged=False, iterations=it,
                               residuals=residuals, matvecs=matvecs)
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)
