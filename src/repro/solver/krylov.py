"""Krylov solvers — the paper's "Solver1" (momentum) and "Solver2"
(continuity) phases.

Implemented from scratch (NumPy only):

* :func:`cg` — preconditioned conjugate gradients, for the SPD continuity
  (pressure Poisson) system;
* :func:`bicgstab` — BiCGStab, for the nonsymmetric stabilized momentum
  system.

Both report per-iteration residual histories and the work counters (matvec
count, nnz touched) the performance layer converts into simulated time: a
solver iteration costs ~ ``nnz`` ops and, in the MPI execution, one
allreduce per dot product — which is where solver phases block and DLB can
act.

Robustness: the iteration cores detect *breakdown* — a non-finite residual
(NaN/inf contamination), a stagnating residual, or an algebraic degeneracy
(loss of positive-definiteness in CG; a vanishing rho/omega in BiCGStab) —
and raise :class:`SolverBreakdown`.  The public wrappers recover once by
restarting from scratch with a fresh Jacobi preconditioner; if the retry
also breaks down the failure is surfaced *structurally* in
:attr:`SolveResult.breakdown` instead of propagating NaNs into the flow
field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
from scipy import sparse

from ..perf import toggles as _perf_toggles

try:  # pragma: no cover - scipy always ships _sparsetools today
    from scipy.sparse import _sparsetools as _st
    _HAVE_CSR_MATVEC = hasattr(_st, "csr_matvec")
except ImportError:  # pragma: no cover
    _st = None
    _HAVE_CSR_MATVEC = False

__all__ = ["SolveResult", "SolverBreakdown", "cg", "bicgstab",
           "jacobi_preconditioner", "krylov_workspace_stats"]

#: residual-stagnation default: breakdown if no new best relative residual
#: appears for this many consecutive iterations
STAGNATION_WINDOW = 100

FaultHook = Callable[[int, np.ndarray], np.ndarray]


class SolverBreakdown(RuntimeError):
    """An iterative solve cannot continue (NaN/inf, stagnation, degeneracy).

    Attributes
    ----------
    reason:
        Short machine-readable cause (``"nonfinite_residual"``,
        ``"stagnation"``, ``"indefinite_operator"``, ``"rho_breakdown"``,
        ``"omega_breakdown"``, ...).
    iteration:
        Iteration index at which the breakdown was detected.
    residuals / matvecs:
        Work spent before the breakdown, so recovery can account the full
        cost of a recovered solve.
    """

    def __init__(self, reason: str, iteration: int,
                 residuals: Optional[list] = None, matvecs: int = 0):
        super().__init__(f"solver breakdown at iteration {iteration}: "
                         f"{reason}")
        self.reason = reason
        self.iteration = iteration
        self.residuals = residuals or []
        self.matvecs = matvecs


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: list[float] = field(default_factory=list)
    matvecs: int = 0
    #: breakdown reason when the solve failed structurally (None otherwise)
    breakdown: Optional[str] = None
    #: True when a breakdown occurred but the re-preconditioned retry
    #: produced this (usable) result
    recovered: bool = False

    @property
    def final_residual(self) -> float:
        """Relative residual at exit."""
        return self.residuals[-1] if self.residuals else np.inf


def jacobi_preconditioner(A: sparse.spmatrix) -> Callable[[np.ndarray],
                                                          np.ndarray]:
    """Diagonal (Jacobi) preconditioner ``z = D^-1 r``."""
    diag = np.asarray(A.diagonal()).ravel().copy()
    small = np.abs(diag) < 1e-300
    diag[small] = 1.0
    inv = 1.0 / diag

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


#: reusable per-(core, size) iteration workspaces for the ``krylov_buffers``
#: fast path; bounded so a sweep over many system sizes cannot grow it
#: without limit (insertion order doubles as LRU order)
_WORKSPACES: dict = {}
_WORKSPACE_LIMIT = 8
_WS_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def krylov_workspace_stats() -> dict:
    """Counters of the buffered-core workspace cache (hits/misses/evictions).

    Feeds :func:`repro.perf.instrument.fluid_counters`; resident entries is
    the current number of cached (core, size) vector sets.
    """
    stats = dict(_WS_STATS)
    stats["resident"] = len(_WORKSPACES)
    return stats


def _acquire_workspace(kind: str, n: int, names: tuple) -> dict:
    """Check a per-(kind, n) vector set out of the cache (or allocate it).

    The entry is *removed* from the cache while in use, so a re-entrant
    solve of the same size (e.g. from a preconditioner or fault hook that
    itself solves) allocates fresh buffers instead of corrupting the outer
    iteration.
    """
    ws = _WORKSPACES.pop((kind, n), None)
    if ws is None:
        _WS_STATS["misses"] += 1
        ws = {name: np.empty(n) for name in names}
    else:
        _WS_STATS["hits"] += 1
    return ws


def _release_workspace(kind: str, n: int, ws: dict) -> None:
    """Return a vector set to the cache, evicting the oldest past the cap."""
    _WORKSPACES[(kind, n)] = ws
    while len(_WORKSPACES) > _WORKSPACE_LIMIT:
        _WORKSPACES.pop(next(iter(_WORKSPACES)))
        _WS_STATS["evictions"] += 1


def _matvec(A, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[:] = A @ x`` without allocating, bit-identical to ``A @ x``.

    SciPy's CSR matvec accumulates row sums into a zero-initialized result
    in nonzero order; calling the same kernel on a reused zeroed buffer
    performs the identical floating-point operation sequence.  Non-CSR
    operators fall back to the allocating product (values still identical).
    """
    if _HAVE_CSR_MATVEC and sparse.isspmatrix_csr(A):
        out[...] = 0.0
        _st.csr_matvec(A.shape[0], A.shape[1], A.indptr, A.indices,
                       A.data, x, out)
        return out
    out[...] = A @ x
    return out


class _StagnationGuard:
    """Tracks the best residual seen; trips after ``window`` flat iters."""

    def __init__(self, window: int):
        self.window = window
        self.best = np.inf
        self.flat = 0

    def check(self, res: float, it: int) -> None:
        if not np.isfinite(res):
            raise SolverBreakdown("nonfinite_residual", it)
        if res < self.best * (1.0 - 1e-12):
            self.best = res
            self.flat = 0
        else:
            self.flat += 1
            if self.window > 0 and self.flat >= self.window:
                raise SolverBreakdown("stagnation", it)


def _cg_core(A: sparse.spmatrix, b: np.ndarray,
             x0: Optional[np.ndarray], tol: float, maxiter: int,
             M: Optional[Callable[[np.ndarray], np.ndarray]],
             fault: Optional[FaultHook],
             stagnation_window: int) -> SolveResult:
    """CG iteration core; raises :class:`SolverBreakdown` on failure."""
    n = len(b)
    x = np.zeros(n) if x0 is None else x0.astype(np.float64).copy()
    r = b - A @ x
    matvecs = 1
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=matvecs)
    z = M(r) if M is not None else r
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    guard = _StagnationGuard(stagnation_window)
    try:
        for it in range(1, maxiter + 1):
            Ap = A @ p
            matvecs += 1
            pAp = float(p @ Ap)
            if not np.isfinite(pAp):
                raise SolverBreakdown("nonfinite_residual", it)
            if pAp <= 0:
                raise SolverBreakdown("indefinite_operator", it)
            alpha = rz / pAp
            x += alpha * p
            r -= alpha * Ap
            if fault is not None:
                r = fault(it, r)
            res = float(np.linalg.norm(r) / norm_b)
            residuals.append(res)
            guard.check(res, it)
            if res < tol:
                return SolveResult(x=x, converged=True, iterations=it,
                                   residuals=residuals, matvecs=matvecs)
            z = M(r) if M is not None else r
            rz_new = float(r @ z)
            beta = rz_new / rz
            rz = rz_new
            p = z + beta * p
    except SolverBreakdown as exc:
        exc.residuals = residuals
        exc.matvecs = matvecs
        raise
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)


def _bicgstab_core(A: sparse.spmatrix, b: np.ndarray,
                   x0: Optional[np.ndarray], tol: float, maxiter: int,
                   M: Optional[Callable[[np.ndarray], np.ndarray]],
                   fault: Optional[FaultHook],
                   stagnation_window: int) -> SolveResult:
    """BiCGStab iteration core; raises :class:`SolverBreakdown` on failure."""
    n = len(b)
    x = np.zeros(n) if x0 is None else x0.astype(np.float64).copy()
    r = b - A @ x
    matvecs = 1
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=matvecs)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    guard = _StagnationGuard(stagnation_window)
    try:
        for it in range(1, maxiter + 1):
            rho_new = float(r_hat @ r)
            if not np.isfinite(rho_new):
                raise SolverBreakdown("nonfinite_residual", it)
            if abs(rho_new) < 1e-300:
                raise SolverBreakdown("rho_breakdown", it)
            beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
            rho = rho_new
            p = r + beta * (p - omega * v)
            phat = M(p) if M is not None else p
            v = A @ phat
            matvecs += 1
            denom = float(r_hat @ v)
            if abs(denom) < 1e-300:
                raise SolverBreakdown("orthogonality_breakdown", it)
            alpha = rho / denom
            s = r - alpha * v
            if np.linalg.norm(s) / norm_b < tol:
                x += alpha * phat
                residuals.append(float(np.linalg.norm(s) / norm_b))
                return SolveResult(x=x, converged=True, iterations=it,
                                   residuals=residuals, matvecs=matvecs)
            shat = M(s) if M is not None else s
            t = A @ shat
            matvecs += 1
            tt = float(t @ t)
            if not np.isfinite(tt):
                raise SolverBreakdown("nonfinite_residual", it)
            if tt < 1e-300:
                raise SolverBreakdown("t_breakdown", it)
            omega = float(t @ s) / tt
            x += alpha * phat + omega * shat
            r = s - omega * t
            if fault is not None:
                r = fault(it, r)
            res = float(np.linalg.norm(r) / norm_b)
            residuals.append(res)
            guard.check(res, it)
            if res < tol:
                return SolveResult(x=x, converged=True, iterations=it,
                                   residuals=residuals, matvecs=matvecs)
            if abs(omega) < 1e-300:
                raise SolverBreakdown("omega_breakdown", it)
    except SolverBreakdown as exc:
        exc.residuals = residuals
        exc.matvecs = matvecs
        raise
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)


def _cg_core_buffered(A: sparse.spmatrix, b: np.ndarray,
                      x0: Optional[np.ndarray], tol: float, maxiter: int,
                      M: Optional[Callable[[np.ndarray], np.ndarray]],
                      fault: Optional[FaultHook],
                      stagnation_window: int) -> SolveResult:
    """Allocation-free CG core, bit-identical to :func:`_cg_core`.

    The iteration vectors live in a cached per-size workspace; every axpy
    is an ``out=`` pair (``np.multiply`` then ``np.add``/``np.subtract``)
    performing the same scalar-times-element and element-plus-element
    operations, in the same order, as the allocating expressions.
    """
    n = len(b)
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=1)
    ws = _acquire_workspace("cg", n, ("x", "r", "p", "Ap", "tmp"))
    try:
        x, r, p, Ap, tmp = ws["x"], ws["r"], ws["p"], ws["Ap"], ws["tmp"]
        if x0 is None:
            x[...] = 0.0
        else:
            np.copyto(x, x0)
        _matvec(A, x, tmp)
        np.subtract(b, tmp, out=r)
        matvecs = 1
        z = M(r) if M is not None else r
        np.copyto(p, z)
        rz = float(r @ z)
        residuals = [float(np.linalg.norm(r) / norm_b)]
        guard = _StagnationGuard(stagnation_window)
        try:
            for it in range(1, maxiter + 1):
                _matvec(A, p, Ap)
                matvecs += 1
                pAp = float(p @ Ap)
                if not np.isfinite(pAp):
                    raise SolverBreakdown("nonfinite_residual", it)
                if pAp <= 0:
                    raise SolverBreakdown("indefinite_operator", it)
                alpha = rz / pAp
                np.multiply(p, alpha, out=tmp)
                np.add(x, tmp, out=x)
                np.multiply(Ap, alpha, out=tmp)
                np.subtract(r, tmp, out=r)
                if fault is not None:
                    faulted = fault(it, r)
                    if faulted is not r:
                        np.copyto(r, faulted)
                res = float(np.linalg.norm(r) / norm_b)
                residuals.append(res)
                guard.check(res, it)
                if res < tol:
                    return SolveResult(x=x.copy(), converged=True,
                                       iterations=it, residuals=residuals,
                                       matvecs=matvecs)
                z = M(r) if M is not None else r
                rz_new = float(r @ z)
                beta = rz_new / rz
                rz = rz_new
                np.multiply(p, beta, out=tmp)
                np.add(z, tmp, out=p)
        except SolverBreakdown as exc:
            exc.residuals = residuals
            exc.matvecs = matvecs
            raise
        return SolveResult(x=x.copy(), converged=False, iterations=maxiter,
                           residuals=residuals, matvecs=matvecs)
    finally:
        _release_workspace("cg", n, ws)


def _bicgstab_core_buffered(A: sparse.spmatrix, b: np.ndarray,
                            x0: Optional[np.ndarray], tol: float,
                            maxiter: int,
                            M: Optional[Callable[[np.ndarray], np.ndarray]],
                            fault: Optional[FaultHook],
                            stagnation_window: int) -> SolveResult:
    """Allocation-free BiCGStab core, bit-identical to
    :func:`_bicgstab_core`.

    Compound updates decompose into the same elementary steps as the
    allocating expressions: ``p = r + beta*(p - omega*v)`` becomes
    ``tmp = omega*v; tmp = p - tmp; tmp = beta*tmp; p = r + tmp``, which
    is the evaluation order NumPy uses for the one-liner.
    """
    n = len(b)
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=1)
    ws = _acquire_workspace(
        "bicgstab", n,
        ("x", "r", "rhat", "v", "p", "s", "t", "tmp", "tmp2"))
    try:
        x, r, r_hat = ws["x"], ws["r"], ws["rhat"]
        v, p, s, t = ws["v"], ws["p"], ws["s"], ws["t"]
        tmp, tmp2 = ws["tmp"], ws["tmp2"]
        if x0 is None:
            x[...] = 0.0
        else:
            np.copyto(x, x0)
        _matvec(A, x, tmp)
        np.subtract(b, tmp, out=r)
        matvecs = 1
        np.copyto(r_hat, r)
        rho = alpha = omega = 1.0
        v[...] = 0.0
        p[...] = 0.0
        residuals = [float(np.linalg.norm(r) / norm_b)]
        guard = _StagnationGuard(stagnation_window)
        try:
            for it in range(1, maxiter + 1):
                rho_new = float(r_hat @ r)
                if not np.isfinite(rho_new):
                    raise SolverBreakdown("nonfinite_residual", it)
                if abs(rho_new) < 1e-300:
                    raise SolverBreakdown("rho_breakdown", it)
                beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
                rho = rho_new
                np.multiply(v, omega, out=tmp)
                np.subtract(p, tmp, out=tmp)
                np.multiply(tmp, beta, out=tmp)
                np.add(r, tmp, out=p)
                phat = M(p) if M is not None else p
                _matvec(A, phat, v)
                matvecs += 1
                denom = float(r_hat @ v)
                if abs(denom) < 1e-300:
                    raise SolverBreakdown("orthogonality_breakdown", it)
                alpha = rho / denom
                np.multiply(v, alpha, out=tmp)
                np.subtract(r, tmp, out=s)
                if np.linalg.norm(s) / norm_b < tol:
                    np.multiply(phat, alpha, out=tmp)
                    np.add(x, tmp, out=x)
                    residuals.append(float(np.linalg.norm(s) / norm_b))
                    return SolveResult(x=x.copy(), converged=True,
                                       iterations=it, residuals=residuals,
                                       matvecs=matvecs)
                shat = M(s) if M is not None else s
                _matvec(A, shat, t)
                matvecs += 1
                tt = float(t @ t)
                if not np.isfinite(tt):
                    raise SolverBreakdown("nonfinite_residual", it)
                if tt < 1e-300:
                    raise SolverBreakdown("t_breakdown", it)
                omega = float(t @ s) / tt
                np.multiply(phat, alpha, out=tmp)
                np.multiply(shat, omega, out=tmp2)
                np.add(tmp, tmp2, out=tmp)
                np.add(x, tmp, out=x)
                np.multiply(t, omega, out=tmp)
                np.subtract(s, tmp, out=r)
                if fault is not None:
                    faulted = fault(it, r)
                    if faulted is not r:
                        np.copyto(r, faulted)
                res = float(np.linalg.norm(r) / norm_b)
                residuals.append(res)
                guard.check(res, it)
                if res < tol:
                    return SolveResult(x=x.copy(), converged=True,
                                       iterations=it, residuals=residuals,
                                       matvecs=matvecs)
                if abs(omega) < 1e-300:
                    raise SolverBreakdown("omega_breakdown", it)
        except SolverBreakdown as exc:
            exc.residuals = residuals
            exc.matvecs = matvecs
            raise
        return SolveResult(x=x.copy(), converged=False, iterations=maxiter,
                           residuals=residuals, matvecs=matvecs)
    finally:
        _release_workspace("bicgstab", n, ws)


def _recovering(core, A, b, x0, tol, maxiter, M, fault,
                retry_on_breakdown, stagnation_window) -> SolveResult:
    """Run ``core``; on breakdown, retry once re-preconditioned.

    A recovered result accounts the *total* work: iterations, matvecs and
    residual history of the broken-down attempt plus the retry.
    """
    try:
        return core(A, b, x0, tol, maxiter, M, fault, stagnation_window)
    except SolverBreakdown as first:
        if not retry_on_breakdown:
            return SolveResult(x=np.zeros(len(b)), converged=False,
                               iterations=first.iteration,
                               residuals=list(first.residuals),
                               matvecs=first.matvecs,
                               breakdown=first.reason)
        # Recovery policy: restart from zero with a fresh Jacobi
        # preconditioner and without the transient fault source.
        try:
            result = core(A, b, None, tol, maxiter,
                          jacobi_preconditioner(A), None, stagnation_window)
        except SolverBreakdown as second:
            return SolveResult(
                x=np.zeros(len(b)), converged=False,
                iterations=first.iteration + second.iteration,
                residuals=list(first.residuals) + list(second.residuals),
                matvecs=first.matvecs + second.matvecs,
                breakdown=f"{first.reason}+{second.reason}")
        result.recovered = True
        result.iterations += first.iteration
        result.matvecs += first.matvecs
        result.residuals = list(first.residuals) + result.residuals
        return result


def cg(A: sparse.spmatrix, b: np.ndarray,
       x0: Optional[np.ndarray] = None,
       tol: float = 1e-8, maxiter: int = 500,
       M: Optional[Callable[[np.ndarray], np.ndarray]] = None,
       fault: Optional[FaultHook] = None,
       retry_on_breakdown: bool = True,
       stagnation_window: int = STAGNATION_WINDOW) -> SolveResult:
    """Preconditioned conjugate gradients for SPD ``A``.

    ``fault`` is an optional hook ``r = fault(it, r)`` applied to the
    residual each iteration (fault injection); breakdown triggers one
    re-preconditioned retry unless ``retry_on_breakdown`` is False.
    """
    core = (_cg_core_buffered if _perf_toggles.TOGGLES.krylov_buffers
            else _cg_core)
    return _recovering(core, A, b, x0, tol, maxiter, M, fault,
                       retry_on_breakdown, stagnation_window)


def bicgstab(A: sparse.spmatrix, b: np.ndarray,
             x0: Optional[np.ndarray] = None,
             tol: float = 1e-8, maxiter: int = 500,
             M: Optional[Callable[[np.ndarray], np.ndarray]] = None,
             fault: Optional[FaultHook] = None,
             retry_on_breakdown: bool = True,
             stagnation_window: int = STAGNATION_WINDOW) -> SolveResult:
    """BiCGStab for general (nonsymmetric) ``A``.

    Same breakdown/recovery contract as :func:`cg`.
    """
    core = (_bicgstab_core_buffered if _perf_toggles.TOGGLES.krylov_buffers
            else _bicgstab_core)
    return _recovering(core, A, b, x0, tol, maxiter, M, fault,
                       retry_on_breakdown, stagnation_window)
