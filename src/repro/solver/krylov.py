"""Krylov solvers — the paper's "Solver1" (momentum) and "Solver2"
(continuity) phases.

Implemented from scratch (NumPy only):

* :func:`cg` — preconditioned conjugate gradients, for the SPD continuity
  (pressure Poisson) system;
* :func:`bicgstab` — BiCGStab, for the nonsymmetric stabilized momentum
  system.

Both report per-iteration residual histories and the work counters (matvec
count, nnz touched) the performance layer converts into simulated time: a
solver iteration costs ~ ``nnz`` ops and, in the MPI execution, one
allreduce per dot product — which is where solver phases block and DLB can
act.

Robustness: the iteration cores detect *breakdown* — a non-finite residual
(NaN/inf contamination), a stagnating residual, or an algebraic degeneracy
(loss of positive-definiteness in CG; a vanishing rho/omega in BiCGStab) —
and raise :class:`SolverBreakdown`.  The public wrappers recover once by
restarting from scratch with a fresh Jacobi preconditioner; if the retry
also breaks down the failure is surfaced *structurally* in
:attr:`SolveResult.breakdown` instead of propagating NaNs into the flow
field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
from scipy import sparse

__all__ = ["SolveResult", "SolverBreakdown", "cg", "bicgstab",
           "jacobi_preconditioner"]

#: residual-stagnation default: breakdown if no new best relative residual
#: appears for this many consecutive iterations
STAGNATION_WINDOW = 100

FaultHook = Callable[[int, np.ndarray], np.ndarray]


class SolverBreakdown(RuntimeError):
    """An iterative solve cannot continue (NaN/inf, stagnation, degeneracy).

    Attributes
    ----------
    reason:
        Short machine-readable cause (``"nonfinite_residual"``,
        ``"stagnation"``, ``"indefinite_operator"``, ``"rho_breakdown"``,
        ``"omega_breakdown"``, ...).
    iteration:
        Iteration index at which the breakdown was detected.
    residuals / matvecs:
        Work spent before the breakdown, so recovery can account the full
        cost of a recovered solve.
    """

    def __init__(self, reason: str, iteration: int,
                 residuals: Optional[list] = None, matvecs: int = 0):
        super().__init__(f"solver breakdown at iteration {iteration}: "
                         f"{reason}")
        self.reason = reason
        self.iteration = iteration
        self.residuals = residuals or []
        self.matvecs = matvecs


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: list[float] = field(default_factory=list)
    matvecs: int = 0
    #: breakdown reason when the solve failed structurally (None otherwise)
    breakdown: Optional[str] = None
    #: True when a breakdown occurred but the re-preconditioned retry
    #: produced this (usable) result
    recovered: bool = False

    @property
    def final_residual(self) -> float:
        """Relative residual at exit."""
        return self.residuals[-1] if self.residuals else np.inf


def jacobi_preconditioner(A: sparse.spmatrix) -> Callable[[np.ndarray],
                                                          np.ndarray]:
    """Diagonal (Jacobi) preconditioner ``z = D^-1 r``."""
    diag = np.asarray(A.diagonal()).ravel().copy()
    small = np.abs(diag) < 1e-300
    diag[small] = 1.0
    inv = 1.0 / diag

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


class _StagnationGuard:
    """Tracks the best residual seen; trips after ``window`` flat iters."""

    def __init__(self, window: int):
        self.window = window
        self.best = np.inf
        self.flat = 0

    def check(self, res: float, it: int) -> None:
        if not np.isfinite(res):
            raise SolverBreakdown("nonfinite_residual", it)
        if res < self.best * (1.0 - 1e-12):
            self.best = res
            self.flat = 0
        else:
            self.flat += 1
            if self.window > 0 and self.flat >= self.window:
                raise SolverBreakdown("stagnation", it)


def _cg_core(A: sparse.spmatrix, b: np.ndarray,
             x0: Optional[np.ndarray], tol: float, maxiter: int,
             M: Optional[Callable[[np.ndarray], np.ndarray]],
             fault: Optional[FaultHook],
             stagnation_window: int) -> SolveResult:
    """CG iteration core; raises :class:`SolverBreakdown` on failure."""
    n = len(b)
    x = np.zeros(n) if x0 is None else x0.astype(np.float64).copy()
    r = b - A @ x
    matvecs = 1
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=matvecs)
    z = M(r) if M is not None else r
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    guard = _StagnationGuard(stagnation_window)
    try:
        for it in range(1, maxiter + 1):
            Ap = A @ p
            matvecs += 1
            pAp = float(p @ Ap)
            if not np.isfinite(pAp):
                raise SolverBreakdown("nonfinite_residual", it)
            if pAp <= 0:
                raise SolverBreakdown("indefinite_operator", it)
            alpha = rz / pAp
            x += alpha * p
            r -= alpha * Ap
            if fault is not None:
                r = fault(it, r)
            res = float(np.linalg.norm(r) / norm_b)
            residuals.append(res)
            guard.check(res, it)
            if res < tol:
                return SolveResult(x=x, converged=True, iterations=it,
                                   residuals=residuals, matvecs=matvecs)
            z = M(r) if M is not None else r
            rz_new = float(r @ z)
            beta = rz_new / rz
            rz = rz_new
            p = z + beta * p
    except SolverBreakdown as exc:
        exc.residuals = residuals
        exc.matvecs = matvecs
        raise
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)


def _bicgstab_core(A: sparse.spmatrix, b: np.ndarray,
                   x0: Optional[np.ndarray], tol: float, maxiter: int,
                   M: Optional[Callable[[np.ndarray], np.ndarray]],
                   fault: Optional[FaultHook],
                   stagnation_window: int) -> SolveResult:
    """BiCGStab iteration core; raises :class:`SolverBreakdown` on failure."""
    n = len(b)
    x = np.zeros(n) if x0 is None else x0.astype(np.float64).copy()
    r = b - A @ x
    matvecs = 1
    norm_b = np.linalg.norm(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), converged=True, iterations=0,
                           residuals=[0.0], matvecs=matvecs)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    residuals = [float(np.linalg.norm(r) / norm_b)]
    guard = _StagnationGuard(stagnation_window)
    try:
        for it in range(1, maxiter + 1):
            rho_new = float(r_hat @ r)
            if not np.isfinite(rho_new):
                raise SolverBreakdown("nonfinite_residual", it)
            if abs(rho_new) < 1e-300:
                raise SolverBreakdown("rho_breakdown", it)
            beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
            rho = rho_new
            p = r + beta * (p - omega * v)
            phat = M(p) if M is not None else p
            v = A @ phat
            matvecs += 1
            denom = float(r_hat @ v)
            if abs(denom) < 1e-300:
                raise SolverBreakdown("orthogonality_breakdown", it)
            alpha = rho / denom
            s = r - alpha * v
            if np.linalg.norm(s) / norm_b < tol:
                x += alpha * phat
                residuals.append(float(np.linalg.norm(s) / norm_b))
                return SolveResult(x=x, converged=True, iterations=it,
                                   residuals=residuals, matvecs=matvecs)
            shat = M(s) if M is not None else s
            t = A @ shat
            matvecs += 1
            tt = float(t @ t)
            if not np.isfinite(tt):
                raise SolverBreakdown("nonfinite_residual", it)
            if tt < 1e-300:
                raise SolverBreakdown("t_breakdown", it)
            omega = float(t @ s) / tt
            x += alpha * phat + omega * shat
            r = s - omega * t
            if fault is not None:
                r = fault(it, r)
            res = float(np.linalg.norm(r) / norm_b)
            residuals.append(res)
            guard.check(res, it)
            if res < tol:
                return SolveResult(x=x, converged=True, iterations=it,
                                   residuals=residuals, matvecs=matvecs)
            if abs(omega) < 1e-300:
                raise SolverBreakdown("omega_breakdown", it)
    except SolverBreakdown as exc:
        exc.residuals = residuals
        exc.matvecs = matvecs
        raise
    return SolveResult(x=x, converged=False, iterations=maxiter,
                       residuals=residuals, matvecs=matvecs)


def _recovering(core, A, b, x0, tol, maxiter, M, fault,
                retry_on_breakdown, stagnation_window) -> SolveResult:
    """Run ``core``; on breakdown, retry once re-preconditioned.

    A recovered result accounts the *total* work: iterations, matvecs and
    residual history of the broken-down attempt plus the retry.
    """
    try:
        return core(A, b, x0, tol, maxiter, M, fault, stagnation_window)
    except SolverBreakdown as first:
        if not retry_on_breakdown:
            return SolveResult(x=np.zeros(len(b)), converged=False,
                               iterations=first.iteration,
                               residuals=list(first.residuals),
                               matvecs=first.matvecs,
                               breakdown=first.reason)
        # Recovery policy: restart from zero with a fresh Jacobi
        # preconditioner and without the transient fault source.
        try:
            result = core(A, b, None, tol, maxiter,
                          jacobi_preconditioner(A), None, stagnation_window)
        except SolverBreakdown as second:
            return SolveResult(
                x=np.zeros(len(b)), converged=False,
                iterations=first.iteration + second.iteration,
                residuals=list(first.residuals) + list(second.residuals),
                matvecs=first.matvecs + second.matvecs,
                breakdown=f"{first.reason}+{second.reason}")
        result.recovered = True
        result.iterations += first.iteration
        result.matvecs += first.matvecs
        result.residuals = list(first.residuals) + result.residuals
        return result


def cg(A: sparse.spmatrix, b: np.ndarray,
       x0: Optional[np.ndarray] = None,
       tol: float = 1e-8, maxiter: int = 500,
       M: Optional[Callable[[np.ndarray], np.ndarray]] = None,
       fault: Optional[FaultHook] = None,
       retry_on_breakdown: bool = True,
       stagnation_window: int = STAGNATION_WINDOW) -> SolveResult:
    """Preconditioned conjugate gradients for SPD ``A``.

    ``fault`` is an optional hook ``r = fault(it, r)`` applied to the
    residual each iteration (fault injection); breakdown triggers one
    re-preconditioned retry unless ``retry_on_breakdown`` is False.
    """
    return _recovering(_cg_core, A, b, x0, tol, maxiter, M, fault,
                       retry_on_breakdown, stagnation_window)


def bicgstab(A: sparse.spmatrix, b: np.ndarray,
             x0: Optional[np.ndarray] = None,
             tol: float = 1e-8, maxiter: int = 500,
             M: Optional[Callable[[np.ndarray], np.ndarray]] = None,
             fault: Optional[FaultHook] = None,
             retry_on_breakdown: bool = True,
             stagnation_window: int = STAGNATION_WINDOW) -> SolveResult:
    """BiCGStab for general (nonsymmetric) ``A``.

    Same breakdown/recovery contract as :func:`cg`.
    """
    return _recovering(_bicgstab_core, A, b, x0, tol, maxiter, M, fault,
                       retry_on_breakdown, stagnation_window)
