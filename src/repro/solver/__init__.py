"""Algebraic solvers: CG and deflated CG (continuity), BiCGStab (momentum),
Jacobi preconditioning."""

from .deflated import coarse_space_from_groups, deflated_cg
from .krylov import (
    SolveResult,
    SolverBreakdown,
    bicgstab,
    cg,
    jacobi_preconditioner,
)

__all__ = [
    "SolveResult",
    "SolverBreakdown",
    "bicgstab",
    "cg",
    "coarse_space_from_groups",
    "deflated_cg",
    "jacobi_preconditioner",
]
