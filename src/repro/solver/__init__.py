"""Algebraic solvers: CG and deflated CG (continuity), BiCGStab (momentum),
Jacobi preconditioning."""

from .deflated import DeflationSetup, coarse_space_from_groups, deflated_cg
from .krylov import (
    SolveResult,
    SolverBreakdown,
    bicgstab,
    cg,
    jacobi_preconditioner,
    krylov_workspace_stats,
)

__all__ = [
    "DeflationSetup",
    "SolveResult",
    "SolverBreakdown",
    "bicgstab",
    "cg",
    "coarse_space_from_groups",
    "deflated_cg",
    "jacobi_preconditioner",
    "krylov_workspace_stats",
]
