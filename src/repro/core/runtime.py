"""OmpSs/OpenMP-like task runtime executing task graphs on simulated cores.

Each MPI rank owns a :class:`Team` — its OpenMP thread team.  A team executes
a :class:`~repro.core.taskgraph.TaskGraph` with a *malleable* worker count:
DLB can shrink it (cores are lent away when the rank blocks in MPI) or grow
it (cores borrowed from blocked ranks), with changes taking effect at task
boundaries — the same granularity at which the real DLB/LeWI reacts through
``omp_set_num_threads``.

Scheduling semantics:

* a task becomes *ready* when all its DAG predecessors have finished;
* a ready task is *runnable* when none of its ``MUTEXINOUTSET`` refs is held
  by a running task; the scheduler acquires all refs atomically (the DES
  scheduler is a single logical lock, so no deadlock is possible);
* ready tasks are dispatched FIFO with runnable-first scanning, which keeps
  consecutive (memory-contiguous) chunks on the same worker when possible —
  the locality property the paper attributes to multidependences.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Optional, Protocol

from ..machine import CoreModel
from ..perf import toggles as _perf_toggles
from ..sim import Engine, Event
from .taskgraph import Task, TaskGraph

__all__ = ["Team", "GraphStats", "TeamListener", "RuntimeError_"]


class RuntimeError_(RuntimeError):
    """Raised on illegal team usage (e.g. overlapping run() calls)."""


class TeamListener(Protocol):
    """Observer of a team's appetite for cores (implemented by DLB)."""

    def on_team_hungry(self, team: "Team") -> None:
        """``team`` has runnable tasks it cannot dispatch (wants cores)."""

    def on_team_idle(self, team: "Team") -> None:
        """``team`` finished its graph (borrowed cores can be returned)."""


@dataclass
class GraphStats:
    """Execution statistics of one graph run on a team."""

    tasks_run: int = 0
    instructions: float = 0.0
    busy_seconds: float = 0.0       # sum over workers of task execution time
    overhead_seconds: float = 0.0   # task-management overhead (not useful work)
    t_start: float = 0.0
    t_end: float = 0.0
    max_concurrency: int = 0

    @property
    def makespan(self) -> float:
        """Wall-clock duration of the graph execution."""
        return self.t_end - self.t_start

    def ipc(self, core: CoreModel) -> float:
        """Achieved instructions-per-cycle over the busy time (as a
        hardware counter would measure it)."""
        if self.busy_seconds <= 0:
            return 0.0
        cycles = self.busy_seconds * core.freq_ghz * 1e9
        return self.instructions / cycles


class _Plan:
    """A fully materialized execution schedule of one graph run.

    Produced by :meth:`Team._plan_sim` (or instantiated from a cached
    template): per-task start/finish times in dispatch order, finish times
    in completion order, and the final stats sums — everything the scalar
    engine would compute task by task, computed up front so the DES carries
    a *single* completion event for the whole graph.
    """

    __slots__ = ("d_tids", "d_start", "d_finish", "d_dur", "c_finish",
                 "sums", "n_total", "t_end", "chain", "slot", "stalled")

    def __init__(self, d_tids, d_start, d_finish, d_dur, c_finish, sums,
                 n_total, t_end, chain, stalled):
        self.d_tids = d_tids
        self.d_start = d_start      # non-decreasing (dispatch order)
        self.d_finish = d_finish
        self.d_dur = d_dur          # exec*slowdown + overhead, one float
        self.c_finish = c_finish    # non-decreasing (completion order)
        self.sums = sums            # (busy, instructions, overhead, max_conc)
        self.n_total = n_total
        self.t_end = t_end
        #: dispatch-time genealogy of the last-finishing task as flattened
        #: ``(time, hop)`` pairs: its own dispatch time, then its
        #: dispatcher's, ... up to a root — the simulated times at which the
        #: scalar engine would assign the seq numbers that break
        #: completion-time ties (see _PlanArbiter).  ``hop`` is 0.0 for a
        #: plain dispatch (synchronous in ``run()`` or inside a task-finish
        #: callback) and 1.0 for a repeat-boundary root, which the scalar
        #: engine dispatches one event hop later (inside the previous
        #: repeat's done callback) than any same-time plain dispatch.
        self.chain = chain
        self.slot = None            # engine handle of the pending plan event
        self.stalled = stalled      # capacity 0 with work left


class _PlanTemplate:
    """Relative (t0-independent) single-worker schedule of a graph.

    With one worker the dispatch order is a pure function of the graph and
    the scheduling policy — no two in-flight finish times are ever compared
    — so the order, the per-task durations and the stats sums can be reused
    across runs; only the absolute times depend on the start time, rebuilt
    by one float add per task.  The template keeps a strong reference to its
    graph: identity (``is``) is the cache validity check, and the reference
    also prevents ``id()`` reuse by a new graph object.
    """

    __slots__ = ("graph", "slowdown", "d_tids", "dur", "sums")

    def __init__(self, graph, slowdown, d_tids, dur, sums):
        self.graph = graph
        self.slowdown = slowdown
        self.d_tids = d_tids
        self.dur = dur
        self.sums = sums


class _PlanArbiter:
    """Gives same-cohort plan completions the scalar engine's tie order.

    Events at equal simulated times fire in seq order, and the scalar
    engine assigns a completion's seq at the *dispatch* of the finishing
    task — inside the finish callback of the task that unblocked it, whose
    own seq was assigned at *its* dispatch, and so on down to the root
    dispatched synchronously in ``run()``.  Two teams finishing at the same
    instant therefore order by the lexicographic comparison of those
    dispatch-time chains, with ``run()``-call order as the final tie-break.

    Plan mode collapses a graph to one completion event, so that genealogy
    must be reproduced explicitly: teams submit their plans as they start,
    a deferred flush (running after every submission of the current event
    cohort) sorts them by ``(t_end, *chain)`` plus submission order, and
    arms the completion events in that order — consecutive seqs, so
    same-time completions fire exactly as the scalar engine would.  Ties
    *across* cohorts resolve by cohort order, which matches the scalar
    root-dispatch order for plans with identical chains (the only ties
    observed in practice: lockstep ranks running identical graphs).
    """

    __slots__ = ("engine", "_pending", "planned_graphs", "planned_tasks",
                 "plan_cache_hits", "plan_replans")

    def __init__(self, engine: Engine):
        self.engine = engine
        self._pending: list = []
        # plan-mode counters (surfaced through ``perf.instrument``); plain
        # attributes because the hot path bumps them once per graph run
        self.planned_graphs = 0
        self.planned_tasks = 0
        self.plan_cache_hits = 0
        self.plan_replans = 0

    def submit(self, team: "Team", plan: _Plan) -> None:
        if not self._pending:
            self.engine.defer(self._flush)
        self._pending.append(((plan.t_end,) + plan.chain,
                              len(self._pending), team, plan))

    def _flush(self) -> None:
        pending = self._pending
        self._pending = []
        pending.sort(key=lambda e: (e[0], e[1]))
        for _key, _idx, team, plan in pending:
            team._arm_plan(plan)


class Team:
    """A rank's thread team: a malleable pool of simulated cores.

    Parameters
    ----------
    engine, core:
        DES engine and the core performance model of the host node.
    nthreads:
        Base worker count (the rank's own cores).
    task_overhead_s:
        Fixed runtime-bookkeeping cost added to every task execution
        (task creation + dependence management; relevant for multidep).
    rank / name:
        Identity used in traces.
    recorder:
        Optional object with ``record(rank, category, label, t0, t1)``.
    listener:
        Optional :class:`TeamListener` (DLB).
    """

    SCHEDULERS = ("lpt", "fifo", "lifo")

    def __init__(self, engine: Engine, core: CoreModel, nthreads: int,
                 task_overhead_s: float = 0.0, rank: int = 0, name: str = "",
                 recorder=None, listener: Optional[TeamListener] = None,
                 scheduler: str = "lpt"):
        if nthreads < 0:
            raise RuntimeError_(f"nthreads must be >= 0, got {nthreads}")
        if scheduler not in self.SCHEDULERS:
            raise RuntimeError_(
                f"unknown scheduler {scheduler!r}; available: "
                f"{self.SCHEDULERS}")
        self.engine = engine
        self.core = core
        self.base_threads = nthreads
        self.rank = rank
        self.name = name or f"team{rank}"
        self.task_overhead_s = task_overhead_s
        self.recorder = recorder
        self.listener = listener
        self.scheduler = scheduler
        self._max_workers = nthreads
        #: execution-time multiplier (> 1 under an injected DVFS throttle)
        self.slowdown = 1.0
        self._active = 0
        self._ready: deque[Task] = deque()
        self._held_refs: set = set()
        self._graph: Optional[TaskGraph] = None
        self._remaining = 0
        self._preds_left: list[int] = []
        self._done: Optional[Event] = None
        self._stats: Optional[GraphStats] = None
        self._hungry_notified = False
        self._fast = _perf_toggles.TOGGLES.runtime_fast_path
        # Heap-backed LPT ready queue (toggle captured at construction).
        # Entries are (-instr, seq, task): popping the heap min yields the
        # largest-instruction task, earliest arrival first — provably the
        # same task the linear argmax scan (strict >, FIFO tie-break)
        # selects, in O(log n) instead of O(n) per dispatch.
        self._use_heap = (scheduler == "lpt"
                          and _perf_toggles.TOGGLES.scheduler_heap)
        self._heap: list = []
        self._seq = 0
        # Plan mode (engine_batch): simulate the whole graph execution up
        # front and schedule one completion event, instead of 2 DES events
        # per task.  Engages per run() and only when nobody observes
        # per-task execution (no recorder, no listener — see run()).
        # Mid-run set_capacity/set_slowdown append a timestamped epoch and
        # re-simulate the plan from the start — the already-executed prefix
        # replays float-identically, so the revised plan agrees with
        # history and the future reflects the change.
        self._plan_enabled = _perf_toggles.TOGGLES.engine_batch
        self._plan: Optional[_Plan] = None
        self._plan_repeats = 1
        self._plan_cache: dict[int, _PlanTemplate] = {}
        self._slow_epochs: list[tuple[float, float]] = []
        self._cap_epochs: list[tuple[float, int]] = []
        if self._plan_enabled:
            arb = getattr(engine, "_plan_arbiter", None)
            if arb is None:
                arb = engine._plan_arbiter = _PlanArbiter(engine)
            self._arbiter: _PlanArbiter = arb

    # -- capacity (the DLB surface) -----------------------------------------
    @property
    def capacity(self) -> int:
        """Current worker-count ceiling (base + borrowed - lent)."""
        return self._max_workers

    @property
    def active_workers(self) -> int:
        """Workers currently executing a task."""
        if self._plan is not None:
            now = self.engine.now
            plan = self._plan
            return (bisect_right(plan.d_start, now)
                    - bisect_right(plan.c_finish, now))
        return self._active

    @property
    def is_running(self) -> bool:
        """Whether a graph is currently being executed."""
        return self._graph is not None

    @property
    def ready_count(self) -> int:
        """Tasks currently ready (waiting for a worker)."""
        if self._plan is not None:
            return self._plan_ready_count()
        if self._use_heap:
            return len(self._heap)
        return len(self._ready)

    def _plan_ready_count(self) -> int:
        """Ready-task count derived from the plan arrays (diagnostics)."""
        plan = self._plan
        graph = self._graph
        now = self.engine.now
        n = len(graph.tasks)
        started = [False] * n
        preds_done = [0] * n
        for i, tid in enumerate(plan.d_tids):
            if plan.d_start[i] > now:
                break
            started[tid] = True
            if plan.d_finish[i] <= now:
                for succ in graph.tasks[tid].successors:
                    preds_done[succ] += 1
        return sum(1 for tid, task in enumerate(graph.tasks)
                   if not started[tid] and preds_done[tid] == task.n_preds)

    @property
    def wants_cores(self) -> bool:
        """Whether extra capacity would be used right now."""
        if self._graph is None:
            return False
        if self._plan is not None:
            # derived from the plan arrays; mutex-blocked backlog counts as
            # appetite (diagnostic only — DLB runs the scalar path)
            plan = self._plan
            now = self.engine.now
            started = bisect_right(plan.d_start, now)
            active = started - bisect_right(plan.c_finish, now)
            if active < self._max_workers:
                return False
            return (plan.n_total - started) > 0
        if self._active < self._max_workers:
            return False
        held = self._held_refs
        if self._use_heap:
            if not held:
                return bool(self._heap)
            # existence check only — no need for the *best* runnable task
            return any(entry[2].mutex_refs.isdisjoint(held)
                       for entry in self._heap)
        if not held:
            # no mutexes held: any ready task is runnable
            return bool(self._ready)
        return self._runnable_index() is not None

    def set_capacity(self, n: int) -> None:
        """Change the worker ceiling; growth dispatches immediately, shrink
        takes effect as running tasks complete."""
        if n < 0:
            raise RuntimeError_(f"capacity must be >= 0, got {n}")
        if self._plan is not None:
            # epoch lists are built lazily: the common unperturbed run never
            # touches them, and the baseline (t0, value) entry records the
            # value in force when the run started
            if not self._cap_epochs:
                self._cap_epochs.append((self._stats.t_start,
                                         self._max_workers))
            self._max_workers = n
            self._cap_epochs.append((self.engine.now, n))
            self._replan()
            return
        grew = n > self._max_workers
        self._max_workers = n
        if grew and self._graph is not None:
            self._dispatch()

    def set_slowdown(self, factor: float) -> None:
        """Scale execution time of future tasks by ``factor`` (straggler or
        DVFS-throttle injection; ``1.0`` restores nominal speed).  Tasks
        already running finish at the speed they started with."""
        if factor <= 0:
            raise RuntimeError_(f"slowdown must be > 0, got {factor}")
        if self._plan is not None:
            if not self._slow_epochs:
                self._slow_epochs.append((self._stats.t_start,
                                          self.slowdown))
            self.slowdown = factor
            self._slow_epochs.append((self.engine.now, factor))
            self._replan()
            return
        self.slowdown = factor

    # -- execution ------------------------------------------------------------
    def run(self, graph: TaskGraph, repeats: int = 1):
        """Execute ``graph`` to completion (generator; use ``yield from``).

        ``repeats > 1`` runs the same graph back to back — the local
        adaptive-Δt subcycling of :mod:`repro.app.driver`, where a rank on
        a finer time rung replays its compute graphs several times inside
        one global step.  Returns one :class:`GraphStats` aggregated over
        the repeats (``t_start`` of the first, ``t_end`` of the last,
        work sums, max of the concurrency peaks).
        """
        if repeats < 1:
            raise RuntimeError_(f"repeats must be >= 1, got {repeats}")
        if (repeats > 1 and len(graph) > 0 and self._plan_enabled
                and self.recorder is None and self.listener is None):
            # One plan covering every repeat, submitted in the same arbiter
            # cohort as a single-run plan.  Per-repeat plans would arm each
            # team's *final* completion in a cohort determined by its
            # repeat count, and same-time completions across different
            # cohorts order by cohort instead of the scalar dispatch
            # genealogy — the one tie class the arbiter cannot see.
            if self._graph is not None:
                raise RuntimeError_(
                    f"{self.name}: run() while a graph is active")
            stats = GraphStats(t_start=self.engine.now)
            self._graph = graph
            self._stats = stats
            self._done = Event(self.engine)
            self._plan_start(graph, stats, repeats)
            result = yield self._done
            return result
        stats = yield from self._run_once(graph)
        for _ in range(repeats - 1):
            more = yield from self._run_once(graph)
            stats.tasks_run += more.tasks_run
            stats.instructions += more.instructions
            stats.busy_seconds += more.busy_seconds
            stats.overhead_seconds += more.overhead_seconds
            stats.t_end = more.t_end
            stats.max_concurrency = max(stats.max_concurrency,
                                        more.max_concurrency)
        return stats

    def _run_once(self, graph: TaskGraph):
        """One execution of ``graph`` (the pre-``repeats`` run body)."""
        if self._graph is not None:
            raise RuntimeError_(f"{self.name}: run() while a graph is active")
        stats = GraphStats(t_start=self.engine.now)
        if len(graph) == 0:
            stats.t_end = self.engine.now
            return stats
        # engagement is re-checked per run: a recorder needs per-task
        # records and a listener (DLB attaches itself after construction)
        # needs task-boundary callbacks, so those runs take the scalar path
        if (self._plan_enabled and self.recorder is None
                and self.listener is None):
            self._graph = graph
            self._stats = stats
            self._done = Event(self.engine)
            self._plan_start(graph, stats)
            result = yield self._done
            return result
        self._graph = graph
        self._stats = stats
        self._remaining = len(graph.tasks)
        self._preds_left = [t.n_preds for t in graph.tasks]
        if self._use_heap:
            for task in graph.roots():
                self._push_ready(task)
        else:
            self._ready.extend(graph.roots())
        self._done = Event(self.engine)
        self._hungry_notified = False
        self._dispatch()
        result = yield self._done
        return result

    # -- plan mode (engine_batch) ------------------------------------------
    def _plan_start(self, graph: TaskGraph, stats: GraphStats,
                    repeats: int = 1) -> None:
        """Materialize the whole run (all ``repeats``) as one plan + one
        completion event."""
        t0 = stats.t_start
        arb = self._arbiter
        arb.planned_graphs += repeats
        arb.planned_tasks += repeats * len(graph.tasks)
        self._plan_repeats = repeats
        if self._max_workers == 1:
            tpl = self._plan_cache.get(id(graph))
            if (tpl is None or tpl.graph is not graph
                    or tpl.slowdown != self.slowdown):
                rel = self._plan_sim(graph, 0.0, [(0.0, self.slowdown)],
                                     [(0.0, 1)])
                tpl = _PlanTemplate(graph, self.slowdown, rel.d_tids,
                                    rel.d_dur, rel.sums)
                self._plan_cache[id(graph)] = tpl
            else:
                arb.plan_cache_hits += 1
            self._install_plan(
                self._instantiate_template(tpl, t0, graph, repeats))
        else:
            self._install_plan(
                self._plan_sim_repeated(graph, t0, [(t0, self.slowdown)],
                                        [(t0, self._max_workers)], repeats))

    def _instantiate_template(self, tpl: _PlanTemplate, t0: float,
                              graph: TaskGraph, repeats: int = 1) -> _Plan:
        """Rebuild absolute times from a relative single-worker template.

        One float add per task, in the exact expression order of the scalar
        chain (``finish = start + dur``, next start = previous finish), so
        the absolute times are bit-identical to a fresh simulation.
        ``repeats`` chains the schedule back to back; the stats sums fold
        left, one term per repeat, matching the scalar loop's per-repeat
        ``+=`` aggregation bit for bit.
        """
        t = t0
        d_start = []
        d_finish = []
        push_s = d_start.append
        push_f = d_finish.append
        for _ in range(repeats):
            for dur in tpl.dur:
                push_s(t)
                t = t + dur
                push_f(t)
        busy, instr, overhead, max_conc = tpl.sums
        for _ in range(repeats - 1):
            busy += tpl.sums[0]
            instr += tpl.sums[1]
            overhead += tpl.sums[2]
        # single worker: the full reversed dispatch sequence IS the
        # genealogy walk; repeat-boundary roots carry hop tag 1.0
        n = len(tpl.dur)
        chain_l = []
        for idx in range(len(d_start) - 1, -1, -1):
            chain_l.append(d_start[idx])
            chain_l.append(1.0 if idx and idx % n == 0 else 0.0)
        return _Plan(tpl.d_tids * repeats, d_start, d_finish,
                     tpl.dur * repeats, d_finish,
                     (busy, instr, overhead, max_conc),
                     repeats * len(graph.tasks), d_finish[-1],
                     tuple(chain_l), False)

    def _plan_sim_repeated(self, graph: TaskGraph, t0: float,
                           slow_epochs: list, cap_epochs: list,
                           repeats: int) -> _Plan:
        """``repeats`` back-to-back :meth:`_plan_sim` runs merged into one
        plan: each segment starts at the previous segment's end (the scalar
        loop re-enters ``_run_once`` inside the previous completion), the
        stats sums fold left like the scalar per-repeat aggregation, and
        the dispatch-genealogy chain concatenates through the repeat
        boundary — repeat ``j``'s roots are dispatched inside repeat
        ``j-1``'s *done* callback, one event hop after any same-time
        task-finish dispatch, so the boundary root carries hop tag 1.0."""
        plan = self._plan_sim(graph, t0, slow_epochs, cap_epochs)
        for _ in range(repeats - 1):
            if plan.stalled:
                break
            nxt = self._plan_sim(graph, plan.t_end, slow_epochs, cap_epochs)
            sums = (plan.sums[0] + nxt.sums[0], plan.sums[1] + nxt.sums[1],
                    plan.sums[2] + nxt.sums[2],
                    max(plan.sums[3], nxt.sums[3]))
            plan = _Plan(plan.d_tids + nxt.d_tids,
                         plan.d_start + nxt.d_start,
                         plan.d_finish + nxt.d_finish,
                         plan.d_dur + nxt.d_dur,
                         plan.c_finish + nxt.c_finish, sums,
                         plan.n_total + nxt.n_total, nxt.t_end,
                         nxt.chain[:-1] + (1.0,) + plan.chain, nxt.stalled)
        return plan

    def _install_plan(self, plan: _Plan) -> None:
        """Adopt a freshly simulated plan and queue it for arming.

        Arming goes through the per-engine :class:`_PlanArbiter`, which
        sorts every plan submitted in the current event cohort by the
        scalar tie-break key before scheduling the completion events.
        """
        self._plan = plan
        if plan.stalled:
            return
        self._arbiter.submit(self, plan)

    def _arm_plan(self, plan: _Plan) -> None:
        """Schedule the plan's completion (called by the arbiter's flush).

        Completions armed by one flush in chain order receive consecutive
        seq numbers, so same-time completions fire in the scalar tie-break
        order (see :class:`_PlanArbiter`).
        """
        if plan is not self._plan:
            return              # superseded by a replan before the flush
        plan.slot = self.engine.schedule_fn_at(plan.t_end,
                                               self._plan_complete)

    def _replan(self) -> None:
        """Re-simulate the active plan against the updated epoch lists.

        The already-executed prefix depends only on epochs that precede the
        perturbation, so it replays float-identically; tasks still in flight
        keep their planned finish (their start predates the newest epoch and
        ``slowdown_at(start)`` yields the speed they started with); tasks
        starting from now on see the new capacity/slowdown.
        """
        plan = self._plan
        if plan.slot is not None:
            self.engine.cancel_scheduled(plan.slot)
            plan.slot = None
        self._arbiter.plan_replans += 1
        t0 = self._stats.t_start
        new = self._plan_sim_repeated(
            self._graph, t0,
            self._slow_epochs or [(t0, self.slowdown)],
            self._cap_epochs or [(t0, self._max_workers)],
            self._plan_repeats)
        self._plan = new
        # a replan happens inside the perturbing call itself (set_capacity /
        # set_slowdown), the same cascade position where the scalar engine
        # reacts — arm directly, no cohort sort
        if not new.stalled:
            self._arm_plan(new)

    def _plan_complete(self) -> None:
        """Fires at the plan's end time: apply the precomputed stats sums
        (accumulated in completion order — the scalar summation order) and
        release the graph, exactly as `_finish_task` does for the last task."""
        stats = self._stats
        plan = self._plan
        busy, instr, overhead, max_conc = plan.sums
        stats.tasks_run = plan.n_total
        stats.instructions = instr
        stats.busy_seconds = busy
        stats.overhead_seconds = overhead
        stats.max_concurrency = max_conc
        stats.t_end = self.engine.now
        done = self._done
        self._graph = None
        self._stats = None
        self._done = None
        self._plan = None
        self._plan_repeats = 1
        if self._slow_epochs:
            self._slow_epochs.clear()
        if self._cap_epochs:
            self._cap_epochs.clear()
        done.succeed(stats)

    def _plan_sim(self, graph: TaskGraph, t0: float,
                  slow_epochs: list, cap_epochs: list) -> _Plan:
        """Simulate one graph execution in plain Python, event-for-event
        equivalent to the scalar engine's trajectory.

        Replicates `_dispatch`/`_start_task`/`_finish_task` exactly: the
        scheduling policy (LPT heap with FIFO tie-break / fifo / lifo),
        mutex pop-aside, dispatch-while-capacity-remains after every
        completion, cached task durations, and the float expression order
        of start/finish arithmetic.  Time-varying capacity and slowdown
        arrive as ``(time, value)`` epochs; an epoch at time T applies
        before any completion at T, matching the scalar seq order (the
        perturbing timeout was scheduled before the task started).
        """
        tasks = graph.tasks
        n = len(tasks)
        core = self.core
        ovh = self.task_overhead_s
        scheduler = self.scheduler
        preds_left = [t.n_preds for t in tasks]
        held: set = set()
        # ready structures (seq = FIFO tie-break, matches _push_ready)
        heap: list = []
        fifo: deque = deque()
        seqc = 0
        if scheduler == "lpt":
            for task in graph.roots():
                seqc += 1
                heapq.heappush(heap, (-task._instr, seqc, task.tid))
        else:
            fifo.extend(t.tid for t in graph.roots())

        def pick() -> Optional[int]:
            if scheduler == "lpt":
                if not heap:
                    return None
                if not held:
                    return heapq.heappop(heap)[2]
                blocked = []
                tid = None
                while heap:
                    entry = heapq.heappop(heap)
                    if tasks[entry[2]].mutex_refs.isdisjoint(held):
                        tid = entry[2]
                        break
                    blocked.append(entry)
                for entry in blocked:
                    heapq.heappush(heap, entry)
                return tid
            if scheduler == "fifo":
                if not held:
                    return fifo.popleft() if fifo else None
                for i, tid in enumerate(fifo):
                    if tasks[tid].mutex_refs.isdisjoint(held):
                        del fifo[i]
                        return tid
                return None
            # lifo
            if not held:
                return fifo.pop() if fifo else None
            for i in range(len(fifo) - 1, -1, -1):
                if tasks[fifo[i]].mutex_refs.isdisjoint(held):
                    tid = fifo[i]
                    del fifo[i]
                    return tid
            return None

        slow = slow_epochs[0][1]
        si = 1
        n_slow = len(slow_epochs)
        W = cap_epochs[0][1]
        ei = 1
        n_cap = len(cap_epochs)
        t = t0
        active = 0
        fseq = 0
        inflight: list = []         # (finish, fseq, tid, exec_seconds)
        d_tids: list = []
        d_start: list = []
        d_finish: list = []
        d_dur: list = []
        c_finish: list = []
        # d_parent[i]: dispatch index of the task whose completion dispatched
        # task i (-1: dispatched at t0 or after an external capacity epoch) —
        # the seq-assignment genealogy the scalar engine creates implicitly
        d_parent: list = []
        cur_parent = -1
        last_di = -1
        busy = 0.0
        instr = 0.0
        ovh_sum = 0.0
        max_conc = 0
        completed = 0
        stalled = False
        while True:
            # epochs at time <= t apply before dispatch and completions at t
            while ei < n_cap and cap_epochs[ei][0] <= t:
                W = cap_epochs[ei][1]
                ei += 1
            while si < n_slow and slow_epochs[si][0] <= t:
                slow = slow_epochs[si][1]
                si += 1
            while active < W:
                tid = pick()
                if tid is None:
                    break
                task = tasks[tid]
                if task.mutex_refs:
                    held |= task.mutex_refs
                active += 1
                if active > max_conc:
                    max_conc = active
                if task._dur_core is core:
                    base = task._dur
                else:
                    base = core.seconds(task.work)
                    task._dur = base
                    task._dur_core = core
                exec_seconds = base * slow
                dur = exec_seconds + ovh
                finish = t + dur
                d_tids.append(tid)
                d_start.append(t)
                d_finish.append(finish)
                d_dur.append(dur)
                d_parent.append(cur_parent)
                heapq.heappush(inflight, (finish, fseq, tid, exec_seconds))
                fseq += 1
            if completed == n:
                break
            next_ep = cap_epochs[ei][0] if ei < n_cap else None
            if inflight and (next_ep is None or inflight[0][0] < next_ep):
                finish, di, tid, exec_seconds = heapq.heappop(inflight)
                t = finish
                cur_parent = last_di = di
                task = tasks[tid]
                # stats accumulation order matches _finish_task
                instr += task._instr
                busy += exec_seconds
                ovh_sum += ovh
                if task.mutex_refs:
                    held -= task.mutex_refs
                active -= 1
                completed += 1
                c_finish.append(finish)
                if scheduler == "lpt":
                    for succ in task.successors:
                        preds_left[succ] -= 1
                        if preds_left[succ] == 0:
                            seqc += 1
                            heapq.heappush(
                                heap, (-tasks[succ]._instr, seqc, succ))
                else:
                    for succ in task.successors:
                        preds_left[succ] -= 1
                        if preds_left[succ] == 0:
                            fifo.append(succ)
            elif next_ep is not None:
                t = next_ep
                cur_parent = -1
            else:
                # zero capacity with work left and no scheduled growth: the
                # plan stalls here; a later set_capacity re-simulates with
                # the new epoch and completes the schedule
                stalled = True
                break
        t_end = c_finish[-1] if completed == n else 0.0
        if last_di >= 0:
            chain_l = []
            idx = last_di
            while idx >= 0:
                chain_l.append(d_start[idx])
                chain_l.append(0.0)
                idx = d_parent[idx]
            chain = tuple(chain_l)
        else:
            chain = (t0, 0.0)
        return _Plan(d_tids, d_start, d_finish, d_dur, c_finish,
                     (busy, instr, ovh_sum, max_conc), n, t_end, chain,
                     stalled)

    # -- internals --------------------------------------------------------
    def _runnable_index(self) -> Optional[int]:
        """Index in the ready deque of the best runnable task, if any.

        The default policy is largest-runnable-first (``lpt``): among
        mutex-free ready tasks, pick the one with the most work — the
        classic makespan heuristic, approximating what priority-aware task
        runtimes (Nanos) do.  Ties (and equal-size chunked loops) keep FIFO
        order, preserving the memory order of chunked traversals.

        ``fifo`` takes the oldest runnable task (breadth-first, best
        locality across a chunked traversal); ``lifo`` the newest
        (depth-first, cache-hot dependents first).
        """
        held = self._held_refs
        ready = self._ready
        if self.scheduler == "fifo":
            if not held:
                return 0 if ready else None
            for i, task in enumerate(ready):
                if task.mutex_refs.isdisjoint(held):
                    return i
            return None
        if self.scheduler == "lifo":
            if not held:
                return len(ready) - 1 if ready else None
            for i in range(len(ready) - 1, -1, -1):
                if ready[i].mutex_refs.isdisjoint(held):
                    return i
            return None
        best = None
        best_instr = -1.0
        if not held:
            # no mutexes held: plain argmax, skip the per-task set test
            for i, task in enumerate(ready):
                if task._instr > best_instr:
                    best = i
                    best_instr = task._instr
            return best
        for i, task in enumerate(ready):
            # instruction test first: it is cheaper than the set test and
            # the update condition is conjunctive either way
            instr = task._instr
            if instr > best_instr and task.mutex_refs.isdisjoint(held):
                best = i
                best_instr = instr
        return best

    def _push_ready(self, task: Task) -> None:
        """Add ``task`` to the LPT heap (seq = FIFO tie-break on equal work)."""
        self._seq += 1
        heapq.heappush(self._heap, (-task._instr, self._seq, task))

    def _dispatch_heap(self) -> None:
        """Heap-backed dispatch, task-for-task identical to `_dispatch`.

        With mutexes held, blocked heap entries are popped aside and pushed
        back after the pick: each keeps its original seq, so future ordering
        is unchanged.  With the default one-thread teams of the paper's
        configurations, ``held`` is almost always empty here and a dispatch
        is a single heappop.
        """
        heap = self._heap
        held = self._held_refs
        while self._active < self._max_workers and heap:
            if not held:
                task = heapq.heappop(heap)[2]
            else:
                blocked = []
                task = None
                while heap:
                    entry = heapq.heappop(heap)
                    if entry[2].mutex_refs.isdisjoint(held):
                        task = entry[2]
                        break
                    blocked.append(entry)
                for entry in blocked:
                    heapq.heappush(heap, entry)
                if task is None:
                    break
            if task.mutex_refs:
                held |= task.mutex_refs     # in-place: held is _held_refs
            self._active += 1
            if self._stats is not None:
                self._stats.max_concurrency = max(
                    self._stats.max_concurrency, self._active)
            if self._fast:
                self.engine.defer(self._start_task, task)
            else:
                self.engine.process(self._worker(task),
                                    name=f"{self.name}.{task.label}")
        if self.listener is not None and self._graph is not None:
            if self._active >= self._max_workers and heap:
                if not self._hungry_notified:
                    self._hungry_notified = True
                    self.listener.on_team_hungry(self)

    def _dispatch(self) -> None:
        if self._use_heap:
            self._dispatch_heap()
            return
        while self._active < self._max_workers:
            idx = self._runnable_index()
            if idx is None:
                break
            task = self._ready[idx]
            del self._ready[idx]
            if task.mutex_refs:
                self._held_refs |= task.mutex_refs
            self._active += 1
            if self._stats is not None:
                self._stats.max_concurrency = max(
                    self._stats.max_concurrency, self._active)
            if self._fast:
                # Callback-based execution: posts the same bootstrap event a
                # Process would, so the (time, seq) trajectory is identical —
                # minus the generator frame, the Process object and its
                # completion event.
                self.engine.defer(self._start_task, task)
            else:
                self.engine.process(self._worker(task),
                                    name=f"{self.name}.{task.label}")
        # Appetite signalling for DLB: hungry if capacity-bound work remains.
        if self.listener is not None and self._graph is not None:
            if self._active >= self._max_workers and self._ready:
                if not self._hungry_notified:
                    self._hungry_notified = True
                    self.listener.on_team_hungry(self)

    def _start_task(self, task: Task) -> None:
        """Begin executing ``task`` (fast path; runs at bootstrap-event pop,
        exactly where a worker generator would run up to its first yield)."""
        t0 = self.engine.now
        core = self.core
        if task._dur_core is core:
            base = task._dur
        else:
            # Task graphs are re-executed every simulated time step with the
            # same WorkSpec on the same core: compute the nominal duration
            # once and reuse the identical float thereafter.
            base = core.seconds(task.work)
            task._dur = base
            task._dur_core = core
        exec_seconds = base * self.slowdown
        self.engine.call_later(exec_seconds + self.task_overhead_s,
                               self._finish_task, task, t0, exec_seconds)

    def _finish_task(self, task: Task, t0: float, exec_seconds: float) -> None:
        """Task completion bookkeeping (fast path; runs at timeout pop,
        exactly where a worker generator would resume)."""
        t1 = self.engine.now
        stats = self._stats
        assert stats is not None
        stats.tasks_run += 1
        stats.instructions += task._instr
        stats.busy_seconds += exec_seconds
        stats.overhead_seconds += self.task_overhead_s
        if self.recorder is not None and task._instr > 0:
            self.recorder.record(self.rank, "task", task.label, t0, t1)
        if task.mutex_refs:
            self._held_refs -= task.mutex_refs
        self._active -= 1
        self._remaining -= 1
        graph = self._graph
        assert graph is not None
        if self._use_heap:
            for succ in task.successors:
                self._preds_left[succ] -= 1
                if self._preds_left[succ] == 0:
                    self._push_ready(graph.tasks[succ])
        else:
            for succ in task.successors:
                self._preds_left[succ] -= 1
                if self._preds_left[succ] == 0:
                    self._ready.append(graph.tasks[succ])
        if self._remaining == 0:
            stats.t_end = self.engine.now
            done = self._done
            self._graph = None
            self._stats = None
            self._done = None
            self._hungry_notified = False
            if self.listener is not None:
                self.listener.on_team_idle(self)
            assert done is not None
            done.succeed(stats)
        else:
            self._hungry_notified = False
            self._dispatch()

    def _worker(self, task: Task):
        # Baseline (pre-PR-2) generator path, kept for before/after
        # benchmarking; the fast path above is event-for-event equivalent.
        t0 = self.engine.now
        exec_seconds = self.core.seconds(task.work) * self.slowdown
        duration = exec_seconds + self.task_overhead_s
        yield self.engine.timeout(duration)
        self._finish_task(task, t0, exec_seconds)
