"""OmpSs/OpenMP-like task runtime executing task graphs on simulated cores.

Each MPI rank owns a :class:`Team` — its OpenMP thread team.  A team executes
a :class:`~repro.core.taskgraph.TaskGraph` with a *malleable* worker count:
DLB can shrink it (cores are lent away when the rank blocks in MPI) or grow
it (cores borrowed from blocked ranks), with changes taking effect at task
boundaries — the same granularity at which the real DLB/LeWI reacts through
``omp_set_num_threads``.

Scheduling semantics:

* a task becomes *ready* when all its DAG predecessors have finished;
* a ready task is *runnable* when none of its ``MUTEXINOUTSET`` refs is held
  by a running task; the scheduler acquires all refs atomically (the DES
  scheduler is a single logical lock, so no deadlock is possible);
* ready tasks are dispatched FIFO with runnable-first scanning, which keeps
  consecutive (memory-contiguous) chunks on the same worker when possible —
  the locality property the paper attributes to multidependences.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Optional, Protocol

from ..machine import CoreModel
from ..perf import toggles as _perf_toggles
from ..sim import Engine, Event
from .taskgraph import Task, TaskGraph

__all__ = ["Team", "GraphStats", "TeamListener", "RuntimeError_"]


class RuntimeError_(RuntimeError):
    """Raised on illegal team usage (e.g. overlapping run() calls)."""


class TeamListener(Protocol):
    """Observer of a team's appetite for cores (implemented by DLB)."""

    def on_team_hungry(self, team: "Team") -> None:
        """``team`` has runnable tasks it cannot dispatch (wants cores)."""

    def on_team_idle(self, team: "Team") -> None:
        """``team`` finished its graph (borrowed cores can be returned)."""


@dataclass
class GraphStats:
    """Execution statistics of one graph run on a team."""

    tasks_run: int = 0
    instructions: float = 0.0
    busy_seconds: float = 0.0       # sum over workers of task execution time
    overhead_seconds: float = 0.0   # task-management overhead (not useful work)
    t_start: float = 0.0
    t_end: float = 0.0
    max_concurrency: int = 0

    @property
    def makespan(self) -> float:
        """Wall-clock duration of the graph execution."""
        return self.t_end - self.t_start

    def ipc(self, core: CoreModel) -> float:
        """Achieved instructions-per-cycle over the busy time (as a
        hardware counter would measure it)."""
        if self.busy_seconds <= 0:
            return 0.0
        cycles = self.busy_seconds * core.freq_ghz * 1e9
        return self.instructions / cycles


class Team:
    """A rank's thread team: a malleable pool of simulated cores.

    Parameters
    ----------
    engine, core:
        DES engine and the core performance model of the host node.
    nthreads:
        Base worker count (the rank's own cores).
    task_overhead_s:
        Fixed runtime-bookkeeping cost added to every task execution
        (task creation + dependence management; relevant for multidep).
    rank / name:
        Identity used in traces.
    recorder:
        Optional object with ``record(rank, category, label, t0, t1)``.
    listener:
        Optional :class:`TeamListener` (DLB).
    """

    SCHEDULERS = ("lpt", "fifo", "lifo")

    def __init__(self, engine: Engine, core: CoreModel, nthreads: int,
                 task_overhead_s: float = 0.0, rank: int = 0, name: str = "",
                 recorder=None, listener: Optional[TeamListener] = None,
                 scheduler: str = "lpt"):
        if nthreads < 0:
            raise RuntimeError_(f"nthreads must be >= 0, got {nthreads}")
        if scheduler not in self.SCHEDULERS:
            raise RuntimeError_(
                f"unknown scheduler {scheduler!r}; available: "
                f"{self.SCHEDULERS}")
        self.engine = engine
        self.core = core
        self.base_threads = nthreads
        self.rank = rank
        self.name = name or f"team{rank}"
        self.task_overhead_s = task_overhead_s
        self.recorder = recorder
        self.listener = listener
        self.scheduler = scheduler
        self._max_workers = nthreads
        #: execution-time multiplier (> 1 under an injected DVFS throttle)
        self.slowdown = 1.0
        self._active = 0
        self._ready: deque[Task] = deque()
        self._held_refs: set = set()
        self._graph: Optional[TaskGraph] = None
        self._remaining = 0
        self._preds_left: list[int] = []
        self._done: Optional[Event] = None
        self._stats: Optional[GraphStats] = None
        self._hungry_notified = False
        self._fast = _perf_toggles.TOGGLES.runtime_fast_path
        # Heap-backed LPT ready queue (toggle captured at construction).
        # Entries are (-instr, seq, task): popping the heap min yields the
        # largest-instruction task, earliest arrival first — provably the
        # same task the linear argmax scan (strict >, FIFO tie-break)
        # selects, in O(log n) instead of O(n) per dispatch.
        self._use_heap = (scheduler == "lpt"
                          and _perf_toggles.TOGGLES.scheduler_heap)
        self._heap: list = []
        self._seq = 0

    # -- capacity (the DLB surface) -----------------------------------------
    @property
    def capacity(self) -> int:
        """Current worker-count ceiling (base + borrowed - lent)."""
        return self._max_workers

    @property
    def active_workers(self) -> int:
        """Workers currently executing a task."""
        return self._active

    @property
    def is_running(self) -> bool:
        """Whether a graph is currently being executed."""
        return self._graph is not None

    @property
    def ready_count(self) -> int:
        """Tasks currently ready (waiting for a worker)."""
        if self._use_heap:
            return len(self._heap)
        return len(self._ready)

    @property
    def wants_cores(self) -> bool:
        """Whether extra capacity would be used right now."""
        if self._graph is None or self._active < self._max_workers:
            return False
        held = self._held_refs
        if self._use_heap:
            if not held:
                return bool(self._heap)
            # existence check only — no need for the *best* runnable task
            return any(entry[2].mutex_refs.isdisjoint(held)
                       for entry in self._heap)
        if not held:
            # no mutexes held: any ready task is runnable
            return bool(self._ready)
        return self._runnable_index() is not None

    def set_capacity(self, n: int) -> None:
        """Change the worker ceiling; growth dispatches immediately, shrink
        takes effect as running tasks complete."""
        if n < 0:
            raise RuntimeError_(f"capacity must be >= 0, got {n}")
        grew = n > self._max_workers
        self._max_workers = n
        if grew and self._graph is not None:
            self._dispatch()

    def set_slowdown(self, factor: float) -> None:
        """Scale execution time of future tasks by ``factor`` (straggler or
        DVFS-throttle injection; ``1.0`` restores nominal speed).  Tasks
        already running finish at the speed they started with."""
        if factor <= 0:
            raise RuntimeError_(f"slowdown must be > 0, got {factor}")
        self.slowdown = factor

    # -- execution ------------------------------------------------------------
    def run(self, graph: TaskGraph):
        """Execute ``graph`` to completion (generator; use ``yield from``).

        Returns the :class:`GraphStats` of the run.
        """
        if self._graph is not None:
            raise RuntimeError_(f"{self.name}: run() while a graph is active")
        stats = GraphStats(t_start=self.engine.now)
        if len(graph) == 0:
            stats.t_end = self.engine.now
            return stats
        self._graph = graph
        self._stats = stats
        self._remaining = len(graph.tasks)
        self._preds_left = [t.n_preds for t in graph.tasks]
        if self._use_heap:
            for task in graph.roots():
                self._push_ready(task)
        else:
            self._ready.extend(graph.roots())
        self._done = self.engine.event()
        self._hungry_notified = False
        self._dispatch()
        result = yield self._done
        return result

    # -- internals --------------------------------------------------------
    def _runnable_index(self) -> Optional[int]:
        """Index in the ready deque of the best runnable task, if any.

        The default policy is largest-runnable-first (``lpt``): among
        mutex-free ready tasks, pick the one with the most work — the
        classic makespan heuristic, approximating what priority-aware task
        runtimes (Nanos) do.  Ties (and equal-size chunked loops) keep FIFO
        order, preserving the memory order of chunked traversals.

        ``fifo`` takes the oldest runnable task (breadth-first, best
        locality across a chunked traversal); ``lifo`` the newest
        (depth-first, cache-hot dependents first).
        """
        held = self._held_refs
        ready = self._ready
        if self.scheduler == "fifo":
            if not held:
                return 0 if ready else None
            for i, task in enumerate(ready):
                if task.mutex_refs.isdisjoint(held):
                    return i
            return None
        if self.scheduler == "lifo":
            if not held:
                return len(ready) - 1 if ready else None
            for i in range(len(ready) - 1, -1, -1):
                if ready[i].mutex_refs.isdisjoint(held):
                    return i
            return None
        best = None
        best_instr = -1.0
        if not held:
            # no mutexes held: plain argmax, skip the per-task set test
            for i, task in enumerate(ready):
                if task._instr > best_instr:
                    best = i
                    best_instr = task._instr
            return best
        for i, task in enumerate(ready):
            # instruction test first: it is cheaper than the set test and
            # the update condition is conjunctive either way
            instr = task._instr
            if instr > best_instr and task.mutex_refs.isdisjoint(held):
                best = i
                best_instr = instr
        return best

    def _push_ready(self, task: Task) -> None:
        """Add ``task`` to the LPT heap (seq = FIFO tie-break on equal work)."""
        self._seq += 1
        heapq.heappush(self._heap, (-task._instr, self._seq, task))

    def _dispatch_heap(self) -> None:
        """Heap-backed dispatch, task-for-task identical to `_dispatch`.

        With mutexes held, blocked heap entries are popped aside and pushed
        back after the pick: each keeps its original seq, so future ordering
        is unchanged.  With the default one-thread teams of the paper's
        configurations, ``held`` is almost always empty here and a dispatch
        is a single heappop.
        """
        heap = self._heap
        held = self._held_refs
        while self._active < self._max_workers and heap:
            if not held:
                task = heapq.heappop(heap)[2]
            else:
                blocked = []
                task = None
                while heap:
                    entry = heapq.heappop(heap)
                    if entry[2].mutex_refs.isdisjoint(held):
                        task = entry[2]
                        break
                    blocked.append(entry)
                for entry in blocked:
                    heapq.heappush(heap, entry)
                if task is None:
                    break
            if task.mutex_refs:
                held |= task.mutex_refs     # in-place: held is _held_refs
            self._active += 1
            if self._stats is not None:
                self._stats.max_concurrency = max(
                    self._stats.max_concurrency, self._active)
            if self._fast:
                self.engine.defer(self._start_task, task)
            else:
                self.engine.process(self._worker(task),
                                    name=f"{self.name}.{task.label}")
        if self.listener is not None and self._graph is not None:
            if self._active >= self._max_workers and heap:
                if not self._hungry_notified:
                    self._hungry_notified = True
                    self.listener.on_team_hungry(self)

    def _dispatch(self) -> None:
        if self._use_heap:
            self._dispatch_heap()
            return
        while self._active < self._max_workers:
            idx = self._runnable_index()
            if idx is None:
                break
            task = self._ready[idx]
            del self._ready[idx]
            if task.mutex_refs:
                self._held_refs |= task.mutex_refs
            self._active += 1
            if self._stats is not None:
                self._stats.max_concurrency = max(
                    self._stats.max_concurrency, self._active)
            if self._fast:
                # Callback-based execution: posts the same bootstrap event a
                # Process would, so the (time, seq) trajectory is identical —
                # minus the generator frame, the Process object and its
                # completion event.
                self.engine.defer(self._start_task, task)
            else:
                self.engine.process(self._worker(task),
                                    name=f"{self.name}.{task.label}")
        # Appetite signalling for DLB: hungry if capacity-bound work remains.
        if self.listener is not None and self._graph is not None:
            if self._active >= self._max_workers and self._ready:
                if not self._hungry_notified:
                    self._hungry_notified = True
                    self.listener.on_team_hungry(self)

    def _start_task(self, task: Task) -> None:
        """Begin executing ``task`` (fast path; runs at bootstrap-event pop,
        exactly where a worker generator would run up to its first yield)."""
        t0 = self.engine.now
        core = self.core
        if task._dur_core is core:
            base = task._dur
        else:
            # Task graphs are re-executed every simulated time step with the
            # same WorkSpec on the same core: compute the nominal duration
            # once and reuse the identical float thereafter.
            base = core.seconds(task.work)
            task._dur = base
            task._dur_core = core
        exec_seconds = base * self.slowdown
        self.engine.call_later(exec_seconds + self.task_overhead_s,
                               self._finish_task, task, t0, exec_seconds)

    def _finish_task(self, task: Task, t0: float, exec_seconds: float) -> None:
        """Task completion bookkeeping (fast path; runs at timeout pop,
        exactly where a worker generator would resume)."""
        t1 = self.engine.now
        stats = self._stats
        assert stats is not None
        stats.tasks_run += 1
        stats.instructions += task._instr
        stats.busy_seconds += exec_seconds
        stats.overhead_seconds += self.task_overhead_s
        if self.recorder is not None and task._instr > 0:
            self.recorder.record(self.rank, "task", task.label, t0, t1)
        if task.mutex_refs:
            self._held_refs -= task.mutex_refs
        self._active -= 1
        self._remaining -= 1
        graph = self._graph
        assert graph is not None
        if self._use_heap:
            for succ in task.successors:
                self._preds_left[succ] -= 1
                if self._preds_left[succ] == 0:
                    self._push_ready(graph.tasks[succ])
        else:
            for succ in task.successors:
                self._preds_left[succ] -= 1
                if self._preds_left[succ] == 0:
                    self._ready.append(graph.tasks[succ])
        if self._remaining == 0:
            stats.t_end = self.engine.now
            done = self._done
            self._graph = None
            self._stats = None
            self._done = None
            self._hungry_notified = False
            if self.listener is not None:
                self.listener.on_team_idle(self)
            assert done is not None
            done.succeed(stats)
        else:
            self._hungry_notified = False
            self._dispatch()

    def _worker(self, task: Task):
        # Baseline (pre-PR-2) generator path, kept for before/after
        # benchmarking; the fast path above is event-for-event equivalent.
        t0 = self.engine.now
        exec_seconds = self.core.seconds(task.work) * self.slowdown
        duration = exec_seconds + self.task_overhead_s
        yield self.engine.timeout(duration)
        self._finish_task(task, t0, exec_seconds)
