"""Parallelization strategies for the element loops (paper Fig. 4).

The finite-element matrix assembly is a loop over mesh elements whose nodal
scatter updates race between threads (two elements sharing a node update the
same matrix entries).  The paper evaluates three ways to parallelize it:

* **ATOMICS** (``omp parallel do`` + ``omp atomic``): elements are chunked in
  memory order; every nodal update is an atomic RMW.  Good locality, but the
  atomic instructions cost pipeline stalls — badly on out-of-order Intel
  cores, mildly on in-order Arm.

* **COLORING** (Farhat & Crivelli): elements are colored so that no two
  same-color elements share a node; each color is an atomic-free parallel
  loop, with a barrier between colors.  The price is locality: consecutive
  elements are in different colors, so the traversal scatters memory
  accesses (modelled as ``extra_miss_frac``).

* **MULTIDEP** (the paper's contribution): the rank's subdomain is
  partitioned into sub-subdomains; each becomes one task, declared
  ``MUTEXINOUTSET`` on itself and its neighbours (a runtime-computed
  dependence list — the OpenMP 5.0 iterator feature).  Adjacent subdomains
  never run concurrently, so no atomics are needed, and each task walks a
  memory-contiguous element range, preserving locality.  Only a small
  runtime-bookkeeping IPC derating (94-96 % of MPI-only IPC) and a per-task
  overhead remain.

The same builders serve the subgrid-scale (SGS) phase with
``race_free=True``: SGS has no shared updates, so the ATOMICS variant
degenerates to a plain parallel loop (no penalty) while coloring/multidep
keep their structural overheads — reproducing the <10 % overhead the paper
measures in Fig. 7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..machine import WorkSpec
from .taskgraph import DepType, TaskGraph

__all__ = ["Strategy", "StrategyParams", "build_element_loop_graph",
           "build_parallel_for_graph", "chunk_sizes"]


class Strategy(enum.Enum):
    """Parallelization strategy for racy element loops."""

    MPI_ONLY = "mpionly"      # one task, no threading machinery at all
    ATOMICS = "atomics"
    COLORING = "coloring"
    MULTIDEP = "multidep"


@dataclass(frozen=True)
class StrategyParams:
    """Tunables shared by the strategy builders.

    Attributes
    ----------
    chunks_per_thread:
        Parallel-for granularity: the loop is split into
        ``chunks_per_thread * nthreads`` chunks (OpenMP dynamic-ish).
    color_extra_miss_frac:
        Additional cache-miss fraction caused by the color-scattered
        traversal.
    multidep_ipc_factor:
        IPC derating of task execution under the multidep runtime
        (paper: 94-96 % of the MPI-only IPC).
    multidep_task_overhead_instr:
        Per-task creation/dependence-management cost, in instructions
        (runtime bookkeeping executes on the same core as the task).  The
        default keeps the overhead-to-task-size *ratio* of the production
        scale: Alya runs ~180k elements/rank split into tens of subdomain
        tasks (~10^7 instructions each) against a few-microsecond task
        overhead, i.e. overhead is ~0.02 % of task work.  Scaled meshes
        have proportionally smaller tasks, so the constant is small; see
        EXPERIMENTS.md.
    """

    chunks_per_thread: int = 4
    color_extra_miss_frac: float = 0.012
    multidep_ipc_factor: float = 0.95
    multidep_task_overhead_instr: float = 200.0


DEFAULT_PARAMS = StrategyParams()


def chunk_sizes(n: int, nchunks: int) -> list[int]:
    """Split ``n`` items into ``nchunks`` nearly equal contiguous chunks
    (empty chunks are dropped)."""
    if n <= 0:
        return []
    nchunks = max(1, min(nchunks, n))
    base, extra = divmod(n, nchunks)
    return [base + (1 if i < extra else 0) for i in range(nchunks)]


def _chunk_bounds(n: int, nchunks: int) -> list[tuple[int, int]]:
    sizes = chunk_sizes(n, nchunks)
    bounds = []
    start = 0
    for s in sizes:
        bounds.append((start, start + s))
        start += s
    return bounds


def build_element_loop_graph(
    element_instr: np.ndarray,
    element_atomics: np.ndarray,
    strategy: Strategy,
    nthreads: int,
    *,
    colors: Optional[np.ndarray] = None,
    sub_labels: Optional[np.ndarray] = None,
    sub_adjacency: Optional[Sequence[frozenset]] = None,
    race_free: bool = False,
    params: StrategyParams = DEFAULT_PARAMS,
    label: str = "assembly",
) -> TaskGraph:
    """Build the task graph of one racy element loop for ``strategy``.

    Parameters
    ----------
    element_instr:
        Instruction estimate per local element (memory order).
    element_atomics:
        Atomic nodal updates per element (memory order); converted to an
        instruction *fraction* in the ATOMICS strategy.
    strategy, nthreads:
        The parallelization variant and the team width it targets.
    colors:
        Per-element color ids (required for COLORING).
    sub_labels / sub_adjacency:
        Per-element subdomain ids and, per subdomain, the frozenset of
        neighbouring subdomain ids (required for MULTIDEP).
    race_free:
        True for loops with no shared updates (SGS): the ATOMICS variant
        then carries no atomic penalty.
    """
    element_instr = np.asarray(element_instr, dtype=np.float64)
    element_atomics = np.asarray(element_atomics, dtype=np.float64)
    if element_instr.shape != element_atomics.shape:
        raise ValueError("element_instr and element_atomics shape mismatch")
    n = element_instr.shape[0]
    graph = TaskGraph()
    if n == 0:
        return graph

    if strategy is Strategy.MPI_ONLY:
        graph.add_task(WorkSpec(float(element_instr.sum())),
                       label=f"{label}:mpionly")
        return graph

    nchunks = max(1, nthreads) * params.chunks_per_thread

    if strategy is Strategy.ATOMICS:
        # A chunked parallel loop over many elements is effectively
        # divisible work: emit equal-instruction chunks (integer-element
        # granularity is a scaled-mesh artifact; production loops have
        # thousands of elements per chunk).
        total = float(element_instr.sum())
        atomic_frac = 0.0
        if not race_free and total > 0:
            atomic_frac = min(1.0, float(element_atomics.sum()) / total)
        for c in range(nchunks):
            graph.add_task(WorkSpec(total / nchunks,
                                    atomic_frac=atomic_frac),
                           label=f"{label}:atomics[{c}]")
        return graph

    if strategy is Strategy.COLORING:
        if colors is None:
            raise ValueError("COLORING strategy requires per-element colors")
        colors = np.asarray(colors)
        if colors.shape[0] != n:
            raise ValueError("colors length mismatch")
        # Colors are separated by barriers: chunk tasks read a sentinel ref,
        # each barrier writes it, so color c+1 waits for color c to finish.
        sentinel = (label, "color-sequence")
        for color in np.unique(colors):
            mask = colors == color
            total = float(element_instr[mask].sum())
            if total <= 0:
                continue
            # divisible-chunk model (see the ATOMICS branch comment)
            for c in range(nchunks):
                graph.add_task(
                    WorkSpec(total / nchunks,
                             extra_miss_frac=params.color_extra_miss_frac),
                    label=f"{label}:color{color}[{c}]",
                    depend={DepType.IN: [sentinel]})
            graph.add_task(WorkSpec(0.0),
                           label=f"{label}:colorbarrier{color}",
                           depend={DepType.INOUT: [sentinel]})
        return graph

    if strategy is Strategy.MULTIDEP:
        if sub_labels is None or sub_adjacency is None:
            raise ValueError(
                "MULTIDEP strategy requires sub_labels and sub_adjacency")
        sub_labels = np.asarray(sub_labels)
        if sub_labels.shape[0] != n:
            raise ValueError("sub_labels length mismatch")
        instr_per_sub = np.bincount(sub_labels,
                                    weights=element_instr,
                                    minlength=len(sub_adjacency))
        for s, instr in enumerate(instr_per_sub):
            if instr <= 0:
                continue
            # The multidependence: a runtime-computed list of refs.  Each
            # shared boundary (unordered subdomain pair) is one ref, so two
            # tasks conflict iff their subdomains are adjacent — non-adjacent
            # subdomains run concurrently even when they share a neighbour.
            refs = {s} | {frozenset((s, t)) for t in sub_adjacency[s]}
            graph.add_task(
                WorkSpec(float(instr) + params.multidep_task_overhead_instr,
                         ipc_factor=params.multidep_ipc_factor),
                label=f"{label}:sub{s}",
                depend={DepType.MUTEXINOUTSET: refs})
        return graph

    raise ValueError(f"unknown strategy {strategy!r}")


def build_parallel_for_graph(work_items: np.ndarray, nthreads: int,
                             *, chunks_per_thread: int = 4,
                             min_chunks: int = 1,
                             label: str = "loop") -> TaskGraph:
    """A plain (race-free, penalty-free) chunked parallel loop.

    Used for the solver kernels and the particle-transport phase; the chunk
    structure is what makes those phases *malleable* so that DLB-borrowed
    cores can help.
    """
    work_items = np.asarray(work_items, dtype=np.float64)
    graph = TaskGraph()
    n = work_items.shape[0]
    if n == 0:
        return graph
    nchunks = max(min_chunks, max(1, nthreads) * chunks_per_thread)
    for lo, hi in _chunk_bounds(n, nchunks):
        instr = float(work_items[lo:hi].sum())
        if instr <= 0:
            continue
        graph.add_task(WorkSpec(instr), label=f"{label}[{lo}:{hi}]")
    return graph
