"""DLB — Dynamic Load Balancing library (LeWI policy).

Reimplementation of the behaviour of BSC's DLB library as evaluated in the
paper: a runtime that is *transparent to the application* (it attaches via
PMPI interception and resizes OpenMP teams; no source changes) and reacts to
load imbalance as it appears:

* when an MPI process enters a blocking MPI call, its cores are **lent** to
  the node-local pool (LeWI: "Lend When Idle");
* hungry teams on the same node (those with more runnable tasks than cores)
  **borrow** from the pool immediately;
* when the blocked process returns from MPI it **reclaims** its cores —
  taken back from the pool or, if already re-assigned, from borrowers at
  task-boundary granularity (the granularity at which the real DLB acts via
  ``omp_set_num_threads``).

DLB only ever moves cores *within a node* (it works over shared memory),
which is why the process-to-node mapping matters for coupled executions.

Usage::

    world = World(engine, cluster, nranks)
    dlb = DLB(world)                    # registers the PMPI hook
    dlb.attach_team(rank, team)         # one team per rank
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..smpi import World
from .runtime import Team

__all__ = ["DLB", "DLBStats"]


@dataclass
class DLBStats:
    """Counters describing DLB activity during a run."""

    lend_events: int = 0
    borrow_events: int = 0
    reclaim_events: int = 0
    cores_lent_total: int = 0
    cores_borrowed_total: int = 0
    max_team_capacity: int = 0
    rank_death_events: int = 0
    cores_inherited: int = 0      # dead ranks' cores absorbed into pools
    throttle_events: int = 0


class DLB:
    """LeWI dynamic load balancing over a simulated MPI world.

    Parameters
    ----------
    world:
        The MPI job to attach to (the PMPI hook is registered here).
    enabled:
        If False the object records nothing and never moves cores — handy
        for "original vs DLB" experiment sweeps sharing one code path.
    """

    POLICIES = ("lewi", "lewi_half")

    def __init__(self, world: World, enabled: bool = True,
                 policy: str = "lewi"):
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown DLB policy {policy!r}; available: {self.POLICIES}")
        self.world = world
        self.enabled = enabled
        self.policy = policy
        self.teams: Dict[int, Team] = {}
        self._pool: Dict[int, int] = {}          # node -> spare cores
        self._lent: Dict[int, int] = {}          # rank -> cores donated
        self._borrowed: Dict[int, int] = {}      # rank -> extra cores held
        self._in_mpi: Dict[int, bool] = {}
        self._dead: set[int] = set()
        # node -> attached ranks in attach order (the iteration order the
        # lend/feed scans used when filtering ``self.teams`` by node), and
        # rank -> node, so the per-event scans skip the world lookups.
        self._node_teams: Dict[int, list] = {}
        self._team_node: Dict[int, int] = {}
        self.stats = DLBStats()
        if enabled:
            world.hooks.register(self)

    # -- setup ----------------------------------------------------------------
    def attach_team(self, rank: int, team: Team) -> None:
        """Register the thread team of ``rank`` for balancing."""
        self.teams[rank] = team
        self._lent[rank] = 0
        self._borrowed[rank] = 0
        self._in_mpi[rank] = False
        node = self.world.node_of(rank)
        self._team_node[rank] = node
        self._node_teams.setdefault(node, []).append(rank)
        self._pool.setdefault(node, 0)
        if self.enabled:
            team.listener = self

    # -- PMPI hook interface ----------------------------------------------------
    def on_mpi_enter(self, rank: int, call: str) -> None:
        """PMPI hook: ``rank`` blocked in MPI — lend its idle cores."""
        if rank not in self.teams or rank in self._dead:
            return
        self._in_mpi[rank] = True
        team = self.teams[rank]
        if team.is_running and team.active_workers > 0:
            return  # mid-graph blocking: keep the cores (rare in fork-join)
        node = self._team_node[rank]
        own_available = team.base_threads - self._lent[rank]
        if self.policy == "lewi_half" and own_available > 1:
            # conservative variant: keep half of the own cores so reclaim
            # after short MPI calls is instantaneous
            own_lend = (own_available + 1) // 2
        else:
            own_lend = own_available
        give = self._borrowed[rank] + own_lend
        if give <= 0:
            return
        self._borrowed[rank] = 0
        self._lent[rank] += own_lend
        team.set_capacity(team.base_threads - self._lent[rank])
        self._pool[node] += give
        self.stats.lend_events += 1
        self.stats.cores_lent_total += give
        self._feed(node)

    def on_mpi_exit(self, rank: int, call: str) -> None:
        """PMPI hook: ``rank`` resumed — reclaim its lent cores."""
        if rank not in self.teams or rank in self._dead:
            return
        self._in_mpi[rank] = False
        team = self.teams[rank]
        need = self._lent[rank]
        if need <= 0:
            return
        node = self._team_node[rank]
        taken = min(need, self._pool[node])
        self._pool[node] -= taken
        need -= taken
        if need > 0:
            # Pull back from borrowers (largest borrowers first).
            for other in sorted(self._borrowers_on(node),
                                key=lambda r: -self._borrowed[r]):
                if need <= 0:
                    break
                k = min(need, self._borrowed[other])
                self._borrowed[other] -= k
                other_team = self.teams[other]
                other_team.set_capacity(other_team.capacity - k)
                need -= k
        if need > 0:  # pragma: no cover - accounting invariant
            raise RuntimeError(
                f"DLB lost track of {need} cores for rank {rank}")
        self._lent[rank] = 0
        team.set_capacity(team.base_threads)
        self.stats.reclaim_events += 1

    # -- Team listener interface -------------------------------------------------
    def on_team_hungry(self, team: Team) -> None:
        """Team listener: grant pooled cores to a capacity-bound team."""
        rank = team.rank
        if rank not in self.teams or self._in_mpi.get(rank) \
                or rank in self._dead:
            return
        node = self._team_node[rank]
        self._grant(node, rank)

    def on_team_idle(self, team: Team) -> None:
        """Team listener: return a finished team's borrowed cores."""
        rank = team.rank
        if rank not in self.teams or rank in self._dead:
            return
        extra = self._borrowed[rank]
        if extra <= 0:
            return
        node = self._team_node[rank]
        self._borrowed[rank] = 0
        team.set_capacity(team.base_threads - self._lent[rank])
        self._pool[node] += extra
        self._feed(node)

    # -- fault reaction (graceful degradation) ------------------------------
    def on_rank_death(self, rank: int) -> None:
        """Absorb a dead rank's cores into its node pool permanently.

        The dead rank's whole current capacity (own cores minus lent plus
        borrowed) goes to the pool, where surviving hungry teams on the node
        pick it up — the run degrades instead of idling the hardware.
        """
        if rank not in self.teams or rank in self._dead:
            return
        self._dead.add(rank)
        team = self.teams[rank]
        node = self._team_node[rank]
        inherited = team.capacity
        if inherited > 0:
            self._pool[node] = self._pool.get(node, 0) + inherited
        # Freeze the dead team's books so reclaim math stays conserved.
        self._borrowed[rank] = 0
        self._lent[rank] = team.base_threads
        team.set_capacity(0)
        self.stats.rank_death_events += 1
        self.stats.cores_inherited += inherited
        if self.enabled:
            self._feed(node)

    def on_rank_throttle(self, rank: int, factor: float) -> None:
        """Record an injected throttle on ``rank`` (cores keep their count;
        the Team's slowdown stretches task durations, and LeWI naturally
        shifts work away because the straggler stays busy longer)."""
        if rank not in self.teams:
            return
        self.teams[rank].set_slowdown(factor)
        self.stats.throttle_events += 1

    # -- internals --------------------------------------------------------
    def _borrowers_on(self, node: int):
        return [r for r in self._node_teams.get(node, ())
                if self._borrowed[r] > 0 and r not in self._dead]

    def _grant(self, node: int, rank: int) -> None:
        """Give pool cores to ``rank``'s team, bounded by its appetite."""
        pool = self._pool.get(node, 0)
        if pool <= 0:
            return
        team = self.teams[rank]
        appetite = team.ready_count
        k = min(pool, appetite)
        if k <= 0:
            return
        self._pool[node] = pool - k
        self._borrowed[rank] += k
        team.set_capacity(team.capacity + k)
        self.stats.borrow_events += 1
        self.stats.cores_borrowed_total += k
        self.stats.max_team_capacity = max(self.stats.max_team_capacity,
                                           team.capacity)

    def _feed(self, node: int) -> None:
        """Distribute pooled cores among currently hungry teams on ``node``."""
        hungry = [r for r in self._node_teams.get(node, ())
                  if not self._in_mpi.get(r)
                  and r not in self._dead
                  and self.teams[r].wants_cores]
        for rank in hungry:
            if self._pool.get(node, 0) <= 0:
                break
            self._grant(node, rank)

    # -- introspection -----------------------------------------------------
    def pool_size(self, node: int) -> int:
        """Spare cores currently pooled on ``node``."""
        return self._pool.get(node, 0)

    def borrowed_by(self, rank: int) -> int:
        """Extra cores ``rank``'s team currently holds."""
        return self._borrowed.get(rank, 0)
