"""Task graphs with OpenMP 5.0 / OmpSs dependence semantics.

This is the data model behind the paper's *multidependences* technique.  A
:class:`Task` declares dependences on abstract *data references* (any hashable
object) with one of four access types:

* ``IN`` — reads the ref: ordered after the last writer.
* ``OUT`` / ``INOUT`` — writes the ref: ordered after all previous accesses.
* ``MUTEXINOUTSET`` — the OpenMP 5.0 relationship the paper evaluates: two
  tasks touching the same ref *cannot run concurrently*, but their order is
  irrelevant.  It expresses "incompatibility" without serialization, which is
  exactly what adjacent mesh subdomains need in the FE assembly.

The *multidependence* (dependence iterator) feature — a runtime-computed
list of dependences — is natural here: the strategy code passes the list of
neighbouring subdomain ids produced by the partitioner, whose length is only
known at run time (OpenMP 5.0 ``iterator`` clause; early OmpSs implementation
per the paper).

Ordered dependences become DAG edges; ``MUTEXINOUTSET`` refs become runtime
mutexes acquired atomically by the scheduler (order-free mutual exclusion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Optional

from ..machine import WorkSpec

__all__ = ["DepType", "Task", "TaskGraph", "TaskGraphError"]


class TaskGraphError(RuntimeError):
    """Raised on malformed task graphs (cycles, duplicate ids, ...)."""


class DepType(enum.Enum):
    """Access mode of a task on a data reference."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    MUTEXINOUTSET = "mutexinoutset"


@dataclass
class Task:
    """A schedulable unit of work.

    Attributes
    ----------
    tid:
        Unique id within its graph.
    work:
        The :class:`~repro.machine.arch.WorkSpec` the executing core will be
        charged for.
    label:
        Human-readable tag (shows up in traces).
    mutex_refs:
        Data refs this task holds in ``MUTEXINOUTSET`` mode (filled by the
        graph from the dependence declarations).
    """

    tid: int
    work: WorkSpec
    label: str = ""
    mutex_refs: frozenset = field(default_factory=frozenset)
    # Scheduling state (owned by the graph/runtime):
    n_preds: int = 0
    successors: list[int] = field(default_factory=list)
    # Cached nominal duration on a given core (owned by Team: graphs are
    # re-executed every time step with an immutable WorkSpec, so the float
    # is computed once per (task, core) and reused bit-for-bit).
    _dur_core: Optional[object] = field(default=None, repr=False,
                                        compare=False)
    _dur: float = field(default=0.0, repr=False, compare=False)
    # Cached work.instructions (read once per task per lpt scheduler scan;
    # WorkSpec is immutable, so the copy can never go stale).
    _instr: float = field(default=0.0, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._instr = self.work.instructions


class TaskGraph:
    """A DAG of tasks plus mutual-exclusion groups.

    Build with :meth:`add_task`, declaring dependences OmpSs-style::

        g = TaskGraph()
        a = g.add_task(work, depend={DepType.OUT: ["x"]})
        b = g.add_task(work, depend={DepType.IN: ["x"]})          # b after a
        c = g.add_task(work, depend={DepType.MUTEXINOUTSET: [1, 2]})
        d = g.add_task(work, depend={DepType.MUTEXINOUTSET: [2, 3]})
        # c and d are mutually exclusive (share ref 2) but unordered.
    """

    def __init__(self) -> None:
        self.tasks: list[Task] = []
        # last writer / readers-since-last-write, per ordered data ref
        self._last_writer: dict[Hashable, int] = {}
        self._readers_since_write: dict[Hashable, list[int]] = {}

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total_instructions(self) -> float:
        """Sum of instruction counts over all tasks."""
        return sum(t.work.instructions for t in self.tasks)

    def add_task(self, work: WorkSpec, label: str = "",
                 depend: Optional[dict] = None) -> Task:
        """Append a task, wiring dependences against earlier tasks.

        ``depend`` maps :class:`DepType` to an iterable of data refs.  The
        iterable may be computed at run time (multidependences).
        """
        tid = len(self.tasks)
        task = Task(tid=tid, work=work, label=label or f"task{tid}")
        preds: set[int] = set()
        mutex: set = set()
        if depend:
            for dep_type, refs in depend.items():
                if not isinstance(dep_type, DepType):
                    raise TaskGraphError(
                        f"dependence key must be DepType, got {dep_type!r}")
                for ref in refs:
                    if dep_type is DepType.IN:
                        w = self._last_writer.get(ref)
                        if w is not None:
                            preds.add(w)
                        self._readers_since_write.setdefault(ref, []).append(tid)
                    elif dep_type in (DepType.OUT, DepType.INOUT):
                        readers = self._readers_since_write.get(ref, ())
                        if readers:
                            # The writer edge is implied transitively
                            # through the readers (OmpSs-style tracking).
                            preds.update(readers)
                        else:
                            w = self._last_writer.get(ref)
                            if w is not None:
                                preds.add(w)
                        self._last_writer[ref] = tid
                        self._readers_since_write[ref] = []
                    else:  # MUTEXINOUTSET
                        mutex.add(ref)
        task.mutex_refs = frozenset(mutex)
        preds.discard(tid)
        task.n_preds = len(preds)
        for p in preds:
            self.tasks[p].successors.append(tid)
        self.tasks.append(task)
        return task

    def add_barrier(self, label: str = "barrier") -> Task:
        """A zero-work task ordered after *every* task added so far.

        Used by the coloring strategy: tasks of color ``c+1`` may only start
        once all tasks of color ``c`` finished.  Implemented with a sentinel
        ref so the edge count stays linear.
        """
        # Depend IN on nothing; explicit edges from all current sinks:
        tid = len(self.tasks)
        task = Task(tid=tid, work=WorkSpec(0.0), label=label)
        preds = [t.tid for t in self.tasks if not t.successors]
        task.n_preds = len(preds)
        for p in preds:
            self.tasks[p].successors.append(tid)
        self.tasks.append(task)
        return task

    # -- queries -----------------------------------------------------------
    def roots(self) -> list[Task]:
        """Tasks with no predecessors (immediately ready, modulo mutexes)."""
        return [t for t in self.tasks if t.n_preds == 0]

    def validate(self) -> None:
        """Check the graph is a DAG (raises :class:`TaskGraphError` if not)."""
        indeg = [t.n_preds for t in self.tasks]
        stack = [t.tid for t in self.tasks if indeg[t.tid] == 0]
        seen = 0
        while stack:
            tid = stack.pop()
            seen += 1
            for s in self.tasks[tid].successors:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if seen != len(self.tasks):
            raise TaskGraphError(
                f"cycle detected: visited {seen} of {len(self.tasks)} tasks")

    def conflicts(self, a: Task, b: Task) -> bool:
        """Whether two tasks are mutually exclusive via MUTEXINOUTSET refs."""
        return bool(a.mutex_refs & b.mutex_refs)

    def critical_path(self) -> tuple[float, list[int]]:
        """Longest instruction-weighted path through the ordered DAG.

        Returns (length in instructions, task ids along the path).  Mutex
        constraints are ignored (they impose no order), so this is a lower
        bound on any schedule's weighted depth and — divided into
        :attr:`total_instructions` — an upper bound on usable parallelism.
        """
        n = len(self.tasks)
        if n == 0:
            return 0.0, []
        indeg = [t.n_preds for t in self.tasks]
        dist = [t.work.instructions for t in self.tasks]
        best_pred = [-1] * n
        stack = [t.tid for t in self.tasks if indeg[t.tid] == 0]
        seen = 0
        while stack:
            tid = stack.pop()
            seen += 1
            for s in self.tasks[tid].successors:
                cand = dist[tid] + self.tasks[s].work.instructions
                if cand > dist[s]:
                    dist[s] = cand
                    best_pred[s] = tid
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if seen != n:
            raise TaskGraphError("cycle detected during critical path")
        end = int(max(range(n), key=lambda i: dist[i]))
        path = [end]
        while best_pred[path[-1]] >= 0:
            path.append(best_pred[path[-1]])
        return float(dist[end]), path[::-1]

    def average_parallelism(self) -> float:
        """Total work / critical path: the DAG's inherent parallelism."""
        length, _ = self.critical_path()
        if length <= 0:
            return 1.0
        return self.total_instructions / length
