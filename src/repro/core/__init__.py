"""The paper's contribution: task-based runtime techniques.

* :mod:`repro.core.taskgraph` — dependence model incl. ``MUTEXINOUTSET`` and
  runtime-computed multidependences (OpenMP 5.0 iterators).
* :mod:`repro.core.runtime` — malleable OmpSs-like task execution teams.
* :mod:`repro.core.strategies` — atomics / coloring / multidependences
  parallelizations of racy element loops (paper Fig. 4).
* :mod:`repro.core.dlb` — the DLB/LeWI dynamic load balancing library
  attached via PMPI interception (paper Sec. 3.2).
"""

from .dlb import DLB, DLBStats
from .runtime import GraphStats, Team, TeamListener
from .strategies import (
    DEFAULT_PARAMS,
    Strategy,
    StrategyParams,
    build_element_loop_graph,
    build_parallel_for_graph,
    chunk_sizes,
)
from .taskgraph import DepType, Task, TaskGraph, TaskGraphError

__all__ = [
    "DLB",
    "DLBStats",
    "DEFAULT_PARAMS",
    "DepType",
    "GraphStats",
    "Strategy",
    "StrategyParams",
    "Task",
    "TaskGraph",
    "TaskGraphError",
    "Team",
    "TeamListener",
    "build_element_loop_graph",
    "build_parallel_for_graph",
    "chunk_sizes",
]
