"""Finite-element matrix assembly (the paper's "Matrix assembly" phase).

Assembles stabilized scalar operators representing the Navier-Stokes blocks
solved by Alya's fractional-step VMS scheme:

* **momentum-like operator**: ``M/dt + C(u) + kappa K`` (mass + convection +
  diffusion, with a SUPG/VMS-style stabilization term), and
* **continuity-like operator** (pressure Poisson): ``K`` (+ small mass
  regularization so the pure-Neumann system stays SPD).

The numeric path is real — element Jacobians, quadrature loops (vectorized
over elements), CSR scatter with duplicate summation — and is exactly the
computation whose *nodal scatter* causes the race the paper's strategies
manage: two elements sharing a node update the same CSR entries.

Besides the matrix, the assembly returns per-element **work meters**
(instruction estimates and atomic-update counts per element) consumed by the
performance layer; the constants live in :mod:`repro.app.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from ..mesh.elements import ElementType, NODES_PER_TYPE
from ..mesh.mesh import Mesh
from ..perf import toggles as _perf_toggles
from . import geometry as _geom
from .shape import reference_element

__all__ = ["AssemblyResult", "assemble_operator", "element_work_meters"]

_STALE_MSG = (
    "cached assembly pattern is stale: the mesh connectivity "
    "changed after the first assembly (the pattern cache "
    "assumes a static mesh)")


@dataclass
class _CSRPattern:
    """Cached sparsity pattern of one (mesh, element set) assembly.

    ``slot[k]`` is the CSR data index receiving the ``k``-th scattered COO
    value (in the deterministic per-element-type concatenation order of
    :func:`assemble_operator`), so a repeated assembly reduces to one
    ``np.bincount`` scatter.  ``indices``/``indptr`` are shared between all
    matrices assembled from this pattern — treat them as read-only.

    The cache assumes the mesh geometry/connectivity is static (the paper's
    case: one airway mesh per run), like ``Mesh.centroids()``.
    """

    slot: np.ndarray       # (ncoo,) data index per scattered value
    nval: int              # expected ncoo (consistency check)
    nnz: int               # stored entries of the CSR matrix
    indices: np.ndarray    # (nnz,) CSR column indices
    indptr: np.ndarray     # (n+1,) CSR row pointers


def _build_csr_pattern(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
                       n: int) -> tuple["sparse.csr_matrix", _CSRPattern]:
    """Deduplicate COO triplets into a CSR matrix plus its reusable pattern.

    Deterministic replacement for ``coo_matrix(...).tocsr()``: duplicates
    are summed in lexicographic (row, col, scatter-order) order via a stable
    sort, so repeated assemblies through the returned pattern are
    bit-identical to this first one.  (SciPy's ``tocsr`` sums duplicates in
    an implementation-defined order; values may differ from it in the last
    ulp, which every consumer tolerates — simulated-time results depend only
    on the sparsity *structure*, which matches exactly.)
    """
    order = np.lexsort((cols, rows))
    rs, cs = rows[order], cols[order]
    newgrp = np.empty(len(rs), dtype=bool)
    newgrp[0] = True
    np.logical_or(rs[1:] != rs[:-1], cs[1:] != cs[:-1], out=newgrp[1:])
    slot_sorted = np.cumsum(newgrp) - 1
    slot = np.empty(len(rs), dtype=np.int64)
    slot[order] = slot_sorted
    nnz = int(slot_sorted[-1]) + 1
    data = np.bincount(slot, weights=vals, minlength=nnz)
    indices = cs[newgrp]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rs[newgrp], minlength=n), out=indptr[1:])
    matrix = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
    # keep the (possibly dtype-canonicalized) arrays scipy settled on, so
    # later constructions from the pattern never re-cast
    pattern = _CSRPattern(slot=slot, nval=len(vals), nnz=nnz,
                          indices=matrix.indices, indptr=matrix.indptr)
    return matrix, pattern


@dataclass
class AssemblyResult:
    """Output of :func:`assemble_operator`."""

    matrix: sparse.csr_matrix
    rhs: np.ndarray
    #: per processed element (in the order of ``element_ids``): number of
    #: scattered matrix/vector entries — the atomic updates of the ATOMICS
    #: strategy.
    scatter_counts: np.ndarray
    #: per processed element: nodes
    element_nodes: np.ndarray


def _geometry(coords: np.ndarray, conn: np.ndarray, ref):
    """Per-element, per-quadrature-point physical gradients and |J| dV.

    Returns (grads, dvol, jac_ok) with grads (ne, nq, nn, 3) and dvol
    (ne, nq).
    """
    xe = coords[conn]                                     # (ne, nn, 3)
    # J[e,q,i,j] = sum_n dN[q,n,i] * xe[e,n,j]  =  dx_j / dxi_i
    J = np.einsum("qni,enj->eqij", ref.dN, xe)
    detJ = np.linalg.det(J)
    invJ = np.linalg.inv(J)
    # chain rule: dN/dx_j = dN/dxi_i * dxi_i/dx_j, and since J is the
    # transposed conventional Jacobian, dxi_i/dx_j = invJ[j, i].
    grads = np.einsum("qni,eqji->eqnj", ref.dN, invJ)
    dvol = np.abs(detJ) * ref.weights[None, :]
    return grads, dvol


def _type_blocks(mesh: Mesh, element_ids: np.ndarray, use_geom: bool,
                 cache=None):
    """Yield per-element-type ``(nn, ref, eids, conn, grads, dvol, h, Ndvol)``.

    With ``use_geom`` the geometry comes from the shared static-geometry
    cache (:mod:`repro.fem.geometry`, bit-identical arrays); otherwise it is
    recomputed inline (the pre-cache code path) and ``h``/``Ndvol`` are
    ``None`` — consumers derive them on demand, keeping the baseline's exact
    operation sequence.
    """
    if use_geom:
        for blk in _geom.geometry_blocks(mesh, element_ids, cache=cache):
            yield (NODES_PER_TYPE[blk.etype], reference_element(blk.etype),
                   blk.eids, blk.conn, blk.grads, blk.dvol, blk.h, blk.Ndvol)
        return
    etype_arr = mesh.elem_types[element_ids]
    for etype in ElementType:
        sel = etype_arr == etype
        eids = element_ids[sel]
        if len(eids) == 0:
            continue
        nn = NODES_PER_TYPE[etype]
        ref = reference_element(etype)
        conn = mesh.elem_nodes[eids][:, :nn]
        grads, dvol = _geometry(mesh.coords, conn, ref)
        yield nn, ref, eids, conn, grads, dvol, None, None


def assemble_operator(mesh: Mesh,
                      kappa: float = 1.0,
                      mass_coeff: float = 0.0,
                      velocity: Optional[np.ndarray] = None,
                      stabilize: bool = True,
                      element_ids: Optional[np.ndarray] = None,
                      source: float = 0.0) -> AssemblyResult:
    """Assemble ``mass_coeff*M + C(velocity) + kappa*K`` over the mesh.

    Parameters
    ----------
    mesh:
        The (possibly hybrid) mesh.
    kappa:
        Diffusion coefficient (viscosity-like).
    mass_coeff:
        Coefficient of the mass matrix (``rho/dt`` in the momentum step;
        ``0`` gives a pure Poisson operator).
    velocity:
        Optional (nnodes, 3) advection field; adds the convection operator
        with SUPG/VMS stabilization (the paper's VMS scheme).
    element_ids:
        Restrict assembly to these elements (a rank's local domain).  The
        result matrix is still global-sized; only local entries are filled —
        mirroring Alya's local assembly with no MPI communication.
    source:
        Constant volumetric source assembled into the RHS.
    """
    n = mesh.nnodes
    if element_ids is None:
        element_ids = np.arange(mesh.nelem)
    element_ids = np.asarray(element_ids)

    toggles = _perf_toggles.TOGGLES
    if toggles.operator_split and toggles.assembly_pattern_cache:
        # operator-split incremental assembly: constant blocks cached per
        # (mesh, element set, coefficients), only the velocity-dependent
        # part recomputed per call (scatters through the cached pattern —
        # hence the assembly_pattern_cache requirement)
        return _assemble_split(mesh, kappa, mass_coeff, velocity, stabilize,
                               element_ids, source, toggles)

    rows_all, cols_all, vals_all = [], [], []
    rhs = np.zeros(n)
    scatter = np.zeros(len(element_ids), dtype=np.int64)
    elem_nn = np.zeros(len(element_ids), dtype=np.int32)
    # vectorized element-id -> local-position map (searchsorted over the
    # argsorted ids; replaces a python dict + np.fromiter per type)
    id_order = np.argsort(element_ids, kind="stable")
    sorted_ids = element_ids[id_order]

    pattern: Optional[_CSRPattern] = None
    pattern_cache: Optional[dict] = None
    pattern_key = None
    if toggles.assembly_pattern_cache:
        pattern_cache = mesh.__dict__.setdefault("_asm_pattern_cache", {})
        pattern_key = (n, element_ids.tobytes())
        pattern = pattern_cache.get(pattern_key)

    for nn, ref, eids, conn, grads, dvol, h_cached, _ in _type_blocks(
            mesh, element_ids, toggles.geometry_cache):
        # diffusion: K_ab = sum_q kappa grad_a . grad_b dV
        Ke = kappa * np.einsum("eqaj,eqbj,eq->eab", grads, grads, dvol)
        if mass_coeff != 0.0:
            Ke += mass_coeff * np.einsum("qa,qb,eq->eab", ref.N, ref.N, dvol)
        if velocity is not None:
            # advection velocity at quadrature points
            uq = np.einsum("qa,eaj->eqj", ref.N, velocity[conn])
            # C_ab = N_a (u . grad N_b) dV
            ugb = np.einsum("eqj,eqbj->eqb", uq, grads)
            Ke += np.einsum("qa,eqb,eq->eab", ref.N, ugb, dvol)
            if stabilize:
                # VMS/SUPG-style: tau (u.grad N_a)(u.grad N_b), with
                # tau ~ h / (2|u|) per element.
                if h_cached is not None:
                    h = h_cached                                   # (ne,)
                else:
                    h = np.cbrt(dvol.sum(axis=1))                  # (ne,)
                umag = np.linalg.norm(uq, axis=2).mean(axis=1)     # (ne,)
                tau = h / (2.0 * umag + 1e-12)
                uga = ugb  # same contraction for the 'a' index
                Ke += np.einsum("e,eqa,eqb,eq->eab", tau, uga, ugb, dvol)
        # scatter
        if pattern is None:
            # COO triplets only needed when no cached sparsity pattern
            # exists for this (mesh, element set)
            rows = np.repeat(conn, nn, axis=1).ravel()
            cols = np.tile(conn, (1, nn)).ravel()
            rows_all.append(rows)
            cols_all.append(cols)
        vals_all.append(Ke.ravel())
        if source != 0.0:
            fe = source * np.einsum("qa,eq->ea", ref.N, dvol)
            np.add.at(rhs, conn.ravel(), fe.ravel())
        pos = id_order[np.searchsorted(sorted_ids, eids)]
        scatter[pos] = nn * nn + nn   # matrix entries + rhs entries
        elem_nn[pos] = nn

    if pattern is not None:
        vals = np.concatenate(vals_all) if vals_all else np.zeros(0)
        if len(vals) != pattern.nval:
            raise ValueError(_STALE_MSG)
        data = np.bincount(pattern.slot, weights=vals,
                           minlength=pattern.nnz)
        matrix = sparse.csr_matrix(
            (data, pattern.indices, pattern.indptr), shape=(n, n))
    elif rows_all:
        if pattern_cache is not None:
            matrix, pattern = _build_csr_pattern(
                np.concatenate(rows_all), np.concatenate(cols_all),
                np.concatenate(vals_all), n)
            pattern_cache[pattern_key] = pattern
        else:
            matrix = sparse.coo_matrix(
                (np.concatenate(vals_all),
                 (np.concatenate(rows_all), np.concatenate(cols_all))),
                shape=(n, n)).tocsr()
    else:
        matrix = sparse.csr_matrix((n, n))
    return AssemblyResult(matrix=matrix, rhs=rhs, scatter_counts=scatter,
                          element_nodes=elem_nn)


@dataclass
class _SplitConst:
    """Cached constant part of one operator-split assembly.

    Holds the velocity-independent ``mass_coeff*M + kappa*K`` CSR data
    (deduplicated through the shared :class:`_CSRPattern`), the constant
    source RHS and the work meters.  Stored in the mesh's geometry cache
    (:mod:`repro.fem.geometry`), so mesh mutation invalidates it; the
    pattern itself stays in ``mesh._asm_pattern_cache`` (shared with the
    monolithic path).
    """

    pattern: Optional[_CSRPattern]   # None for an empty element set
    data: Optional[np.ndarray]       # (nnz,) constant CSR data
    rhs: np.ndarray
    scatter: np.ndarray
    elem_nn: np.ndarray

    @property
    def nbytes(self) -> int:
        """Resident bytes (the pattern is accounted by its own cache)."""
        total = self.rhs.nbytes + self.scatter.nbytes + self.elem_nn.nbytes
        if self.data is not None:
            total += self.data.nbytes
        return total


def _build_split_const(mesh: Mesh, element_ids: np.ndarray, kappa: float,
                       mass_coeff: float, source: float, n: int,
                       ids_key: bytes, use_geom: bool,
                       gcache) -> _SplitConst:
    """Assemble the constant blocks once for a (mesh, element set, coeffs)."""
    rows_all, cols_all, vals_all = [], [], []
    rhs = np.zeros(n)
    scatter = np.zeros(len(element_ids), dtype=np.int64)
    elem_nn = np.zeros(len(element_ids), dtype=np.int32)
    id_order = np.argsort(element_ids, kind="stable")
    sorted_ids = element_ids[id_order]
    pattern_cache = mesh.__dict__.setdefault("_asm_pattern_cache", {})
    pattern = pattern_cache.get((n, ids_key))
    for nn, ref, eids, conn, grads, dvol, _h, _Ndvol in _type_blocks(
            mesh, element_ids, use_geom, cache=gcache):
        Ke = kappa * np.einsum("eqaj,eqbj,eq->eab", grads, grads, dvol)
        if mass_coeff != 0.0:
            Ke += mass_coeff * np.einsum("qa,qb,eq->eab", ref.N, ref.N, dvol)
        if pattern is None:
            rows_all.append(np.repeat(conn, nn, axis=1).ravel())
            cols_all.append(np.tile(conn, (1, nn)).ravel())
        vals_all.append(Ke.ravel())
        if source != 0.0:
            fe = source * np.einsum("qa,eq->ea", ref.N, dvol)
            np.add.at(rhs, conn.ravel(), fe.ravel())
        pos = id_order[np.searchsorted(sorted_ids, eids)]
        scatter[pos] = nn * nn + nn
        elem_nn[pos] = nn
    if not vals_all:
        return _SplitConst(pattern=None, data=None, rhs=rhs,
                           scatter=scatter, elem_nn=elem_nn)
    vals = np.concatenate(vals_all)
    if pattern is not None:
        if len(vals) != pattern.nval:
            raise ValueError(_STALE_MSG)
        data = np.bincount(pattern.slot, weights=vals,
                           minlength=pattern.nnz)
    else:
        matrix, pattern = _build_csr_pattern(
            np.concatenate(rows_all), np.concatenate(cols_all), vals, n)
        pattern_cache[(n, ids_key)] = pattern
        data = matrix.data
    return _SplitConst(pattern=pattern, data=data, rhs=rhs,
                       scatter=scatter, elem_nn=elem_nn)


def _assemble_split(mesh: Mesh, kappa: float, mass_coeff: float,
                    velocity: Optional[np.ndarray], stabilize: bool,
                    element_ids: np.ndarray, source: float,
                    toggles) -> AssemblyResult:
    """Operator-split assembly: cached constant part + per-call convection.

    The constant ``mass_coeff*M + kappa*K`` (and source RHS) is reused from
    the geometry cache; only the convection + stabilization values are
    recomputed and combined per CSR slot.  A ``velocity=None`` call (the
    continuity operator) is fully constant and reduces to one array copy.

    The per-call part contracts conv + stab together as one batched matmul
    (``Ke = (Ndvol + tau dV u.grad)^T (u.grad)``), which reorders the
    floating-point sums: matrix *values* may differ from the monolithic
    path in the last ulp, like the pattern-cache duplicate summation
    already documented on :func:`_build_csr_pattern`.  Simulated-time
    results stay bit-identical — they consume only the sparsity structure
    and work meters.
    """
    n = mesh.nnodes
    ids_key = element_ids.tobytes()
    gcache = _geom.cache_for(mesh)
    use_geom = toggles.geometry_cache
    const_key = ("split", ids_key, float(kappa), float(mass_coeff),
                 float(source))
    const = gcache.get(const_key)
    if const is None:
        const = _build_split_const(mesh, element_ids, kappa, mass_coeff,
                                   source, n, ids_key, use_geom, gcache)
        gcache.put(const_key, const, const.nbytes)
    pattern = const.pattern
    if pattern is None:
        return AssemblyResult(matrix=sparse.csr_matrix((n, n)),
                              rhs=const.rhs.copy(),
                              scatter_counts=const.scatter.copy(),
                              element_nodes=const.elem_nn.copy())
    if velocity is None:
        data = const.data.copy()
    else:
        vals_all = []
        for nn, ref, eids, conn, grads, dvol, h, Ndvol in _type_blocks(
                mesh, element_ids, use_geom, cache=gcache):
            uq = np.einsum("qa,eaj->eqj", ref.N, velocity[conn])
            ugb = np.einsum("eqj,eqbj->eqb", uq, grads)
            if Ndvol is None:
                Ndvol = ref.N[None, :, :] * dvol[:, :, None]
            A = Ndvol
            if stabilize:
                if h is None:
                    h = np.cbrt(dvol.sum(axis=1))
                umag = np.linalg.norm(uq, axis=2).mean(axis=1)
                tau = h / (2.0 * umag + 1e-12)
                # u.grad N doubles as the 'a'-index factor of the stab term
                A = A + (tau[:, None] * dvol)[:, :, None] * ugb
            Ke = A.transpose(0, 2, 1) @ ugb
            vals_all.append(Ke.ravel())
        vals = np.concatenate(vals_all) if vals_all else np.zeros(0)
        if len(vals) != pattern.nval:
            raise ValueError(_STALE_MSG)
        data = const.data + np.bincount(pattern.slot, weights=vals,
                                        minlength=pattern.nnz)
    matrix = sparse.csr_matrix((data, pattern.indices, pattern.indptr),
                               shape=(n, n))
    return AssemblyResult(matrix=matrix, rhs=const.rhs.copy(),
                          scatter_counts=const.scatter.copy(),
                          element_nodes=const.elem_nn.copy())


def element_work_meters(mesh: Mesh,
                        instr_per_type: dict,
                        element_ids: Optional[np.ndarray] = None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Per-element (instructions, atomic updates) for the performance layer.

    ``instr_per_type`` maps :class:`ElementType` to an instruction estimate
    per element (see :mod:`repro.app.costs`).  Atomic updates are the CSR
    scatter size ``nn*nn + nn``.
    """
    if element_ids is None:
        element_ids = np.arange(mesh.nelem)
    etypes = mesh.elem_types[element_ids]
    instr = np.zeros(len(element_ids))
    atomics = np.zeros(len(element_ids))
    for etype in ElementType:
        sel = etypes == etype
        if not sel.any():
            continue
        nn = NODES_PER_TYPE[etype]
        instr[sel] = float(instr_per_type[etype])
        atomics[sel] = nn * nn + nn
    return instr, atomics
