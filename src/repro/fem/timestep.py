"""CFL-driven adaptive time stepping under the determinism contract.

The controller picks the time step from the *state* of the simulation —
the velocity field and the cached element sizes of
:mod:`repro.fem.geometry` — never from the wall clock, so a rerun (or a
rerun under any :mod:`repro.perf.toggles` combination, whose fields are
bit-identical by contract) reproduces the exact same Δt sequence.

Two pieces:

* :class:`DtLadder` — a discrete geometric ladder of admissible steps
  ``dt_min * ratio**k``.  Quantizing Δt onto a small set of rungs is what
  makes adaptivity compatible with every Δt-keyed cache in the stack: the
  operator-split constant blocks of :mod:`repro.fem.assembly` are keyed by
  ``mass_coeff = rho/Δt``, and :class:`~repro.fem.fractional_step.
  FractionalStepSolver` keeps per-rung operator state (recycler gathers,
  deflation setups) — a continuous controller would defeat them all with
  a fresh key every step.
* :class:`CflController` — the target-CFL policy on a ladder, with
  hysteresis: a CFL violation drops straight to the admissible rung
  (stability is not negotiable), but climbing happens one rung at a time
  and only with ``climb_margin`` headroom, so a rate hovering at a rung
  boundary cannot flap between two rungs (and thus between two operator
  caches) on round-off.

:func:`cfl_rate` supplies the controller input ``max_e |u_e| / h_e`` from
the cached :class:`~repro.fem.geometry.ElementGeometry` blocks; the CFL
number of a step is then ``rate * dt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CflController", "DtLadder", "cfl_rate", "element_cfl_rates"]


@dataclass(frozen=True)
class DtLadder:
    """Geometric ladder of admissible time steps.

    Rung ``k`` carries ``dt_min * ratio**k`` for ``k = 0 .. top``; ``top``
    is the largest rung not exceeding ``dt_max`` (with a relative epsilon
    so ``dt_max = dt_min * ratio**n`` lands exactly on rung ``n``).
    """

    dt_min: float
    dt_max: float
    ratio: float = 2.0

    def __post_init__(self):
        if self.dt_min <= 0:
            raise ValueError(f"dt_min must be > 0, got {self.dt_min}")
        if self.dt_max < self.dt_min:
            raise ValueError(
                f"dt_max ({self.dt_max}) must be >= dt_min ({self.dt_min})")
        if self.ratio <= 1.0:
            raise ValueError(f"ratio must be > 1, got {self.ratio}")

    @property
    def top(self) -> int:
        """Index of the coarsest rung."""
        k = 0
        while self.dt_min * self.ratio ** (k + 1) \
                <= self.dt_max * (1.0 + 1e-9):
            k += 1
        return k

    def dt_of(self, rung: int) -> float:
        """The step size of ``rung`` (clamped into the ladder)."""
        rung = min(max(rung, 0), self.top)
        return self.dt_min * self.ratio ** rung

    def rungs(self) -> list:
        """All admissible step sizes, finest first."""
        return [self.dt_of(k) for k in range(self.top + 1)]

    def quantize(self, dt_target: float) -> int:
        """The coarsest rung whose step does not exceed ``dt_target``.

        Targets below ``dt_min`` floor at rung 0 (the caller may then be
        running above its CFL target — reported, not hidden).
        """
        k = self.top
        while k > 0 and self.dt_of(k) > dt_target * (1.0 + 1e-9):
            k -= 1
        return k


@dataclass(frozen=True)
class CflController:
    """Target-CFL rung selection with anti-flap hysteresis.

    Pure function of ``(rate, current_rung)`` — the deterministic step
    controller of the adaptive modes.  ``rate`` is ``max_e |u_e|/h_e``
    (:func:`cfl_rate`); the unquantized target step is
    ``cfl_target / rate``.
    """

    cfl_target: float = 0.9
    ladder: DtLadder = field(default_factory=lambda: DtLadder(1e-4, 8e-4))
    #: climb only when the target step exceeds the next rung by this
    #: factor — the hysteresis band that keeps a boundary-hovering rate
    #: from alternating between two rungs (and their operator caches)
    climb_margin: float = 1.05

    def __post_init__(self):
        if self.cfl_target <= 0:
            raise ValueError(
                f"cfl_target must be > 0, got {self.cfl_target}")
        if self.climb_margin < 1.0:
            raise ValueError(
                f"climb_margin must be >= 1, got {self.climb_margin}")

    def target_dt(self, rate: float) -> float:
        """Unquantized CFL-limited step for ``rate`` (dt_max when the
        field is at rest)."""
        if rate <= 0.0:
            return self.ladder.dt_max
        return self.cfl_target / rate

    def rung_for(self, rate: float, current: int) -> int:
        """Next rung given the current one.

        Drops directly to the admissible rung on a CFL violation; climbs
        at most one rung per step, and only with ``climb_margin`` headroom
        over the next rung's step.
        """
        target = self.target_dt(rate)
        candidate = self.ladder.quantize(target)
        if candidate < current:
            return candidate
        if candidate > current:
            if target >= self.climb_margin * self.ladder.dt_of(current + 1):
                return current + 1
        return min(current, self.ladder.top)


def cfl_rate(u: np.ndarray, blocks) -> float:
    """``max_e |u_e| / h_e`` over cached geometry ``blocks``.

    ``u`` is the (nnodes, 3) nodal velocity; ``|u_e|`` is the magnitude of
    the element-mean velocity and ``h_e`` the cached element size.  Fixed
    numpy reduction order — bit-reproducible for identical fields, which
    the perf-toggle contract guarantees.
    """
    rate = 0.0
    for block in blocks:
        if len(block.eids) == 0:
            continue
        u_e = u[block.conn].mean(axis=1)
        speed = np.sqrt((u_e * u_e).sum(axis=1))
        rate = max(rate, float((speed / block.h).max()))
    return rate


def element_cfl_rates(u: np.ndarray, blocks, nelem: int) -> np.ndarray:
    """Per-element ``|u_e| / h_e``, indexed by global element id.

    The local (per-subdomain) adaptive mode reduces this array over each
    rank's element set to derive per-rank rungs and subcycle counts.
    """
    rates = np.zeros(nelem)
    for block in blocks:
        if len(block.eids) == 0:
            continue
        u_e = u[block.conn].mean(axis=1)
        speed = np.sqrt((u_e * u_e).sum(axis=1))
        rates[block.eids] = speed / block.h
    return rates
