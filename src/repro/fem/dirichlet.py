"""Dirichlet boundary-condition application for assembled systems."""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["apply_dirichlet", "apply_dirichlet_symmetric"]


def apply_dirichlet(A: sparse.csr_matrix, b: np.ndarray,
                    dofs: np.ndarray, values: np.ndarray
                    ) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Row replacement: enforce ``x[dofs] = values``.

    Each constrained row becomes an identity row and the RHS entry the
    prescribed value.  The matrix loses symmetry (fine for BiCGStab).
    """
    dofs = np.asarray(dofs, dtype=np.int64)
    values = np.broadcast_to(np.asarray(values, dtype=np.float64),
                             dofs.shape)
    A = A.tolil(copy=True)
    b = b.copy()
    for dof, val in zip(dofs, values):
        A.rows[dof] = [int(dof)]
        A.data[dof] = [1.0]
        b[dof] = val
    return A.tocsr(), b


def apply_dirichlet_symmetric(A: sparse.csr_matrix, b: np.ndarray,
                              dofs: np.ndarray, values: np.ndarray
                              ) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Symmetric elimination: zero rows *and* columns, keep SPD for CG.

    The known values are moved to the RHS before the columns are cleared.
    """
    dofs = np.asarray(dofs, dtype=np.int64)
    values = np.broadcast_to(np.asarray(values, dtype=np.float64),
                             dofs.shape).astype(np.float64)
    n = A.shape[0]
    x_known = np.zeros(n)
    x_known[dofs] = values
    b = b - A @ x_known
    mask = np.zeros(n, dtype=bool)
    mask[dofs] = True
    # zero the constrained rows and columns via a diagonal projector
    keep = sparse.diags((~mask).astype(np.float64))
    A = (keep @ A @ keep).tolil()
    for dof in dofs:
        A[dof, dof] = 1.0
    b[dofs] = values
    return A.tocsr(), b
