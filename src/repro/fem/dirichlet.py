"""Dirichlet boundary-condition application for assembled systems."""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["DirichletSlots", "apply_dirichlet", "apply_dirichlet_symmetric"]


def apply_dirichlet(A: sparse.csr_matrix, b: np.ndarray,
                    dofs: np.ndarray, values: np.ndarray
                    ) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Row replacement: enforce ``x[dofs] = values``.

    Each constrained row becomes an identity row and the RHS entry the
    prescribed value.  The matrix loses symmetry (fine for BiCGStab).
    """
    dofs = np.asarray(dofs, dtype=np.int64)
    values = np.broadcast_to(np.asarray(values, dtype=np.float64),
                             dofs.shape)
    A = A.tolil(copy=True)
    b = b.copy()
    for dof, val in zip(dofs, values):
        A.rows[dof] = [int(dof)]
        A.data[dof] = [1.0]
        b[dof] = val
    return A.tocsr(), b


class DirichletSlots:
    """Precomputed row-replacement maps for repeated :func:`apply_dirichlet`.

    :func:`apply_dirichlet` rebuilds the matrix through a LIL round trip on
    every call — fine for a one-off setup, wasteful when the same boundary
    conditions are re-applied every time step against a *fixed sparsity
    pattern* (the fractional-step momentum operator).  This object runs the
    LIL path exactly once on a marker matrix whose data encodes each entry's
    storage slot, and reads back where every unconstrained entry landed:

    * ``dst``/``src`` — CSR data slots of the constrained matrix and the
      source slots (in the input pattern) feeding them;
    * ``fixed`` — slots of the constrained rows' identity diagonals
      (always ``1.0``);
    * ``indices``/``indptr`` — the constrained pattern, shared (read-only)
      by every matrix produced through :meth:`matrix`;
    * ``diag_slots`` — data slot of each row's diagonal entry in the
      constrained pattern (``None`` when some row stores no diagonal), for
      O(n) Jacobi-preconditioner refreshes.

    Because the maps are read off the real :func:`apply_dirichlet` output,
    :meth:`apply` is bit-identical to it by construction for any data on
    the same pattern.  The pattern is assumed static (same contract as the
    assembly pattern cache).
    """

    def __init__(self, A: sparse.csr_matrix, dofs: np.ndarray,
                 values: np.ndarray):
        A = A.tocsr()
        n = A.shape[0]
        self.shape = A.shape
        self.source_nnz = A.nnz
        self.dofs = np.asarray(dofs, dtype=np.int64)
        self.values = np.broadcast_to(
            np.asarray(values, dtype=np.float64), self.dofs.shape).copy()
        # marker data >= 2.0 per source slot; the identity diagonals the
        # row replacement inserts are exactly 1.0, so they cannot collide
        marker = sparse.csr_matrix(
            (np.arange(A.nnz, dtype=np.float64) + 2.0,
             A.indices, A.indptr), shape=A.shape)
        out, _ = apply_dirichlet(marker, np.zeros(n), self.dofs, self.values)
        carried = out.data >= 1.5
        self.dst = np.nonzero(carried)[0]
        self.src = (out.data[self.dst] - 2.0).astype(np.int64)
        self.fixed = np.nonzero(~carried)[0]
        self.indices = out.indices
        self.indptr = out.indptr
        self.nnz = out.nnz
        row_of_slot = np.repeat(np.arange(n), np.diff(self.indptr))
        diag = np.nonzero(self.indices == row_of_slot)[0]
        self.diag_slots = diag if len(diag) == n else None

    def matrix(self, data: np.ndarray) -> sparse.csr_matrix:
        """Wrap constrained-pattern ``data`` as CSR (indices/indptr shared)."""
        return sparse.csr_matrix((data, self.indices, self.indptr),
                                 shape=self.shape)

    def apply(self, source_data: np.ndarray,
              b: np.ndarray) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Constrain a matrix given as pattern data; mutates ``b`` in place.

        ``source_data`` is the CSR data of a matrix on the pattern this
        object was built from.  Returns the same ``(A, b)`` as
        ``apply_dirichlet(matrix, b, dofs, values)``, without the LIL
        round trip (``b`` is updated in place rather than copied).
        """
        if len(source_data) != self.source_nnz:
            raise ValueError(
                "DirichletSlots pattern is stale: the matrix sparsity "
                "changed after the slots were built (the slot map assumes "
                "a static pattern)")
        data = np.empty(self.nnz)
        data[self.dst] = source_data[self.src]
        data[self.fixed] = 1.0
        b[self.dofs] = self.values
        return self.matrix(data), b


def apply_dirichlet_symmetric(A: sparse.csr_matrix, b: np.ndarray,
                              dofs: np.ndarray, values: np.ndarray
                              ) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Symmetric elimination: zero rows *and* columns, keep SPD for CG.

    The known values are moved to the RHS before the columns are cleared.
    """
    dofs = np.asarray(dofs, dtype=np.int64)
    values = np.broadcast_to(np.asarray(values, dtype=np.float64),
                             dofs.shape).astype(np.float64)
    n = A.shape[0]
    x_known = np.zeros(n)
    x_known[dofs] = values
    b = b - A @ x_known
    mask = np.zeros(n, dtype=bool)
    mask[dofs] = True
    # zero the constrained rows and columns via a diagonal projector
    keep = sparse.diags((~mask).astype(np.float64))
    A = (keep @ A @ keep).tolil()
    for dof in dofs:
        A[dof, dof] = 1.0
    b[dofs] = values
    return A.tocsr(), b
