"""Shared static-geometry cache for the numeric kernels.

The paper's workload is the classic static-mesh case: one airway mesh, many
timesteps.  Element geometry — Jacobians, inverse-Jacobian physical
gradients, quadrature volumes ``|J| dV``, element volumes and sizes ``h`` —
never changes across a run, yet before this module every kernel recomputed
it per call: :func:`repro.fem.assembly.assemble_operator` per assembly,
:func:`repro.fem.sgs.update_sgs` per sweep, the pressure-velocity coupling
in :mod:`repro.fem.vector` per operator build, and
:class:`repro.particles.interpolation.MeshVelocityField` rebuilt its
centroid KD-tree per instance.

This module computes the geometry once per (mesh, element-type, element-set)
and hands the cached arrays to all consumers.  The cached values are
produced by the *identical* floating-point operation sequence the kernels
used inline, so consuming the cache is bit-identical to recomputing — the
wall-clock-only contract of :mod:`repro.perf.toggles` (toggle
``geometry_cache``).

Cache management:

* **identity / invalidation** — the cache rides in ``mesh.__dict__`` and
  stores a SHA-256 fingerprint of the mesh's coordinate, connectivity and
  type arrays.  :func:`cache_for` re-checks the fingerprint, so mutating a
  mesh in place (or hitting a same-shaped replacement mesh object) drops
  every cached entry instead of serving stale geometry.
* **memory accounting** — hits, misses, invalidations, evictions and
  resident bytes are tallied in :data:`COUNTERS`
  (a :class:`repro.perf.instrument.Counters`).
* **eviction budget** — per-mesh LRU: when a cache grows past
  :func:`set_cache_budget` bytes, least-recently-used entries are evicted
  (the entry just inserted is always kept, so a single oversized element
  set still works — it just won't persist a second set alongside it).

Besides raw geometry blocks the cache stores *derived extras* under the
same invalidation: the operator-split constant blocks of
:mod:`repro.fem.assembly`, the pressure-velocity coupling matrix of
:mod:`repro.fem.vector`, and the centroid KD-tree shared by
:mod:`repro.particles.interpolation` (see :func:`cached_extra`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..mesh.elements import ElementType, NODES_PER_TYPE
from ..mesh.mesh import Mesh
from ..perf.instrument import Counters
from .shape import reference_element

__all__ = [
    "ElementGeometry", "ElementAdjacency", "GeometryCache", "COUNTERS",
    "cache_for", "geometry_blocks", "cached_extra", "element_adjacency",
    "element_sizes",
    "set_cache_budget", "cache_budget_bytes", "drop_cache",
]

#: module-wide tallies: ``hits``, ``misses``, ``invalidations``,
#: ``evictions`` and ``bytes_cached`` (current resident bytes, summed over
#: all live mesh caches).
COUNTERS = Counters()

_DEFAULT_BUDGET = 256 * 1024 * 1024
_budget_bytes = _DEFAULT_BUDGET

_CACHE_ATTR = "_geometry_cache"


def set_cache_budget(nbytes: int) -> int:
    """Set the per-mesh eviction budget in bytes; returns the previous one.

    Takes effect on the next insertion — already-resident entries are only
    evicted once a ``put`` pushes a cache past the new budget.
    """
    global _budget_bytes
    if nbytes <= 0:
        raise ValueError(f"cache budget must be positive, got {nbytes}")
    previous = _budget_bytes
    _budget_bytes = int(nbytes)
    return previous


def cache_budget_bytes() -> int:
    """Current per-mesh eviction budget in bytes."""
    return _budget_bytes


@dataclass
class ElementGeometry:
    """Precomputed geometry of one element-type block of an element set.

    All arrays are ordered like the (stable) selection of the block's type
    from the element-id array, i.e. exactly the order the kernels' inline
    per-type loops produced — treat them as read-only.
    """

    etype: ElementType
    eids: np.ndarray     # (ne,) global element ids of this block
    conn: np.ndarray     # (ne, nn) node connectivity
    grads: np.ndarray    # (ne, nq, nn, 3) physical shape-function gradients
    dvol: np.ndarray     # (ne, nq) |J| * quadrature weight
    vol: np.ndarray      # (ne,) element volume = dvol.sum(axis=1)
    h: np.ndarray        # (ne,) element size = cbrt(vol)
    Ndvol: np.ndarray    # (ne, nq, nn) N[q,a] * dvol[e,q] (assembly helper)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the cached arrays."""
        return (self.eids.nbytes + self.conn.nbytes + self.grads.nbytes
                + self.dvol.nbytes + self.vol.nbytes + self.h.nbytes
                + self.Ndvol.nbytes)


class GeometryCache:
    """LRU store of geometry blocks and derived extras for one mesh."""

    def __init__(self, fingerprint: bytes) -> None:
        self.fingerprint = fingerprint
        self._entries: dict = {}      # key -> (value, nbytes); dict order = LRU
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """Cached value for ``key`` (marked most-recently-used), or None."""
        hit = self._entries.pop(key, None)
        if hit is None:
            COUNTERS.add("misses")
            return None
        self._entries[key] = hit      # reinsert -> most recently used
        COUNTERS.add("hits")
        return hit[0]

    def put(self, key, value, nbytes: int) -> None:
        """Insert ``value`` under ``key``, evicting LRU entries over budget."""
        old = self._entries.pop(key, None)
        if old is not None:
            self.total_bytes -= old[1]
            COUNTERS.add("bytes_cached", -old[1])
        self._entries[key] = (value, nbytes)
        self.total_bytes += nbytes
        COUNTERS.add("bytes_cached", nbytes)
        while self.total_bytes > _budget_bytes and len(self._entries) > 1:
            victim_key = next(iter(self._entries))
            if victim_key == key:
                break
            _, victim_bytes = self._entries.pop(victim_key)
            self.total_bytes -= victim_bytes
            COUNTERS.add("bytes_cached", -victim_bytes)
            COUNTERS.add("evictions")


def _fingerprint(mesh: Mesh) -> bytes:
    """SHA-256 over the arrays that determine element geometry."""
    hsh = hashlib.sha256()
    hsh.update(np.ascontiguousarray(mesh.coords).tobytes())
    hsh.update(np.ascontiguousarray(mesh.elem_nodes).tobytes())
    hsh.update(np.ascontiguousarray(mesh.elem_types).tobytes())
    return hsh.digest()


def cache_for(mesh: Mesh) -> GeometryCache:
    """The mesh's geometry cache, invalidated if the mesh changed.

    The fingerprint check runs on every call (cheap next to any kernel), so
    in-place mutation of coordinates or connectivity is detected here — the
    stale cache is dropped whole and an ``invalidations`` counter tick
    recorded.
    """
    fp = _fingerprint(mesh)
    cache: Optional[GeometryCache] = mesh.__dict__.get(_CACHE_ATTR)
    if cache is not None and cache.fingerprint == fp:
        return cache
    if cache is not None:
        COUNTERS.add("invalidations")
        COUNTERS.add("bytes_cached", -cache.total_bytes)
    cache = GeometryCache(fp)
    mesh.__dict__[_CACHE_ATTR] = cache
    return cache


def drop_cache(mesh: Mesh) -> None:
    """Explicitly discard the mesh's geometry cache (tests, memory pressure)."""
    cache = mesh.__dict__.pop(_CACHE_ATTR, None)
    if cache is not None:
        COUNTERS.add("bytes_cached", -cache.total_bytes)


def _build_blocks(mesh: Mesh, element_ids: np.ndarray) -> list:
    """Compute the per-type geometry blocks of an element set.

    The operation sequence (selection order, einsum paths, ``dvol`` /
    ``vol`` / ``h`` expressions) is exactly the one the kernels ran inline,
    so cached and recomputed values are bit-identical.
    """
    blocks = []
    etype_arr = mesh.elem_types[element_ids]
    for etype in ElementType:
        sel = etype_arr == etype
        eids = element_ids[sel]
        if len(eids) == 0:
            continue
        nn = NODES_PER_TYPE[etype]
        ref = reference_element(etype)
        conn = mesh.elem_nodes[eids][:, :nn]
        xe = mesh.coords[conn]
        # see repro.fem.assembly._geometry for the transposed-Jacobian rule
        J = np.einsum("qni,enj->eqij", ref.dN, xe)
        detJ = np.linalg.det(J)
        invJ = np.linalg.inv(J)
        grads = np.einsum("qni,eqji->eqnj", ref.dN, invJ)
        dvol = np.abs(detJ) * ref.weights[None, :]
        vol = dvol.sum(axis=1)
        h = np.cbrt(vol)
        Ndvol = ref.N[None, :, :] * dvol[:, :, None]
        blocks.append(ElementGeometry(etype=etype, eids=eids, conn=conn,
                                      grads=grads, dvol=dvol, vol=vol, h=h,
                                      Ndvol=Ndvol))
    return blocks


def geometry_blocks(mesh: Mesh,
                    element_ids: Optional[np.ndarray] = None,
                    cache: Optional[GeometryCache] = None) -> list:
    """Cached per-type :class:`ElementGeometry` blocks of an element set.

    ``cache`` skips the fingerprint re-check when the caller already holds
    the validated cache for this mesh (one check per kernel call, not per
    lookup).
    """
    if element_ids is None:
        element_ids = np.arange(mesh.nelem)
    element_ids = np.asarray(element_ids)
    if cache is None:
        cache = cache_for(mesh)
    key = ("geom", element_ids.tobytes())
    blocks = cache.get(key)
    if blocks is None:
        blocks = _build_blocks(mesh, element_ids)
        cache.put(key, blocks, sum(b.nbytes for b in blocks))
    return blocks


def element_sizes(mesh: Mesh,
                  cache: Optional[GeometryCache] = None) -> np.ndarray:
    """Cached (nelem,) element sizes ``h`` indexed by global element id.

    The flat companion of the per-type ``h`` arrays in
    :func:`geometry_blocks` — the CFL controllers
    (:mod:`repro.fem.timestep`) and the app-level Δt scheduler divide
    element speeds by this vector, and ``h.min()`` bounds the admissible
    step of the whole mesh.  Cached under the same fingerprint
    invalidation as the blocks it is scattered from.
    """
    def build():
        h = np.zeros(mesh.nelem)
        for block in geometry_blocks(mesh, cache=cache):
            h[block.eids] = block.h
        return h, h.nbytes
    return cached_extra(mesh, "element_sizes", build, cache=cache)


@dataclass
class ElementAdjacency:
    """Element neighbourhood structure for warm-start exact location.

    Built once per mesh (under the geometry-cache fingerprint) from the
    node-sharing element adjacency.  For each element ``e`` with centroid
    ``c_e``:

    * ``candidates[e]`` — a padded row ``[e, ring(e)..., e, e, ...]`` of
      element ids: the element itself followed by its nearest-by-centroid
      adjacency-ring neighbours, truncated to ``max_ring`` entries (unused
      slots repeat ``e``).  Truncation trades a slightly smaller
      ``r_safe`` for a much narrower candidate scan — the full
      node-sharing ring of a hybrid mesh runs to ~100 elements, far past
      the point where scanning it beats re-querying the KD-tree;
    * ``r_self[e]`` — half the distance from ``c_e`` to the nearest *other*
      centroid.  A point strictly inside this ball is provably closer to
      ``c_e`` than to any other centroid (triangle inequality), so the
      cached host can be accepted without scanning anything;
    * ``r_safe[e]`` — half the distance from ``c_e`` to the nearest
      centroid *outside* ``candidates[e]``.  A point strictly inside this
      ball has its global nearest centroid provably within the candidate
      row, so an argmin over the row equals the global KD-tree answer.

    Proof sketch (both radii): for a point ``x`` with ``d(x, c_e) = d`` and
    any excluded centroid ``c_f``, ``d(x, c_f) >= d(c_e, c_f) - d >= 2r - d
    > d`` whenever ``d < r`` — so no excluded centroid can beat the best
    candidate.
    """

    candidates: np.ndarray   # (nelem, width) intp, row-padded with self
    r_self: np.ndarray       # (nelem,) float64
    r_safe: np.ndarray       # (nelem,) float64

    @property
    def nbytes(self) -> int:
        """Resident bytes of the adjacency arrays."""
        return (self.candidates.nbytes + self.r_self.nbytes
                + self.r_safe.nbytes)


def _build_element_adjacency(mesh: Mesh,
                             max_ring: int = 12) -> ElementAdjacency:
    from scipy.spatial import cKDTree

    centroids = mesh.centroids()
    nelem = mesh.nelem
    graph = mesh.node_sharing_adjacency()
    xadj, adjncy = graph.xadj, graph.adjncy
    degrees = np.diff(xadj)
    maxdeg = int(degrees.max(initial=0))
    # padded ring matrix, then keep the max_ring nearest-by-centroid
    # neighbours of each row
    ring = np.full((nelem, max(maxdeg, 1)), -1, dtype=np.int64)
    rows = np.repeat(np.arange(nelem), degrees)
    cols = np.concatenate([np.arange(d) for d in degrees]) \
        if nelem else np.zeros(0, dtype=np.int64)
    ring[rows, cols] = adjncy
    ring_d = np.where(ring >= 0,
                      np.linalg.norm(centroids[ring]
                                     - centroids[:, None, :], axis=2),
                      np.inf)
    keep = min(max_ring, ring.shape[1])
    order = np.argsort(ring_d, axis=1, kind="stable")[:, :keep]
    near = np.take_along_axis(ring, order, axis=1)
    width = keep + 1
    candidates = np.repeat(np.arange(nelem, dtype=np.intp),
                           width).reshape(nelem, width)
    candidates[:, 1:] = np.where(near >= 0, near, candidates[:, 1:])
    if nelem < 2:
        return ElementAdjacency(candidates=candidates,
                                r_self=np.full(nelem, np.inf),
                                r_safe=np.full(nelem, np.inf))
    # r_self: half distance to the nearest other centroid
    tree = cKDTree(centroids)
    d2, _ = tree.query(centroids, k=2)
    r_self = 0.5 * d2[:, 1]
    # r_safe: half distance to the nearest non-candidate centroid.  The
    # candidate row holds at most ``width`` distinct ids, so among the
    # ``width + 1`` nearest centroids (self included) at least one is
    # excluded — unless the mesh is so small that every element is a
    # candidate, in which case the row argmin *is* the global answer and
    # the radius is unbounded.
    k = min(nelem, width + 1)
    dists, nbr = tree.query(centroids, k=k)
    # row-wise membership of nbr in the sorted candidate rows, via a
    # globally-sorted flattening (candidate ids are < nelem, so offsetting
    # row i by i * nelem keeps rows disjoint and sorted)
    sorted_cand = np.sort(candidates, axis=1)
    offsets = np.arange(nelem, dtype=np.int64)[:, None] * nelem
    flat = (sorted_cand + offsets).ravel()
    queries = nbr + offsets
    pos = np.searchsorted(flat, queries.ravel())
    pos = np.clip(pos, 0, flat.size - 1)
    in_ring = (flat[pos] == queries.ravel()).reshape(nelem, k)
    out = ~in_ring
    has_out = out.any(axis=1)
    first_out = np.argmax(out, axis=1)
    rows = np.arange(nelem)
    r_safe = np.where(has_out, 0.5 * dists[rows, first_out], np.inf)
    return ElementAdjacency(candidates=candidates, r_self=r_self,
                            r_safe=r_safe)


def element_adjacency(mesh: Mesh,
                      cache: Optional[GeometryCache] = None
                      ) -> ElementAdjacency:
    """Cached :class:`ElementAdjacency` for ``mesh`` (see
    :mod:`repro.particles.locator_fast`)."""
    def build():
        adj = _build_element_adjacency(mesh)
        return adj, adj.nbytes
    return cached_extra(mesh, "element_adjacency", build, cache=cache)


def cached_extra(mesh: Mesh, name, build: Callable[[], tuple],
                 cache: Optional[GeometryCache] = None):
    """A derived object cached under the mesh's geometry invalidation.

    ``build`` is called on a miss and must return ``(value, nbytes)``.
    Used for the operator-split constant blocks, the pressure-velocity
    coupling matrix and the shared centroid KD-tree.
    """
    if cache is None:
        cache = cache_for(mesh)
    key = ("extra", name)
    value = cache.get(key)
    if value is None:
        value, nbytes = build()
        cache.put(key, value, nbytes)
    return value
