"""Finite-element substrate: shape functions/quadrature, vectorized scalar
and vector assembly with work meters, Dirichlet BCs, the VMS subgrid-scale
update, the fractional-step Navier-Stokes solver, and the shared
static-geometry cache feeding the kernels."""

from .assembly import AssemblyResult, assemble_operator, element_work_meters
from .dirichlet import apply_dirichlet, apply_dirichlet_symmetric
from .fractional_step import FlowBC, FractionalStepSolver, StepInfo
from .geometry import (
    ElementGeometry,
    GeometryCache,
    cache_budget_bytes,
    cache_for,
    drop_cache,
    element_sizes,
    geometry_blocks,
    set_cache_budget,
)
from .sgs import SGSState, update_sgs
from .timestep import CflController, DtLadder, cfl_rate, element_cfl_rates
from .shape import ReferenceElement, reference_element
from .vector import (
    deinterleave,
    divergence_operator,
    gradient_operator,
    interleave,
    vector_operator,
)

__all__ = [
    "AssemblyResult",
    "CflController",
    "DtLadder",
    "ElementGeometry",
    "FlowBC",
    "FractionalStepSolver",
    "GeometryCache",
    "ReferenceElement",
    "SGSState",
    "StepInfo",
    "apply_dirichlet",
    "apply_dirichlet_symmetric",
    "assemble_operator",
    "cache_budget_bytes",
    "cache_for",
    "cfl_rate",
    "drop_cache",
    "element_cfl_rates",
    "element_sizes",
    "geometry_blocks",
    "set_cache_budget",
    "deinterleave",
    "divergence_operator",
    "element_work_meters",
    "gradient_operator",
    "interleave",
    "reference_element",
    "update_sgs",
    "vector_operator",
]
