"""Finite-element substrate: shape functions/quadrature, vectorized scalar
and vector assembly with work meters, Dirichlet BCs, the VMS subgrid-scale
update, and the fractional-step Navier-Stokes solver."""

from .assembly import AssemblyResult, assemble_operator, element_work_meters
from .dirichlet import apply_dirichlet, apply_dirichlet_symmetric
from .fractional_step import FlowBC, FractionalStepSolver, StepInfo
from .sgs import SGSState, update_sgs
from .shape import ReferenceElement, reference_element
from .vector import (
    deinterleave,
    divergence_operator,
    gradient_operator,
    interleave,
    vector_operator,
)

__all__ = [
    "AssemblyResult",
    "FlowBC",
    "FractionalStepSolver",
    "ReferenceElement",
    "SGSState",
    "StepInfo",
    "apply_dirichlet",
    "apply_dirichlet_symmetric",
    "assemble_operator",
    "deinterleave",
    "divergence_operator",
    "element_work_meters",
    "gradient_operator",
    "interleave",
    "reference_element",
    "update_sgs",
    "vector_operator",
]
