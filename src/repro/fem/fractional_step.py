"""Incremental pressure-correction (fractional-step) Navier-Stokes solver.

The paper's fluid problem (Eqs. 1-2): incompressible Navier-Stokes for the
airflow.  Alya uses a stabilized FE discretization with split momentum /
continuity solves — the "Solver1"/"Solver2" phases.  This module implements
the classic Chorin-Temam incremental projection on our meshes:

1. **momentum predictor** (Solver1): with A = M/dt + C(u^n) + nu K,

       A u* = M/dt u^n - G p^n        (+ Dirichlet velocity BCs)

2. **pressure Poisson** (Solver2):

       L phi = (1/dt) D u*            (phi pinned at the outlet)

3. **projection / update**:

       u^{n+1} = u* - dt M_L^{-1} G phi,     p^{n+1} = p^n + phi

with lumped mass M_L.  Velocity carries 3 interleaved DOF per node
(:mod:`repro.fem.vector`).

This is the *numeric* fluid path; the tube-flow test in
``tests/test_fluid.py`` drives it end-to-end (inflow/outflow balance,
divergence reduction by the projection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np
from scipy import sparse

from ..mesh.mesh import Mesh
from ..solver import bicgstab, cg, jacobi_preconditioner
from .assembly import assemble_operator
from .dirichlet import apply_dirichlet, apply_dirichlet_symmetric
from .vector import (
    deinterleave,
    divergence_operator,
    gradient_operator,
    interleave,
    vector_operator,
)

__all__ = ["FlowBC", "FractionalStepSolver", "StepInfo"]


@dataclass(frozen=True)
class FlowBC:
    """Velocity boundary conditions.

    Attributes
    ----------
    inlet_nodes / inlet_velocity:
        Nodes with prescribed velocity, (k,) ids and (k, 3) values.
    wall_nodes:
        No-slip nodes (velocity zero).
    outlet_nodes:
        Nodes where the pressure increment is pinned to zero (free
        outflow).
    """

    inlet_nodes: np.ndarray
    inlet_velocity: np.ndarray
    wall_nodes: np.ndarray
    outlet_nodes: np.ndarray

    def __post_init__(self):
        if self.inlet_velocity.shape != (len(self.inlet_nodes), 3):
            raise ValueError("inlet_velocity must be (len(inlet_nodes), 3)")
        if len(self.outlet_nodes) == 0:
            raise ValueError("need at least one outlet node to pin pressure")


@dataclass
class StepInfo:
    """Diagnostics of one fractional step."""

    momentum_iterations: int
    pressure_iterations: int
    div_before: float
    div_after: float


class FractionalStepSolver:
    """Chorin-Temam incremental projection on a mesh with velocity BCs."""

    def __init__(self, mesh: Mesh, bc: FlowBC, viscosity: float = 1.9e-5,
                 density: float = 1.15, dt: float = 1e-3):
        self.mesh = mesh
        self.bc = bc
        self.viscosity = viscosity
        self.density = density
        self.dt = dt
        n = mesh.nnodes
        self.u = np.zeros((n, 3))
        self.p = np.zeros(n)
        # constant operators
        self.M = assemble_operator(mesh, kappa=0.0, mass_coeff=1.0).matrix
        self.G = gradient_operator(mesh)                   # (3n, n) = D^T
        self.D = divergence_operator(mesh)                 # (n, 3n)
        lumped = np.asarray(self.M.sum(axis=1)).ravel()
        self._inv_lumped3 = 1.0 / np.repeat(lumped, 3)
        # consistent pressure operator: L = D M_L^{-1} D^T (SPD once pinned),
        # which makes the projection *exactly* kill the discrete divergence.
        Minv3 = sparse.diags(self._inv_lumped3)
        L = (self.D @ Minv3 @ self.G).tocsr()
        self._L, _ = apply_dirichlet_symmetric(
            L, np.zeros(n), bc.outlet_nodes,
            np.zeros(len(bc.outlet_nodes)))
        self._L_pre = jacobi_preconditioner(self._L)
        # velocity Dirichlet DOFs
        vel_nodes = np.concatenate([bc.inlet_nodes, bc.wall_nodes])
        vel_values = np.concatenate(
            [bc.inlet_velocity, np.zeros((len(bc.wall_nodes), 3))])
        self._vel_dofs = (3 * np.repeat(vel_nodes, 3)
                          + np.tile([0, 1, 2], len(vel_nodes)))
        self._vel_values = vel_values.reshape(-1)
        # seed the prescribed values into the initial field
        self.u[vel_nodes] = vel_values

    # -- one time step ------------------------------------------------------
    def step(self, tol: float = 1e-7, maxiter: int = 600) -> StepInfo:
        """Advance one dt; returns solver/divergence diagnostics."""
        mesh, dt = self.mesh, self.dt
        rho, nu = self.density, self.viscosity
        # 1. momentum predictor.  The weak pressure-gradient term is
        #    (grad p, v) = -(p, div v) = -(D^T p)_v, so it contributes
        #    +D^T p on the RHS once moved across.
        A = vector_operator(mesh, kappa=nu, mass_coeff=rho / dt,
                            velocity=self.u)
        rhs = (rho / dt) * (self._mass3(interleave(self.u))) \
            + self.G @ self.p
        A, rhs = apply_dirichlet(A, rhs, self._vel_dofs, self._vel_values)
        res_m = bicgstab(A, rhs, x0=interleave(self.u), tol=tol,
                         maxiter=maxiter, M=jacobi_preconditioner(A))
        u_star = res_m.x
        # 2. pressure Poisson for the increment phi:
        #    u^{n+1} = u* + dt/rho M_L^{-1} D^T phi  and  D u^{n+1} = 0
        #    =>  (D M_L^{-1} D^T) phi = -(rho/dt) D u*
        div_star = self.D @ u_star
        div_before = float(np.linalg.norm(div_star))
        b = -(rho / dt) * div_star
        b[self.bc.outlet_nodes] = 0.0
        res_p = cg(self._L, b, tol=tol, maxiter=maxiter, M=self._L_pre)
        phi = res_p.x
        # 3. projection
        u_new = u_star + (dt / rho) * (self._inv_lumped3 * (self.G @ phi))
        # re-impose the velocity BCs exactly
        u_new[self._vel_dofs] = self._vel_values
        div_after = float(np.linalg.norm(self.D @ u_new))
        self.u = deinterleave(u_new)
        self.p = self.p + phi
        return StepInfo(momentum_iterations=res_m.iterations,
                        pressure_iterations=res_p.iterations,
                        div_before=div_before, div_after=div_after)

    def run(self, n_steps: int, tol: float = 1e-7) -> list[StepInfo]:
        """Advance ``n_steps`` steps; returns the per-step diagnostics."""
        return [self.step(tol=tol) for _ in range(n_steps)]

    # -- helpers ------------------------------------------------------------
    def _mass3(self, dofs: np.ndarray) -> np.ndarray:
        """Apply the (block-diagonal) vector mass matrix."""
        field = deinterleave(dofs)
        return interleave(np.column_stack([self.M @ field[:, c]
                                           for c in range(3)]))

    def flow_rate_through(self, nodes: np.ndarray,
                          normal: np.ndarray) -> float:
        """Approximate volumetric flow through a node set with unit
        ``normal``: mean normal velocity x (summed lumped nodal area).

        Used by tests to compare inflow and outflow (mass conservation).
        """
        lumped = np.asarray(self.M.sum(axis=1)).ravel()
        u_n = self.u[nodes] @ normal
        weights = lumped[nodes]
        # lumped masses are volumes; normalize to act as area weights
        return float((u_n * weights).sum() / weights.sum())
