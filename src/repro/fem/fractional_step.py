"""Incremental pressure-correction (fractional-step) Navier-Stokes solver.

The paper's fluid problem (Eqs. 1-2): incompressible Navier-Stokes for the
airflow.  Alya uses a stabilized FE discretization with split momentum /
continuity solves — the "Solver1"/"Solver2" phases.  This module implements
the classic Chorin-Temam incremental projection on our meshes:

1. **momentum predictor** (Solver1): with A = M/dt + C(u^n) + nu K,

       A u* = M/dt u^n - G p^n        (+ Dirichlet velocity BCs)

2. **pressure Poisson** (Solver2):

       L phi = (1/dt) D u*            (phi pinned at the outlet)

3. **projection / update**:

       u^{n+1} = u* - dt M_L^{-1} G phi,     p^{n+1} = p^n + phi

with lumped mass M_L.  Velocity carries 3 interleaved DOF per node
(:mod:`repro.fem.vector`).

Performance (PR 8): the per-step *setup* work — vector expansion of the
momentum operator, Dirichlet row replacement, Jacobi rebuild — is recycled
behind the ``fluid_operator_recycle`` toggle: the expansion permutation and
Dirichlet slot maps are computed once at construction and each step reduces
to one gather of the freshly assembled scalar CSR data (bit-identical by
construction, self-checked at init).  The continuity solve can optionally
use Alya-style deflated CG (``pressure_solver="deflated"``) whose
:class:`~repro.solver.deflated.DeflationSetup` is paid once in ``__init__``
under the ``deflation_setup_cache`` toggle.

This is the *numeric* fluid path; the tube-flow test in
``tests/test_fluid.py`` drives it end-to-end (inflow/outflow balance,
divergence reduction by the projection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from ..mesh.mesh import Mesh
from ..perf import toggles as _perf_toggles
from ..solver import bicgstab, cg, deflated_cg, jacobi_preconditioner
from ..solver.deflated import DeflationSetup
from .assembly import assemble_operator
from .dirichlet import DirichletSlots, apply_dirichlet, \
    apply_dirichlet_symmetric
from .vector import (
    deinterleave,
    divergence_operator,
    gradient_operator,
    interleave,
    vector_expansion_perm,
    vector_operator,
)

__all__ = ["FLUID_COUNTERS", "FlowBC", "FractionalStepSolver", "StepInfo"]

#: running totals of the fluid fast paths (momentum matrices recycled vs
#: rebuilt from scratch, deflated continuity solves, deflation setups
#: built/reused, Δt-rung operator-cache traffic, adaptive steps and
#: subcycles); surfaced by :func:`repro.perf.instrument.fluid_counters`
FLUID_COUNTERS = {
    "momentum_recycled": 0,
    "momentum_rebuilt": 0,
    "pressure_deflated_solves": 0,
    "deflation_setups_built": 0,
    "deflation_setups_reused": 0,
    #: dt setter served the rung's operator state from the per-rung cache
    "dt_rung_hits": 0,
    #: dt setter had no cached state for the new rung
    "dt_rung_misses": 0,
    #: rung operator states built (construction + every miss)
    "dt_rung_rebuilds": 0,
    #: steps taken through the adaptive controller (advance_to)
    "adaptive_steps": 0,
    #: local-mode subcycles replayed by the app driver
    "adaptive_subcycles": 0,
    #: inlet Dirichlet values rescaled (co-simulation transient forwarding)
    "inlet_rescales": 0,
}


@dataclass(frozen=True)
class FlowBC:
    """Velocity boundary conditions.

    Attributes
    ----------
    inlet_nodes / inlet_velocity:
        Nodes with prescribed velocity, (k,) ids and (k, 3) values.
    wall_nodes:
        No-slip nodes (velocity zero).
    outlet_nodes:
        Nodes where the pressure increment is pinned to zero (free
        outflow).
    """

    inlet_nodes: np.ndarray
    inlet_velocity: np.ndarray
    wall_nodes: np.ndarray
    outlet_nodes: np.ndarray

    def __post_init__(self):
        if self.inlet_velocity.shape != (len(self.inlet_nodes), 3):
            raise ValueError("inlet_velocity must be (len(inlet_nodes), 3)")
        if len(self.outlet_nodes) == 0:
            raise ValueError("need at least one outlet node to pin pressure")


@dataclass
class StepInfo:
    """Diagnostics of one fractional step.

    The adaptive fields default to "not adaptive": ``dt`` is always
    recorded; ``cfl`` and ``rung`` are filled by :meth:`FractionalStepSolver.
    advance_to` (computing the CFL rate costs an element sweep, so fixed-Δt
    steps skip it); ``subcycles`` is 1 except for local-mode schedule
    entries, where the app layer folds per-subdomain subcycling into one
    global step.
    """

    momentum_iterations: int
    pressure_iterations: int
    div_before: float
    div_after: float
    dt: float = 0.0
    cfl: float = 0.0
    rung: int = -1
    subcycles: int = 1
    #: inlet Dirichlet scale imposed during the step (co-simulation
    #: forwarding; 1.0 when no transient is driving the inlet)
    inlet_scale: float = 1.0


class FractionalStepSolver:
    """Chorin-Temam incremental projection on a mesh with velocity BCs.

    Parameters
    ----------
    mesh, bc, viscosity, density, dt:
        The discrete problem.  The mesh is assumed static for the solver's
        lifetime (the same contract as the assembly pattern cache).
    pressure_solver:
        ``"cg"`` (default) solves the pressure Poisson system with plain
        preconditioned CG; ``"deflated"`` uses Alya-style deflated CG with
        a subdomain coarse space (one group per RCB part).
    pressure_groups:
        Optional explicit (nnodes,) coarse-group assignment for the
        deflated solver; defaults to ``rcb_partition(mesh.coords,
        n_coarse)``.
    n_coarse:
        Number of RCB parts for the default coarse space.

    The ``fluid_operator_recycle`` and ``deflation_setup_cache`` toggles
    are captured at construction (long-lived-object capture semantics of
    :mod:`repro.perf.toggles`).
    """

    def __init__(self, mesh: Mesh, bc: FlowBC, viscosity: float = 1.9e-5,
                 density: float = 1.15, dt: float = 1e-3,
                 pressure_solver: str = "cg",
                 pressure_groups: Optional[np.ndarray] = None,
                 n_coarse: int = 16):
        if pressure_solver not in ("cg", "deflated"):
            raise ValueError("pressure_solver must be 'cg' or 'deflated', "
                             f"got {pressure_solver!r}")
        self.mesh = mesh
        self.bc = bc
        self.viscosity = viscosity
        self.density = density
        self._dt = float(dt)
        #: Δt value -> operator state (recycler maps, deflation setup) so
        #: the adaptive ladder revisits a rung without rebuilding anything
        self._rung_states: dict = {}
        n = mesh.nnodes
        self.u = np.zeros((n, 3))
        self.p = np.zeros(n)
        # constant operators
        self.M = assemble_operator(mesh, kappa=0.0, mass_coeff=1.0).matrix
        self.G = gradient_operator(mesh)                   # (3n, n) = D^T
        self.D = divergence_operator(mesh)                 # (n, 3n)
        self._lumped = np.asarray(self.M.sum(axis=1)).ravel()
        self._inv_lumped3 = 1.0 / np.repeat(self._lumped, 3)
        # consistent pressure operator: L = D M_L^{-1} D^T (SPD once pinned),
        # which makes the projection *exactly* kill the discrete divergence.
        Minv3 = sparse.diags(self._inv_lumped3)
        L = (self.D @ Minv3 @ self.G).tocsr()
        self._L, _ = apply_dirichlet_symmetric(
            L, np.zeros(n), bc.outlet_nodes,
            np.zeros(len(bc.outlet_nodes)))
        self._L_pre = jacobi_preconditioner(self._L)
        # velocity Dirichlet DOFs
        vel_nodes = np.concatenate([bc.inlet_nodes, bc.wall_nodes])
        vel_values = np.concatenate(
            [bc.inlet_velocity, np.zeros((len(bc.wall_nodes), 3))])
        self._vel_dofs = (3 * np.repeat(vel_nodes, 3)
                          + np.tile([0, 1, 2], len(vel_nodes)))
        self._vel_values = vel_values.reshape(-1)
        #: unscaled BC values — the reference the inlet transient scales
        self._vel_values_base = self._vel_values
        self._inlet_scale = 1.0
        # seed the prescribed values into the initial field
        self.u[vel_nodes] = vel_values
        # fast paths (toggle state captured at construction)
        toggles = _perf_toggles.TOGGLES
        self._recycle_enabled = bool(toggles.fluid_operator_recycle)
        self._defl_cache_enabled = bool(toggles.deflation_setup_cache)
        self._slots: Optional[DirichletSlots] = None
        if self._recycle_enabled:
            self._build_recycler()
        self.pressure_solver = pressure_solver
        self._pressure_groups: Optional[np.ndarray] = None
        self._defl_setup: Optional[DeflationSetup] = None
        if pressure_solver == "deflated":
            if pressure_groups is not None:
                self._pressure_groups = np.asarray(pressure_groups)
            else:
                from ..partition import rcb_partition
                self._pressure_groups = rcb_partition(mesh.coords, n_coarse)
            if self._defl_cache_enabled:
                self._defl_setup = DeflationSetup(self._L,
                                                  self._pressure_groups)
                FLUID_COUNTERS["deflation_setups_built"] += 1
        self._store_rung_state(self._dt)
        FLUID_COUNTERS["dt_rung_rebuilds"] += 1

    # -- Δt rung cache -------------------------------------------------------
    @property
    def dt(self) -> float:
        """The current time step.

        Assigning a new value swaps in the Δt-dependent operator state
        through a keyed per-rung cache: the first visit of a Δt rebuilds
        the recycler maps (and, for the deflated pressure solver, the
        deflation setup) at that step size; revisiting a rung restores the
        cached state in O(1).  The Krylov workspace caches are keyed by
        system size only and the pressure operator ``L`` carries no Δt, so
        neither can go stale under mutation — this setter is what makes
        ``dt`` safe to change mid-run at all (previously the attribute
        could be reassigned while the recycler kept operators self-checked
        at the construction Δt).
        """
        return self._dt

    @dt.setter
    def dt(self, value: float) -> None:
        value = float(value)
        if value <= 0:
            raise ValueError(f"dt must be > 0, got {value}")
        if value == self._dt:
            return
        self._dt = value
        state = self._rung_states.get(value)
        if state is not None:
            FLUID_COUNTERS["dt_rung_hits"] += 1
            self._slots = state["slots"]
            self._gather = state["gather"]
            self._scalar_nnz = state["scalar_nnz"]
            self._defl_setup = state["defl_setup"]
            return
        FLUID_COUNTERS["dt_rung_misses"] += 1
        self._slots = None
        if self._recycle_enabled:
            self._build_recycler()
        if self.pressure_solver == "deflated" and self._defl_cache_enabled:
            # L is Δt-independent, so this rebuild reproduces the previous
            # setup bit-for-bit — paid once per rung for the invalidation
            # guarantee, then served from the rung cache forever
            self._defl_setup = DeflationSetup(self._L, self._pressure_groups)
            FLUID_COUNTERS["deflation_setups_built"] += 1
        self._store_rung_state(value)
        FLUID_COUNTERS["dt_rung_rebuilds"] += 1

    def _store_rung_state(self, value: float) -> None:
        self._rung_states[value] = {
            "slots": self._slots,
            "gather": getattr(self, "_gather", None),
            "scalar_nnz": getattr(self, "_scalar_nnz", None),
            "defl_setup": getattr(self, "_defl_setup", None),
        }

    def rung_cache_size(self) -> int:
        """Number of Δt values with resident operator state."""
        return len(self._rung_states)

    # -- operator recycling --------------------------------------------------
    def _build_recycler(self) -> None:
        """Precompute the momentum-operator recycling maps (one-time cost).

        Assembles the scalar momentum operator once to fix its sparsity
        pattern, derives the vector-expansion permutation and the Dirichlet
        slot maps, composes them into a single scalar-data -> constrained-
        vector-data gather, and self-checks the whole chain bit-for-bit
        against the naive ``vector_operator`` + ``apply_dirichlet`` path.
        """
        mesh, n = self.mesh, self.mesh.nnodes
        scalar = assemble_operator(mesh, kappa=self.viscosity,
                                   mass_coeff=self.density / self.dt,
                                   velocity=self.u).matrix
        self._scalar_nnz = scalar.nnz
        perm, vind, vptr = vector_expansion_perm(scalar, n)
        pattern = sparse.csr_matrix(
            (np.zeros(len(perm)), vind, vptr), shape=(3 * n, 3 * n))
        slots = DirichletSlots(pattern, self._vel_dofs, self._vel_values)
        # one composed gather: constrained vector slot <- scalar slot
        gather = perm[slots.src]
        # self-check against the naive path (init-only cost): same scalar
        # data pushed through both routes must agree bit-for-bit
        data = np.empty(slots.nnz)
        data[slots.dst] = scalar.data[gather]
        data[slots.fixed] = 1.0
        naive = vector_operator(mesh, kappa=self.viscosity,
                                mass_coeff=self.density / self.dt,
                                velocity=self.u)
        naive, _ = apply_dirichlet(naive, np.zeros(3 * n), self._vel_dofs,
                                   self._vel_values)
        if not (np.array_equal(naive.indptr, slots.indptr)
                and np.array_equal(naive.indices, slots.indices)
                and np.array_equal(naive.data, data)):
            raise RuntimeError(
                "momentum operator recycling self-check failed: recycled "
                "matrix differs from the naive path")
        self._slots = slots
        self._gather = gather

    def _momentum_system(self, rhs: np.ndarray):
        """Constrained momentum matrix + RHS + Jacobi preconditioner.

        The recycled path assembles only the *scalar* operator (itself
        incremental under ``operator_split``) and gathers its data straight
        into the constrained vector pattern; the naive path re-runs the COO
        expansion and the LIL row replacement.  Both produce bit-identical
        systems, so the returned solver inputs — and everything downstream
        — match exactly.
        """
        mesh = self.mesh
        nu, rho, dt = self.viscosity, self.density, self.dt
        if self._slots is not None:
            scalar = assemble_operator(mesh, kappa=nu, mass_coeff=rho / dt,
                                       velocity=self.u).matrix
            if scalar.nnz != self._scalar_nnz:
                raise ValueError(
                    "momentum recycling pattern is stale: the mesh changed "
                    "after solver construction")
            data = np.empty(self._slots.nnz)
            data[self._slots.dst] = scalar.data[self._gather]
            data[self._slots.fixed] = 1.0
            A = self._slots.matrix(data)
            rhs[self._vel_dofs] = self._vel_values
            if self._slots.diag_slots is not None:
                # O(n) Jacobi refresh from the diagonal slot view —
                # identical values to jacobi_preconditioner(A)
                diag = data[self._slots.diag_slots].copy()
                diag[np.abs(diag) < 1e-300] = 1.0
                inv = 1.0 / diag

                def pre(r: np.ndarray) -> np.ndarray:
                    return inv * r
            else:  # pragma: no cover - momentum diagonal always stored
                pre = jacobi_preconditioner(A)
            FLUID_COUNTERS["momentum_recycled"] += 1
            return A, rhs, pre
        A = vector_operator(mesh, kappa=nu, mass_coeff=rho / dt,
                            velocity=self.u)
        A, rhs = apply_dirichlet(A, rhs, self._vel_dofs, self._vel_values)
        FLUID_COUNTERS["momentum_rebuilt"] += 1
        return A, rhs, jacobi_preconditioner(A)

    # -- inlet transient ----------------------------------------------------
    def set_inlet_scale(self, scale: float) -> None:
        """Scale every prescribed velocity BC by ``scale``.

        The co-simulation forwarding surface: the hub (or any waveform)
        multiplies the inlet Dirichlet values, and both momentum paths —
        the recycled gather and the naive row replacement — read the
        rescaled values on the next step, because Dirichlet *values* only
        ever enter through the RHS and the projection re-imposition (the
        recycler's slot structure is value-independent).  Wall nodes stay
        exactly zero.  Pure state, no wall clock: a given scale sequence
        reproduces bit-identical fields under every toggle combination.
        """
        scale = float(scale)
        if scale <= 0:
            raise ValueError(f"inlet scale must be > 0, got {scale}")
        if scale == self._inlet_scale:
            return
        self._inlet_scale = scale
        if scale == 1.0:
            self._vel_values = self._vel_values_base
        else:
            self._vel_values = self._vel_values_base * scale
        FLUID_COUNTERS["inlet_rescales"] += 1

    # -- one time step ------------------------------------------------------
    def step(self, tol: float = 1e-7, maxiter: int = 600) -> StepInfo:
        """Advance one dt; returns solver/divergence diagnostics."""
        dt = self.dt
        rho = self.density
        # 1. momentum predictor.  The weak pressure-gradient term is
        #    (grad p, v) = -(p, div v) = -(D^T p)_v, so it contributes
        #    +D^T p on the RHS once moved across.
        rhs = (rho / dt) * (self._mass3(interleave(self.u))) \
            + self.G @ self.p
        A, rhs, pre = self._momentum_system(rhs)
        res_m = bicgstab(A, rhs, x0=interleave(self.u), tol=tol,
                         maxiter=maxiter, M=pre)
        u_star = res_m.x
        # 2. pressure Poisson for the increment phi:
        #    u^{n+1} = u* + dt/rho M_L^{-1} D^T phi  and  D u^{n+1} = 0
        #    =>  (D M_L^{-1} D^T) phi = -(rho/dt) D u*
        div_star = self.D @ u_star
        div_before = float(np.linalg.norm(div_star))
        b = -(rho / dt) * div_star
        b[self.bc.outlet_nodes] = 0.0
        if self.pressure_solver == "deflated":
            if self._defl_setup is not None:
                FLUID_COUNTERS["deflation_setups_reused"] += 1
            else:
                FLUID_COUNTERS["deflation_setups_built"] += 1
            res_p = deflated_cg(self._L, b, self._pressure_groups, tol=tol,
                                maxiter=maxiter, M=self._L_pre,
                                setup=self._defl_setup)
            FLUID_COUNTERS["pressure_deflated_solves"] += 1
        else:
            res_p = cg(self._L, b, tol=tol, maxiter=maxiter, M=self._L_pre)
        phi = res_p.x
        # 3. projection
        u_new = u_star + (dt / rho) * (self._inv_lumped3 * (self.G @ phi))
        # re-impose the velocity BCs exactly
        u_new[self._vel_dofs] = self._vel_values
        div_after = float(np.linalg.norm(self.D @ u_new))
        self.u = deinterleave(u_new)
        self.p = self.p + phi
        return StepInfo(momentum_iterations=res_m.iterations,
                        pressure_iterations=res_p.iterations,
                        div_before=div_before, div_after=div_after,
                        dt=dt, inlet_scale=self._inlet_scale)

    def run(self, n_steps: int, tol: float = 1e-7) -> list[StepInfo]:
        """Advance ``n_steps`` steps; returns the per-step diagnostics."""
        return [self.step(tol=tol) for _ in range(n_steps)]

    # -- adaptive time stepping ---------------------------------------------
    def advance_to(self, t_end: float, control=None, tol: float = 1e-7,
                   maxiter: int = 600,
                   inlet_scale=None) -> list[StepInfo]:
        """Advance to simulated time ``t_end`` under a CFL controller.

        ``control`` is a :class:`~repro.fem.timestep.CflController` (default:
        target CFL 0.9 on a 4-rung ladder anchored at the current ``dt``).
        Each step computes the CFL rate from the velocity field and the
        cached element sizes (:func:`repro.fem.timestep.cfl_rate` over
        :func:`repro.fem.geometry.geometry_blocks`), quantizes the target
        step onto the ladder with hysteresis, and advances — so Δt-
        dependent operator state is reused via the per-rung cache instead
        of rebuilt.  The final step is clipped to land exactly on
        ``t_end`` (one off-ladder rung, also cached).

        ``inlet_scale`` is an optional callable ``t -> scale`` — e.g.
        ``CosimHub.scale_at`` — evaluated at each step's start time and
        imposed via :meth:`set_inlet_scale` before the step: the hub-driven
        breathing transient consumed through the CFL controller.

        Deterministic by construction: the controller reads only simulated
        state, every float operation is fixed-order, and the fields are
        bit-identical across perf-toggle combinations — so the Δt sequence
        replays exactly on any rerun.
        """
        from .geometry import geometry_blocks
        from .timestep import CflController, DtLadder, cfl_rate

        if t_end <= 0:
            raise ValueError(f"t_end must be > 0, got {t_end}")
        if control is None:
            control = CflController(
                ladder=DtLadder(dt_min=self.dt, dt_max=8.0 * self.dt))
        ladder = control.ladder
        blocks = geometry_blocks(self.mesh)
        infos: list[StepInfo] = []
        t = 0.0
        # start optimistic at the top: the controller's first decision
        # drops straight to the CFL-admissible rung of the initial field
        rung = ladder.top
        while t_end - t > 1e-9 * t_end:
            if inlet_scale is not None:
                self.set_inlet_scale(inlet_scale(t))
            rate = cfl_rate(self.u, blocks)
            rung = control.rung_for(rate, rung)
            dt = min(ladder.dt_of(rung), t_end - t)
            self.dt = dt
            info = self.step(tol=tol, maxiter=maxiter)
            info.cfl = rate * dt
            info.rung = rung
            FLUID_COUNTERS["adaptive_steps"] += 1
            infos.append(info)
            t += dt
        return infos

    # -- helpers ------------------------------------------------------------
    def _mass3(self, dofs: np.ndarray) -> np.ndarray:
        """Apply the (block-diagonal) vector mass matrix.

        One sparse matrix-matrix product on the (n, 3) field — bit-identical
        to the per-component matvec loop (CSR SpMM accumulates each column
        exactly like the corresponding matvec).
        """
        return interleave(self.M @ deinterleave(dofs))

    def flow_rate_through(self, nodes: np.ndarray,
                          normal: np.ndarray) -> float:
        """Approximate volumetric flow through a node set with unit
        ``normal``: mean normal velocity x (summed lumped nodal area).

        Used by tests to compare inflow and outflow (mass conservation).
        """
        u_n = self.u[nodes] @ normal
        weights = self._lumped[nodes]
        # lumped masses are volumes; normalize to act as area weights
        return float((u_n * weights).sum() / weights.sum())
